//! Offline shim for the `proptest` API subset this workspace uses: the
//! `proptest!` macro with `arg in strategy` bindings, integer-range /
//! `collection::vec` / tuple / `any::<T>()` / simple-regex-string
//! strategies, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed
//! number of deterministic cases (seeded from the test's path) and reports
//! the failing inputs via `Debug` in the panic message.

/// Test-runner plumbing: the deterministic RNG and failure type.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Cases generated per `proptest!` test.
    pub const CASES: u64 = 64;

    /// Failure raised by `prop_assert*` or returned from a test body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        reason: String,
    }

    impl TestCaseError {
        /// Fails the current test case with `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError { reason: reason.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.reason)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// The deterministic generator driving strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds from a test identifier so every run replays the same cases.
        pub fn deterministic(path: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw in `[0, bound)`; 0 when `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                // Rejection sampling against modulo bias.
                let zone = u64::MAX - u64::MAX.wrapping_rem(bound);
                loop {
                    let v = self.next_u64();
                    if v < zone || zone == 0 {
                        return v % bound;
                    }
                }
            }
        }

        /// Uniform draw in `[lo, hi]` (inclusive).
        pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
            if lo >= hi {
                return lo;
            }
            lo + self.below(hi - lo + 1)
        }
    }
}

/// Strategies: typed generators of test inputs.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start
                        + rng.below((self.end - self.start) as u64) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Types `any::<T>()` can produce.
    pub trait Arbitrary: Sized {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Generates any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// String strategy from a simple regex subset: sequences of literal
    /// characters and `[a-z0-9_]`-style classes, each optionally followed
    /// by `{m,n}`, `{n}`, `*`, `+`, or `?`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Atom: a character class or a literal character.
            let class: Vec<char> = if chars[i] == '[' {
                let mut cls = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                        cls.extend((lo..=hi).filter(|c| c.is_ascii()));
                        i += 3;
                    } else {
                        cls.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // consume ']'
                cls
            } else {
                let c = if chars[i] == '\\' && i + 1 < chars.len() {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };
            // Quantifier.
            let (lo, hi): (u64, u64) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("quantifier lower bound"),
                        n.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
                let q = chars[i];
                i += 1;
                match q {
                    '*' => (0, 8),
                    '+' => (1, 8),
                    _ => (0, 1),
                }
            } else {
                (1, 1)
            };
            assert!(!class.is_empty(), "empty class in pattern {pattern:?}");
            let reps = rng.range_inclusive(lo, hi);
            for _ in 0..reps {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let n = self.len.start
                + rng.below((self.len.end - self.len.start) as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vectors of `elem` values with length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

/// The common import surface.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: `fn name(arg in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..$crate::test_runner::CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __desc = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs:{}",
                            stringify!($name),
                            __case + 1,
                            $crate::test_runner::CASES,
                            e,
                            __desc,
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left != right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The harness itself: bindings, vec, tuple, string strategies.
        #[test]
        fn harness_smoke(
            x in 3u64..10,
            v in crate::collection::vec(any::<u8>(), 2..5),
            pair in (1usize..3, 0u32..2),
            name in "[a-z_]{0,32}",
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(pair.0 >= 1 && pair.0 < 3 && pair.1 < 2);
            prop_assert!(name.len() <= 32);
            prop_assert!(name.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn deterministic_replay() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        let s = crate::collection::vec(0u64..100, 1..10);
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
