//! No-op `Serialize`/`Deserialize` derive macros for the offline serde
//! shim. Nothing in the workspace serializes through serde yet, so the
//! derives expand to an empty token stream (the `serde` helper attribute
//! is accepted and ignored).

use proc_macro::TokenStream;

/// Expands to nothing; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
