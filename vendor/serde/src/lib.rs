//! Offline shim for `serde`: the trait names this workspace derives.
//!
//! The workspace only ever derives `Serialize`/`Deserialize` as a forward-
//! compatibility marker — nothing serializes through them yet (there is no
//! `serde_json`/`bincode` in the tree). The derives expand to nothing, so
//! the traits carry no methods.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
