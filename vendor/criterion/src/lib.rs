//! Offline shim for the `criterion` API subset this workspace uses.
//!
//! Implements a small wall-clock runner: each benchmark warms up, then
//! iterates until a time budget is spent and prints the mean iteration
//! time (with throughput when declared). No statistics, plots, or
//! comparisons — just enough to keep `cargo bench` useful offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so bench code can guard the optimizer like with criterion.
pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const TARGET_TIME: Duration = Duration::from_millis(300);
const MAX_ITERS: u64 = 10_000;

/// Declared throughput of one iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let budget = Instant::now();
        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        while iters < MAX_ITERS && budget.elapsed() < TARGET_TIME {
            let t = Instant::now();
            black_box(routine());
            spent += t.elapsed();
            iters += 1;
        }
        self.mean_ns = if iters == 0 { 0.0 } else { spent.as_nanos() as f64 / iters as f64 };
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(id: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let mut line = format!("{id:<48} {:>12}/iter", human_time(mean_ns));
    if let Some(tp) = throughput {
        let per_sec = |units: u64| {
            if mean_ns <= 0.0 {
                0.0
            } else {
                units as f64 / (mean_ns / 1_000_000_000.0)
            }
        };
        match tp {
            Throughput::Bytes(b) => {
                line.push_str(&format!("  {:>10.1} MiB/s", per_sec(b) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(e) => {
                line.push_str(&format!("  {:>10.0} elem/s", per_sec(e)));
            }
        }
    }
    println!("{line}");
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility; this shim sizes samples by time
    /// budget, so the requested count is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.mean_ns, self.throughput);
    }

    /// Runs a named benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.mean_ns, self.throughput);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Runs a standalone named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        report(&id.to_string(), b.mean_ns, None);
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
