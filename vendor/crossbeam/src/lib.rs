//! Offline shim for the `crossbeam::channel` API subset this workspace
//! uses: `unbounded()` with cloneable (mpmc) senders and receivers.
//!
//! Backed by `std::sync::mpsc`; the receiver side is shared behind a mutex
//! so clones compete for messages exactly like crossbeam's mpmc receiver.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait timed out with no message.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message was ready.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel is empty"),
                TryRecvError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only when every receiver is dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel (cloneable: clones
    /// compete for messages).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv().map_err(|_| RecvError)
        }

        /// Blocks until a message arrives, all senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.lock().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a ready message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.lock().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: Arc::new(Mutex::new(rx)) })
    }
}
