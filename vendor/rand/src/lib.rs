//! Offline shim for the `rand` 0.8 API subset this workspace uses.
//!
//! [`rngs::StdRng`] is a xoshiro256** generator seeded through SplitMix64
//! (the reference seeding scheme). It is deterministic and statistically
//! solid for workload generation and property tests; it makes no
//! cryptographic claims, which matches how the workspace uses it.

use std::ops::Range;

/// Low-level generator interface.
pub trait RngCore {
    /// The next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types [`Rng::gen_range`] can sample from a half-open range.
pub trait SampleUniform: Copy {
    /// Uniform draw in `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased uniform draw in `[0, span)` by rejection on the top of the
/// 64-bit range.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - u64::MAX.wrapping_rem(span);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                lo + uniform_u64(rng, (hi - lo) as u64) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

/// High-level sampling helpers, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws one uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a half-open range. Panics when the range is empty,
    /// like `rand`.
    fn gen_range<T: SampleUniform + PartialOrd>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "cannot sample empty range");
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 — the shim's standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(StdRng::seed_from_u64(2).next_u64(), StdRng::seed_from_u64(3).next_u64());
    }

    #[test]
    fn ranges_and_floats_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
