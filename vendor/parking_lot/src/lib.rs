//! Offline shim for the `parking_lot` API subset this workspace uses.
//!
//! Backed by `std::sync` primitives. Poisoning is translated into the
//! `parking_lot` contract (no poison: a panicked holder simply releases the
//! lock) by recovering the inner guard from `PoisonError`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutex with the `parking_lot` locking API (no poison, no `Result`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(p) => MutexGuard { inner: p.into_inner() },
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock with the `parking_lot` API (no poison).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(p) => RwLockReadGuard { inner: p.into_inner() },
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(p) => RwLockWriteGuard { inner: p.into_inner() },
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => {
                timed_out = r.timed_out();
                g
            }
            Err(p) => {
                let (g, r) = p.into_inner();
                timed_out = r.timed_out();
                g
            }
        });
        WaitTimeoutResult { timed_out }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Runs `f` on the guard's inner `std` guard by value. The `std` condvar
/// APIs consume and return guards; `parking_lot`'s take `&mut`. Bridging
/// the two needs a brief move out of the borrowed slot, which is done with
/// a drop-in replacement so no slot is ever left without a guard.
fn replace_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    // SAFETY-free implementation: temporarily take the guard by swapping
    // through Option is impossible without a placeholder, so restructure:
    // read the guard out via ptr juggling is unsafe; instead we rely on the
    // fact that MutexGuard is a plain wrapper and use take_mut semantics
    // via panic-abort discipline. To stay in safe Rust, we use an Option
    // dance at the call sites instead.
    take_mut(guard, |g| MutexGuard { inner: f(g.inner) });
}

/// Safe `take_mut` for guards: moves the value out, applies `f`, and moves
/// the result back. A panic inside `f` aborts the process (the guard slot
/// would otherwise dangle), matching `take_mut` crate semantics.
fn take_mut<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    use std::ptr;
    struct Abort;
    impl Drop for Abort {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = Abort;
        let old = ptr::read(slot);
        let new = f(old);
        ptr::write(slot, new);
        std::mem::forget(bomb);
    }
}
