//! The checksum microbenchmark (UPMEM's `dpu_demo`).
//!
//! The host generates a random file of the requested size and transfers it
//! to **every** allocated DPU (same data everywhere — unlike PrIM there is
//! no partitioning); each DPU checksums its copy; the host reads each
//! DPU's result from its MRAM. Per §5.3.1, one execution issues one
//! `write-to-rank`, one `read-from-rank` per DPU, and thousands of CI
//! operations (the synchronous-launch status polls).

use simkit::AppSegment;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimMachine};

use simkit::SimRng;

/// MRAM offset where the per-DPU result is stored (top of the data area is
/// not knowable before sizing, so results live at a fixed low page and the
/// file starts one page in).
pub const RESULT_OFFSET: u64 = 0;
/// File data starts here.
pub const DATA_OFFSET: u64 = 4096;

/// The DPU kernel: block-strided 32-bit sum of the file bytes.
#[derive(Debug)]
pub struct ChecksumKernel;

impl DpuKernel for ChecksumKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("checksum_kernel", 4 << 10)
            .with_symbol(SymbolDef::u32("nbytes"))
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let nbytes = ctx.host_u32("nbytes")? as usize;
        let tasklets = ctx.nr_tasklets();
        let mut partials = vec![0u32; tasklets];
        ctx.parallel(|t| {
            let per = nbytes.div_ceil(tasklets);
            let lo = (t.id() * per).min(nbytes);
            let hi = ((t.id() + 1) * per).min(nbytes);
            if lo >= hi {
                return Ok(());
            }
            t.wram_alloc(2048)?;
            let mut buf = vec![0u8; 2048];
            let mut pos = lo;
            let mut acc = 0u32;
            while pos < hi {
                let take = 2048.min(hi - pos);
                t.mram_read(DATA_OFFSET + pos as u64, &mut buf[..take])?;
                for &b in &buf[..take] {
                    acc = acc.wrapping_add(u32::from(b));
                }
                // Byte-wise inner loop: load, extend, add, bound check,
                // index bump, branch — ~8 instructions per byte.
                t.charge(8 * take as u64);
                pos += take;
            }
            partials[t.id()] = acc;
            Ok(())
        })?;
        ctx.single(|t| {
            let total = partials.iter().fold(0u32, |a, v| a.wrapping_add(*v));
            t.mram_write_u32s(RESULT_OFFSET, &[total])?;
            Ok(())
        })
    }
}

/// Outcome of one checksum execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChecksumRun {
    /// Whether every DPU agreed with the CPU checksum.
    pub verified: bool,
    /// The checksum value.
    pub value: u32,
}

/// The checksum application driver.
#[derive(Debug)]
pub struct Checksum;

impl Checksum {
    /// The kernel's registry name.
    pub const KERNEL: &'static str = "checksum_kernel";

    /// Registers the DPU kernel.
    pub fn register(machine: &PimMachine) {
        machine.register_kernel(std::sync::Arc::new(ChecksumKernel));
    }

    /// Runs the benchmark: `file_bytes` of random data to every DPU of the
    /// set. Segments: file transfer = CPU-DPU, compute = DPU, result
    /// retrieval = DPU-CPU.
    ///
    /// # Errors
    ///
    /// SDK/transport failures.
    pub fn run(set: &mut DpuSet, file_bytes: usize, seed: u64) -> Result<ChecksumRun, SdkError> {
        let mut rng = SimRng::seeded(seed);
        let file = rng.bytes(file_bytes);
        let expected = file.iter().fold(0u32, |a, b| a.wrapping_add(u32::from(*b)));

        set.load(Self::KERNEL)?;
        set.set_segment(AppSegment::CpuToDpu);
        let n = set.nr_dpus();
        let bufs: Vec<Vec<u8>> = (0..n).map(|_| file.clone()).collect();
        set.push_to_heap(DATA_OFFSET, &bufs)?;
        set.broadcast_symbol_u32("nbytes", file_bytes as u32)?;

        set.set_segment(AppSegment::Dpu);
        set.launch(16)?;

        // One read-from-rank per DPU (§5.3.1's "60 read-from-rank ops").
        set.set_segment(AppSegment::DpuToCpu);
        let mut verified = true;
        let mut value = 0u32;
        for d in 0..n {
            let raw = set.copy_from_heap(d, RESULT_OFFSET, 4)?;
            let v = u32::from_le_bytes(raw[..4].try_into().expect("4 bytes"));
            if d == 0 {
                value = v;
            }
            verified &= v == expected;
        }
        Ok(ChecksumRun { verified, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::CostModel;
    use std::sync::Arc;
    use upmem_driver::UpmemDriver;
    use upmem_sim::PimConfig;

    fn machine() -> PimMachine {
        let m = PimMachine::new(PimConfig::small());
        Checksum::register(&m);
        m
    }

    #[test]
    fn checksum_native() {
        let driver = Arc::new(UpmemDriver::new(machine()));
        let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
        let run = Checksum::run(&mut set, 64 << 10, 1).unwrap();
        assert!(run.verified);
        // The timeline shows the expected op mix: 1 parallel write, 8 reads.
        assert!(set.timeline().rank_ops() >= 9);
    }

    #[test]
    fn checksum_vpim_matches_native() {
        let driver = Arc::new(UpmemDriver::new(machine()));
        let native = {
            let mut set = DpuSet::alloc_native(&driver, 4, CostModel::default()).unwrap();
            Checksum::run(&mut set, 16 << 10, 2).unwrap()
        };
        let sys = vpim::VpimSystem::start(driver, vpim::VpimConfig::full(), vpim::StartOpts::default());
        let vm = sys.launch(vpim::TenantSpec::new("vm-ck")).unwrap();
        let mut set = DpuSet::alloc_vm(vm.frontends(), 4, CostModel::default()).unwrap();
        let virt = Checksum::run(&mut set, 16 << 10, 2).unwrap();
        assert!(virt.verified);
        assert_eq!(virt.value, native.value);
        sys.shutdown();
    }

    #[test]
    fn larger_files_take_longer() {
        let driver = Arc::new(UpmemDriver::new(machine()));
        let mut t_small = simkit::VirtualNanos::ZERO;
        let mut t_big = simkit::VirtualNanos::ZERO;
        for (bytes, out) in [(8 << 10, &mut t_small), (128 << 10, &mut t_big)] {
            let mut set = DpuSet::alloc_native(&driver, 4, CostModel::default()).unwrap();
            Checksum::run(&mut set, bytes, 3).unwrap();
            *out = set.timeline().app_total();
        }
        assert!(t_big > t_small);
    }
}
