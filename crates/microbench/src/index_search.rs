//! The Wikipedia index-search microbenchmark (UPMEM's UPIS use case).
//!
//! An inverted index over a document corpus is sharded across DPUs (each
//! DPU indexes a slice of the documents). Phrase queries are sent in
//! batches of 128; every DPU scans its shard and reports matching
//! `(document, position)` pairs; the host merges shard results. The paper
//! uses 445 queries over 4 305 files of an English-Wikipedia subset
//! (63 MB); this reproduction generates a synthetic corpus of the same
//! shape (the Wikipedia subset itself is not redistributable — see
//! DESIGN.md's substitution table).

use simkit::{AppSegment, SimRng};
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimMachine};

/// Maximum hits reported per query per DPU.
pub const MAX_HITS: usize = 16;

/// Corpus and query-load shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexSearchParams {
    /// Number of documents in the corpus.
    pub n_docs: usize,
    /// Words per document.
    pub doc_len: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Total number of queries.
    pub n_queries: usize,
    /// Queries per batch (the benchmark sends 128 at a time).
    pub batch: usize,
}

impl IndexSearchParams {
    /// The paper's configuration: 4 305 documents, 445 queries, batches of
    /// 128 (4 batches).
    #[must_use]
    pub fn paper() -> Self {
        IndexSearchParams { n_docs: 4305, doc_len: 512, vocab: 8192, n_queries: 445, batch: 128 }
    }

    /// A test-sized corpus.
    #[must_use]
    pub fn small() -> Self {
        IndexSearchParams { n_docs: 48, doc_len: 64, vocab: 128, n_queries: 20, batch: 8 }
    }
}

/// MRAM layout offsets (all 4 KiB aligned, sized by the host):
/// `[vocab table][postings][queries][results]` — offsets via symbols.
#[derive(Debug)]
pub struct IndexSearchKernel;

impl DpuKernel for IndexSearchKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("index_search_kernel", 11 << 10)
            .with_symbol(SymbolDef::u32("vocab"))
            .with_symbol(SymbolDef::u32("nq"))
            .with_symbol(SymbolDef::u32("off_post"))
            .with_symbol(SymbolDef::u32("off_q"))
            .with_symbol(SymbolDef::u32("off_r"))
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let vocab = ctx.host_u32("vocab")? as usize;
        let nq = ctx.host_u32("nq")? as usize;
        let off_post = u64::from(ctx.host_u32("off_post")?);
        let off_q = u64::from(ctx.host_u32("off_q")?);
        let off_r = u64::from(ctx.host_u32("off_r")?);
        let tasklets = ctx.nr_tasklets();
        let rec = 1 + 2 * MAX_HITS; // per-query result record in u32s
        ctx.parallel(|t| {
            let per = nq.div_ceil(tasklets);
            let lo = (t.id() * per).min(nq);
            let hi = ((t.id() + 1) * per).min(nq);
            if lo >= hi {
                return Ok(());
            }
            t.wram_alloc(4096)?;
            for q in lo..hi {
                // Load the 2-word phrase.
                let mut phrase = [0u32; 2];
                t.mram_read_u32s(off_q + (q * 2 * 4) as u64, &mut phrase)?;
                let (w1, w2) = (phrase[0] as usize % vocab, phrase[1] as usize % vocab);
                // Vocab table entries: (offset, len) in postings pairs.
                let mut e1 = [0u32; 2];
                t.mram_read_u32s((w1 * 2 * 4) as u64, &mut e1)?;
                let mut e2 = [0u32; 2];
                t.mram_read_u32s((w2 * 2 * 4) as u64, &mut e2)?;
                let mut hits: Vec<(u32, u32)> = Vec::new();
                if e1[1] > 0 && e2[1] > 0 {
                    let mut p1 = vec![0u32; e1[1] as usize * 2];
                    t.mram_read_u32s(off_post + u64::from(e1[0]) * 8, &mut p1)?;
                    let mut p2 = vec![0u32; e2[1] as usize * 2];
                    t.mram_read_u32s(off_post + u64::from(e2[0]) * 8, &mut p2)?;
                    // Postings are (doc, pos) sorted; merge-join on
                    // (doc, pos+1).
                    for pair in p1.chunks_exact(2) {
                        if hits.len() >= MAX_HITS {
                            break;
                        }
                        let (doc, pos) = (pair[0], pair[1]);
                        let target = (doc, pos + 1);
                        let found = p2
                            .chunks_exact(2)
                            .any(|c| (c[0], c[1]) == target);
                        if found {
                            hits.push((doc, pos));
                        }
                    }
                    t.charge((p1.len() as u64 / 2) * (2 + p2.len() as u64 / 8));
                }
                let mut record = vec![0u32; rec];
                record[0] = hits.len() as u32;
                for (i, (doc, pos)) in hits.iter().enumerate() {
                    record[1 + 2 * i] = *doc;
                    record[2 + 2 * i] = *pos;
                }
                t.mram_write_u32s(off_r + (q * rec * 4) as u64, &record)?;
            }
            Ok(())
        })
    }
}

/// One query's merged result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryHits {
    /// Matching `(document id, word position)` pairs (capped per shard).
    pub hits: Vec<(u32, u32)>,
}

/// Outcome of one search run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchRun {
    /// Whether the merged hits match the CPU reference.
    pub verified: bool,
    /// Total hits across all queries.
    pub total_hits: usize,
}

/// The index-search application driver.
#[derive(Debug)]
pub struct IndexSearch;

impl IndexSearch {
    /// The kernel's registry name.
    pub const KERNEL: &'static str = "index_search_kernel";

    /// Registers the DPU kernel.
    pub fn register(machine: &PimMachine) {
        machine.register_kernel(std::sync::Arc::new(IndexSearchKernel));
    }

    /// Runs the search on a vPIM VM's frontends — the library form of the
    /// `index_search` example, used by the load harness to script the
    /// UPIS workload ([`IndexSearchParams::paper`] for full scale) into a
    /// tenant session. Returns the run plus its virtual cost.
    ///
    /// # Errors
    ///
    /// [`SdkError::NotEnoughDpus`] when the frontends cannot cover
    /// `nr_dpus`, or transport failures.
    pub fn run_vm(
        frontends: &[std::sync::Arc<vpim::Frontend>],
        nr_dpus: usize,
        params: &IndexSearchParams,
        seed: u64,
    ) -> Result<(SearchRun, simkit::VirtualNanos), SdkError> {
        let cm = frontends
            .first()
            .map_or_else(simkit::CostModel::default, |f| f.cost_model().clone());
        let mut set = DpuSet::alloc_vm(frontends, nr_dpus, cm)?;
        let run = Self::run(&mut set, params, seed)?;
        let cost = set.timeline().app_total();
        Ok((run, cost))
    }

    /// Generates the synthetic corpus (skewed word distribution).
    #[must_use]
    pub fn corpus(params: &IndexSearchParams, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = SimRng::seeded(seed);
        (0..params.n_docs)
            .map(|_| {
                (0..params.doc_len)
                    .map(|_| {
                        // Quadratic skew: low ids are common, like word
                        // frequencies in text.
                        let f = rng.f64();
                        ((f * f * params.vocab as f64) as usize).min(params.vocab - 1) as u32
                    })
                    .collect()
            })
            .collect()
    }

    /// Generates the query load: half sampled phrases (guaranteed hits),
    /// half random probes.
    #[must_use]
    pub fn queries(params: &IndexSearchParams, corpus: &[Vec<u32>], seed: u64) -> Vec<(u32, u32)> {
        let mut rng = SimRng::seeded(seed ^ 0x7777);
        (0..params.n_queries)
            .map(|i| {
                if i % 2 == 0 && !corpus.is_empty() {
                    let d = rng.usize_below(corpus.len());
                    let p = rng.usize_below(corpus[d].len() - 1);
                    (corpus[d][p], corpus[d][p + 1])
                } else {
                    (
                        rng.u64_below(params.vocab as u64) as u32,
                        rng.u64_below(params.vocab as u64) as u32,
                    )
                }
            })
            .collect()
    }

    /// CPU reference: all `(doc, pos)` pairs where the phrase occurs.
    #[must_use]
    pub fn reference(corpus: &[Vec<u32>], query: (u32, u32)) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (d, doc) in corpus.iter().enumerate() {
            for p in 0..doc.len().saturating_sub(1) {
                if doc[p] == query.0 && doc[p + 1] == query.1 {
                    out.push((d as u32, p as u32));
                }
            }
        }
        out
    }

    /// Runs the benchmark on an allocated set.
    ///
    /// # Errors
    ///
    /// SDK/transport failures.
    #[allow(clippy::too_many_lines)]
    pub fn run(
        set: &mut DpuSet,
        params: &IndexSearchParams,
        seed: u64,
    ) -> Result<SearchRun, SdkError> {
        let corpus = Self::corpus(params, seed);
        let queries = Self::queries(params, &corpus, seed);
        let n_dpus = set.nr_dpus();
        let rec = 1 + 2 * MAX_HITS;

        // Shard documents and build each shard's inverted index.
        let shards: Vec<std::ops::Range<usize>> = {
            let base = params.n_docs / n_dpus;
            let extra = params.n_docs % n_dpus;
            let mut out = Vec::new();
            let mut s = 0;
            for i in 0..n_dpus {
                let len = base + usize::from(i < extra);
                out.push(s..s + len);
                s += len;
            }
            out
        };

        set.load(Self::KERNEL)?;
        set.set_segment(AppSegment::CpuToDpu);
        let mut max_postings = 0usize;
        let mut vocab_bufs = Vec::with_capacity(n_dpus);
        let mut post_bufs = Vec::with_capacity(n_dpus);
        for r in &shards {
            // word -> (doc, pos) postings, docs in global ids.
            let mut postings: Vec<Vec<(u32, u32)>> = vec![Vec::new(); params.vocab];
            for d in r.clone() {
                for (p, w) in corpus[d].iter().enumerate() {
                    postings[*w as usize].push((d as u32, p as u32));
                }
            }
            let mut table = Vec::with_capacity(params.vocab * 2);
            let mut flat: Vec<u32> = Vec::new();
            for plist in &postings {
                table.push((flat.len() / 2) as u32);
                table.push(plist.len() as u32);
                for (d, p) in plist {
                    flat.push(*d);
                    flat.push(*p);
                }
            }
            max_postings = max_postings.max(flat.len());
            vocab_bufs.push(crate::u32s_to_bytes_local(&table));
            post_bufs.push(crate::u32s_to_bytes_local(&flat));
        }
        let table_bytes = ((params.vocab * 2 * 4) as u64).div_ceil(4096) * 4096;
        let post_bytes = ((max_postings.max(1) * 4) as u64).div_ceil(4096) * 4096;
        let q_bytes = ((params.batch * 2 * 4) as u64).div_ceil(4096) * 4096;
        let off_post = table_bytes;
        let off_q = off_post + post_bytes;
        let off_r = off_q + q_bytes;

        // UPIS distributes the index one DPU at a time (serial transfers;
        // the paper notes Fig. 10's execution time *grows* with the DPU
        // count because of this).
        for d in 0..n_dpus {
            set.copy_to_heap(d, 0, &vocab_bufs[d])?;
            if !post_bufs[d].is_empty() {
                set.copy_to_heap(d, off_post, &post_bufs[d])?;
            }
        }
        set.broadcast_symbol_u32("vocab", params.vocab as u32)?;
        set.broadcast_symbol_u32("off_post", off_post as u32)?;
        set.broadcast_symbol_u32("off_q", off_q as u32)?;
        set.broadcast_symbol_u32("off_r", off_r as u32)?;

        // Batched query processing.
        let mut merged: Vec<QueryHits> = vec![QueryHits::default(); queries.len()];
        for (b, batch) in queries.chunks(params.batch).enumerate() {
            set.set_segment(AppSegment::CpuToDpu);
            let mut qbuf = Vec::with_capacity(batch.len() * 2);
            for (w1, w2) in batch {
                qbuf.push(*w1);
                qbuf.push(*w2);
            }
            let qbytes = crate::u32s_to_bytes_local(&qbuf);
            let bufs: Vec<Vec<u8>> = (0..n_dpus).map(|_| qbytes.clone()).collect();
            set.push_to_heap(off_q, &bufs)?;
            set.broadcast_symbol_u32("nq", batch.len() as u32)?;

            set.set_segment(AppSegment::Dpu);
            set.launch(16)?;

            set.set_segment(AppSegment::DpuToCpu);
            // Results are scanned shard by shard (serial reads).
            let mut outs = Vec::with_capacity(n_dpus);
            for d in 0..n_dpus {
                outs.push(set.copy_from_heap(d, off_r, batch.len() * rec * 4)?);
            }
            for (out, _) in outs.iter().zip(0..) {
                let words = crate::bytes_to_u32s_local(out);
                for (qi, _) in batch.iter().enumerate() {
                    let base = qi * rec;
                    let count = words[base] as usize;
                    let global_q = b * params.batch + qi;
                    for h in 0..count.min(MAX_HITS) {
                        merged[global_q]
                            .hits
                            .push((words[base + 1 + 2 * h], words[base + 2 + 2 * h]));
                    }
                }
            }
        }

        // Verify (accounting for the per-shard hit cap).
        let mut verified = true;
        let mut total_hits = 0usize;
        for (q, query) in queries.iter().enumerate() {
            let mut got = merged[q].hits.clone();
            got.sort_unstable();
            let mut want = Self::reference(&corpus, *query);
            // Apply the same per-shard cap the kernel applies.
            let mut capped: Vec<(u32, u32)> = Vec::new();
            for r in &shards {
                let mut in_shard: Vec<(u32, u32)> = want
                    .iter()
                    .copied()
                    .filter(|(d, _)| r.contains(&(*d as usize)))
                    .collect();
                in_shard.truncate(MAX_HITS);
                capped.extend(in_shard);
            }
            capped.sort_unstable();
            want = capped;
            if got != want {
                verified = false;
            }
            total_hits += got.len();
        }
        Ok(SearchRun { verified, total_hits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::CostModel;
    use std::sync::Arc;
    use upmem_driver::UpmemDriver;
    use upmem_sim::PimConfig;

    fn machine() -> PimMachine {
        let m = PimMachine::new(PimConfig::small());
        IndexSearch::register(&m);
        m
    }

    #[test]
    fn search_native_finds_planted_phrases() {
        let driver = Arc::new(UpmemDriver::new(machine()));
        let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
        let run = IndexSearch::run(&mut set, &IndexSearchParams::small(), 5).unwrap();
        assert!(run.verified);
        // Half the queries are sampled from the corpus, so hits exist.
        assert!(run.total_hits > 0);
    }

    #[test]
    fn search_vpim_matches_native() {
        let driver = Arc::new(UpmemDriver::new(machine()));
        let params = IndexSearchParams::small();
        let native = {
            let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
            IndexSearch::run(&mut set, &params, 5).unwrap()
        };
        let sys = vpim::VpimSystem::start(driver, vpim::VpimConfig::full(), vpim::StartOpts::default());
        let vm = sys.launch(vpim::TenantSpec::new("vm-is")).unwrap();
        let mut set = DpuSet::alloc_vm(vm.frontends(), 8, CostModel::default()).unwrap();
        let virt = IndexSearch::run(&mut set, &params, 5).unwrap();
        assert!(virt.verified);
        assert_eq!(virt.total_hits, native.total_hits);
        sys.shutdown();
    }

    #[test]
    fn reference_finds_adjacent_pairs_only() {
        let corpus = vec![vec![1u32, 2, 3, 1, 2]];
        assert_eq!(IndexSearch::reference(&corpus, (1, 2)), vec![(0, 0), (0, 3)]);
        assert_eq!(IndexSearch::reference(&corpus, (3, 1)), vec![(0, 2)]);
        assert!(IndexSearch::reference(&corpus, (3, 3)).is_empty());
    }
}
