//! # microbench — the UPMEM demo applications used by §5.3
//!
//! Two microbenchmarks ship with the UPMEM SDK and anchor the paper's
//! sensitivity analyses:
//!
//! * [`checksum`] — the host generates a file of a given size and every
//!   DPU computes its checksum over the *same* data (no partitioning).
//!   Each run performs one `write-to-rank`, one `read-from-rank` per DPU,
//!   and 8 000–28 000 CI operations depending on run time (§5.3.1). Used
//!   for Fig. 9 (vCPUs / DPUs / transfer-size sensitivity), Fig. 11–13
//!   (Rust vs C data path) and Fig. 15/16 (parallel multi-rank handling).
//! * [`index_search`] — scans an inverted index of a Wikipedia-like corpus
//!   for phrase queries, 445 queries over 4 305 documents in batches of
//!   128 (§5.3.2, Fig. 10). The corpus here is synthetic (the real
//!   Wikipedia subset is not redistributable) with matching shape.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod index_search;

pub use checksum::{Checksum, ChecksumRun};
pub use index_search::{IndexSearch, IndexSearchParams, SearchRun};

/// Converts `u32`s to little-endian bytes.
#[must_use]
pub fn u32s_to_bytes_local(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Converts little-endian bytes to `u32`s.
#[must_use]
pub fn bytes_to_u32s_local(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect()
}
