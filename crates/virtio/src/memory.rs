//! Guest physical memory.
//!
//! Firecracker maps the VM's RAM into its own address space, so any guest
//! physical address (GPA) the frontend puts in a virtqueue can be turned
//! into a host virtual address (HVA) and accessed without copying — the
//! zero-copy pillar of vPIM (§4.1/§4.2). In safe Rust we model an HVA as a
//! scoped view: [`GuestMemory::with_slice`]/[`GuestMemory::with_slice_mut`] hand the
//! backend a borrowed window of guest RAM, which is exactly the capability
//! an mmap'ed HVA provides.
//!
//! The crate also provides a page allocator used by the simulated guest
//! userspace to place application buffers (the pages whose GPAs the
//! frontend serializes into the transfer matrix).

use std::collections::BTreeSet;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use simkit::{FaultPlane, InjectCell};

use crate::error::VirtioError;

/// Page size of the simulated guest (standard 4 KiB).
pub const PAGE_SIZE: u64 = 4096;

/// The fault point consulted on every scoped data access
/// ([`GuestMemory::with_slice`] and friends): firing raises a transient
/// [`VirtioError::Eio`]. The raw/typed accessors (`read`/`write`/`read_u16`
/// …) are deliberately *not* instrumented — they carry virtqueue ring
/// bookkeeping, which a transient data-path EIO must never tear.
pub const MEM_EIO_POINT: &str = "virtio.mem.eio";

/// A guest physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gpa(pub u64);

impl Gpa {
    /// Byte offset addition.
    #[must_use]
    pub fn add(self, off: u64) -> Gpa {
        Gpa(self.0 + off)
    }

    /// The page this address belongs to.
    #[must_use]
    pub fn page(self) -> u64 {
        self.0 / PAGE_SIZE
    }
}

#[derive(Debug)]
struct Inner {
    ram: RwLock<Vec<u8>>,
    allocator: Mutex<PageAllocator>,
    /// Late-bound fault plane; empty (pure passthrough) until a system
    /// with injection enabled installs its plane.
    inject: InjectCell,
}

/// A per-request GPA→HVA segment cache.
///
/// A transfer matrix names many pages, and most of a request's accesses
/// land in the page-aligned extent the previous access already validated.
/// The cache remembers one such extent (`[lo, hi)`, page-aligned, clamped
/// to RAM) so repeated same-segment descriptors skip the bounds re-check —
/// the moral equivalent of caching one GPA→HVA translation.
///
/// Staleness cannot occur: guest RAM is allocated once at
/// [`GuestMemory::new`] and never grows, shrinks, or moves, so an extent
/// that was in bounds stays in bounds for the memory's lifetime. The cache
/// is plain request-local state (`Copy`, no locks) — create one per
/// request or per worker, never share across memories.
#[derive(Debug, Clone, Copy, Default)]
pub struct SegCache {
    /// Validated extent start (inclusive, page-aligned).
    lo: u64,
    /// Validated extent end (exclusive, page-aligned or RAM end).
    hi: u64,
    hits: u64,
    misses: u64,
}

impl SegCache {
    /// An empty cache (covers nothing).
    #[must_use]
    pub fn new() -> Self {
        SegCache::default()
    }

    /// Whether `[gpa, gpa+len)` lies inside the validated extent.
    /// Zero-length accesses never hit: they carry boundary semantics the
    /// full check must see.
    fn covers(&self, gpa: Gpa, len: u64) -> bool {
        len > 0
            && gpa.0 >= self.lo
            && gpa.0.checked_add(len).is_some_and(|end| end <= self.hi)
    }

    /// Bounds checks satisfied from the cached extent.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Bounds checks that went through the full range check.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[derive(Debug)]
struct PageAllocator {
    /// Free page indices within the allocatable range.
    free: BTreeSet<u64>,
    total: u64,
}

/// The VM's physical address space.
///
/// Cheaply cloneable (`Arc` inside); the guest driver, the device model and
/// the VMM all share the same memory, as in a real VMM process.
#[derive(Debug, Clone)]
pub struct GuestMemory {
    inner: Arc<Inner>,
}

impl GuestMemory {
    /// Creates `size` bytes of guest RAM starting at GPA 0 (rounded up to a
    /// whole number of pages).
    #[must_use]
    pub fn new(size: u64) -> Self {
        let pages = size.div_ceil(PAGE_SIZE);
        let bytes = pages * PAGE_SIZE;
        GuestMemory {
            inner: Arc::new(Inner {
                ram: RwLock::new(vec![0u8; bytes as usize]),
                allocator: Mutex::new(PageAllocator {
                    free: (0..pages).collect(),
                    total: pages,
                }),
                inject: InjectCell::new(),
            }),
        }
    }

    /// Total bytes of guest RAM.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.inner.ram.read().len() as u64
    }

    /// Free pages currently available to the allocator.
    #[must_use]
    pub fn free_pages(&self) -> usize {
        self.inner.allocator.lock().free.len()
    }

    /// Installs the fault-injection plane: every clone of this memory
    /// starts consulting [`MEM_EIO_POINT`] on scoped data accesses.
    pub fn install_fault_plane(&self, plane: Arc<FaultPlane>) {
        self.inner.inject.install(plane);
    }

    fn injected_eio(&self) -> Result<(), VirtioError> {
        if self.inner.inject.hit(MEM_EIO_POINT) {
            Err(VirtioError::Eio { point: MEM_EIO_POINT })
        } else {
            Ok(())
        }
    }

    fn check(&self, gpa: Gpa, len: u64) -> Result<(), VirtioError> {
        let size = self.size();
        // `gpa.0 < size` also rejects zero-length accesses at (or past) the
        // exact end-of-RAM boundary: no byte of `[gpa, gpa+len)` is backed
        // by RAM there, and `with_slice` must never vend a view anchored
        // outside the mapping.
        match gpa.0.checked_add(len) {
            Some(end) if end <= size && gpa.0 < size => Ok(()),
            _ => Err(VirtioError::OutOfBounds { gpa, len }),
        }
    }

    /// Copies bytes into guest memory at `gpa`.
    ///
    /// # Errors
    ///
    /// [`VirtioError::OutOfBounds`] if the range exceeds guest RAM.
    pub fn write(&self, gpa: Gpa, data: &[u8]) -> Result<(), VirtioError> {
        self.check(gpa, data.len() as u64)?;
        let mut ram = self.inner.ram.write();
        ram[gpa.0 as usize..gpa.0 as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Copies bytes out of guest memory at `gpa`.
    ///
    /// # Errors
    ///
    /// [`VirtioError::OutOfBounds`] if the range exceeds guest RAM.
    pub fn read(&self, gpa: Gpa, dst: &mut [u8]) -> Result<(), VirtioError> {
        self.check(gpa, dst.len() as u64)?;
        let ram = self.inner.ram.read();
        dst.copy_from_slice(&ram[gpa.0 as usize..gpa.0 as usize + dst.len()]);
        Ok(())
    }

    /// Writes a little-endian `u16` (virtqueue ring fields).
    ///
    /// # Errors
    ///
    /// [`VirtioError::OutOfBounds`] if the range exceeds guest RAM.
    pub fn write_u16(&self, gpa: Gpa, v: u16) -> Result<(), VirtioError> {
        self.write(gpa, &v.to_le_bytes())
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`VirtioError::OutOfBounds`] if the range exceeds guest RAM.
    pub fn read_u16(&self, gpa: Gpa) -> Result<u16, VirtioError> {
        let mut b = [0u8; 2];
        self.read(gpa, &mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`VirtioError::OutOfBounds`] if the range exceeds guest RAM.
    pub fn write_u32(&self, gpa: Gpa, v: u32) -> Result<(), VirtioError> {
        self.write(gpa, &v.to_le_bytes())
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`VirtioError::OutOfBounds`] if the range exceeds guest RAM.
    pub fn read_u32(&self, gpa: Gpa) -> Result<u32, VirtioError> {
        let mut b = [0u8; 4];
        self.read(gpa, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`VirtioError::OutOfBounds`] if the range exceeds guest RAM.
    pub fn write_u64(&self, gpa: Gpa, v: u64) -> Result<(), VirtioError> {
        self.write(gpa, &v.to_le_bytes())
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`VirtioError::OutOfBounds`] if the range exceeds guest RAM.
    pub fn read_u64(&self, gpa: Gpa) -> Result<u64, VirtioError> {
        let mut b = [0u8; 8];
        self.read(gpa, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// GPA→HVA access: runs `f` over a borrowed view of guest RAM — the
    /// zero-copy window an mmap'ed HVA gives Firecracker.
    ///
    /// # Errors
    ///
    /// [`VirtioError::OutOfBounds`] if the range exceeds guest RAM.
    pub fn with_slice<T>(
        &self,
        gpa: Gpa,
        len: u64,
        f: impl FnOnce(&[u8]) -> T,
    ) -> Result<T, VirtioError> {
        self.injected_eio()?;
        self.check(gpa, len)?;
        let ram = self.inner.ram.read();
        Ok(f(&ram[gpa.0 as usize..(gpa.0 + len) as usize]))
    }

    /// Mutable GPA→HVA access.
    ///
    /// # Errors
    ///
    /// [`VirtioError::OutOfBounds`] if the range exceeds guest RAM.
    pub fn with_slice_mut<T>(
        &self,
        gpa: Gpa,
        len: u64,
        f: impl FnOnce(&mut [u8]) -> T,
    ) -> Result<T, VirtioError> {
        self.injected_eio()?;
        self.check(gpa, len)?;
        let mut ram = self.inner.ram.write();
        Ok(f(&mut ram[gpa.0 as usize..(gpa.0 + len) as usize]))
    }

    /// [`check`](Self::check) through a [`SegCache`]: a range inside the
    /// cache's validated extent skips the full bounds check; a miss
    /// validates normally and admits the surrounding page-aligned extent.
    ///
    /// # Errors
    ///
    /// [`VirtioError::OutOfBounds`] if the range exceeds guest RAM.
    pub fn check_cached(&self, cache: &mut SegCache, gpa: Gpa, len: u64) -> Result<(), VirtioError> {
        if cache.covers(gpa, len) {
            cache.hits += 1;
            return Ok(());
        }
        self.check(gpa, len)?;
        cache.misses += 1;
        if len > 0 {
            cache.lo = (gpa.0 / PAGE_SIZE) * PAGE_SIZE;
            cache.hi = (gpa.0 + len).div_ceil(PAGE_SIZE).saturating_mul(PAGE_SIZE).min(self.size());
        }
        Ok(())
    }

    /// [`with_slice`](Self::with_slice) with the bounds check served from a
    /// [`SegCache`] — the zero-copy read window of the pooled data path.
    ///
    /// # Errors
    ///
    /// [`VirtioError::OutOfBounds`] if the range exceeds guest RAM.
    pub fn with_slice_cached<T>(
        &self,
        cache: &mut SegCache,
        gpa: Gpa,
        len: u64,
        f: impl FnOnce(&[u8]) -> T,
    ) -> Result<T, VirtioError> {
        self.injected_eio()?;
        self.check_cached(cache, gpa, len)?;
        let ram = self.inner.ram.read();
        Ok(f(&ram[gpa.0 as usize..(gpa.0 + len) as usize]))
    }

    /// Mutable [`with_slice_cached`](Self::with_slice_cached).
    ///
    /// # Errors
    ///
    /// [`VirtioError::OutOfBounds`] if the range exceeds guest RAM.
    pub fn with_slice_mut_cached<T>(
        &self,
        cache: &mut SegCache,
        gpa: Gpa,
        len: u64,
        f: impl FnOnce(&mut [u8]) -> T,
    ) -> Result<T, VirtioError> {
        self.injected_eio()?;
        self.check_cached(cache, gpa, len)?;
        let mut ram = self.inner.ram.write();
        Ok(f(&mut ram[gpa.0 as usize..(gpa.0 + len) as usize]))
    }

    /// Allocates `n` guest pages (not necessarily contiguous), returning
    /// their base GPAs. Used by the simulated guest userspace for
    /// application buffers.
    ///
    /// # Errors
    ///
    /// [`VirtioError::OutOfPages`] if fewer than `n` pages are free.
    pub fn alloc_pages(&self, n: usize) -> Result<Vec<Gpa>, VirtioError> {
        let mut alloc = self.inner.allocator.lock();
        if alloc.free.len() < n {
            return Err(VirtioError::OutOfPages { requested: n, free: alloc.free.len() });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let page = *alloc.free.iter().next().expect("checked non-empty");
            alloc.free.remove(&page);
            out.push(Gpa(page * PAGE_SIZE));
        }
        Ok(out)
    }

    /// Allocates `n` *contiguous* pages and returns the base GPA (queue
    /// rings need contiguity).
    ///
    /// # Errors
    ///
    /// [`VirtioError::OutOfPages`] if no contiguous run of `n` pages exists.
    pub fn alloc_contiguous(&self, n: usize) -> Result<Gpa, VirtioError> {
        let mut alloc = self.inner.allocator.lock();
        let free: Vec<u64> = alloc.free.iter().copied().collect();
        let mut run_start = 0usize;
        let mut run_len = 0usize;
        for (i, &p) in free.iter().enumerate() {
            if run_len == 0 || p == free[i - 1] + 1 {
                if run_len == 0 {
                    run_start = i;
                }
                run_len += 1;
                if run_len == n {
                    let pages: Vec<u64> = free[run_start..=i].to_vec();
                    for p in &pages {
                        alloc.free.remove(p);
                    }
                    return Ok(Gpa(pages[0] * PAGE_SIZE));
                }
            } else {
                run_start = i;
                run_len = 1;
                if run_len == n {
                    alloc.free.remove(&p);
                    return Ok(Gpa(p * PAGE_SIZE));
                }
            }
        }
        Err(VirtioError::OutOfPages { requested: n, free: alloc.free.len() })
    }

    /// Returns pages to the allocator.
    ///
    /// # Errors
    ///
    /// [`VirtioError::BadFree`] when freeing a page that is not allocated
    /// (double free) or not page aligned.
    pub fn free_pages_back(&self, pages: &[Gpa]) -> Result<(), VirtioError> {
        let mut alloc = self.inner.allocator.lock();
        for gpa in pages {
            if gpa.0 % PAGE_SIZE != 0 {
                return Err(VirtioError::BadFree(*gpa));
            }
            let idx = gpa.page();
            if idx >= alloc.total || !alloc.free.insert(idx) {
                return Err(VirtioError::BadFree(*gpa));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn read_write_roundtrip() {
        let mem = GuestMemory::new(64 << 10);
        mem.write(Gpa(100), b"hello world").unwrap();
        let mut buf = [0u8; 11];
        mem.read(Gpa(100), &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn bounds_checked() {
        let mem = GuestMemory::new(PAGE_SIZE);
        assert!(mem.write(Gpa(PAGE_SIZE - 1), &[0, 0]).is_err());
        assert!(mem.write(Gpa(u64::MAX), &[0]).is_err());
        let mut b = [0u8];
        assert!(mem.read(Gpa(PAGE_SIZE), &mut b).is_err());
    }

    #[test]
    fn zero_length_rejected_at_and_past_end_of_ram() {
        let mem = GuestMemory::new(PAGE_SIZE);
        // In-bounds zero-length accesses are fine…
        assert!(mem.write(Gpa(0), &[]).is_ok());
        assert!(mem.read(Gpa(PAGE_SIZE - 1), &mut []).is_ok());
        assert!(mem.with_slice(Gpa(123), 0, |s| s.len()).is_ok());
        // …but at the exact end-of-RAM boundary (or past it) no byte of the
        // range is backed, so every accessor must reject — including len 0.
        assert!(mem.write(Gpa(PAGE_SIZE), &[]).is_err());
        assert!(mem.read(Gpa(PAGE_SIZE), &mut []).is_err());
        assert!(mem.with_slice(Gpa(PAGE_SIZE), 0, |_| ()).is_err());
        assert!(mem.with_slice_mut(Gpa(PAGE_SIZE), 0, |_| ()).is_err());
        assert!(mem.with_slice(Gpa(PAGE_SIZE + 1), 0, |_| ()).is_err());
        // Overflowing gpa+len is rejected, not wrapped.
        assert!(mem.with_slice(Gpa(u64::MAX), 2, |_| ()).is_err());
        let mut cache = SegCache::new();
        assert!(mem.check_cached(&mut cache, Gpa(PAGE_SIZE), 0).is_err());
    }

    #[test]
    fn seg_cache_skips_rechecks_within_extent() {
        let mem = GuestMemory::new(4 * PAGE_SIZE);
        let mut cache = SegCache::new();
        mem.write(Gpa(128), &[7u8; 16]).unwrap();
        // First access misses and admits the page; the rest of the page hits.
        for off in (0u64..PAGE_SIZE).step_by(64) {
            let v = mem.with_slice_cached(&mut cache, Gpa(off), 16, |s| s[0]).unwrap();
            if off == 128 {
                assert_eq!(v, 7);
            }
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), PAGE_SIZE / 64 - 1);
        // Leaving the extent re-validates and re-admits.
        mem.with_slice_cached(&mut cache, Gpa(3 * PAGE_SIZE), 8, |_| ()).unwrap();
        assert_eq!(cache.misses(), 2);
        // Out-of-bounds stays rejected no matter what the cache holds.
        assert!(mem.with_slice_cached(&mut cache, Gpa(4 * PAGE_SIZE - 4), 8, |_| ()).is_err());
        // Mutations through the cached window land in RAM.
        mem.with_slice_mut_cached(&mut cache, Gpa(100), 4, |s| s.fill(9)).unwrap();
        let mut back = [0u8; 4];
        mem.read(Gpa(100), &mut back).unwrap();
        assert_eq!(back, [9u8; 4]);
    }

    #[test]
    fn seg_cache_spanning_ranges_clamp_to_ram_end() {
        let mem = GuestMemory::new(2 * PAGE_SIZE);
        let mut cache = SegCache::new();
        // A range ending exactly at RAM end admits an extent clamped there…
        mem.check_cached(&mut cache, Gpa(PAGE_SIZE + 8), PAGE_SIZE - 8).unwrap();
        assert_eq!(cache.misses(), 1);
        // …whose interior hits…
        mem.check_cached(&mut cache, Gpa(2 * PAGE_SIZE - 64), 64).unwrap();
        assert_eq!(cache.hits(), 1);
        // …but one byte past still fails.
        assert!(mem.check_cached(&mut cache, Gpa(2 * PAGE_SIZE - 63), 64).is_err());
    }

    #[test]
    fn typed_accessors() {
        let mem = GuestMemory::new(PAGE_SIZE);
        mem.write_u16(Gpa(0), 0xBEEF).unwrap();
        assert_eq!(mem.read_u16(Gpa(0)).unwrap(), 0xBEEF);
        mem.write_u32(Gpa(8), 0xDEAD_BEEF).unwrap();
        assert_eq!(mem.read_u32(Gpa(8)).unwrap(), 0xDEAD_BEEF);
        mem.write_u64(Gpa(16), u64::MAX - 1).unwrap();
        assert_eq!(mem.read_u64(Gpa(16)).unwrap(), u64::MAX - 1);
    }

    #[test]
    fn with_slice_views() {
        let mem = GuestMemory::new(PAGE_SIZE);
        mem.write(Gpa(0), &[1, 2, 3, 4]).unwrap();
        let sum = mem
            .with_slice(Gpa(0), 4, |s| s.iter().map(|b| u32::from(*b)).sum::<u32>())
            .unwrap();
        assert_eq!(sum, 10);
        mem.with_slice_mut(Gpa(0), 4, |s| s.reverse()).unwrap();
        let mut buf = [0u8; 4];
        mem.read(Gpa(0), &mut buf).unwrap();
        assert_eq!(buf, [4, 3, 2, 1]);
    }

    #[test]
    fn page_allocator_alloc_free() {
        let mem = GuestMemory::new(8 * PAGE_SIZE);
        let pages = mem.alloc_pages(8).unwrap();
        assert_eq!(pages.len(), 8);
        assert_eq!(mem.free_pages(), 0);
        assert!(mem.alloc_pages(1).is_err());
        mem.free_pages_back(&pages).unwrap();
        assert_eq!(mem.free_pages(), 8);
    }

    #[test]
    fn double_free_detected() {
        let mem = GuestMemory::new(4 * PAGE_SIZE);
        let pages = mem.alloc_pages(1).unwrap();
        mem.free_pages_back(&pages).unwrap();
        assert!(matches!(mem.free_pages_back(&pages), Err(VirtioError::BadFree(_))));
        assert!(mem.free_pages_back(&[Gpa(3)]).is_err()); // unaligned
    }

    #[test]
    fn contiguous_allocation() {
        let mem = GuestMemory::new(8 * PAGE_SIZE);
        // Fragment: take pages 0..8, free 2,3,4.
        let all = mem.alloc_pages(8).unwrap();
        mem.free_pages_back(&[all[2], all[3], all[4]]).unwrap();
        let base = mem.alloc_contiguous(3).unwrap();
        assert_eq!(base.page(), all[2].page());
        assert!(mem.alloc_contiguous(1).is_err());
    }

    #[test]
    fn injected_eio_is_transient_and_scoped_to_data_accesses() {
        use simkit::{FaultPlan, FaultPlane};
        let mem = GuestMemory::new(4 * PAGE_SIZE);
        let plane = Arc::new(FaultPlane::new(1));
        plane.arm(MEM_EIO_POINT, FaultPlan::Nth(1));
        mem.install_fault_plane(plane.clone());
        // The first scoped access fires a typed transient EIO…
        assert!(matches!(
            mem.with_slice(Gpa(0), 4, |_| ()),
            Err(VirtioError::Eio { point: MEM_EIO_POINT })
        ));
        // …and the retry goes through untouched (Nth(1) is spent).
        assert!(mem.with_slice(Gpa(0), 4, |_| ()).is_ok());
        // Ring bookkeeping accessors are never instrumented: even with the
        // point firing on every hit, raw reads/writes stay clean.
        plane.arm(MEM_EIO_POINT, FaultPlan::EveryK(1));
        assert!(mem.write(Gpa(0), &[1, 2, 3]).is_ok());
        let mut b = [0u8; 3];
        assert!(mem.read(Gpa(0), &mut b).is_ok());
        assert!(mem.write_u16(Gpa(8), 7).is_ok());
        let mut cache = SegCache::new();
        assert!(matches!(
            mem.with_slice_cached(&mut cache, Gpa(0), 2, |_| ()),
            Err(VirtioError::Eio { .. })
        ));
        assert!(matches!(
            mem.with_slice_mut_cached(&mut cache, Gpa(0), 2, |_| ()),
            Err(VirtioError::Eio { .. })
        ));
        // Clones share the installed plane.
        let clone = mem.clone();
        assert!(clone.with_slice(Gpa(0), 1, |_| ()).is_err());
    }

    proptest! {
        /// Allocator never hands out the same page twice while held.
        #[test]
        fn allocator_uniqueness(takes in proptest::collection::vec(1usize..4, 1..8)) {
            let mem = GuestMemory::new(64 * PAGE_SIZE);
            let mut held: Vec<Gpa> = Vec::new();
            for n in takes {
                if let Ok(mut pages) = mem.alloc_pages(n) {
                    held.append(&mut pages);
                }
            }
            let mut sorted: Vec<u64> = held.iter().map(|g| g.0).collect();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), held.len());
        }
    }
}
