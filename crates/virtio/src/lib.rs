//! # pim-virtio — the virtio substrate vPIM builds on
//!
//! vPIM para-virtualizes UPMEM by defining a new virtio device type
//! (device id 42, Appendix A.1 of the paper) with two queues: `transferq`
//! (512 slots, carries rank operations and serialized transfer matrices)
//! and `controlq` (manager synchronization). This crate provides the
//! substrate pieces Firecracker would normally supply:
//!
//! * [`GuestMemory`] — the VM's physical address space, with a page
//!   allocator and GPA→host translation ([`memory`]);
//! * [`queue`] — a faithful split virtqueue (descriptor table + avail/used
//!   rings living *inside guest memory*), with a driver-side and a
//!   device-side view;
//! * [`mmio`] — the MMIO register block a virtio-mmio transport exposes;
//! * [`irq`] — the interrupt line a device asserts to complete requests.
//!
//! ## Example
//!
//! ```
//! use pim_virtio::{GuestMemory, queue::{QueueLayout, DriverQueue, DeviceQueue}};
//!
//! let mem = GuestMemory::new(1 << 20);
//! let layout = QueueLayout::alloc(&mem, 8).unwrap();
//! let mut driver = DriverQueue::new(mem.clone(), layout.clone());
//! let mut device = DeviceQueue::new(mem.clone(), layout);
//!
//! let buf = mem.alloc_pages(1).unwrap()[0];
//! mem.write(buf, b"ping").unwrap();
//! let head = driver.add_chain(&[(buf, 4, false)]).unwrap();
//! let chain = device.pop().unwrap().unwrap();
//! assert_eq!(chain.head, head);
//! device.push_used(chain.head, 0).unwrap();
//! assert_eq!(driver.poll_used().unwrap(), Some((head, 0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod irq;
pub mod memory;
pub mod mmio;
pub mod queue;

pub use error::VirtioError;
pub use irq::{IrqLine, IRQ_DELAY_POINT};
pub use memory::{Gpa, GuestMemory, SegCache, MEM_EIO_POINT};
