//! The device interrupt line.
//!
//! When the backend finishes an operation it injects an IRQ to wake the
//! guest driver (§4.2, "the thread injects the IRQ to notify the guest
//! driver to resume execution"). We model the line as a counting event with
//! blocking waiters; the *cost* of an injection is charged by the caller
//! via [`simkit::CostModel::irq_inject_ns`].

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use simkit::{Counter, FaultPlane, InjectCell};

/// The fault point consulted by [`IrqLine::assert_irq`]: firing *delays*
/// the interrupt — the pending count still rises (the completion is real),
/// but no waiter is woken. A sleeping driver recovers transparently on its
/// next wait-slice timeout, which re-examines the pending count.
pub const IRQ_DELAY_POINT: &str = "virtio.irq.delay";

/// A level of pending interrupts plus waiters.
#[derive(Debug, Default)]
struct Line {
    pending: Mutex<u64>,
    cv: Condvar,
    inject: InjectCell,
}

/// A shared interrupt line between a device (asserts) and a driver (waits).
///
/// # Example
///
/// ```
/// use pim_virtio::IrqLine;
///
/// let irq = IrqLine::new(11);
/// irq.assert_irq();
/// assert!(irq.try_take());
/// assert!(!irq.try_take());
/// ```
#[derive(Debug, Clone)]
pub struct IrqLine {
    line: Arc<Line>,
    number: u32,
    injections: Counter,
}

impl IrqLine {
    /// Creates line `number` (the GSI advertised on the kernel cmdline).
    #[must_use]
    pub fn new(number: u32) -> Self {
        Self::with_counter(number, Counter::new())
    }

    /// Creates line `number` recording injections into an existing cell —
    /// pass a registry-owned counter (e.g. `virtio.irq.injections`) so
    /// several lines aggregate into one metric.
    #[must_use]
    pub fn with_counter(number: u32, injections: Counter) -> Self {
        IrqLine {
            line: Arc::new(Line::default()),
            number,
            injections,
        }
    }

    /// The interrupt number.
    #[must_use]
    pub fn number(&self) -> u32 {
        self.number
    }

    /// Total injections so far (telemetry for the figure harness).
    #[must_use]
    pub fn injections(&self) -> u64 {
        self.injections.get()
    }

    /// The counter cell behind [`injections`](Self::injections); clones of
    /// this line share it, so it can be bound into a `MetricsRegistry`
    /// (e.g. as `virtio.irq.injections`).
    #[must_use]
    pub fn injection_counter(&self) -> &Counter {
        &self.injections
    }

    /// Installs the fault-injection plane shared by every clone of this
    /// line; [`assert_irq`](Self::assert_irq) then consults
    /// [`IRQ_DELAY_POINT`].
    pub fn install_fault_plane(&self, plane: Arc<FaultPlane>) {
        self.line.inject.install(plane);
    }

    /// Device side: assert the line (one completion). If the
    /// [`IRQ_DELAY_POINT`] fault fires, the interrupt is *delayed*: it is
    /// counted and left pending, but waiters are not woken until their
    /// next timeout slice (or a later assert/nudge).
    pub fn assert_irq(&self) {
        self.injections.inc();
        let mut p = self.line.pending.lock();
        *p += 1;
        drop(p);
        if self.line.inject.hit(IRQ_DELAY_POINT) {
            return;
        }
        self.line.cv.notify_all();
    }

    /// Wakes every blocked waiter without asserting (or counting) an
    /// interrupt. Used by drivers that multiplex one line across several
    /// waiting threads: whoever consumes the interrupt and drains the used
    /// ring nudges the line so the *owners* of the drained completions
    /// re-check their state instead of sleeping on a count that was
    /// consumed on their behalf.
    pub fn nudge(&self) {
        self.line.cv.notify_all();
    }

    /// Driver side: consume one pending interrupt if any.
    #[must_use]
    pub fn try_take(&self) -> bool {
        let mut p = self.line.pending.lock();
        if *p > 0 {
            *p -= 1;
            true
        } else {
            false
        }
    }

    /// Driver side: block until an interrupt arrives or `timeout` passes.
    /// Returns `true` if an interrupt was consumed.
    #[must_use]
    pub fn wait(&self, timeout: Duration) -> bool {
        let mut p = self.line.pending.lock();
        if *p == 0 {
            let _ = self.line.cv.wait_for(&mut p, timeout);
        }
        if *p > 0 {
            *p -= 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn assert_then_take() {
        let irq = IrqLine::new(5);
        assert!(!irq.try_take());
        irq.assert_irq();
        irq.assert_irq();
        assert_eq!(irq.injections(), 2);
        assert!(irq.try_take());
        assert!(irq.try_take());
        assert!(!irq.try_take());
    }

    #[test]
    fn waiter_wakes_on_injection() {
        let irq = IrqLine::new(7);
        let waiter = {
            let irq = irq.clone();
            thread::spawn(move || irq.wait(Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(10));
        irq.assert_irq();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_times_out() {
        let irq = IrqLine::new(9);
        assert!(!irq.wait(Duration::from_millis(5)));
    }

    #[test]
    fn delayed_irq_is_pending_but_silent() {
        use simkit::{FaultPlan, FaultPlane};
        let irq = IrqLine::new(4);
        let plane = Arc::new(FaultPlane::new(0));
        plane.arm(IRQ_DELAY_POINT, FaultPlan::Nth(1));
        irq.install_fault_plane(plane);
        // The delayed assert still counts and still leaves one pending…
        irq.assert_irq();
        assert_eq!(irq.injections(), 1);
        // …so a waiter's timeout slice transparently recovers it.
        assert!(irq.wait(Duration::from_millis(5)));
        // Subsequent asserts (Nth(1) spent) notify normally.
        let waiter = {
            let irq = irq.clone();
            thread::spawn(move || irq.wait(Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(10));
        irq.assert_irq();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn clones_share_state() {
        let a = IrqLine::new(1);
        let b = a.clone();
        a.assert_irq();
        assert!(b.try_take());
        assert_eq!(b.injections(), 1);
    }
}
