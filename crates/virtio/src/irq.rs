//! The device interrupt line.
//!
//! When the backend finishes an operation it injects an IRQ to wake the
//! guest driver (§4.2, "the thread injects the IRQ to notify the guest
//! driver to resume execution"). We model the line as a counting event with
//! blocking waiters; the *cost* of an injection is charged by the caller
//! via [`simkit::CostModel::irq_inject_ns`].

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use simkit::Counter;

/// A level of pending interrupts plus waiters.
#[derive(Debug, Default)]
struct Line {
    pending: Mutex<u64>,
    cv: Condvar,
}

/// A shared interrupt line between a device (asserts) and a driver (waits).
///
/// # Example
///
/// ```
/// use pim_virtio::IrqLine;
///
/// let irq = IrqLine::new(11);
/// irq.assert_irq();
/// assert!(irq.try_take());
/// assert!(!irq.try_take());
/// ```
#[derive(Debug, Clone)]
pub struct IrqLine {
    line: Arc<Line>,
    number: u32,
    injections: Counter,
}

impl IrqLine {
    /// Creates line `number` (the GSI advertised on the kernel cmdline).
    #[must_use]
    pub fn new(number: u32) -> Self {
        Self::with_counter(number, Counter::new())
    }

    /// Creates line `number` recording injections into an existing cell —
    /// pass a registry-owned counter (e.g. `virtio.irq.injections`) so
    /// several lines aggregate into one metric.
    #[must_use]
    pub fn with_counter(number: u32, injections: Counter) -> Self {
        IrqLine {
            line: Arc::new(Line::default()),
            number,
            injections,
        }
    }

    /// The interrupt number.
    #[must_use]
    pub fn number(&self) -> u32 {
        self.number
    }

    /// Total injections so far (telemetry for the figure harness).
    #[must_use]
    pub fn injections(&self) -> u64 {
        self.injections.get()
    }

    /// The counter cell behind [`injections`](Self::injections); clones of
    /// this line share it, so it can be bound into a `MetricsRegistry`
    /// (e.g. as `virtio.irq.injections`).
    #[must_use]
    pub fn injection_counter(&self) -> &Counter {
        &self.injections
    }

    /// Device side: assert the line (one completion).
    pub fn assert_irq(&self) {
        self.injections.inc();
        let mut p = self.line.pending.lock();
        *p += 1;
        drop(p);
        self.line.cv.notify_all();
    }

    /// Wakes every blocked waiter without asserting (or counting) an
    /// interrupt. Used by drivers that multiplex one line across several
    /// waiting threads: whoever consumes the interrupt and drains the used
    /// ring nudges the line so the *owners* of the drained completions
    /// re-check their state instead of sleeping on a count that was
    /// consumed on their behalf.
    pub fn nudge(&self) {
        self.line.cv.notify_all();
    }

    /// Driver side: consume one pending interrupt if any.
    #[must_use]
    pub fn try_take(&self) -> bool {
        let mut p = self.line.pending.lock();
        if *p > 0 {
            *p -= 1;
            true
        } else {
            false
        }
    }

    /// Driver side: block until an interrupt arrives or `timeout` passes.
    /// Returns `true` if an interrupt was consumed.
    #[must_use]
    pub fn wait(&self, timeout: Duration) -> bool {
        let mut p = self.line.pending.lock();
        if *p == 0 {
            let _ = self.line.cv.wait_for(&mut p, timeout);
        }
        if *p > 0 {
            *p -= 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn assert_then_take() {
        let irq = IrqLine::new(5);
        assert!(!irq.try_take());
        irq.assert_irq();
        irq.assert_irq();
        assert_eq!(irq.injections(), 2);
        assert!(irq.try_take());
        assert!(irq.try_take());
        assert!(!irq.try_take());
    }

    #[test]
    fn waiter_wakes_on_injection() {
        let irq = IrqLine::new(7);
        let waiter = {
            let irq = irq.clone();
            thread::spawn(move || irq.wait(Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(10));
        irq.assert_irq();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_times_out() {
        let irq = IrqLine::new(9);
        assert!(!irq.wait(Duration::from_millis(5)));
    }

    #[test]
    fn clones_share_state() {
        let a = IrqLine::new(1);
        let b = a.clone();
        a.assert_irq();
        assert!(b.try_take());
        assert_eq!(b.injections(), 1);
    }
}
