//! The virtio-mmio transport register block.
//!
//! Firecracker advertises virtio devices to the guest via the kernel
//! command line (`virtio_mmio.device=<size>@<base>:<irq>`); the guest
//! driver then probes this register block to discover the device type,
//! negotiate features and configure queues (§3.2). We implement the
//! virtio-mmio v2 register set that flow touches, plus a device-specific
//! configuration space at offset `0x100` (the vPIM spec's "device
//! configuration layout": clock division, memory region size, number of
//! control interfaces, DPU frequency — Appendix A.1).

use parking_lot::Mutex;

use crate::error::VirtioError;

/// `"virt"` little-endian — the magic value at offset 0.
pub const MMIO_MAGIC: u32 = 0x7472_6976;
/// virtio-mmio version 2 (modern).
pub const MMIO_VERSION: u32 = 2;
/// The virtio device id vPIM registers for PIM devices (Appendix A.1).
pub const VIRTIO_ID_PIM: u32 = 42;

/// Register offsets (virtio-mmio v2).
#[allow(missing_docs)]
pub mod reg {
    pub const MAGIC_VALUE: u64 = 0x000;
    pub const VERSION: u64 = 0x004;
    pub const DEVICE_ID: u64 = 0x008;
    pub const VENDOR_ID: u64 = 0x00c;
    pub const DEVICE_FEATURES: u64 = 0x010;
    pub const DRIVER_FEATURES: u64 = 0x020;
    pub const QUEUE_SEL: u64 = 0x030;
    pub const QUEUE_NUM_MAX: u64 = 0x034;
    pub const QUEUE_NUM: u64 = 0x038;
    pub const QUEUE_READY: u64 = 0x044;
    pub const QUEUE_NOTIFY: u64 = 0x050;
    pub const INTERRUPT_STATUS: u64 = 0x060;
    pub const INTERRUPT_ACK: u64 = 0x064;
    pub const STATUS: u64 = 0x070;
    pub const QUEUE_DESC_LOW: u64 = 0x080;
    pub const QUEUE_DESC_HIGH: u64 = 0x084;
    pub const QUEUE_DRIVER_LOW: u64 = 0x090;
    pub const QUEUE_DRIVER_HIGH: u64 = 0x094;
    pub const QUEUE_DEVICE_LOW: u64 = 0x0a0;
    pub const QUEUE_DEVICE_HIGH: u64 = 0x0a4;
    pub const CONFIG: u64 = 0x100;
}

/// Device status bits written by the guest during initialization.
#[allow(missing_docs)]
pub mod status {
    pub const ACKNOWLEDGE: u32 = 1;
    pub const DRIVER: u32 = 2;
    pub const DRIVER_OK: u32 = 4;
    pub const FEATURES_OK: u32 = 8;
}

/// Per-queue transport state configured by the guest.
#[derive(Debug, Default, Clone, Copy)]
pub struct QueueTransport {
    /// Queue size selected by the driver.
    pub num: u32,
    /// Descriptor table GPA.
    pub desc: u64,
    /// Available ring GPA.
    pub driver_area: u64,
    /// Used ring GPA.
    pub device_area: u64,
    /// Whether the driver marked the queue ready.
    pub ready: bool,
}

#[derive(Debug)]
struct State {
    queue_sel: usize,
    queues: Vec<QueueTransport>,
    status: u32,
    driver_features: u32,
    interrupt_status: u32,
    notifications: Vec<u32>,
}

/// The MMIO register block of one virtio device.
#[derive(Debug)]
pub struct MmioBlock {
    device_id: u32,
    queue_num_max: u32,
    config: Vec<u8>,
    state: Mutex<State>,
}

impl MmioBlock {
    /// Creates a block for `device_id` with `num_queues` queues of at most
    /// `queue_num_max` descriptors and the given config space bytes.
    #[must_use]
    pub fn new(device_id: u32, num_queues: usize, queue_num_max: u32, config: Vec<u8>) -> Self {
        MmioBlock {
            device_id,
            queue_num_max,
            config,
            state: Mutex::new(State {
                queue_sel: 0,
                queues: vec![QueueTransport::default(); num_queues],
                status: 0,
                driver_features: 0,
                interrupt_status: 0,
                notifications: Vec::new(),
            }),
        }
    }

    /// Guest read of a register (or config space).
    ///
    /// # Errors
    ///
    /// [`VirtioError::BadRegister`] for unknown offsets.
    pub fn read(&self, offset: u64) -> Result<u32, VirtioError> {
        let st = self.state.lock();
        Ok(match offset {
            reg::MAGIC_VALUE => MMIO_MAGIC,
            reg::VERSION => MMIO_VERSION,
            reg::DEVICE_ID => self.device_id,
            reg::VENDOR_ID => 0x5049_4d56, // "VMPI"
            reg::DEVICE_FEATURES => 0,     // Appendix A.1: no feature bits
            reg::QUEUE_NUM_MAX => self.queue_num_max,
            reg::QUEUE_READY => {
                u32::from(st.queues.get(st.queue_sel).is_some_and(|q| q.ready))
            }
            reg::INTERRUPT_STATUS => st.interrupt_status,
            reg::STATUS => st.status,
            off if off >= reg::CONFIG => {
                let idx = (off - reg::CONFIG) as usize;
                if idx + 4 <= self.config.len() {
                    u32::from_le_bytes(self.config[idx..idx + 4].try_into().expect("4 bytes"))
                } else {
                    return Err(VirtioError::BadRegister(offset));
                }
            }
            _ => return Err(VirtioError::BadRegister(offset)),
        })
    }

    /// Guest write of a register.
    ///
    /// # Errors
    ///
    /// [`VirtioError::BadRegister`] for unknown or read-only offsets.
    pub fn write(&self, offset: u64, value: u32) -> Result<(), VirtioError> {
        let mut st = self.state.lock();
        match offset {
            reg::DRIVER_FEATURES => st.driver_features = value,
            reg::QUEUE_SEL => st.queue_sel = value as usize,
            reg::QUEUE_NUM => {
                let sel = st.queue_sel;
                if let Some(q) = st.queues.get_mut(sel) {
                    q.num = value;
                }
            }
            reg::QUEUE_READY => {
                let sel = st.queue_sel;
                if let Some(q) = st.queues.get_mut(sel) {
                    q.ready = value == 1;
                }
            }
            reg::QUEUE_NOTIFY => st.notifications.push(value),
            reg::INTERRUPT_ACK => st.interrupt_status &= !value,
            reg::STATUS => st.status = value,
            reg::QUEUE_DESC_LOW => {
                let sel = st.queue_sel;
                if let Some(q) = st.queues.get_mut(sel) {
                    q.desc = (q.desc & !0xffff_ffff) | u64::from(value);
                }
            }
            reg::QUEUE_DESC_HIGH => {
                let sel = st.queue_sel;
                if let Some(q) = st.queues.get_mut(sel) {
                    q.desc = (q.desc & 0xffff_ffff) | (u64::from(value) << 32);
                }
            }
            reg::QUEUE_DRIVER_LOW => {
                let sel = st.queue_sel;
                if let Some(q) = st.queues.get_mut(sel) {
                    q.driver_area = (q.driver_area & !0xffff_ffff) | u64::from(value);
                }
            }
            reg::QUEUE_DRIVER_HIGH => {
                let sel = st.queue_sel;
                if let Some(q) = st.queues.get_mut(sel) {
                    q.driver_area = (q.driver_area & 0xffff_ffff) | (u64::from(value) << 32);
                }
            }
            reg::QUEUE_DEVICE_LOW => {
                let sel = st.queue_sel;
                if let Some(q) = st.queues.get_mut(sel) {
                    q.device_area = (q.device_area & !0xffff_ffff) | u64::from(value);
                }
            }
            reg::QUEUE_DEVICE_HIGH => {
                let sel = st.queue_sel;
                if let Some(q) = st.queues.get_mut(sel) {
                    q.device_area = (q.device_area & 0xffff_ffff) | (u64::from(value) << 32);
                }
            }
            _ => return Err(VirtioError::BadRegister(offset)),
        }
        Ok(())
    }

    /// Device side: raise the used-buffer interrupt status bit.
    pub fn raise_interrupt(&self) {
        self.state.lock().interrupt_status |= 1;
    }

    /// Device side: snapshot of queue `i`'s transport configuration.
    #[must_use]
    pub fn queue(&self, i: usize) -> Option<QueueTransport> {
        self.state.lock().queues.get(i).copied()
    }

    /// Whether the driver completed initialization (`DRIVER_OK` set).
    #[must_use]
    pub fn driver_ok(&self) -> bool {
        self.state.lock().status & status::DRIVER_OK != 0
    }

    /// Drains queue-notify writes received so far (device side).
    #[must_use]
    pub fn take_notifications(&self) -> Vec<u32> {
        std::mem::take(&mut self.state.lock().notifications)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> MmioBlock {
        MmioBlock::new(VIRTIO_ID_PIM, 2, 512, vec![0u8; 32])
    }

    #[test]
    fn identity_registers() {
        let b = block();
        assert_eq!(b.read(reg::MAGIC_VALUE).unwrap(), MMIO_MAGIC);
        assert_eq!(b.read(reg::VERSION).unwrap(), 2);
        assert_eq!(b.read(reg::DEVICE_ID).unwrap(), 42);
        assert_eq!(b.read(reg::DEVICE_FEATURES).unwrap(), 0);
    }

    #[test]
    fn init_handshake() {
        let b = block();
        b.write(reg::STATUS, status::ACKNOWLEDGE).unwrap();
        b.write(reg::STATUS, status::ACKNOWLEDGE | status::DRIVER).unwrap();
        b.write(reg::DRIVER_FEATURES, 0).unwrap();
        b.write(
            reg::STATUS,
            status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK,
        )
        .unwrap();
        assert!(!b.driver_ok());
        b.write(
            reg::STATUS,
            status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK | status::DRIVER_OK,
        )
        .unwrap();
        assert!(b.driver_ok());
    }

    #[test]
    fn queue_configuration_is_per_selector() {
        let b = block();
        b.write(reg::QUEUE_SEL, 1).unwrap();
        b.write(reg::QUEUE_NUM, 256).unwrap();
        b.write(reg::QUEUE_DESC_LOW, 0x1000).unwrap();
        b.write(reg::QUEUE_DESC_HIGH, 0x1).unwrap();
        b.write(reg::QUEUE_READY, 1).unwrap();
        let q0 = b.queue(0).unwrap();
        let q1 = b.queue(1).unwrap();
        assert!(!q0.ready);
        assert!(q1.ready);
        assert_eq!(q1.num, 256);
        assert_eq!(q1.desc, 0x1_0000_1000);
    }

    #[test]
    fn notify_and_interrupt_flow() {
        let b = block();
        b.write(reg::QUEUE_NOTIFY, 0).unwrap();
        b.write(reg::QUEUE_NOTIFY, 1).unwrap();
        assert_eq!(b.take_notifications(), vec![0, 1]);
        assert_eq!(b.take_notifications(), Vec::<u32>::new());
        b.raise_interrupt();
        assert_eq!(b.read(reg::INTERRUPT_STATUS).unwrap(), 1);
        b.write(reg::INTERRUPT_ACK, 1).unwrap();
        assert_eq!(b.read(reg::INTERRUPT_STATUS).unwrap(), 0);
    }

    #[test]
    fn config_space_reads() {
        let mut cfg = vec![0u8; 8];
        cfg[0..4].copy_from_slice(&350u32.to_le_bytes());
        cfg[4..8].copy_from_slice(&64u32.to_le_bytes());
        let b = MmioBlock::new(VIRTIO_ID_PIM, 1, 512, cfg);
        assert_eq!(b.read(reg::CONFIG).unwrap(), 350);
        assert_eq!(b.read(reg::CONFIG + 4).unwrap(), 64);
        assert!(b.read(reg::CONFIG + 8).is_err());
    }

    #[test]
    fn unknown_register_is_error() {
        let b = block();
        assert!(b.read(0x0fc).is_err());
        assert!(b.write(reg::MAGIC_VALUE, 1).is_err());
    }
}
