//! Error type for the virtio substrate.

use core::fmt;

use simkit::{ErrorKind, HasErrorKind};

use crate::memory::Gpa;

/// Errors raised by guest memory or virtqueue handling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VirtioError {
    /// A guest-physical access fell outside guest memory.
    OutOfBounds {
        /// Faulting address.
        gpa: Gpa,
        /// Access length.
        len: u64,
    },
    /// The guest page allocator is exhausted.
    OutOfPages {
        /// Pages requested.
        requested: usize,
        /// Pages free.
        free: usize,
    },
    /// Freeing a page that is not allocated.
    BadFree(Gpa),
    /// No free descriptors for the requested chain.
    QueueFull,
    /// A descriptor chain is malformed (bad next pointer or a loop).
    BadDescriptor(u16),
    /// A chain longer than the queue size (loop guard).
    ChainTooLong,
    /// Queue size is not a power of two or exceeds the virtio maximum.
    BadQueueSize(u16),
    /// An MMIO access targeted an unknown register offset.
    BadRegister(u64),
    /// A transient I/O failure raised by the fault-injection plane on a
    /// guest-memory data access (the simulated analogue of a host `EIO`).
    /// Retrying the access is always safe.
    Eio {
        /// The fault point that fired (e.g. `virtio.mem.eio`).
        point: &'static str,
    },
}

impl fmt::Display for VirtioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VirtioError::OutOfBounds { gpa, len } => {
                write!(f, "guest access out of bounds: {gpa:?} + {len}")
            }
            VirtioError::OutOfPages { requested, free } => {
                write!(f, "guest page allocator exhausted: requested {requested}, free {free}")
            }
            VirtioError::BadFree(gpa) => write!(f, "freeing unallocated guest page {gpa:?}"),
            VirtioError::QueueFull => write!(f, "virtqueue has no free descriptors"),
            VirtioError::BadDescriptor(i) => write!(f, "malformed descriptor {i}"),
            VirtioError::ChainTooLong => write!(f, "descriptor chain exceeds queue size"),
            VirtioError::BadQueueSize(n) => write!(f, "invalid queue size {n}"),
            VirtioError::BadRegister(off) => write!(f, "unknown mmio register offset {off:#x}"),
            VirtioError::Eio { point } => {
                write!(f, "transient guest memory EIO (injected at {point})")
            }
        }
    }
}

impl std::error::Error for VirtioError {}

impl HasErrorKind for VirtioError {
    fn kind(&self) -> ErrorKind {
        match self {
            VirtioError::OutOfBounds { .. } => ErrorKind::OutOfBounds,
            VirtioError::OutOfPages { .. } | VirtioError::QueueFull => {
                ErrorKind::ResourceExhausted
            }
            VirtioError::BadFree(_) | VirtioError::BadQueueSize(_) => ErrorKind::InvalidInput,
            VirtioError::BadDescriptor(_)
            | VirtioError::ChainTooLong
            | VirtioError::BadRegister(_) => ErrorKind::Protocol,
            VirtioError::Eio { .. } => ErrorKind::Injected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = VirtioError::OutOfPages { requested: 4, free: 1 };
        assert!(e.to_string().contains("requested 4"));
    }

    #[test]
    fn kinds_classify_variants() {
        assert_eq!(
            VirtioError::OutOfBounds { gpa: Gpa(0), len: 8 }.kind(),
            ErrorKind::OutOfBounds
        );
        assert_eq!(VirtioError::QueueFull.kind(), ErrorKind::ResourceExhausted);
        assert_eq!(VirtioError::ChainTooLong.kind(), ErrorKind::Protocol);
    }

    #[test]
    fn error_is_send_sync() {
        fn f<T: Send + Sync>() {}
        f::<VirtioError>();
    }
}
