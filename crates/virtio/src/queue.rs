//! A split virtqueue, stored inside guest memory like the real thing.
//!
//! Layout (virtio 1.x "split" format):
//!
//! ```text
//! descriptor table: size × 16 bytes  { addr: u64, len: u32, flags: u16, next: u16 }
//! available ring:   4 + size × 2     { flags: u16, idx: u16, ring[size]: u16 }
//! used ring:        4 + size × 8     { flags: u16, idx: u16, ring[size]: {id: u32, len: u32} }
//! ```
//!
//! The guest driver owns the descriptor table and available ring; the
//! device owns the used ring. vPIM's `transferq` uses 512 slots so one
//! serialized transfer matrix (≤ 130 buffers, Fig. 7) always fits.

use crate::error::VirtioError;
use crate::memory::{Gpa, GuestMemory};

/// Descriptor flag: the chain continues at `next`.
pub const VIRTQ_DESC_F_NEXT: u16 = 1;
/// Descriptor flag: device writes to this buffer (guest reads it back).
pub const VIRTQ_DESC_F_WRITE: u16 = 2;

/// Queue size of vPIM's `transferq` (Appendix A.1: 512 slots).
pub const TRANSFERQ_SIZE: u16 = 512;

/// One descriptor as stored in the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// Guest physical address of the buffer.
    pub addr: Gpa,
    /// Buffer length.
    pub len: u32,
    /// `VIRTQ_DESC_F_*` flags.
    pub flags: u16,
    /// Next descriptor index when `NEXT` is set.
    pub next: u16,
}

impl Descriptor {
    /// Whether the device is expected to write this buffer.
    #[must_use]
    pub fn is_write_only(&self) -> bool {
        self.flags & VIRTQ_DESC_F_WRITE != 0
    }

    /// Whether the chain continues.
    #[must_use]
    pub fn has_next(&self) -> bool {
        self.flags & VIRTQ_DESC_F_NEXT != 0
    }
}

/// Addresses of a queue's three rings inside guest memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueLayout {
    /// Number of descriptors (power of two, ≤ 32768).
    pub size: u16,
    /// Descriptor table base.
    pub desc: Gpa,
    /// Available ring base.
    pub avail: Gpa,
    /// Used ring base.
    pub used: Gpa,
}

impl QueueLayout {
    /// Bytes needed for a queue of `size` descriptors.
    #[must_use]
    pub fn required_bytes(size: u16) -> u64 {
        let s = u64::from(size);
        16 * s + (4 + 2 * s) + (4 + 8 * s)
    }

    /// Allocates the three rings contiguously in guest memory and zeroes
    /// them (driver-side queue setup during device initialization).
    ///
    /// # Errors
    ///
    /// [`VirtioError::BadQueueSize`] for a non-power-of-two or oversized
    /// queue; allocation errors if guest memory is exhausted.
    pub fn alloc(mem: &GuestMemory, size: u16) -> Result<QueueLayout, VirtioError> {
        if size == 0 || !size.is_power_of_two() || size > 32768 {
            return Err(VirtioError::BadQueueSize(size));
        }
        let bytes = Self::required_bytes(size);
        let pages = bytes.div_ceil(crate::memory::PAGE_SIZE) as usize;
        let base = mem.alloc_contiguous(pages)?;
        // Zero the whole area.
        mem.with_slice_mut(base, bytes, |s| s.fill(0))?;
        let desc = base;
        let avail = desc.add(16 * u64::from(size));
        let used = avail.add(4 + 2 * u64::from(size));
        Ok(QueueLayout { size, desc, avail, used })
    }

    fn desc_gpa(&self, i: u16) -> Gpa {
        self.desc.add(16 * u64::from(i))
    }

    fn avail_idx_gpa(&self) -> Gpa {
        self.avail.add(2)
    }

    fn avail_ring_gpa(&self, slot: u16) -> Gpa {
        self.avail.add(4 + 2 * u64::from(slot))
    }

    fn used_idx_gpa(&self) -> Gpa {
        self.used.add(2)
    }

    fn used_ring_gpa(&self, slot: u16) -> Gpa {
        self.used.add(4 + 8 * u64::from(slot))
    }

    /// Reads descriptor `i` from guest memory.
    ///
    /// # Errors
    ///
    /// Out-of-bounds guest access.
    pub fn read_desc(&self, mem: &GuestMemory, i: u16) -> Result<Descriptor, VirtioError> {
        let base = self.desc_gpa(i);
        Ok(Descriptor {
            addr: Gpa(mem.read_u64(base)?),
            len: mem.read_u32(base.add(8))?,
            flags: mem.read_u16(base.add(12))?,
            next: mem.read_u16(base.add(14))?,
        })
    }

    /// Writes descriptor `i` into guest memory.
    ///
    /// # Errors
    ///
    /// Out-of-bounds guest access.
    pub fn write_desc(
        &self,
        mem: &GuestMemory,
        i: u16,
        d: &Descriptor,
    ) -> Result<(), VirtioError> {
        let base = self.desc_gpa(i);
        mem.write_u64(base, d.addr.0)?;
        mem.write_u32(base.add(8), d.len)?;
        mem.write_u16(base.add(12), d.flags)?;
        mem.write_u16(base.add(14), d.next)
    }
}

/// A descriptor chain popped by the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescChain {
    /// Head descriptor index (returned in the used ring).
    pub head: u16,
    /// The resolved descriptors in chain order.
    pub descriptors: Vec<Descriptor>,
}

impl DescChain {
    /// Total bytes across device-readable descriptors.
    #[must_use]
    pub fn readable_bytes(&self) -> u64 {
        self.descriptors
            .iter()
            .filter(|d| !d.is_write_only())
            .map(|d| u64::from(d.len))
            .sum()
    }

    /// Total bytes across device-writable descriptors.
    #[must_use]
    pub fn writable_bytes(&self) -> u64 {
        self.descriptors
            .iter()
            .filter(|d| d.is_write_only())
            .map(|d| u64::from(d.len))
            .sum()
    }
}

/// The guest-driver-side view of a queue: adds chains, reaps completions.
#[derive(Debug)]
pub struct DriverQueue {
    mem: GuestMemory,
    layout: QueueLayout,
    free_head: Option<u16>,
    free_count: u16,
    next_free: Vec<u16>,
    avail_idx: u16,
    last_used: u16,
    /// Number of descriptors in flight per head (for recycling).
    chain_len: Vec<u16>,
}

impl DriverQueue {
    /// Creates the driver view over an allocated layout, owning all
    /// descriptors as free.
    #[must_use]
    pub fn new(mem: GuestMemory, layout: QueueLayout) -> Self {
        let size = layout.size;
        let next_free: Vec<u16> = (0..size).map(|i| (i + 1) % size).collect();
        DriverQueue {
            mem,
            layout,
            free_head: Some(0),
            free_count: size,
            next_free,
            avail_idx: 0,
            last_used: 0,
            chain_len: vec![0; size as usize],
        }
    }

    /// Free descriptors remaining.
    #[must_use]
    pub fn free_descriptors(&self) -> u16 {
        self.free_count
    }

    /// Adds a buffer chain: `(gpa, len, device_writes)` per buffer. Returns
    /// the head descriptor index and publishes it in the available ring.
    ///
    /// # Errors
    ///
    /// [`VirtioError::QueueFull`] without enough free descriptors; guest
    /// memory errors when writing the rings.
    pub fn add_chain(&mut self, bufs: &[(Gpa, u32, bool)]) -> Result<u16, VirtioError> {
        if bufs.is_empty() {
            return Err(VirtioError::BadDescriptor(0));
        }
        if self.free_count < bufs.len() as u16 {
            return Err(VirtioError::QueueFull);
        }
        // Carve descriptors off the free list.
        let mut indices = Vec::with_capacity(bufs.len());
        let mut head = self.free_head.expect("free_count > 0");
        for _ in 0..bufs.len() {
            indices.push(head);
            head = self.next_free[head as usize];
        }
        self.free_head = if self.free_count as usize == bufs.len() {
            None
        } else {
            Some(head)
        };
        self.free_count -= bufs.len() as u16;

        for (pos, ((gpa, len, write), &idx)) in bufs.iter().zip(indices.iter()).enumerate() {
            let mut flags = 0u16;
            let mut next = 0u16;
            if pos + 1 < bufs.len() {
                flags |= VIRTQ_DESC_F_NEXT;
                next = indices[pos + 1];
            }
            if *write {
                flags |= VIRTQ_DESC_F_WRITE;
            }
            self.layout
                .write_desc(&self.mem, idx, &Descriptor { addr: *gpa, len: *len, flags, next })?;
        }
        let head = indices[0];
        self.chain_len[head as usize] = bufs.len() as u16;
        // Publish in the available ring.
        let slot = self.avail_idx % self.layout.size;
        self.mem.write_u16(self.layout.avail_ring_gpa(slot), head)?;
        self.avail_idx = self.avail_idx.wrapping_add(1);
        self.mem.write_u16(self.layout.avail_idx_gpa(), self.avail_idx)?;
        Ok(head)
    }

    /// Reaps one completion from the used ring: `(head, written_len)`.
    /// Recycles the chain's descriptors onto the free list.
    ///
    /// # Errors
    ///
    /// Guest memory errors while reading the rings.
    pub fn poll_used(&mut self) -> Result<Option<(u16, u32)>, VirtioError> {
        let used_idx = self.mem.read_u16(self.layout.used_idx_gpa())?;
        if used_idx == self.last_used {
            return Ok(None);
        }
        let slot = self.last_used % self.layout.size;
        let entry = self.layout.used_ring_gpa(slot);
        let head = self.mem.read_u32(entry)? as u16;
        let len = self.mem.read_u32(entry.add(4))?;
        self.last_used = self.last_used.wrapping_add(1);

        // Recycle the chain: walk it to find its descriptors.
        let chain = self.chain_len[head as usize].max(1);
        let mut idx = head;
        let mut tail = head;
        for _ in 0..chain {
            tail = idx;
            let d = self.layout.read_desc(&self.mem, idx)?;
            if d.has_next() {
                idx = d.next;
            }
        }
        // Link chain back into the free list.
        match self.free_head {
            Some(old_head) => self.next_free[tail as usize] = old_head,
            None => {}
        }
        self.free_head = Some(head);
        self.free_count += chain;
        self.chain_len[head as usize] = 0;
        Ok(Some((head, len)))
    }
}

/// The device-side view of a queue: pops available chains, pushes used
/// completions.
#[derive(Debug)]
pub struct DeviceQueue {
    mem: GuestMemory,
    layout: QueueLayout,
    next_avail: u16,
    used_idx: u16,
}

impl DeviceQueue {
    /// Creates the device view over the same layout the driver set up.
    #[must_use]
    pub fn new(mem: GuestMemory, layout: QueueLayout) -> Self {
        DeviceQueue { mem, layout, next_avail: 0, used_idx: 0 }
    }

    /// Pops the next available descriptor chain, resolving every descriptor
    /// from guest memory. Returns `Ok(None)` when the queue is empty.
    ///
    /// # Errors
    ///
    /// [`VirtioError::ChainTooLong`] for looping chains (defensive guard),
    /// or guest memory errors.
    pub fn pop(&mut self) -> Result<Option<DescChain>, VirtioError> {
        let avail_idx = self.mem.read_u16(self.layout.avail_idx_gpa())?;
        if self.next_avail == avail_idx {
            return Ok(None);
        }
        let slot = self.next_avail % self.layout.size;
        let head = self.mem.read_u16(self.layout.avail_ring_gpa(slot))?;
        self.next_avail = self.next_avail.wrapping_add(1);

        let mut descriptors = Vec::new();
        let mut idx = head;
        loop {
            if descriptors.len() > usize::from(self.layout.size) {
                return Err(VirtioError::ChainTooLong);
            }
            if idx >= self.layout.size {
                return Err(VirtioError::BadDescriptor(idx));
            }
            let d = self.layout.read_desc(&self.mem, idx)?;
            let has_next = d.has_next();
            let next = d.next;
            descriptors.push(d);
            if !has_next {
                break;
            }
            idx = next;
        }
        Ok(Some(DescChain { head, descriptors }))
    }

    /// Number of chains currently pending (cheap peek).
    ///
    /// # Errors
    ///
    /// Guest memory errors.
    pub fn pending(&self) -> Result<u16, VirtioError> {
        let avail_idx = self.mem.read_u16(self.layout.avail_idx_gpa())?;
        Ok(avail_idx.wrapping_sub(self.next_avail))
    }

    /// Completes a chain: publishes `(head, written_len)` in the used ring.
    ///
    /// # Errors
    ///
    /// Guest memory errors.
    pub fn push_used(&mut self, head: u16, written_len: u32) -> Result<(), VirtioError> {
        let slot = self.used_idx % self.layout.size;
        let entry = self.layout.used_ring_gpa(slot);
        self.mem.write_u32(entry, u32::from(head))?;
        self.mem.write_u32(entry.add(4), written_len)?;
        self.used_idx = self.used_idx.wrapping_add(1);
        self.mem.write_u16(self.layout.used_idx_gpa(), self.used_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(size: u16) -> (GuestMemory, DriverQueue, DeviceQueue) {
        let mem = GuestMemory::new(1 << 20);
        let layout = QueueLayout::alloc(&mem, size).unwrap();
        let driver = DriverQueue::new(mem.clone(), layout.clone());
        let device = DeviceQueue::new(mem.clone(), layout);
        (mem, driver, device)
    }

    #[test]
    fn queue_size_must_be_power_of_two() {
        let mem = GuestMemory::new(1 << 20);
        assert!(QueueLayout::alloc(&mem, 0).is_err());
        assert!(QueueLayout::alloc(&mem, 3).is_err());
        assert!(QueueLayout::alloc(&mem, 512).is_ok());
    }

    #[test]
    fn single_buffer_roundtrip() {
        let (mem, mut driver, mut device) = setup(8);
        let page = mem.alloc_pages(1).unwrap()[0];
        mem.write(page, b"request").unwrap();

        let head = driver.add_chain(&[(page, 7, false)]).unwrap();
        assert_eq!(device.pending().unwrap(), 1);
        let chain = device.pop().unwrap().unwrap();
        assert_eq!(chain.head, head);
        assert_eq!(chain.descriptors.len(), 1);
        assert_eq!(chain.readable_bytes(), 7);
        let content = mem
            .with_slice(chain.descriptors[0].addr, 7, |s| s.to_vec())
            .unwrap();
        assert_eq!(&content, b"request");

        device.push_used(head, 0).unwrap();
        assert_eq!(driver.poll_used().unwrap(), Some((head, 0)));
        assert_eq!(driver.poll_used().unwrap(), None);
    }

    #[test]
    fn multi_descriptor_chain_preserves_order_and_flags() {
        let (mem, mut driver, mut device) = setup(8);
        let pages = mem.alloc_pages(3).unwrap();
        let head = driver
            .add_chain(&[(pages[0], 16, false), (pages[1], 32, false), (pages[2], 64, true)])
            .unwrap();
        let chain = device.pop().unwrap().unwrap();
        assert_eq!(chain.head, head);
        assert_eq!(chain.descriptors.len(), 3);
        assert_eq!(chain.readable_bytes(), 48);
        assert_eq!(chain.writable_bytes(), 64);
        assert!(chain.descriptors[0].has_next());
        assert!(!chain.descriptors[2].has_next());
        assert!(chain.descriptors[2].is_write_only());
    }

    #[test]
    fn queue_full_and_recycling() {
        let (mem, mut driver, mut device) = setup(4);
        let pages = mem.alloc_pages(4).unwrap();
        let bufs: Vec<(Gpa, u32, bool)> = pages.iter().map(|p| (*p, 8u32, false)).collect();
        let head = driver.add_chain(&bufs).unwrap();
        assert_eq!(driver.free_descriptors(), 0);
        assert!(matches!(
            driver.add_chain(&[(pages[0], 8, false)]),
            Err(VirtioError::QueueFull)
        ));
        let chain = device.pop().unwrap().unwrap();
        device.push_used(chain.head, 0).unwrap();
        assert_eq!(driver.poll_used().unwrap(), Some((head, 0)));
        assert_eq!(driver.free_descriptors(), 4);
        // Full cycle works again after recycling.
        let h2 = driver.add_chain(&bufs).unwrap();
        let c2 = device.pop().unwrap().unwrap();
        assert_eq!(c2.head, h2);
        assert_eq!(c2.descriptors.len(), 4);
    }

    #[test]
    fn many_cycles_wrap_indices() {
        let (mem, mut driver, mut device) = setup(4);
        let page = mem.alloc_pages(1).unwrap()[0];
        // 100_000 > u16::MAX to exercise wrapping of idx counters.
        for i in 0..100_000u32 {
            let head = driver.add_chain(&[(page, 4, false)]).unwrap();
            let chain = device.pop().unwrap().unwrap();
            assert_eq!(chain.head, head, "iteration {i}");
            device.push_used(chain.head, 4).unwrap();
            assert_eq!(driver.poll_used().unwrap(), Some((head, 4)));
        }
    }

    #[test]
    fn pop_on_empty_returns_none() {
        let (_mem, _driver, mut device) = setup(4);
        assert_eq!(device.pop().unwrap(), None);
        assert_eq!(device.pending().unwrap(), 0);
    }

    #[test]
    fn transferq_matrix_fits() {
        // The serialized transfer matrix uses at most 130 buffers (Fig. 7);
        // the 512-slot transferq must accept it plus the request header.
        let (mem, mut driver, mut device) = setup(TRANSFERQ_SIZE);
        let pages = mem.alloc_pages(130).unwrap();
        let bufs: Vec<(Gpa, u32, bool)> = pages.iter().map(|p| (*p, 4096u32, false)).collect();
        let head = driver.add_chain(&bufs).unwrap();
        let chain = device.pop().unwrap().unwrap();
        assert_eq!(chain.head, head);
        assert_eq!(chain.descriptors.len(), 130);
    }

    #[test]
    fn empty_chain_rejected() {
        let (_mem, mut driver, _device) = setup(4);
        assert!(driver.add_chain(&[]).is_err());
    }
}
