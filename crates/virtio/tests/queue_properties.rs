//! Property tests over the split virtqueue: arbitrary chain schedules must
//! preserve FIFO completion order, never leak descriptors, and deliver
//! buffer contents intact.

use pim_virtio::queue::{DeviceQueue, DriverQueue, QueueLayout};
use pim_virtio::{Gpa, GuestMemory};
use proptest::prelude::*;

fn setup(size: u16) -> (GuestMemory, DriverQueue, DeviceQueue) {
    let mem = GuestMemory::new(4 << 20);
    let layout = QueueLayout::alloc(&mem, size).unwrap();
    let driver = DriverQueue::new(mem.clone(), layout.clone());
    let device = DeviceQueue::new(mem.clone(), layout);
    (mem, driver, device)
}

proptest! {
    /// Any schedule of add/process rounds preserves order and recycles all
    /// descriptors.
    #[test]
    fn fifo_order_and_descriptor_conservation(
        rounds in proptest::collection::vec(
            (1usize..4, proptest::collection::vec(1u32..4096, 1..4)),
            1..24,
        )
    ) {
        let (mem, mut driver, mut device) = setup(64);
        let pages = mem.alloc_pages(4).unwrap();
        for (chains, lens) in rounds {
            let mut heads = Vec::new();
            for _ in 0..chains {
                let bufs: Vec<(Gpa, u32, bool)> = lens
                    .iter()
                    .enumerate()
                    .map(|(i, len)| (pages[i % 4], *len, i == lens.len() - 1))
                    .collect();
                match driver.add_chain(&bufs) {
                    Ok(h) => heads.push(h),
                    Err(pim_virtio::VirtioError::QueueFull) => break,
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            }
            // Device drains everything, in order.
            let mut seen = Vec::new();
            while let Some(chain) = device.pop().unwrap() {
                prop_assert_eq!(chain.descriptors.len(), lens.len());
                device.push_used(chain.head, 1).unwrap();
                seen.push(chain.head);
            }
            prop_assert_eq!(&seen, &heads);
            // Driver reaps in the same order and recovers every descriptor.
            for h in heads {
                let (got, _) = driver.poll_used().unwrap().unwrap();
                prop_assert_eq!(got, h);
            }
            prop_assert_eq!(driver.poll_used().unwrap(), None);
            prop_assert_eq!(driver.free_descriptors(), 64);
        }
    }

    /// Payload bytes cross the queue intact for arbitrary contents.
    #[test]
    fn payload_integrity(payload in proptest::collection::vec(any::<u8>(), 1..4096)) {
        let (mem, mut driver, mut device) = setup(8);
        let page = mem.alloc_pages(1).unwrap()[0];
        mem.write(page, &payload).unwrap();
        driver.add_chain(&[(page, payload.len() as u32, false)]).unwrap();
        let chain = device.pop().unwrap().unwrap();
        let got = mem
            .with_slice(chain.descriptors[0].addr, payload.len() as u64, <[u8]>::to_vec)
            .unwrap();
        prop_assert_eq!(got, payload);
        device.push_used(chain.head, 0).unwrap();
        driver.poll_used().unwrap().unwrap();
    }
}

#[test]
fn interleaved_producer_consumer() {
    // Add and drain interleaved (not in lockstep rounds) for many cycles.
    let (mem, mut driver, mut device) = setup(16);
    let page = mem.alloc_pages(1).unwrap()[0];
    let mut outstanding = std::collections::VecDeque::new();
    for step in 0u32..5000 {
        // Add up to 2 chains if room.
        for _ in 0..(step % 3) {
            if let Ok(h) = driver.add_chain(&[(page, 16, false)]) {
                outstanding.push_back(h);
            }
        }
        // Drain one.
        if let Some(chain) = device.pop().unwrap() {
            device.push_used(chain.head, 0).unwrap();
            let (h, _) = driver.poll_used().unwrap().unwrap();
            assert_eq!(Some(h), outstanding.pop_front());
        }
    }
    // Drain the tail.
    while let Some(chain) = device.pop().unwrap() {
        device.push_used(chain.head, 0).unwrap();
        let (h, _) = driver.poll_used().unwrap().unwrap();
        assert_eq!(Some(h), outstanding.pop_front());
    }
    assert!(outstanding.is_empty());
    assert_eq!(driver.free_descriptors(), 16);
}
