//! # upmem-sim — functional + timing simulator of UPMEM PIM hardware
//!
//! This crate substitutes the UPMEM DIMMs used by the vPIM paper
//! (Teguia et al., MIDDLEWARE '24). It models the hardware exactly at the
//! interface the virtualization layer touches:
//!
//! * a [`PimMachine`] hosts a set of [`Rank`]s (the allocation granule of
//!   vPIM), each with 8 PIM chips × 8 [`Dpu`]s;
//! * each DPU owns a 64 MB MRAM bank ([`mram::MramBank`]), 64 KB of WRAM
//!   ([`wram::Wram`]) and 24 KB of IRAM;
//! * hosts move data with rank-level read/write operations (optionally byte
//!   interleaved across chips, see [`interleave`]) and poke per-chip
//!   control interfaces ([`ci`]);
//! * DPU programs are SPMD kernels ([`kernel::DpuKernel`]) executed by up to
//!   24 tasklets in barrier-delimited parallel phases, with a cycle model
//!   that enforces the hardware's 11-stage pipeline rule (a tasklet's
//!   consecutive instructions are ≥ 11 cycles apart, so ≥ 11 tasklets are
//!   needed to saturate a DPU).
//!
//! The simulator is *functional* (bytes really move, kernels really compute,
//! results are checkable against CPU references) and *cycle-accounting*
//! (every launch reports per-DPU cycle counts which callers convert to
//! virtual time through [`simkit::CostModel`]).
//!
//! ## Example
//!
//! ```
//! use upmem_sim::{PimConfig, PimMachine};
//!
//! let machine = PimMachine::new(PimConfig::small());
//! let rank = machine.rank(0).unwrap();
//! rank.write_dpu(0, 0, &[1, 2, 3, 4]).unwrap();
//! let mut buf = [0u8; 4];
//! rank.read_dpu(0, 0, &mut buf).unwrap();
//! assert_eq!(buf, [1, 2, 3, 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod dpu;
pub mod error;
pub mod geometry;
pub mod interleave;
pub mod kernel;
pub mod machine;
pub mod mram;
pub mod rank;
pub mod wram;

pub use dpu::{Dpu, DpuContext, DpuState, LaunchReport, TaskletCtx};
pub use error::{DpuFault, SimError};
pub use geometry::PimConfig;
pub use kernel::{DpuKernel, KernelImage, KernelRegistry};
pub use machine::PimMachine;
pub use rank::{Rank, CI_OP_POINT, LAUNCH_FAULT_POINT, MRAM_DMA_POINT};
