//! A rank: the unit vPIM allocates to virtual machines.
//!
//! A rank bundles 64 DPUs (8 chips × 8), a control interface, and the
//! DDR-visible memory window through which hosts move data. Rank-level
//! transfers are the operations vPIM virtualizes (`write-to-rank`,
//! `read-from-rank`, CI ops), each moving at most 4 GB (§3.1).

use std::sync::Arc;

use parking_lot::Mutex;
use simkit::{FaultPlane, InjectCell};

use crate::ci::{CiCommand, CiCounters, CiStatus};
use crate::dpu::{Dpu, DpuState, LaunchReport};
use crate::error::{DpuFault, SimError};
use crate::geometry::{PimConfig, DPUS_PER_CHIP, MAX_RANK_XFER};
use crate::interleave;
use crate::kernel::{KernelImage, KernelRegistry};

/// Fault point for MRAM DMA ([`Rank::write_dpu`], [`Rank::read_dpu`] and
/// friends), keyed by the target DPU index so concurrent per-DPU workers
/// observe a deterministic schedule regardless of interleaving.
pub const MRAM_DMA_POINT: &str = "sim.mram.dma";

/// Fault point for control-interface operations (symbol transfers and
/// status polls). Counter-based: fires on the nth CI op this rank sees.
pub const CI_OP_POINT: &str = "sim.ci.op";

/// Fault point for program launches: firing makes the launch report a
/// [`DpuFault`] before any DPU boots, modeling a boot-time CI fault.
pub const LAUNCH_FAULT_POINT: &str = "sim.launch.fault";

/// A captured rank state: one [`crate::dpu::DpuSnapshot`] per DPU.
#[derive(Debug, Clone)]
pub struct RankSnapshot {
    dpus: Vec<crate::dpu::DpuSnapshot>,
}

impl RankSnapshot {
    /// Total resident MRAM bytes captured across the rank.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.dpus.iter().map(crate::dpu::DpuSnapshot::mram_bytes).sum()
    }

    /// Number of per-DPU snapshots (a restore target must match).
    #[must_use]
    pub fn dpu_count(&self) -> usize {
        self.dpus.len()
    }

    /// Bytes that differ from `base`, summed per DPU — the dirty set a
    /// pre-copy migration re-sends after its warm round. DPUs present in
    /// only one snapshot (geometry mismatch) count their full residency.
    #[must_use]
    pub fn diff_bytes(&self, base: &RankSnapshot) -> u64 {
        let common = self.dpus.len().min(base.dpus.len());
        let mut dirty: u64 = self.dpus[..common]
            .iter()
            .zip(&base.dpus[..common])
            .map(|(cur, old)| cur.diff_bytes(old))
            .sum();
        dirty += self.dpus[common..].iter().map(|d| d.mram_bytes() as u64).sum::<u64>();
        dirty += base.dpus[common..].iter().map(|d| d.mram_bytes() as u64).sum::<u64>();
        dirty
    }
}

/// One UPMEM rank.
///
/// # Lock sharding
///
/// DPUs are individually locked so backend worker threads can operate on
/// different DPUs of the same rank concurrently (vPIM's 8-thread DPU
/// operation pool, §4.2). There is deliberately **no rank-wide lock**: the
/// interleave transform and DDR-occupancy emulation run *outside* the DPU
/// mutex, so a DPU's critical section is only the MRAM memcpy itself.
/// Concurrent operations on the *same* DPU serialize on its mutex;
/// operations on distinct DPUs — even in the same chip — proceed in
/// parallel. CI counters are atomics and need no lock.
#[derive(Debug)]
pub struct Rank {
    id: usize,
    dpus: Vec<Mutex<Dpu>>,
    ci: CiCounters,
    config: PimConfig,
    inject: InjectCell,
}

impl Rank {
    /// Creates rank `id` with the geometry from `config`.
    #[must_use]
    pub fn new(id: usize, config: &PimConfig) -> Self {
        let n = config.dpus_in_rank(id);
        Rank {
            id,
            dpus: (0..n).map(|_| Mutex::new(Dpu::new(config))).collect(),
            ci: CiCounters::new(),
            config: config.clone(),
            inject: InjectCell::new(),
        }
    }

    /// Installs the fault-injection plane consulted by MRAM DMA
    /// ([`MRAM_DMA_POINT`]), CI ops ([`CI_OP_POINT`]) and launches
    /// ([`LAUNCH_FAULT_POINT`]).
    pub fn install_fault_plane(&self, plane: Arc<FaultPlane>) {
        self.inject.install(plane);
    }

    fn injected_dma(&self, dpu: usize) -> Result<(), SimError> {
        if self.inject.hit_keyed(MRAM_DMA_POINT, dpu as u64) {
            Err(SimError::Injected { point: MRAM_DMA_POINT })
        } else {
            Ok(())
        }
    }

    fn injected_ci(&self) -> Result<(), SimError> {
        if self.inject.hit(CI_OP_POINT) {
            Err(SimError::Injected { point: CI_OP_POINT })
        } else {
            Ok(())
        }
    }

    /// This rank's index in the machine.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of functional DPUs.
    #[must_use]
    pub fn dpu_count(&self) -> usize {
        self.dpus.len()
    }

    /// MRAM capacity per DPU.
    #[must_use]
    pub fn mram_size(&self) -> u64 {
        self.config.mram_size
    }

    /// Whether transfers really execute the interleave transform (see
    /// [`PimConfig::verify_interleave`]).
    #[must_use]
    pub fn verify_interleave(&self) -> bool {
        self.config.verify_interleave
    }

    /// DPU clock frequency in MHz.
    #[must_use]
    pub fn freq_mhz(&self) -> u64 {
        self.config.freq_mhz
    }

    /// Control-interface counters.
    #[must_use]
    pub fn ci(&self) -> &CiCounters {
        &self.ci
    }

    fn check_dpu(&self, dpu: usize) -> Result<(), SimError> {
        if dpu < self.dpus.len() {
            Ok(())
        } else {
            Err(SimError::InvalidDpu(dpu))
        }
    }

    fn check_len(len: u64) -> Result<(), SimError> {
        if len > MAX_RANK_XFER {
            Err(SimError::XferTooLarge(len))
        } else {
            Ok(())
        }
    }

    /// The PIM chip holding `dpu` (DPUs are numbered chip-major: DPU `d`
    /// lives on chip `d / 8`). Useful to callers partitioning work so that
    /// no two workers contend on one chip's DPUs.
    #[must_use]
    pub fn chip_of(dpu: usize) -> usize {
        dpu / DPUS_PER_CHIP
    }

    /// Blocks the calling thread for the emulated DDR-bus occupancy of a
    /// `len`-byte transfer (no-op when `ddr_busy_ns_per_kb` is 0). Runs
    /// outside any DPU lock: it models the *host thread* being busy on the
    /// bus, not the MRAM bank being held.
    fn emulate_ddr_busy(&self, len: usize) {
        let per_kb = self.config.ddr_busy_ns_per_kb;
        if per_kb == 0 || len == 0 {
            return;
        }
        let ns = (len as u64).saturating_mul(per_kb) / 1024;
        if ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
    }

    /// Writes host bytes into one DPU's MRAM at `offset` — the data half of
    /// a `write-to-rank`. When the config enables interleave verification
    /// the buffer really goes through the interleave/deinterleave pair the
    /// host driver and DDR bus would apply.
    ///
    /// # Errors
    ///
    /// Invalid DPU index, transfer larger than 4 GB, or an out-of-bounds
    /// MRAM range.
    pub fn write_dpu(&self, dpu: usize, offset: u64, data: &[u8]) -> Result<(), SimError> {
        if self.config.verify_interleave {
            // Borrowed input, so one staging copy is unavoidable; the
            // zero-copy data path hands us its scratch directly through
            // write_dpu_inplace instead.
            let mut staged = data.to_vec();
            self.write_dpu_inplace(dpu, offset, &mut staged)
        } else {
            self.check_dpu(dpu)?;
            Self::check_len(data.len() as u64)?;
            self.injected_dma(dpu)?;
            self.emulate_ddr_busy(data.len());
            self.dpus[dpu].lock().mram_mut().write(offset, data)
        }
    }

    /// [`write_dpu`](Self::write_dpu) for callers that own (and may
    /// sacrifice) the buffer: the interleave/deinterleave pair runs **in
    /// place** on `data`, so the verify path allocates nothing. On return
    /// `data` holds the logical bytes again (the pair is self-inverse).
    ///
    /// # Errors
    ///
    /// Invalid DPU index, transfer larger than 4 GB, or an out-of-bounds
    /// MRAM range.
    pub fn write_dpu_inplace(&self, dpu: usize, offset: u64, data: &mut [u8]) -> Result<(), SimError> {
        self.check_dpu(dpu)?;
        Self::check_len(data.len() as u64)?;
        self.injected_dma(dpu)?;
        self.emulate_ddr_busy(data.len());
        if self.config.verify_interleave {
            // Transform outside the DPU lock: the critical section is only
            // the MRAM write itself.
            interleave::interleave_inplace(data);
            interleave::deinterleave_inplace(data);
        }
        self.dpus[dpu].lock().mram_mut().write(offset, data)
    }

    /// Reads one DPU's MRAM into host bytes — the data half of a
    /// `read-from-rank`. Allocation-free: the verify transform runs in
    /// place on `dst` after the MRAM copy.
    ///
    /// # Errors
    ///
    /// Invalid DPU index, transfer larger than 4 GB, or an out-of-bounds
    /// MRAM range.
    pub fn read_dpu(&self, dpu: usize, offset: u64, dst: &mut [u8]) -> Result<(), SimError> {
        self.check_dpu(dpu)?;
        Self::check_len(dst.len() as u64)?;
        self.injected_dma(dpu)?;
        self.emulate_ddr_busy(dst.len());
        self.dpus[dpu].lock().mram().read(offset, dst)?;
        if self.config.verify_interleave {
            // Transform outside the DPU lock (see write_dpu_inplace).
            interleave::interleave_inplace(dst);
            interleave::deinterleave_inplace(dst);
        }
        Ok(())
    }

    /// Loads a program image onto the given DPUs (all functional DPUs if
    /// `dpus` is `None`), like `dpu_load` broadcasting an ELF to the rank.
    ///
    /// # Errors
    ///
    /// Invalid DPU index or an image exceeding IRAM capacity.
    pub fn load_program(&self, dpus: Option<&[usize]>, image: &KernelImage) -> Result<(), SimError> {
        let ids: Vec<usize> = match dpus {
            Some(ids) => ids.to_vec(),
            None => (0..self.dpus.len()).collect(),
        };
        for &d in &ids {
            self.check_dpu(d)?;
        }
        for &d in &ids {
            self.dpus[d].lock().load(image.clone())?;
        }
        Ok(())
    }

    /// Writes a host symbol on one DPU.
    ///
    /// # Errors
    ///
    /// Invalid DPU index, unknown symbol, or size mismatch.
    pub fn write_symbol(&self, dpu: usize, name: &str, bytes: &[u8]) -> Result<(), SimError> {
        self.check_dpu(dpu)?;
        self.injected_ci()?;
        self.ci.record(CiCommand::Poll); // symbol transfers ride the CI
        self.dpus[dpu].lock().write_symbol(name, bytes)
    }

    /// Reads a host symbol from one DPU.
    ///
    /// # Errors
    ///
    /// Invalid DPU index, unknown symbol, or size mismatch.
    pub fn read_symbol(&self, dpu: usize, name: &str, bytes: &mut [u8]) -> Result<(), SimError> {
        self.check_dpu(dpu)?;
        self.injected_ci()?;
        self.ci.record(CiCommand::Poll);
        self.dpus[dpu].lock().read_symbol(name, bytes)
    }

    /// Boots the loaded program on the given DPUs with `nr_tasklets`
    /// tasklets, running each to completion, and returns per-DPU launch
    /// reports. Execution is synchronous; callers model launch latency from
    /// the reported cycle counts.
    ///
    /// # Errors
    ///
    /// Any per-DPU launch error (missing program, bad tasklet count, fault).
    /// On fault the DPU is left in [`DpuState::Fault`] for CI inspection.
    pub fn launch(
        &self,
        dpus: Option<&[usize]>,
        nr_tasklets: usize,
        registry: &KernelRegistry,
    ) -> Result<Vec<(usize, LaunchReport)>, SimError> {
        let ids: Vec<usize> = match dpus {
            Some(ids) => ids.to_vec(),
            None => (0..self.dpus.len()).collect(),
        };
        for &d in &ids {
            self.check_dpu(d)?;
        }
        if self.inject.hit(LAUNCH_FAULT_POINT) {
            return Err(SimError::Fault(DpuFault::new(
                "injected launch fault (sim.launch.fault)",
            )));
        }
        let mut reports = Vec::with_capacity(ids.len());
        for &d in &ids {
            self.ci.record(CiCommand::Boot {
                nr_tasklets: nr_tasklets.min(u8::MAX as usize) as u8,
            });
            let mut dpu = self.dpus[d].lock();
            let name = dpu
                .loaded_image()
                .ok_or(SimError::NoProgramLoaded)?
                .name
                .clone();
            let kernel = registry.get(&name)?;
            let report = dpu.launch(kernel.as_ref(), nr_tasklets)?;
            reports.push((d, report));
        }
        Ok(reports)
    }

    /// Reads one DPU's run status through the CI.
    ///
    /// # Errors
    ///
    /// Invalid DPU index.
    pub fn poll_status(&self, dpu: usize) -> Result<CiStatus, SimError> {
        self.check_dpu(dpu)?;
        self.injected_ci()?;
        self.ci.record(CiCommand::Poll);
        Ok(match self.dpus[dpu].lock().state() {
            DpuState::Idle => CiStatus::Idle,
            DpuState::Running => CiStatus::Running,
            DpuState::Done => CiStatus::Done,
            DpuState::Fault(_) => CiStatus::Fault,
        })
    }

    /// Records `n` extra CI poll operations (the SDK's polling loop during
    /// a synchronous launch).
    pub fn record_polls(&self, n: u64) {
        self.ci.record_polls(n);
    }

    /// Captures the whole rank's persistent state (checkpoint half of the
    /// paper's future-work pause/resume consolidation, §7).
    #[must_use]
    pub fn snapshot(&self) -> RankSnapshot {
        RankSnapshot {
            dpus: self.dpus.iter().map(|d| d.lock().snapshot()).collect(),
        }
    }

    /// Whether no DPU is currently executing a program. A rank is at a
    /// **safe point** for checkpointing only when it is quiescent: a
    /// Running DPU has live execution state (PC, tasklet contexts) that a
    /// [`snapshot`](Self::snapshot) would not capture.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.dpus.iter().all(|d| !matches!(d.lock().state(), DpuState::Running))
    }

    /// [`snapshot`](Self::snapshot), refusing to capture a non-quiescent
    /// rank — the safe-point hook used by checkpointing schedulers.
    ///
    /// # Errors
    ///
    /// [`SimError::NotQuiescent`] if any DPU is in the Running state.
    pub fn snapshot_quiescent(&self) -> Result<RankSnapshot, SimError> {
        let running = self
            .dpus
            .iter()
            .filter(|d| matches!(d.lock().state(), DpuState::Running))
            .count();
        if running > 0 {
            return Err(SimError::NotQuiescent { running });
        }
        Ok(self.snapshot())
    }

    /// Restores a rank snapshot taken on a rank of the same geometry.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidDpu`] on a DPU-count mismatch; MRAM bound errors
    /// if the snapshot came from a larger bank.
    pub fn restore(&self, snap: &RankSnapshot) -> Result<(), SimError> {
        if snap.dpus.len() != self.dpus.len() {
            return Err(SimError::InvalidDpu(snap.dpus.len()));
        }
        for (dpu, ds) in self.dpus.iter().zip(&snap.dpus) {
            dpu.lock().restore(ds)?;
        }
        Ok(())
    }

    /// Erases all rank content (MRAM, WRAM accounting, symbols) — the
    /// manager's reset when a rank transitions NANA → NAAV (§3.5).
    pub fn reset_content(&self) {
        for d in &self.dpus {
            d.lock().reset_content();
        }
    }

    /// Physically resident MRAM bytes across the rank (diagnostics).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.dpus.iter().map(|d| d.lock().mram().resident_bytes()).sum()
    }

    /// Runs `f` with exclusive access to one DPU (driver-internal paths).
    ///
    /// # Errors
    ///
    /// Invalid DPU index.
    pub fn with_dpu<T>(
        &self,
        dpu: usize,
        f: impl FnOnce(&mut Dpu) -> T,
    ) -> Result<T, SimError> {
        self.check_dpu(dpu)?;
        Ok(f(&mut self.dpus[dpu].lock()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpu::DpuContext;
    use crate::error::DpuFault;
    use crate::kernel::{DpuKernel, SymbolDef};
    use std::sync::Arc;

    fn rank() -> Rank {
        Rank::new(0, &PimConfig::small())
    }

    #[test]
    fn write_read_roundtrip_through_interleave() {
        let r = rank();
        let data: Vec<u8> = (0..=255).collect();
        r.write_dpu(3, 128, &data).unwrap();
        let mut back = vec![0u8; 256];
        r.read_dpu(3, 128, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn dpu_index_validated() {
        let r = rank();
        assert!(matches!(r.write_dpu(8, 0, &[0]), Err(SimError::InvalidDpu(8))));
        let mut b = [0u8];
        assert!(matches!(r.read_dpu(99, 0, &mut b), Err(SimError::InvalidDpu(99))));
    }

    struct AddOne;
    impl DpuKernel for AddOne {
        fn image(&self) -> KernelImage {
            KernelImage::new("add_one", 512).with_symbol(SymbolDef::u32("n"))
        }
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
            let n = ctx.host_u32("n")? as usize;
            let tasklets = ctx.nr_tasklets();
            ctx.parallel(|t| {
                let per = n.div_ceil(tasklets);
                let lo = t.id() * per;
                let hi = ((t.id() + 1) * per).min(n);
                if lo >= hi {
                    return Ok(());
                }
                let mut buf = vec![0u32; hi - lo];
                t.mram_read_u32s((lo * 4) as u64, &mut buf)?;
                for v in &mut buf {
                    *v = v.wrapping_add(1);
                }
                t.charge(2 * (hi - lo) as u64);
                t.mram_write_u32s((lo * 4) as u64, &buf)?;
                Ok(())
            })
        }
    }

    #[test]
    fn launch_across_dpus_transforms_data() {
        let r = rank();
        let registry = KernelRegistry::new();
        registry.register(Arc::new(AddOne));
        r.load_program(None, &AddOne.image()).unwrap();

        let n = 64usize;
        for d in 0..r.dpu_count() {
            let words: Vec<u32> = (0..n as u32).map(|i| i + d as u32).collect();
            let mut raw = Vec::new();
            for w in &words {
                raw.extend_from_slice(&w.to_le_bytes());
            }
            r.write_dpu(d, 0, &raw).unwrap();
            r.write_symbol(d, "n", &(n as u32).to_le_bytes()).unwrap();
        }

        let reports = r.launch(None, 12, &registry).unwrap();
        assert_eq!(reports.len(), r.dpu_count());
        assert!(reports.iter().all(|(_, rep)| rep.cycles > 0));

        for d in 0..r.dpu_count() {
            let mut raw = vec![0u8; n * 4];
            r.read_dpu(d, 0, &mut raw).unwrap();
            let first = u32::from_le_bytes(raw[0..4].try_into().unwrap());
            assert_eq!(first, d as u32 + 1);
        }
        assert_eq!(r.poll_status(0).unwrap(), CiStatus::Done);
    }

    #[test]
    fn ci_ops_counted() {
        let r = rank();
        let before = r.ci().total();
        let _ = r.poll_status(0);
        let _ = r.poll_status(0);
        r.record_polls(10);
        assert_eq!(r.ci().total(), before + 12);
    }

    #[test]
    fn launch_without_program_fails() {
        let r = rank();
        let registry = KernelRegistry::new();
        assert!(matches!(
            r.launch(Some(&[0]), 8, &registry),
            Err(SimError::NoProgramLoaded)
        ));
    }

    #[test]
    fn reset_content_erases_every_dpu() {
        let r = rank();
        for d in 0..r.dpu_count() {
            r.write_dpu(d, 0, &[0xFF; 64]).unwrap();
        }
        assert!(r.resident_bytes() > 0);
        r.reset_content();
        assert_eq!(r.resident_bytes(), 0);
        let mut buf = [1u8; 64];
        r.read_dpu(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    fn chip_numbering_is_chip_major() {
        assert_eq!(Rank::chip_of(0), 0);
        assert_eq!(Rank::chip_of(7), 0);
        assert_eq!(Rank::chip_of(8), 1);
        assert_eq!(Rank::chip_of(63), 7);
    }

    #[test]
    fn distinct_dpus_accept_concurrent_operations() {
        // Two threads each hold one DPU's lock and rendezvous on a barrier
        // while holding it — this deadlocks unless locking is per-DPU.
        use std::sync::Barrier;
        let r = Arc::new(rank());
        let barrier = Arc::new(Barrier::new(2));
        let threads: Vec<_> = (0..2usize)
            .map(|d| {
                let r = Arc::clone(&r);
                let b = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    r.with_dpu(d, |dpu| {
                        b.wait();
                        dpu.mram_mut().write(0, &[d as u8; 32]).unwrap();
                    })
                    .unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for d in 0..2usize {
            let mut buf = [0u8; 32];
            r.read_dpu(d, 0, &mut buf).unwrap();
            assert_eq!(buf, [d as u8; 32]);
        }
    }

    #[test]
    fn concurrent_writers_to_distinct_dpus_keep_data_intact() {
        let r = Arc::new(rank());
        let threads: Vec<_> = (0..r.dpu_count())
            .map(|d| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for round in 0..16u8 {
                        let data = vec![d as u8 ^ round; 512];
                        r.write_dpu(d, u64::from(round) * 512, &data).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for d in 0..r.dpu_count() {
            for round in 0..16u8 {
                let mut back = vec![0u8; 512];
                r.read_dpu(d, u64::from(round) * 512, &mut back).unwrap();
                assert_eq!(back, vec![d as u8 ^ round; 512], "dpu {d} round {round}");
            }
        }
    }

    #[test]
    fn ddr_busy_emulation_blocks_proportionally_and_defaults_off() {
        use std::time::Instant;
        let cfg = PimConfig::small();
        assert_eq!(cfg.ddr_busy_ns_per_kb, 0);
        let slow = Rank::new(
            0,
            &PimConfig { ddr_busy_ns_per_kb: 2_000_000, ..PimConfig::small() },
        );
        let start = Instant::now();
        slow.write_dpu(0, 0, &[7u8; 4096]).unwrap(); // 4 KiB → 8 ms
        assert!(start.elapsed() >= std::time::Duration::from_millis(8));
        let mut back = [0u8; 4096];
        let start = Instant::now();
        slow.read_dpu(0, 0, &mut back).unwrap();
        assert!(start.elapsed() >= std::time::Duration::from_millis(8));
        assert_eq!(back, [7u8; 4096]);
    }

    #[test]
    fn injected_faults_are_typed_and_recoverable() {
        use simkit::{FaultPlan, FaultPlane};
        let r = rank();
        let plane = Arc::new(FaultPlane::new(3));
        r.install_fault_plane(Arc::clone(&plane));

        // MRAM DMA: keyed by DPU and pure in the key — under Nth(3) the
        // key-2 DPU faults (deterministically, retries included) while its
        // neighbours stay clean.
        plane.arm(MRAM_DMA_POINT, FaultPlan::Nth(3));
        assert!(matches!(
            r.write_dpu(2, 0, &[1u8; 16]),
            Err(SimError::Injected { point: MRAM_DMA_POINT })
        ));
        r.write_dpu(3, 0, &[2u8; 16]).unwrap();
        assert!(r.write_dpu(2, 0, &[1u8; 16]).is_err());
        // Disarming restores passthrough; no state was torn.
        plane.disarm(MRAM_DMA_POINT);
        r.write_dpu(2, 0, &[1u8; 16]).unwrap();
        let mut back = [0u8; 16];
        r.read_dpu(2, 0, &mut back).unwrap();
        assert_eq!(back, [1u8; 16]);

        // CI ops: counter-based; the op is not counted when it faults.
        plane.arm(CI_OP_POINT, FaultPlan::Nth(1));
        let before = r.ci().total();
        assert!(matches!(
            r.poll_status(0),
            Err(SimError::Injected { point: CI_OP_POINT })
        ));
        assert_eq!(r.ci().total(), before);
        assert!(r.poll_status(0).is_ok());
        plane.disarm(CI_OP_POINT);

        // Launch: fires as a typed DPU fault before any DPU boots.
        plane.arm(LAUNCH_FAULT_POINT, FaultPlan::Nth(1));
        let registry = KernelRegistry::new();
        registry.register(Arc::new(AddOne));
        r.load_program(None, &AddOne.image()).unwrap();
        for d in 0..r.dpu_count() {
            r.write_symbol(d, "n", &0u32.to_le_bytes()).unwrap();
        }
        assert!(matches!(r.launch(None, 8, &registry), Err(SimError::Fault(_))));
        // The rank stays usable: the retry launches cleanly.
        r.launch(None, 8, &registry).unwrap();
    }

    #[test]
    fn oversized_transfer_rejected() {
        // Use a config whose MRAM is big enough logically but the transfer
        // limit triggers first: fake a >4GB length via empty slice is not
        // possible, so check the guard directly through read path length.
        let r = rank();
        // 4GB+1 cannot be allocated; the guard is still exercised by
        // checking the helper on the boundary value.
        assert!(Rank::check_len(MAX_RANK_XFER).is_ok());
        assert!(matches!(
            Rank::check_len(MAX_RANK_XFER + 1),
            Err(SimError::XferTooLarge(_))
        ));
        drop(r);
    }
}
