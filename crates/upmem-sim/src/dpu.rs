//! A single DRAM Processing Unit and its execution engine.
//!
//! ## Execution model
//!
//! A DPU runs one SPMD program on up to 24 tasklets sharing MRAM, WRAM and
//! IRAM. Real tasklets interleave cycle by cycle in a 14-stage pipeline
//! with the constraint that one tasklet's consecutive instructions are at
//! least 11 cycles apart (§2: "for a given thread, 11 cycles should
//! separate 2 consecutive instructions", hence ≥ 11 tasklets for full
//! throughput).
//!
//! The simulator runs tasklets as *barrier-delimited parallel phases*
//! ([`DpuContext::parallel`]): within a phase every tasklet executes
//! independently (they are run sequentially under the hood, which is
//! observationally equivalent for data-race-free programs); phase
//! boundaries are barriers. Per phase the cycle model charges
//!
//! ```text
//! compute = max( Σᵢ instrᵢ , 11 × maxᵢ instrᵢ )   // pipeline law
//! dma     = Σᵢ dmaᵢ                                // shared DMA engine
//! cycles  = max(compute, dma)                      // DMA overlaps compute
//! ```
//!
//! which reproduces the two regimes that matter for the paper's evaluation:
//! below 11 tasklets the pipeline is underfilled (time is flat in tasklet
//! count), above it the DPU is throughput-bound.

use std::collections::HashMap;

use crate::error::{DpuFault, SimError};
use crate::geometry::{PimConfig, MAX_TASKLETS, PIPELINE_DEPTH};
use crate::kernel::KernelImage;
use crate::mram::MramBank;
use crate::wram::Wram;

/// Address of the MRAM heap (`DPU_MRAM_HEAP_POINTER` in the SDK).
pub const MRAM_HEAP_BASE: u64 = 0;

/// Maximum bytes a single MRAM↔WRAM DMA transfer may move; larger requests
/// are split (and charged) in 2 KiB chunks like the hardware's `mram_read`.
pub const DMA_MAX: usize = 2048;

/// Lifecycle state of a DPU, as visible through the control interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DpuState {
    /// No program running.
    Idle,
    /// A program is executing (visible while polling from another thread).
    Running,
    /// The last launch completed successfully.
    Done,
    /// The last launch faulted.
    Fault(DpuFault),
}

/// Outcome of one DPU launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchReport {
    /// Total cycles consumed by the launch (pipeline model + DMA).
    pub cycles: u64,
    /// Number of barrier-delimited parallel phases executed.
    pub phases: u64,
    /// Total instructions charged across tasklets.
    pub instructions: u64,
}

/// One DRAM Processing Unit.
#[derive(Debug)]
pub struct Dpu {
    mram: MramBank,
    wram: Wram,
    iram_capacity: usize,
    loaded: Option<KernelImage>,
    symbols: HashMap<String, Vec<u8>>,
    state: DpuState,
}

impl Dpu {
    /// Creates a DPU with the geometry from `cfg`.
    #[must_use]
    pub fn new(cfg: &PimConfig) -> Self {
        Dpu {
            mram: MramBank::new(cfg.mram_size),
            wram: Wram::new(cfg.wram_size),
            iram_capacity: cfg.iram_size,
            loaded: None,
            symbols: HashMap::new(),
            state: DpuState::Idle,
        }
    }

    /// The MRAM bank.
    #[must_use]
    pub fn mram(&self) -> &MramBank {
        &self.mram
    }

    /// Mutable access to the MRAM bank (host-side transfers land here).
    pub fn mram_mut(&mut self) -> &mut MramBank {
        &mut self.mram
    }

    /// Currently loaded program image, if any.
    #[must_use]
    pub fn loaded_image(&self) -> Option<&KernelImage> {
        self.loaded.as_ref()
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> &DpuState {
        &self.state
    }

    /// Loads a program image: checks the IRAM footprint and (re)initializes
    /// the image's host symbols to zero.
    ///
    /// # Errors
    ///
    /// [`SimError::IramOverflow`] if the image exceeds IRAM capacity.
    pub fn load(&mut self, image: KernelImage) -> Result<(), SimError> {
        if image.iram_bytes > self.iram_capacity {
            return Err(SimError::IramOverflow {
                image: image.iram_bytes,
                capacity: self.iram_capacity,
            });
        }
        self.symbols.clear();
        for s in &image.symbols {
            self.symbols.insert(s.name.clone(), vec![0u8; s.size]);
        }
        self.loaded = Some(image);
        self.state = DpuState::Idle;
        Ok(())
    }

    /// Copies host bytes into a symbol (`dpu_copy_to` on a symbol).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownSymbol`] or [`SimError::SymbolSizeMismatch`].
    pub fn write_symbol(&mut self, name: &str, bytes: &[u8]) -> Result<(), SimError> {
        let slot = self
            .symbols
            .get_mut(name)
            .ok_or_else(|| SimError::UnknownSymbol(name.to_string()))?;
        if slot.len() != bytes.len() {
            return Err(SimError::SymbolSizeMismatch {
                name: name.to_string(),
                expected: slot.len(),
                got: bytes.len(),
            });
        }
        slot.copy_from_slice(bytes);
        Ok(())
    }

    /// Copies a symbol out to host bytes (`dpu_copy_from` on a symbol).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownSymbol`] or [`SimError::SymbolSizeMismatch`].
    pub fn read_symbol(&self, name: &str, bytes: &mut [u8]) -> Result<(), SimError> {
        let slot = self
            .symbols
            .get(name)
            .ok_or_else(|| SimError::UnknownSymbol(name.to_string()))?;
        if slot.len() != bytes.len() {
            return Err(SimError::SymbolSizeMismatch {
                name: name.to_string(),
                expected: slot.len(),
                got: bytes.len(),
            });
        }
        bytes.copy_from_slice(slot);
        Ok(())
    }

    /// Runs the loaded program with `nr_tasklets` tasklets.
    ///
    /// # Errors
    ///
    /// * [`SimError::NoProgramLoaded`] if nothing is loaded,
    /// * [`SimError::InvalidTasklets`] for a tasklet count outside `1..=24`,
    /// * [`SimError::Fault`] if the program faults (the DPU is left in the
    ///   [`DpuState::Fault`] state, as the CI would report).
    pub fn launch(
        &mut self,
        kernel: &dyn crate::kernel::DpuKernel,
        nr_tasklets: usize,
    ) -> Result<LaunchReport, SimError> {
        if self.loaded.is_none() {
            return Err(SimError::NoProgramLoaded);
        }
        if nr_tasklets == 0 || nr_tasklets > MAX_TASKLETS {
            return Err(SimError::InvalidTasklets(nr_tasklets));
        }
        self.state = DpuState::Running;
        self.wram.reset();
        let (result, cycles, phases, instructions) = {
            let mut ctx = DpuContext {
                dpu: self,
                nr_tasklets,
                cycles: 0,
                phases: 0,
                instructions: 0,
            };
            let r = kernel.run(&mut ctx);
            (r, ctx.cycles, ctx.phases, ctx.instructions)
        };
        match result {
            Ok(()) => {
                self.state = DpuState::Done;
                Ok(LaunchReport { cycles, phases, instructions })
            }
            Err(fault) => {
                self.state = DpuState::Fault(fault.clone());
                Err(SimError::Fault(fault))
            }
        }
    }

    /// Captures the DPU's persistent state: resident MRAM, host symbols and
    /// the loaded image — the checkpoint half of the paper's future-work
    /// pause/resume mechanism (§7: "checkpoint-restore mechanisms could
    /// enable dynamic workload consolidation without hardware changes").
    #[must_use]
    pub fn snapshot(&self) -> DpuSnapshot {
        let mut mram = vec![0u8; self.mram.resident_bytes()];
        if !mram.is_empty() {
            self.mram.read(0, &mut mram).expect("resident range is in bounds");
        }
        DpuSnapshot {
            mram,
            symbols: self.symbols.clone(),
            loaded: self.loaded.clone(),
        }
    }

    /// Restores a previously captured snapshot, replacing all content.
    ///
    /// # Errors
    ///
    /// [`SimError::MramOutOfBounds`] if the snapshot was taken on a DPU
    /// with a larger MRAM bank.
    pub fn restore(&mut self, snap: &DpuSnapshot) -> Result<(), SimError> {
        self.reset_content();
        if !snap.mram.is_empty() {
            self.mram.write(0, &snap.mram)?;
        }
        self.symbols = snap.symbols.clone();
        self.loaded = snap.loaded.clone();
        self.state = DpuState::Idle;
        Ok(())
    }

    /// Zeroes MRAM, WRAM accounting and symbols — the manager's erase step.
    pub fn reset_content(&mut self) {
        self.mram.reset();
        self.wram.reset();
        for v in self.symbols.values_mut() {
            v.iter_mut().for_each(|b| *b = 0);
        }
        self.state = DpuState::Idle;
    }
}

/// A captured DPU state (resident MRAM, host symbols, loaded image).
#[derive(Debug, Clone)]
pub struct DpuSnapshot {
    mram: Vec<u8>,
    symbols: HashMap<String, Vec<u8>>,
    loaded: Option<KernelImage>,
}

impl DpuSnapshot {
    /// Resident MRAM bytes captured.
    #[must_use]
    pub fn mram_bytes(&self) -> usize {
        self.mram.len()
    }

    /// Bytes that differ from `base`: the dirty set a pre-copy migration
    /// must re-send after shipping `base` as its warm round. Counts
    /// byte-wise MRAM mismatches (residency growth/shrink counts in
    /// full), changed or new host-symbol payloads, and the loaded kernel
    /// image's IRAM footprint when the image changed.
    #[must_use]
    pub fn diff_bytes(&self, base: &DpuSnapshot) -> u64 {
        let common = self.mram.len().min(base.mram.len());
        let mut dirty = self.mram[..common]
            .iter()
            .zip(&base.mram[..common])
            .filter(|(a, b)| a != b)
            .count() as u64;
        dirty += (self.mram.len() - common) as u64;
        dirty += (base.mram.len() - common) as u64;
        for (name, payload) in &self.symbols {
            match base.symbols.get(name) {
                Some(prev) if prev == payload => {}
                _ => dirty += payload.len() as u64,
            }
        }
        let image_name = |s: &DpuSnapshot| s.loaded.as_ref().map(|k| k.name.clone());
        if image_name(self) != image_name(base) {
            dirty += self.loaded.as_ref().map_or(0, |k| k.iram_bytes as u64);
        }
        dirty
    }
}

/// Execution context handed to a kernel's entry point.
///
/// Provides host-symbol access and the [`parallel`](DpuContext::parallel)
/// phase combinator. Created by [`Dpu::launch`]; not constructible directly.
#[derive(Debug)]
pub struct DpuContext<'a> {
    dpu: &'a mut Dpu,
    nr_tasklets: usize,
    cycles: u64,
    phases: u64,
    instructions: u64,
}

impl<'a> DpuContext<'a> {
    /// Number of tasklets this launch runs with.
    #[must_use]
    pub fn nr_tasklets(&self) -> usize {
        self.nr_tasklets
    }

    /// MRAM capacity of this DPU.
    #[must_use]
    pub fn mram_size(&self) -> u64 {
        self.dpu.mram.capacity()
    }

    /// Reads a `u32` host symbol.
    ///
    /// # Errors
    ///
    /// Faults if the symbol is missing or not 4 bytes.
    pub fn host_u32(&self, name: &str) -> Result<u32, DpuFault> {
        let mut b = [0u8; 4];
        self.dpu
            .read_symbol(name, &mut b)
            .map_err(|e| DpuFault::new(e.to_string()))?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a `u64` host symbol.
    ///
    /// # Errors
    ///
    /// Faults if the symbol is missing or not 8 bytes.
    pub fn host_u64(&self, name: &str) -> Result<u64, DpuFault> {
        let mut b = [0u8; 8];
        self.dpu
            .read_symbol(name, &mut b)
            .map_err(|e| DpuFault::new(e.to_string()))?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a `u32` host symbol.
    ///
    /// # Errors
    ///
    /// Faults if the symbol is missing or not 4 bytes.
    pub fn set_host_u32(&mut self, name: &str, v: u32) -> Result<(), DpuFault> {
        self.dpu
            .write_symbol(name, &v.to_le_bytes())
            .map_err(|e| DpuFault::new(e.to_string()))
    }

    /// Writes a `u64` host symbol.
    ///
    /// # Errors
    ///
    /// Faults if the symbol is missing or not 8 bytes.
    pub fn set_host_u64(&mut self, name: &str, v: u64) -> Result<(), DpuFault> {
        self.dpu
            .write_symbol(name, &v.to_le_bytes())
            .map_err(|e| DpuFault::new(e.to_string()))
    }

    /// Runs one barrier-delimited parallel phase: `f` executes once per
    /// tasklet (ids `0..nr_tasklets`), and the phase's cycles are charged
    /// according to the pipeline law documented at module level.
    ///
    /// # Errors
    ///
    /// Propagates the first tasklet fault.
    pub fn parallel<F>(&mut self, mut f: F) -> Result<(), DpuFault>
    where
        F: FnMut(&mut TaskletCtx<'_>) -> Result<(), DpuFault>,
    {
        let n = self.nr_tasklets;
        let mut sum_instr: u64 = 0;
        let mut max_instr: u64 = 0;
        let mut sum_dma: u64 = 0;
        for id in 0..n {
            let mut tc = TaskletCtx {
                dpu: &mut *self.dpu,
                id,
                nr_tasklets: n,
                instrs: 0,
                dma_cycles: 0,
            };
            f(&mut tc)?;
            sum_instr += tc.instrs;
            max_instr = max_instr.max(tc.instrs);
            sum_dma += tc.dma_cycles;
        }
        let compute = sum_instr.max(PIPELINE_DEPTH.saturating_mul(max_instr));
        self.cycles = self.cycles.saturating_add(compute.max(sum_dma));
        self.phases += 1;
        self.instructions += sum_instr;
        Ok(())
    }

    /// Runs a phase on tasklet 0 only (the common
    /// `if (me() == 0) { ... } barrier_wait(...)` idiom).
    ///
    /// # Errors
    ///
    /// Propagates a tasklet fault.
    pub fn single<F>(&mut self, mut f: F) -> Result<(), DpuFault>
    where
        F: FnMut(&mut TaskletCtx<'_>) -> Result<(), DpuFault>,
    {
        let mut tc = TaskletCtx {
            dpu: &mut *self.dpu,
            id: 0,
            nr_tasklets: self.nr_tasklets,
            instrs: 0,
            dma_cycles: 0,
        };
        f(&mut tc)?;
        let compute = tc.instrs.saturating_mul(PIPELINE_DEPTH);
        self.cycles = self.cycles.saturating_add(compute.max(tc.dma_cycles));
        self.phases += 1;
        self.instructions += tc.instrs;
        Ok(())
    }
}

/// Per-tasklet view of the DPU inside a parallel phase.
#[derive(Debug)]
pub struct TaskletCtx<'a> {
    dpu: &'a mut Dpu,
    id: usize,
    nr_tasklets: usize,
    instrs: u64,
    dma_cycles: u64,
}

impl<'a> TaskletCtx<'a> {
    /// This tasklet's id (`me()` in the UPMEM runtime).
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of tasklets in the launch.
    #[must_use]
    pub fn nr_tasklets(&self) -> usize {
        self.nr_tasklets
    }

    /// MRAM capacity of this DPU.
    #[must_use]
    pub fn mram_size(&self) -> u64 {
        self.dpu.mram.capacity()
    }

    /// Charges `n` pipeline instructions to this tasklet. Kernels call this
    /// for their compute loops (the MRAM helpers charge automatically).
    pub fn charge(&mut self, n: u64) {
        self.instrs = self.instrs.saturating_add(n);
    }

    fn charge_dma(&mut self, bytes: usize) {
        // Cost model mirror: fixed cost per <=2 KiB transfer + per-8-byte
        // cost; constants are mirrored in `simkit::CostModel` for the
        // host-side conversion to time.
        let chunks = bytes.div_ceil(DMA_MAX).max(1) as u64;
        let fixed = 77u64;
        let per8 = 4u64;
        self.dma_cycles = self
            .dma_cycles
            .saturating_add(chunks * fixed + (bytes as u64).div_ceil(8) * per8);
        // Issuing a DMA also costs a handful of pipeline instructions.
        self.charge(4 * chunks);
    }

    /// DMA from MRAM into a WRAM buffer (`mram_read`).
    ///
    /// # Errors
    ///
    /// Faults on an out-of-bounds MRAM access.
    pub fn mram_read(&mut self, addr: u64, dst: &mut [u8]) -> Result<(), DpuFault> {
        self.charge_dma(dst.len());
        self.dpu
            .mram
            .read(addr, dst)
            .map_err(|e| DpuFault::in_tasklet(self.id, e.to_string()))
    }

    /// DMA from a WRAM buffer into MRAM (`mram_write`).
    ///
    /// # Errors
    ///
    /// Faults on an out-of-bounds MRAM access.
    pub fn mram_write(&mut self, addr: u64, src: &[u8]) -> Result<(), DpuFault> {
        self.charge_dma(src.len());
        self.dpu
            .mram
            .write(addr, src)
            .map_err(|e| DpuFault::in_tasklet(self.id, e.to_string()))
    }

    /// Reads little-endian `u32`s from MRAM.
    ///
    /// # Errors
    ///
    /// Faults on an out-of-bounds MRAM access.
    pub fn mram_read_u32s(&mut self, addr: u64, dst: &mut [u32]) -> Result<(), DpuFault> {
        let mut raw = vec![0u8; dst.len() * 4];
        self.mram_read(addr, &mut raw)?;
        for (i, w) in dst.iter_mut().enumerate() {
            *w = u32::from_le_bytes(raw[i * 4..i * 4 + 4].try_into().expect("4-byte chunk"));
        }
        Ok(())
    }

    /// Writes little-endian `u32`s to MRAM.
    ///
    /// # Errors
    ///
    /// Faults on an out-of-bounds MRAM access.
    pub fn mram_write_u32s(&mut self, addr: u64, src: &[u32]) -> Result<(), DpuFault> {
        let mut raw = Vec::with_capacity(src.len() * 4);
        for w in src {
            raw.extend_from_slice(&w.to_le_bytes());
        }
        self.mram_write(addr, &raw)
    }

    /// Reads little-endian `u64`s from MRAM.
    ///
    /// # Errors
    ///
    /// Faults on an out-of-bounds MRAM access.
    pub fn mram_read_u64s(&mut self, addr: u64, dst: &mut [u64]) -> Result<(), DpuFault> {
        let mut raw = vec![0u8; dst.len() * 8];
        self.mram_read(addr, &mut raw)?;
        for (i, w) in dst.iter_mut().enumerate() {
            *w = u64::from_le_bytes(raw[i * 8..i * 8 + 8].try_into().expect("8-byte chunk"));
        }
        Ok(())
    }

    /// Writes little-endian `u64`s to MRAM.
    ///
    /// # Errors
    ///
    /// Faults on an out-of-bounds MRAM access.
    pub fn mram_write_u64s(&mut self, addr: u64, src: &[u64]) -> Result<(), DpuFault> {
        let mut raw = Vec::with_capacity(src.len() * 8);
        for w in src {
            raw.extend_from_slice(&w.to_le_bytes());
        }
        self.mram_write(addr, &raw)
    }

    /// Accounts a WRAM allocation of `bytes` (`mem_alloc`). The payload
    /// itself lives in an ordinary `Vec` owned by the kernel.
    ///
    /// # Errors
    ///
    /// Faults if WRAM is exhausted.
    pub fn wram_alloc(&mut self, bytes: usize) -> Result<(), DpuFault> {
        self.charge(2);
        self.dpu
            .wram
            .alloc(bytes)
            .map_err(|e| DpuFault::in_tasklet(self.id, e.to_string()))
    }

    /// Resets the WRAM heap (`mem_reset`), usually from tasklet 0.
    pub fn wram_reset(&mut self) {
        self.charge(1);
        self.dpu.wram.reset();
    }

    /// Reads a `u32` host symbol.
    ///
    /// # Errors
    ///
    /// Faults if the symbol is missing or not 4 bytes.
    pub fn host_u32(&mut self, name: &str) -> Result<u32, DpuFault> {
        self.charge(1);
        let mut b = [0u8; 4];
        self.dpu
            .read_symbol(name, &mut b)
            .map_err(|e| DpuFault::in_tasklet(self.id, e.to_string()))?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a `u64` host symbol.
    ///
    /// # Errors
    ///
    /// Faults if the symbol is missing or not 8 bytes.
    pub fn host_u64(&mut self, name: &str) -> Result<u64, DpuFault> {
        self.charge(1);
        let mut b = [0u8; 8];
        self.dpu
            .read_symbol(name, &mut b)
            .map_err(|e| DpuFault::in_tasklet(self.id, e.to_string()))?;
        Ok(u64::from_le_bytes(b))
    }

    /// Atomically adds to a `u32` host symbol (mutex-protected shared
    /// variable in the UPMEM runtime).
    ///
    /// # Errors
    ///
    /// Faults if the symbol is missing or not 4 bytes.
    pub fn add_host_u32(&mut self, name: &str, v: u32) -> Result<(), DpuFault> {
        let cur = self.host_u32(name)?;
        self.charge(3); // lock, add, unlock
        self.dpu
            .write_symbol(name, &cur.wrapping_add(v).to_le_bytes())
            .map_err(|e| DpuFault::in_tasklet(self.id, e.to_string()))
    }

    /// Atomically adds to a `u64` host symbol.
    ///
    /// # Errors
    ///
    /// Faults if the symbol is missing or not 8 bytes.
    pub fn add_host_u64(&mut self, name: &str, v: u64) -> Result<(), DpuFault> {
        let cur = self.host_u64(name)?;
        self.charge(3);
        self.dpu
            .write_symbol(name, &cur.wrapping_add(v).to_le_bytes())
            .map_err(|e| DpuFault::in_tasklet(self.id, e.to_string()))
    }

    /// Writes a `u32` host symbol (last writer wins, like a plain store).
    ///
    /// # Errors
    ///
    /// Faults if the symbol is missing or not 4 bytes.
    pub fn set_host_u32(&mut self, name: &str, v: u32) -> Result<(), DpuFault> {
        self.charge(1);
        self.dpu
            .write_symbol(name, &v.to_le_bytes())
            .map_err(|e| DpuFault::in_tasklet(self.id, e.to_string()))
    }

    /// Writes a `u64` host symbol.
    ///
    /// # Errors
    ///
    /// Faults if the symbol is missing or not 8 bytes.
    pub fn set_host_u64(&mut self, name: &str, v: u64) -> Result<(), DpuFault> {
        self.charge(1);
        self.dpu
            .write_symbol(name, &v.to_le_bytes())
            .map_err(|e| DpuFault::in_tasklet(self.id, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{DpuKernel, KernelImage, SymbolDef};

    struct CountZeroes;
    impl DpuKernel for CountZeroes {
        fn image(&self) -> KernelImage {
            KernelImage::new("count_zeroes", 2048)
                .with_symbol(SymbolDef::u32("zero_count"))
                .with_symbol(SymbolDef::u32("partition_size"))
        }
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
            let n = ctx.host_u32("partition_size")? as usize;
            let tasklets = ctx.nr_tasklets();
            ctx.parallel(|t| {
                let per = n / tasklets;
                let base = MRAM_HEAP_BASE + (t.id() * per * 4) as u64;
                t.wram_alloc(per * 4)?;
                let mut buf = vec![0u32; per];
                t.mram_read_u32s(base, &mut buf)?;
                let zeroes = buf.iter().filter(|v| **v == 0).count() as u32;
                t.charge(3 * per as u64);
                t.add_host_u32("zero_count", zeroes)?;
                Ok(())
            })
        }
    }

    fn dpu() -> Dpu {
        Dpu::new(&PimConfig::small())
    }

    #[test]
    fn launch_requires_loaded_program() {
        let mut d = dpu();
        let err = d.launch(&CountZeroes, 8).unwrap_err();
        assert!(matches!(err, SimError::NoProgramLoaded));
    }

    #[test]
    fn tasklet_count_validated() {
        let mut d = dpu();
        d.load(CountZeroes.image()).unwrap();
        assert!(matches!(d.launch(&CountZeroes, 0), Err(SimError::InvalidTasklets(0))));
        assert!(matches!(d.launch(&CountZeroes, 25), Err(SimError::InvalidTasklets(25))));
    }

    #[test]
    fn count_zeroes_end_to_end() {
        let mut d = dpu();
        d.load(CountZeroes.image()).unwrap();
        // 64 words: every 4th word zero -> 16 zeroes.
        let words: Vec<u32> = (0..64u32).map(|i| if i % 4 == 0 { 0 } else { i }).collect();
        let mut raw = Vec::new();
        for w in &words {
            raw.extend_from_slice(&w.to_le_bytes());
        }
        d.mram_mut().write(MRAM_HEAP_BASE, &raw).unwrap();
        d.write_symbol("partition_size", &64u32.to_le_bytes()).unwrap();
        let report = d.launch(&CountZeroes, 16).unwrap();
        assert!(report.cycles > 0);
        assert_eq!(report.phases, 1);
        let mut out = [0u8; 4];
        d.read_symbol("zero_count", &mut out).unwrap();
        assert_eq!(u32::from_le_bytes(out), 16);
        assert!(matches!(d.state(), DpuState::Done));
    }

    #[test]
    fn relaunch_resets_accumulator_symbols_only_on_load() {
        let mut d = dpu();
        d.load(CountZeroes.image()).unwrap();
        d.write_symbol("partition_size", &16u32.to_le_bytes()).unwrap();
        d.launch(&CountZeroes, 4).unwrap();
        let mut out = [0u8; 4];
        d.read_symbol("zero_count", &mut out).unwrap();
        let first = u32::from_le_bytes(out);
        // Launching again accumulates (host did not clear the symbol) —
        // matching real hardware where __host variables persist.
        d.launch(&CountZeroes, 4).unwrap();
        d.read_symbol("zero_count", &mut out).unwrap();
        assert_eq!(u32::from_le_bytes(out), first * 2);
        // Re-loading the image clears symbols.
        d.load(CountZeroes.image()).unwrap();
        d.read_symbol("zero_count", &mut out).unwrap();
        assert_eq!(u32::from_le_bytes(out), 0);
    }

    struct Faulty;
    impl DpuKernel for Faulty {
        fn image(&self) -> KernelImage {
            KernelImage::new("faulty", 64)
        }
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
            ctx.parallel(|t| {
                if t.id() == 2 {
                    Err(DpuFault::in_tasklet(t.id(), "synthetic fault"))
                } else {
                    Ok(())
                }
            })
        }
    }

    #[test]
    fn fault_surfaces_and_sets_state() {
        let mut d = dpu();
        d.load(Faulty.image()).unwrap();
        let err = d.launch(&Faulty, 4).unwrap_err();
        assert!(matches!(err, SimError::Fault(_)));
        assert!(matches!(d.state(), DpuState::Fault(_)));
    }

    struct OobRead;
    impl DpuKernel for OobRead {
        fn image(&self) -> KernelImage {
            KernelImage::new("oob", 64)
        }
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
            let size = ctx.mram_size();
            ctx.parallel(|t| {
                let mut b = [0u8; 16];
                t.mram_read(size - 8, &mut b)?;
                Ok(())
            })
        }
    }

    #[test]
    fn out_of_bounds_mram_access_faults() {
        let mut d = dpu();
        d.load(OobRead.image()).unwrap();
        assert!(matches!(d.launch(&OobRead, 1), Err(SimError::Fault(_))));
    }

    struct WramHog;
    impl DpuKernel for WramHog {
        fn image(&self) -> KernelImage {
            KernelImage::new("wram_hog", 64)
        }
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
            ctx.parallel(|t| t.wram_alloc(40 << 10))
        }
    }

    #[test]
    fn wram_exhaustion_faults_second_tasklet() {
        let mut d = dpu();
        d.load(WramHog.image()).unwrap();
        // 2 tasklets x 40 KiB > 64 KiB
        assert!(matches!(d.launch(&WramHog, 2), Err(SimError::Fault(_))));
        // 1 tasklet fits.
        d.load(WramHog.image()).unwrap();
        assert!(d.launch(&WramHog, 1).is_ok());
    }

    struct TenInstr;
    impl DpuKernel for TenInstr {
        fn image(&self) -> KernelImage {
            KernelImage::new("ten", 64)
        }
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
            ctx.parallel(|t| {
                t.charge(100);
                Ok(())
            })
        }
    }

    #[test]
    fn pipeline_law_below_and_above_11_tasklets() {
        // With < 11 tasklets, cycles = 11 * per-tasklet instructions
        // (pipeline underfilled); with >= 11, cycles = total instructions.
        for (tasklets, expect) in [(1usize, 1100u64), (4, 1100), (11, 1100), (16, 1600)] {
            let mut d = dpu();
            d.load(TenInstr.image()).unwrap();
            let r = d.launch(&TenInstr, tasklets).unwrap();
            assert_eq!(r.cycles, expect, "tasklets={tasklets}");
        }
    }

    #[test]
    fn iram_overflow_rejected() {
        let mut d = dpu();
        let img = KernelImage::new("big", 25 << 10);
        assert!(matches!(d.load(img), Err(SimError::IramOverflow { .. })));
    }

    #[test]
    fn symbol_size_mismatch_rejected() {
        let mut d = dpu();
        d.load(CountZeroes.image()).unwrap();
        assert!(matches!(
            d.write_symbol("zero_count", &[0u8; 8]),
            Err(SimError::SymbolSizeMismatch { .. })
        ));
        let mut small = [0u8; 2];
        assert!(d.read_symbol("zero_count", &mut small).is_err());
        assert!(matches!(d.write_symbol("nope", &[0; 4]), Err(SimError::UnknownSymbol(_))));
    }

    #[test]
    fn reset_content_clears_mram_and_symbols() {
        let mut d = dpu();
        d.load(CountZeroes.image()).unwrap();
        d.mram_mut().write(0, &[9; 32]).unwrap();
        d.write_symbol("partition_size", &7u32.to_le_bytes()).unwrap();
        d.reset_content();
        let mut buf = [1u8; 32];
        d.mram().read(0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 32]);
        let mut s = [9u8; 4];
        d.read_symbol("partition_size", &mut s).unwrap();
        assert_eq!(u32::from_le_bytes(s), 0);
    }
}
