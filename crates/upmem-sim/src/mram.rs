//! The per-DPU MRAM bank.
//!
//! Each DPU owns a 64 MB DRAM bank. Allocating 64 MB × 512 DPUs of real
//! memory up front would need 32 GiB, so the bank is a logical-capacity
//! buffer that grows physically only up to its high-water mark. Reads beyond
//! the high-water mark observe zeros, like freshly reset DRAM.

use crate::error::SimError;

/// A lazily allocated MRAM bank with a fixed logical capacity.
///
/// # Example
///
/// ```
/// use upmem_sim::mram::MramBank;
///
/// let mut bank = MramBank::new(1 << 20);
/// bank.write(4096, b"hello").unwrap();
/// let mut buf = [0u8; 5];
/// bank.read(4096, &mut buf).unwrap();
/// assert_eq!(&buf, b"hello");
/// ```
#[derive(Debug, Clone)]
pub struct MramBank {
    data: Vec<u8>,
    capacity: u64,
}

impl MramBank {
    /// Creates a bank with the given logical capacity in bytes.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        MramBank { data: Vec::new(), capacity }
    }

    /// Logical capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Physically allocated bytes (the high-water mark).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.data.len()
    }

    fn check(&self, offset: u64, len: u64) -> Result<(), SimError> {
        let end = offset.checked_add(len);
        match end {
            Some(end) if end <= self.capacity => Ok(()),
            _ => Err(SimError::MramOutOfBounds { offset, len, capacity: self.capacity }),
        }
    }

    /// Writes `src` at `offset`.
    ///
    /// # Errors
    ///
    /// [`SimError::MramOutOfBounds`] if the write exceeds the capacity.
    pub fn write(&mut self, offset: u64, src: &[u8]) -> Result<(), SimError> {
        self.check(offset, src.len() as u64)?;
        let end = offset as usize + src.len();
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
        self.data[offset as usize..end].copy_from_slice(src);
        Ok(())
    }

    /// Reads into `dst` from `offset`. Bytes above the high-water mark read
    /// as zero.
    ///
    /// # Errors
    ///
    /// [`SimError::MramOutOfBounds`] if the read exceeds the capacity.
    pub fn read(&self, offset: u64, dst: &mut [u8]) -> Result<(), SimError> {
        self.check(offset, dst.len() as u64)?;
        let start = offset as usize;
        let resident_end = self.data.len();
        for (i, d) in dst.iter_mut().enumerate() {
            let pos = start + i;
            *d = if pos < resident_end { self.data[pos] } else { 0 };
        }
        Ok(())
    }

    /// Zeroes the entire bank and releases physical memory — the manager's
    /// rank reset (NANA → NAAV erase step) uses this.
    pub fn reset(&mut self) {
        self.data = Vec::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lazy_allocation_tracks_high_water() {
        let mut bank = MramBank::new(1 << 20);
        assert_eq!(bank.resident_bytes(), 0);
        bank.write(1000, &[1, 2, 3]).unwrap();
        assert_eq!(bank.resident_bytes(), 1003);
        bank.write(10, &[9]).unwrap();
        assert_eq!(bank.resident_bytes(), 1003);
    }

    #[test]
    fn reads_beyond_high_water_are_zero() {
        let bank = MramBank::new(4096);
        let mut buf = [0xAAu8; 8];
        bank.read(100, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut bank = MramBank::new(16);
        assert!(bank.write(15, &[0, 0]).is_err());
        assert!(bank.write(16, &[0]).is_err());
        assert!(bank.write(u64::MAX, &[0]).is_err()); // overflow-safe
        let mut buf = [0u8; 4];
        assert!(bank.read(14, &mut buf).is_err());
        // Exactly at the edge is fine.
        assert!(bank.write(12, &[1, 2, 3, 4]).is_ok());
    }

    #[test]
    fn reset_releases_memory_and_zeroes_content() {
        let mut bank = MramBank::new(4096);
        bank.write(0, &[7; 128]).unwrap();
        bank.reset();
        assert_eq!(bank.resident_bytes(), 0);
        let mut buf = [1u8; 128];
        bank.read(0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 128]);
    }

    proptest! {
        /// Round trip: whatever is written is read back, at any offset.
        #[test]
        fn write_read_roundtrip(
            offset in 0u64..8192,
            data in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let mut bank = MramBank::new(16 << 10);
            bank.write(offset, &data).unwrap();
            let mut back = vec![0u8; data.len()];
            bank.read(offset, &mut back).unwrap();
            prop_assert_eq!(back, data);
        }

        /// Non-overlapping writes do not disturb each other.
        #[test]
        fn disjoint_writes_independent(
            a in proptest::collection::vec(any::<u8>(), 1..128),
            b in proptest::collection::vec(any::<u8>(), 1..128),
        ) {
            let mut bank = MramBank::new(16 << 10);
            let off_b = 1024;
            bank.write(0, &a).unwrap();
            bank.write(off_b, &b).unwrap();
            let mut back_a = vec![0u8; a.len()];
            bank.read(0, &mut back_a).unwrap();
            prop_assert_eq!(back_a, a);
        }
    }
}
