//! The machine: ranks plus the kernel registry.

use std::sync::Arc;

use crate::error::SimError;
use crate::geometry::PimConfig;
use crate::kernel::{DpuKernel, KernelRegistry};
use crate::rank::Rank;

/// A simulated host machine with UPMEM DIMMs installed.
///
/// `PimMachine` is cheaply cloneable through `Arc` sharing; the native
/// driver, the vPIM backend and the manager all hold references to the same
/// machine, exactly like processes sharing one physical host.
///
/// # Example
///
/// ```
/// use upmem_sim::{PimConfig, PimMachine};
///
/// let machine = PimMachine::new(PimConfig::small());
/// assert_eq!(machine.rank_count(), 2);
/// assert!(machine.rank(2).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct PimMachine {
    config: PimConfig,
    ranks: Vec<Arc<Rank>>,
    registry: KernelRegistry,
}

impl PimMachine {
    /// Builds a machine from a configuration.
    #[must_use]
    pub fn new(config: PimConfig) -> Self {
        let ranks = (0..config.ranks)
            .map(|i| Arc::new(Rank::new(i, &config)))
            .collect();
        PimMachine {
            config,
            ranks,
            registry: KernelRegistry::new(),
        }
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &PimConfig {
        &self.config
    }

    /// Number of installed ranks.
    #[must_use]
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// A shared handle to rank `i`.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidRank`] for an out-of-range index.
    pub fn rank(&self, i: usize) -> Result<Arc<Rank>, SimError> {
        self.ranks.get(i).cloned().ok_or(SimError::InvalidRank(i))
    }

    /// All ranks.
    #[must_use]
    pub fn ranks(&self) -> &[Arc<Rank>] {
        &self.ranks
    }

    /// The kernel registry (`dpu_load` source).
    #[must_use]
    pub fn registry(&self) -> &KernelRegistry {
        &self.registry
    }

    /// Registers a DPU kernel so `dpu_load` can find it by name.
    pub fn register_kernel(&self, kernel: Arc<dyn DpuKernel>) {
        self.registry.register(kernel);
    }

    /// Total functional DPUs.
    #[must_use]
    pub fn total_dpus(&self) -> usize {
        self.ranks.iter().map(|r| r.dpu_count()).sum()
    }

    /// Installs the fault-injection plane on every rank (see
    /// [`Rank::install_fault_plane`]). Clones share ranks, so installing
    /// once covers every handle to this machine.
    pub fn install_fault_plane(&self, plane: &Arc<simkit::FaultPlane>) {
        for r in &self.ranks {
            r.install_fault_plane(Arc::clone(plane));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_builds_configured_ranks() {
        let m = PimMachine::new(PimConfig::paper_testbed());
        assert_eq!(m.rank_count(), 8);
        assert_eq!(m.total_dpus(), 480);
        assert_eq!(m.rank(0).unwrap().dpu_count(), 60);
    }

    #[test]
    fn rank_handles_are_shared() {
        let m = PimMachine::new(PimConfig::small());
        let a = m.rank(0).unwrap();
        let b = m.rank(0).unwrap();
        a.write_dpu(0, 0, &[42]).unwrap();
        let mut buf = [0u8];
        b.read_dpu(0, 0, &mut buf).unwrap();
        assert_eq!(buf[0], 42);
    }

    #[test]
    fn invalid_rank_is_an_error() {
        let m = PimMachine::new(PimConfig::small());
        assert!(matches!(m.rank(9), Err(SimError::InvalidRank(9))));
    }

    #[test]
    fn machine_clone_shares_state() {
        let m = PimMachine::new(PimConfig::small());
        let m2 = m.clone();
        m.rank(1).unwrap().write_dpu(2, 8, &[7]).unwrap();
        let mut buf = [0u8];
        m2.rank(1).unwrap().read_dpu(2, 8, &mut buf).unwrap();
        assert_eq!(buf[0], 7);
    }
}
