//! Error types for the hardware simulator.

use core::fmt;

use simkit::{ErrorKind, HasErrorKind};

/// An error raised by the simulated hardware or by invalid host requests.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An MRAM access fell outside the bank.
    MramOutOfBounds {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Bank capacity.
        capacity: u64,
    },
    /// A WRAM allocation exceeded the working memory.
    WramOverflow {
        /// Bytes requested.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
    /// A kernel image does not fit in IRAM.
    IramOverflow {
        /// Image size in bytes.
        image: usize,
        /// IRAM capacity.
        capacity: usize,
    },
    /// A rank index beyond the machine.
    InvalidRank(usize),
    /// A DPU index beyond the rank's functional DPUs.
    InvalidDpu(usize),
    /// A launch was requested with an unsupported tasklet count.
    InvalidTasklets(usize),
    /// `dpu_launch` without a loaded program.
    NoProgramLoaded,
    /// A kernel name was not found in the registry.
    UnknownKernel(String),
    /// A host symbol was not found on the DPU.
    UnknownSymbol(String),
    /// Read/write of a symbol with mismatched size.
    SymbolSizeMismatch {
        /// The symbol name.
        name: String,
        /// Size registered on the DPU.
        expected: usize,
        /// Size of the host buffer.
        got: usize,
    },
    /// A DPU program faulted during execution.
    Fault(DpuFault),
    /// A rank operation exceeded the 4 GB hardware transfer limit.
    XferTooLarge(u64),
    /// Operation on a rank currently executing a program.
    RankBusy,
    /// A quiescence-requiring operation (e.g. a safe-point snapshot) found
    /// DPUs still executing.
    NotQuiescent {
        /// Number of DPUs observed in the Running state.
        running: usize,
    },
    /// A transient failure raised by the fault-injection plane inside the
    /// simulated hardware (a CI op or MRAM DMA that "failed" on the wire).
    /// Retrying the operation is always safe.
    Injected {
        /// The fault point that fired (e.g. `sim.mram.dma`).
        point: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MramOutOfBounds { offset, len, capacity } => write!(
                f,
                "mram access out of bounds: offset {offset} len {len} exceeds capacity {capacity}"
            ),
            SimError::WramOverflow { requested, available } => write!(
                f,
                "wram allocation of {requested} bytes exceeds {available} available"
            ),
            SimError::IramOverflow { image, capacity } => {
                write!(f, "kernel image of {image} bytes exceeds {capacity} bytes of iram")
            }
            SimError::InvalidRank(r) => write!(f, "invalid rank index {r}"),
            SimError::InvalidDpu(d) => write!(f, "invalid dpu index {d}"),
            SimError::InvalidTasklets(n) => {
                write!(f, "invalid tasklet count {n} (must be 1..=24)")
            }
            SimError::NoProgramLoaded => write!(f, "no program loaded on the dpu"),
            SimError::UnknownKernel(name) => write!(f, "unknown kernel `{name}`"),
            SimError::UnknownSymbol(name) => write!(f, "unknown host symbol `{name}`"),
            SimError::SymbolSizeMismatch { name, expected, got } => write!(
                f,
                "symbol `{name}` has size {expected} but host buffer is {got} bytes"
            ),
            SimError::Fault(fault) => write!(f, "dpu fault: {fault}"),
            SimError::XferTooLarge(bytes) => {
                write!(f, "rank transfer of {bytes} bytes exceeds the 4 GB hardware limit")
            }
            SimError::RankBusy => write!(f, "rank is busy executing a program"),
            SimError::NotQuiescent { running } => {
                write!(f, "rank is not quiescent: {running} dpus still running")
            }
            SimError::Injected { point } => {
                write!(f, "transient hardware failure (injected at {point})")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl HasErrorKind for SimError {
    fn kind(&self) -> ErrorKind {
        match self {
            SimError::MramOutOfBounds { .. } => ErrorKind::OutOfBounds,
            SimError::WramOverflow { .. }
            | SimError::IramOverflow { .. }
            | SimError::XferTooLarge(_) => ErrorKind::ResourceExhausted,
            SimError::InvalidRank(_)
            | SimError::InvalidDpu(_)
            | SimError::InvalidTasklets(_)
            | SimError::SymbolSizeMismatch { .. } => ErrorKind::InvalidInput,
            SimError::UnknownKernel(_) | SimError::UnknownSymbol(_) => ErrorKind::NotFound,
            SimError::NoProgramLoaded => ErrorKind::Unavailable,
            SimError::Fault(_) => ErrorKind::Fault,
            SimError::RankBusy | SimError::NotQuiescent { .. } => ErrorKind::Busy,
            SimError::Injected { .. } => ErrorKind::Injected,
        }
    }
}

impl From<DpuFault> for SimError {
    fn from(fault: DpuFault) -> Self {
        SimError::Fault(fault)
    }
}

/// A fault raised from inside a DPU program (the hardware analogue is the
/// DPU entering the FAULT state, readable through the control interface).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpuFault {
    /// Tasklet that faulted, if attributable.
    pub tasklet: Option<usize>,
    /// Human-readable fault description.
    pub message: String,
}

impl DpuFault {
    /// Creates a fault not attributed to a particular tasklet.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        DpuFault { tasklet: None, message: message.into() }
    }

    /// Creates a fault attributed to `tasklet`.
    #[must_use]
    pub fn in_tasklet(tasklet: usize, message: impl Into<String>) -> Self {
        DpuFault { tasklet: Some(tasklet), message: message.into() }
    }
}

impl fmt::Display for DpuFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.tasklet {
            Some(t) => write!(f, "tasklet {t}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for DpuFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SimError::MramOutOfBounds { offset: 10, len: 20, capacity: 16 };
        let s = e.to_string();
        assert!(s.contains("out of bounds"));
        assert!(s.contains("10"));
        let f = DpuFault::in_tasklet(3, "division by zero");
        assert_eq!(f.to_string(), "tasklet 3: division by zero");
    }

    #[test]
    fn fault_converts_to_sim_error() {
        let e: SimError = DpuFault::new("boom").into();
        assert!(matches!(e, SimError::Fault(_)));
    }

    #[test]
    fn kinds_classify_variants() {
        assert_eq!(
            SimError::MramOutOfBounds { offset: 10, len: 20, capacity: 16 }.kind(),
            ErrorKind::OutOfBounds
        );
        assert_eq!(
            SimError::WramOverflow { requested: 9, available: 1 }.kind(),
            ErrorKind::ResourceExhausted
        );
        assert_eq!(SimError::UnknownKernel("x".into()).kind(), ErrorKind::NotFound);
        assert_eq!(SimError::Fault(DpuFault::new("boom")).kind(), ErrorKind::Fault);
        assert_eq!(SimError::RankBusy.kind(), ErrorKind::Busy);
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
        assert_send_sync::<DpuFault>();
    }
}
