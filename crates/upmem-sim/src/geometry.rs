//! Hardware geometry constants and machine configuration.
//!
//! Values follow §2 of the paper: a rank holds 8 PIM chips of 8 DPUs each
//! (64 DPUs); every DPU has a 64 MB MRAM bank, 64 KB WRAM and 24 KB IRAM and
//! runs up to 24 tasklets at up to 400 MHz (the evaluation DIMMs run at
//! 350 MHz). The evaluation machine has 8 ranks; its first rank exposes only
//! 60 functional DPUs (hence the paper's 60/480-DPU configurations).

use serde::{Deserialize, Serialize};

/// DPUs per PIM chip.
pub const DPUS_PER_CHIP: usize = 8;
/// PIM chips per rank.
pub const CHIPS_PER_RANK: usize = 8;
/// DPUs per rank (8 chips × 8 DPUs).
pub const DPUS_PER_RANK: usize = DPUS_PER_CHIP * CHIPS_PER_RANK;
/// MRAM bank size per DPU: 64 MB.
pub const MRAM_SIZE: u64 = 64 << 20;
/// WRAM size per DPU: 64 KB.
pub const WRAM_SIZE: usize = 64 << 10;
/// IRAM size per DPU: 24 KB.
pub const IRAM_SIZE: usize = 24 << 10;
/// Maximum number of tasklets per DPU.
pub const MAX_TASKLETS: usize = 24;
/// Pipeline depth: a tasklet's consecutive instructions must be at least
/// this many cycles apart, so at least 11 tasklets are needed to keep the
/// pipeline full.
pub const PIPELINE_DEPTH: u64 = 11;
/// Page size used for transfer matrices (standard 4 KiB pages).
pub const PAGE_SIZE: usize = 4 << 10;
/// Maximum bytes one rank operation may move (§3.1: 4 GB hardware limit).
pub const MAX_RANK_XFER: u64 = 4 << 30;

/// Configuration of a simulated PIM machine.
///
/// # Example
///
/// ```
/// use upmem_sim::PimConfig;
///
/// let cfg = PimConfig::paper_testbed();
/// assert_eq!(cfg.ranks, 8);
/// assert_eq!(cfg.total_dpus(), 480);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PimConfig {
    /// Number of ranks installed.
    pub ranks: usize,
    /// Functional DPUs in each rank (index = rank id). Ranks beyond the
    /// vector's length default to [`DPUS_PER_RANK`]. The paper's testbed has
    /// 60 functional DPUs in rank 0 due to defects.
    pub functional_dpus: Vec<usize>,
    /// MRAM bytes per DPU. Defaults to [`MRAM_SIZE`]; tests shrink this.
    pub mram_size: u64,
    /// WRAM bytes per DPU.
    pub wram_size: usize,
    /// IRAM bytes per DPU.
    pub iram_size: usize,
    /// DPU clock in MHz (350 on the evaluation DIMMs).
    pub freq_mhz: u64,
    /// When true, rank transfers really run the byte-interleaving transform
    /// (roundtrip-verified); when false only its cost is charged. Benches
    /// with large payloads disable it for wall-clock speed.
    pub verify_interleave: bool,
    /// Emulated DDR-bus occupancy for rank transfers, in wall-clock
    /// nanoseconds per KiB moved (0 = off, the default). When set, each
    /// `write_dpu`/`read_dpu` blocks the calling OS thread for
    /// `len * ddr_busy_ns_per_kb / 1024` ns, modeling the time a host
    /// thread is stuck driving the DDR bus on real UPMEM DIMMs. This is
    /// **wall-clock only** — virtual-time accounting never reads it — and
    /// exists so benches can demonstrate that parallel dispatch genuinely
    /// overlaps bus occupancy across ranks.
    #[serde(default)]
    pub ddr_busy_ns_per_kb: u64,
}

impl PimConfig {
    /// The paper's testbed: 8 ranks, 60 functional DPUs in rank 0 and 60 in
    /// the others too (480 total usable DPUs out of 512).
    #[must_use]
    pub fn paper_testbed() -> Self {
        PimConfig {
            ranks: 8,
            functional_dpus: vec![60; 8],
            mram_size: MRAM_SIZE,
            wram_size: WRAM_SIZE,
            iram_size: IRAM_SIZE,
            freq_mhz: 350,
            verify_interleave: true,
            ddr_busy_ns_per_kb: 0,
        }
    }

    /// A small machine for unit tests: 2 ranks × 8 DPUs × 1 MB MRAM.
    #[must_use]
    pub fn small() -> Self {
        PimConfig {
            ranks: 2,
            functional_dpus: vec![8, 8],
            mram_size: 1 << 20,
            wram_size: WRAM_SIZE,
            iram_size: IRAM_SIZE,
            freq_mhz: 350,
            verify_interleave: true,
            ddr_busy_ns_per_kb: 0,
        }
    }

    /// Number of functional DPUs in `rank`.
    #[must_use]
    pub fn dpus_in_rank(&self, rank: usize) -> usize {
        self.functional_dpus
            .get(rank)
            .copied()
            .unwrap_or(DPUS_PER_RANK)
            .min(DPUS_PER_RANK)
    }

    /// Total functional DPUs across the machine.
    #[must_use]
    pub fn total_dpus(&self) -> usize {
        (0..self.ranks).map(|r| self.dpus_in_rank(r)).sum()
    }

    /// Bytes of rank-mapped memory in one rank (full 64-DPU geometry; the
    /// manager resets the whole mapped window, not just functional DPUs).
    #[must_use]
    pub fn rank_mapped_bytes(&self) -> u64 {
        self.mram_size * DPUS_PER_RANK as u64
    }
}

impl Default for PimConfig {
    fn default() -> Self {
        PimConfig::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_matches_evaluation_section() {
        let cfg = PimConfig::paper_testbed();
        assert_eq!(cfg.ranks, 8);
        assert_eq!(cfg.dpus_in_rank(0), 60);
        assert_eq!(cfg.total_dpus(), 480);
        assert_eq!(cfg.freq_mhz, 350);
        // 8 GiB of rank-mapped memory per... no: 64 DPUs × 64 MB = 4 GiB.
        assert_eq!(cfg.rank_mapped_bytes(), 4 << 30);
    }

    #[test]
    fn dpus_beyond_vector_default_to_full_rank() {
        let cfg = PimConfig {
            ranks: 3,
            functional_dpus: vec![60],
            ..PimConfig::small()
        };
        assert_eq!(cfg.dpus_in_rank(0), 60);
        assert_eq!(cfg.dpus_in_rank(2), DPUS_PER_RANK);
    }

    #[test]
    fn functional_dpus_clamped_to_geometry() {
        let cfg = PimConfig {
            functional_dpus: vec![1000],
            ..PimConfig::small()
        };
        assert_eq!(cfg.dpus_in_rank(0), DPUS_PER_RANK);
    }

    #[test]
    fn geometry_constants() {
        assert_eq!(DPUS_PER_RANK, 64);
        assert_eq!(MRAM_SIZE, 64 << 20);
        assert_eq!(WRAM_SIZE, 64 << 10);
        assert_eq!(IRAM_SIZE, 24 << 10);
        assert_eq!(MAX_TASKLETS, 24);
        assert_eq!(PIPELINE_DEPTH, 11);
    }
}
