//! DPU program model.
//!
//! Real UPMEM DPU programs are C compiled to the DPU ISA and loaded into
//! IRAM as ELF images. The virtualization layer never inspects those
//! instructions — it only loads images and launches them — so this
//! reproduction represents a DPU program as a Rust [`DpuKernel`]: an SPMD
//! entry point run by every tasklet, with explicit MRAM↔WRAM staging and
//! cycle accounting (see [`crate::dpu`]).
//!
//! A [`KernelImage`] is the loadable artifact (name, IRAM footprint, host
//! symbols); the [`KernelRegistry`] plays the role of the filesystem the
//! host-side `dpu_load` reads binaries from.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::dpu::DpuContext;
use crate::error::{DpuFault, SimError};

/// A host-visible symbol exported by a DPU program (`__host` variables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolDef {
    /// Symbol name, e.g. `"zero_count"`.
    pub name: String,
    /// Size in bytes.
    pub size: usize,
}

impl SymbolDef {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: impl Into<String>, size: usize) -> Self {
        SymbolDef { name: name.into(), size }
    }

    /// A 4-byte symbol.
    #[must_use]
    pub fn u32(name: impl Into<String>) -> Self {
        SymbolDef::new(name, 4)
    }

    /// An 8-byte symbol.
    #[must_use]
    pub fn u64(name: impl Into<String>) -> Self {
        SymbolDef::new(name, 8)
    }
}

/// The loadable artifact of a DPU program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelImage {
    /// Program name; the key `dpu_load` looks up in the [`KernelRegistry`].
    pub name: String,
    /// Simulated IRAM footprint in bytes (checked against IRAM capacity).
    pub iram_bytes: usize,
    /// Host symbols the image exports.
    pub symbols: Vec<SymbolDef>,
}

impl KernelImage {
    /// Creates an image with the given name and footprint.
    #[must_use]
    pub fn new(name: impl Into<String>, iram_bytes: usize) -> Self {
        KernelImage { name: name.into(), iram_bytes, symbols: Vec::new() }
    }

    /// Adds a host symbol (builder style).
    #[must_use]
    pub fn with_symbol(mut self, def: SymbolDef) -> Self {
        self.symbols.push(def);
        self
    }
}

/// An SPMD DPU program.
///
/// Implementations describe their loadable [`KernelImage`] and provide the
/// entry point executed on launch. The entry point structures its work as
/// barrier-delimited parallel phases via [`DpuContext::parallel`].
///
/// # Example
///
/// ```
/// use upmem_sim::{DpuContext, DpuKernel};
/// use upmem_sim::kernel::{KernelImage, SymbolDef};
/// use upmem_sim::error::DpuFault;
///
/// struct Zeroes;
///
/// impl DpuKernel for Zeroes {
///     fn image(&self) -> KernelImage {
///         KernelImage::new("zeroes", 2048).with_symbol(SymbolDef::u32("count"))
///     }
///     fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
///         ctx.parallel(|t| {
///             t.charge(10);
///             Ok(())
///         })
///     }
/// }
/// ```
pub trait DpuKernel: Send + Sync {
    /// The loadable image for this program.
    fn image(&self) -> KernelImage;

    /// The SPMD entry point, executed once per launch.
    ///
    /// # Errors
    ///
    /// Returns a [`DpuFault`] to put the DPU in the FAULT state, exactly as
    /// a hardware fault would surface through the control interface.
    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault>;
}

/// The registry `dpu_load` resolves program names against.
///
/// Plays the role of the filesystem holding DPU ELF binaries.
#[derive(Clone, Default)]
pub struct KernelRegistry {
    inner: Arc<RwLock<HashMap<String, Arc<dyn DpuKernel>>>>,
}

impl fmt::Debug for KernelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self.inner.read().keys().cloned().collect();
        f.debug_struct("KernelRegistry").field("kernels", &names).finish()
    }
}

impl KernelRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        KernelRegistry::default()
    }

    /// Registers a kernel under its image name, replacing any previous
    /// kernel of the same name (like overwriting a binary on disk).
    pub fn register(&self, kernel: Arc<dyn DpuKernel>) {
        let name = kernel.image().name.clone();
        self.inner.write().insert(name, kernel);
    }

    /// Looks up a kernel by name.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownKernel`] if no kernel with that name exists.
    pub fn get(&self, name: &str) -> Result<Arc<dyn DpuKernel>, SimError> {
        self.inner
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| SimError::UnknownKernel(name.to_string()))
    }

    /// Names of all registered kernels (sorted, for stable output).
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl DpuKernel for Nop {
        fn image(&self) -> KernelImage {
            KernelImage::new("nop", 128)
        }
        fn run(&self, _ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
            Ok(())
        }
    }

    #[test]
    fn registry_roundtrip() {
        let reg = KernelRegistry::new();
        reg.register(Arc::new(Nop));
        assert!(reg.get("nop").is_ok());
        assert!(matches!(reg.get("missing"), Err(SimError::UnknownKernel(_))));
        assert_eq!(reg.names(), vec!["nop".to_string()]);
    }

    #[test]
    fn registry_replaces_same_name() {
        let reg = KernelRegistry::new();
        reg.register(Arc::new(Nop));
        reg.register(Arc::new(Nop));
        assert_eq!(reg.names().len(), 1);
    }

    #[test]
    fn image_builder() {
        let img = KernelImage::new("k", 1024)
            .with_symbol(SymbolDef::u32("a"))
            .with_symbol(SymbolDef::u64("b"));
        assert_eq!(img.symbols.len(), 2);
        assert_eq!(img.symbols[0].size, 4);
        assert_eq!(img.symbols[1].size, 8);
    }
}
