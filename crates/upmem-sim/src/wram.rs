//! The per-DPU working memory (WRAM) allocator.
//!
//! DPU programs stage data in 64 KB of WRAM shared by all tasklets. The
//! UPMEM runtime exposes a bump allocator (`mem_alloc`) reset by
//! `mem_reset`; we model exactly that: allocations only account capacity
//! (the payload lives in ordinary `Vec`s owned by the kernel), because the
//! virtualization layer never observes WRAM contents — only its capacity
//! limit, which we enforce.

use crate::error::SimError;

/// Capacity accounting for a DPU's working memory.
///
/// # Example
///
/// ```
/// use upmem_sim::wram::Wram;
///
/// let mut wram = Wram::new(64 << 10);
/// wram.alloc(1024).unwrap();
/// assert_eq!(wram.used(), 1024);
/// wram.reset();
/// assert_eq!(wram.used(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Wram {
    capacity: usize,
    used: usize,
}

impl Wram {
    /// Creates a WRAM of `capacity` bytes.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Wram { capacity, used: 0 }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    #[must_use]
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes still available.
    #[must_use]
    pub fn available(&self) -> usize {
        self.capacity - self.used
    }

    /// Bump-allocates `bytes` (8-byte aligned, like the UPMEM runtime).
    ///
    /// # Errors
    ///
    /// [`SimError::WramOverflow`] if the allocation does not fit.
    pub fn alloc(&mut self, bytes: usize) -> Result<(), SimError> {
        let aligned = bytes.div_ceil(8) * 8;
        if aligned > self.available() {
            return Err(SimError::WramOverflow { requested: bytes, available: self.available() });
        }
        self.used += aligned;
        Ok(())
    }

    /// Releases every allocation (`mem_reset`).
    pub fn reset(&mut self) {
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_until_full_then_overflow() {
        let mut w = Wram::new(64);
        w.alloc(32).unwrap();
        w.alloc(32).unwrap();
        let err = w.alloc(1).unwrap_err();
        assert!(matches!(err, SimError::WramOverflow { .. }));
    }

    #[test]
    fn allocations_are_8_byte_aligned() {
        let mut w = Wram::new(64);
        w.alloc(1).unwrap();
        assert_eq!(w.used(), 8);
        w.alloc(9).unwrap();
        assert_eq!(w.used(), 24);
    }

    #[test]
    fn zero_byte_alloc_is_free() {
        let mut w = Wram::new(8);
        w.alloc(0).unwrap();
        assert_eq!(w.used(), 0);
    }

    #[test]
    fn reset_restores_capacity() {
        let mut w = Wram::new(16);
        w.alloc(16).unwrap();
        w.reset();
        assert_eq!(w.available(), 16);
        w.alloc(16).unwrap();
    }

    proptest! {
        /// used + available == capacity at every step of a random schedule.
        #[test]
        fn accounting_invariant(allocs in proptest::collection::vec(0usize..512, 0..64)) {
            let mut w = Wram::new(4096);
            for a in allocs {
                let _ = w.alloc(a);
                prop_assert_eq!(w.used() + w.available(), w.capacity());
                prop_assert!(w.used() % 8 == 0);
            }
        }
    }
}
