//! The rank control interface (CI).
//!
//! Hosts drive a rank by writing command words to per-chip control/status
//! interfaces and reading status words back (§2, Fig. 1). vPIM forwards CI
//! operations from the guest to the backend, and their *count* is a first-
//! order driver of virtualization overhead (the checksum microbenchmark
//! issues 8 000–28 000 CI operations per run, §5.3.1), so the simulator
//! counts every CI access.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// A command written to a DPU's control interface slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CiCommand {
    /// Boot the loaded program with the given tasklet count.
    Boot {
        /// Number of tasklets to launch.
        nr_tasklets: u8,
    },
    /// Poll the run status.
    Poll,
    /// Soft-reset the DPU (clears the run state, not the memories).
    Reset,
}

/// A status word read back from the control interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CiStatus {
    /// DPU idle, no program has run since reset.
    Idle,
    /// Program running.
    Running,
    /// Program completed.
    Done,
    /// Program faulted.
    Fault,
}

/// Operation counters for one rank's control interface.
///
/// Shared (`&self`) because CI accesses arrive from multiple backend
/// threads concurrently.
#[derive(Debug, Default)]
pub struct CiCounters {
    ops: AtomicU64,
    boots: AtomicU64,
    polls: AtomicU64,
}

impl CiCounters {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        CiCounters::default()
    }

    /// Records one CI operation of the given kind.
    pub fn record(&self, cmd: CiCommand) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        match cmd {
            CiCommand::Boot { .. } => {
                self.boots.fetch_add(1, Ordering::Relaxed);
            }
            CiCommand::Poll => {
                self.polls.fetch_add(1, Ordering::Relaxed);
            }
            CiCommand::Reset => {}
        }
    }

    /// Records `n` poll operations at once (used when the SDK models a
    /// polling loop of known length).
    pub fn record_polls(&self, n: u64) {
        self.ops.fetch_add(n, Ordering::Relaxed);
        self.polls.fetch_add(n, Ordering::Relaxed);
    }

    /// Total CI operations so far.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Boot commands so far.
    #[must_use]
    pub fn boots(&self) -> u64 {
        self.boots.load(Ordering::Relaxed)
    }

    /// Poll commands so far.
    #[must_use]
    pub fn polls(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_kinds() {
        let c = CiCounters::new();
        c.record(CiCommand::Boot { nr_tasklets: 16 });
        c.record(CiCommand::Poll);
        c.record(CiCommand::Poll);
        c.record(CiCommand::Reset);
        assert_eq!(c.total(), 4);
        assert_eq!(c.boots(), 1);
        assert_eq!(c.polls(), 2);
    }

    #[test]
    fn bulk_polls() {
        let c = CiCounters::new();
        c.record_polls(1000);
        assert_eq!(c.total(), 1000);
        assert_eq!(c.polls(), 1000);
    }

    #[test]
    fn counters_are_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<CiCounters>();
    }
}
