//! Byte interleaving across the 8 chips of a rank.
//!
//! A rank answers a 64-bit DDR burst with one byte lane per chip, so host
//! buffers destined for a single DPU's MRAM must be *interleaved*: byte `i`
//! of the logical buffer lands in lane `i % 8`. The UPMEM SDK performs this
//! swizzle on the host CPU — it is the hot loop the vPIM authors rewrote
//! from Rust/AVX2 into C/AVX-512 (§4.2, "AVX512 and C enhancements").
//!
//! Two functionally identical implementations are provided:
//!
//! * [`interleave_scalar`] / [`deinterleave_scalar`] — a deliberately
//!   straightforward per-byte loop, standing in for the slow path
//!   (`vPIM-rust`);
//! * [`interleave_fast`] / [`deinterleave_fast`] — a word-at-a-time
//!   safe-Rust swizzle processing a full 64-byte line per iteration,
//!   standing in for the C/AVX-512 rewrite (`vPIM-C`).
//!
//! Criterion benches (`cargo bench -p vpim-bench`) measure the real gap;
//! the [`simkit::CostModel`] charges the modeled gap in virtual time.
//! Interleaving is also a pillar of vPIM's isolation story (§3.5): when a
//! rank is used as plain memory, interleaving scatters every 64-bit word
//! across all 8 chips, so no single DPU program can reconstruct another
//! tenant's data.

/// Number of byte lanes (chips) in a rank.
pub const LANES: usize = 8;
/// Bytes per interleaved line (8 lanes × 8 bytes per burst).
pub const LINE: usize = 64;

/// Interleaves `src` into `dst` one byte at a time (slow reference path).
///
/// Both slices must have equal length; the length need not be a multiple of
/// the line size (the tail is swizzled with the same rule).
///
/// # Panics
///
/// Panics if `src.len() != dst.len()`.
pub fn interleave_scalar(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "interleave buffers must match");
    let n = src.len();
    for (i, &b) in src.iter().enumerate() {
        // Byte i goes to lane (i % LANES), position (i / LANES) in the lane.
        dst[permuted_index(i, n)] = b;
    }
}

/// Reverses [`interleave_scalar`].
///
/// # Panics
///
/// Panics if `src.len() != dst.len()`.
pub fn deinterleave_scalar(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "interleave buffers must match");
    let n = src.len();
    for i in 0..n {
        dst[i] = src[permuted_index(i, n)];
    }
}

/// The interleaving permutation: logical index → lane-major index.
///
/// For a buffer of `n` bytes, the first `floor(n / 8) * 8` bytes spread
/// across 8 equal lanes; any tail bytes stay in place (the hardware pads
/// bursts, which transfers identity for our purposes).
#[inline]
#[must_use]
pub fn permuted_index(i: usize, n: usize) -> usize {
    let body = (n / LANES) * LANES;
    if i >= body {
        return i;
    }
    let chunk = body / LANES;
    let lane = i % LANES;
    let pos = i / LANES;
    lane * chunk + pos
}

/// Interleaves `src` into `dst`, one 64-byte line at a time (fast path).
///
/// Functionally identical to [`interleave_scalar`]; ~an order of magnitude
/// faster because it writes each lane's bytes in runs with simple strides.
///
/// # Panics
///
/// Panics if `src.len() != dst.len()`.
pub fn interleave_fast(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "interleave buffers must match");
    let n = src.len();
    let body = (n / LANES) * LANES;
    let chunk = body / LANES;
    // Split dst into its 8 lanes and fill each lane with a strided gather,
    // walking src one cache line at a time.
    let (dst_body, dst_tail) = dst.split_at_mut(body);
    for (lane, lane_buf) in dst_body.chunks_exact_mut(chunk.max(1)).enumerate().take(LANES) {
        let mut s = lane;
        for d in lane_buf.iter_mut() {
            *d = src[s];
            s += LANES;
        }
    }
    dst_tail.copy_from_slice(&src[body..]);
}

/// Reverses [`interleave_fast`].
///
/// # Panics
///
/// Panics if `src.len() != dst.len()`.
pub fn deinterleave_fast(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "interleave buffers must match");
    let n = src.len();
    let body = (n / LANES) * LANES;
    let chunk = body / LANES;
    let (src_body, src_tail) = src.split_at(body);
    for (lane, lane_buf) in src_body.chunks_exact(chunk.max(1)).enumerate().take(LANES) {
        let mut d = lane;
        for &b in lane_buf {
            dst[d] = b;
            d += LANES;
        }
    }
    dst[body..].copy_from_slice(src_tail);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn permutation_is_bijective() {
        for n in [0usize, 1, 7, 8, 16, 63, 64, 65, 256] {
            let mut seen = vec![false; n];
            for i in 0..n {
                let p = permuted_index(i, n);
                assert!(p < n, "index {p} out of range for n={n}");
                assert!(!seen[p], "collision at {p} for n={n}");
                seen[p] = true;
            }
        }
    }

    #[test]
    fn known_small_pattern() {
        // 16 bytes, 8 lanes of 2: byte 0 -> lane0[0], byte 8 -> lane0[1], ...
        let src: Vec<u8> = (0u8..16).collect();
        let mut dst = vec![0u8; 16];
        interleave_fast(&src, &mut dst);
        assert_eq!(dst, vec![0, 8, 1, 9, 2, 10, 3, 11, 4, 12, 5, 13, 6, 14, 7, 15]);
    }

    proptest! {
        /// Fast and scalar deinterleave agree, and each roundtrips.
        #[test]
        fn fast_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let mut inter = vec![0u8; data.len()];
            interleave_fast(&data, &mut inter);
            let mut back = vec![0u8; data.len()];
            deinterleave_fast(&inter, &mut back);
            prop_assert_eq!(back, data);
        }

        #[test]
        fn scalar_matches_fast(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
            let mut a = vec![0u8; data.len()];
            let mut b = vec![0u8; data.len()];
            interleave_fast(&data, &mut a);
            // scalar path via the explicit permutation
            for (i, &byte) in data.iter().enumerate() {
                b[permuted_index(i, data.len())] = byte;
            }
            prop_assert_eq!(a, b);
        }

        #[test]
        fn scalar_deinterleave_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
            let mut inter = vec![0u8; data.len()];
            interleave_fast(&data, &mut inter);
            let mut back = vec![0u8; data.len()];
            deinterleave_scalar(&inter, &mut back);
            prop_assert_eq!(back, data);
        }
    }
}
