//! Byte interleaving across the 8 chips of a rank.
//!
//! A rank answers a 64-bit DDR burst with one byte lane per chip, so host
//! buffers destined for a single DPU's MRAM must be *interleaved*: byte `i`
//! of the logical buffer lands in lane `i % 8`. The UPMEM SDK performs this
//! swizzle on the host CPU — it is the hot loop the vPIM authors rewrote
//! from Rust/AVX2 into C/AVX-512 (§4.2, "AVX512 and C enhancements").
//!
//! Two functionally identical implementations are provided:
//!
//! * [`interleave_scalar`] / [`deinterleave_scalar`] — a deliberately
//!   straightforward per-byte loop, standing in for the slow path
//!   (`vPIM-rust`);
//! * [`interleave_fast`] / [`deinterleave_fast`] — a word-at-a-time
//!   safe-Rust swizzle processing a full 64-byte line per iteration,
//!   standing in for the C/AVX-512 rewrite (`vPIM-C`).
//!
//! A third, allocation-free family performs the swizzle **in place**:
//!
//! * [`interleave_inplace`] / [`deinterleave_inplace`] — line-local
//!   swizzle: each full 64-byte line is an 8×8 byte-matrix transpose done
//!   with a word-level mask-swap network, the sub-line tail uses a 64-byte
//!   stack scratch. No heap temporaries at all.
//! * [`interleave_inplace_scalar`] / [`deinterleave_inplace_scalar`] — the
//!   per-byte reference for the same line-local permutation (`vPIM-rust`
//!   stand-in for the fused path).
//!
//! The in-place family is *line-local*: bytes never cross their own
//! 64-byte line, which models the DDR burst boundary directly. For buffers
//! longer than one line this wire layout differs from the global
//! lane-major layout of [`interleave_fast`] — but both are self-inverse
//! pairs, so the observable MRAM contents after a write→read round trip
//! are identical under either convention.
//!
//! Criterion benches (`cargo bench -p vpim-bench`) measure the real gap;
//! the [`simkit::CostModel`] charges the modeled gap in virtual time.
//! Interleaving is also a pillar of vPIM's isolation story (§3.5): when a
//! rank is used as plain memory, interleaving scatters every 64-bit word
//! across all 8 chips, so no single DPU program can reconstruct another
//! tenant's data.

/// Number of byte lanes (chips) in a rank.
pub const LANES: usize = 8;
/// Bytes per interleaved line (8 lanes × 8 bytes per burst).
pub const LINE: usize = 64;

/// Interleaves `src` into `dst` one byte at a time (slow reference path).
///
/// Both slices must have equal length; the length need not be a multiple of
/// the line size (the tail is swizzled with the same rule).
///
/// # Panics
///
/// Panics if `src.len() != dst.len()`.
pub fn interleave_scalar(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "interleave buffers must match");
    let n = src.len();
    for (i, &b) in src.iter().enumerate() {
        // Byte i goes to lane (i % LANES), position (i / LANES) in the lane.
        dst[permuted_index(i, n)] = b;
    }
}

/// Reverses [`interleave_scalar`].
///
/// # Panics
///
/// Panics if `src.len() != dst.len()`.
pub fn deinterleave_scalar(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "interleave buffers must match");
    let n = src.len();
    for i in 0..n {
        dst[i] = src[permuted_index(i, n)];
    }
}

/// The interleaving permutation: logical index → lane-major index.
///
/// For a buffer of `n` bytes, the first `floor(n / 8) * 8` bytes spread
/// across 8 equal lanes; any tail bytes stay in place (the hardware pads
/// bursts, which transfers identity for our purposes).
#[inline]
#[must_use]
pub fn permuted_index(i: usize, n: usize) -> usize {
    let body = (n / LANES) * LANES;
    if i >= body {
        return i;
    }
    let chunk = body / LANES;
    let lane = i % LANES;
    let pos = i / LANES;
    lane * chunk + pos
}

/// Interleaves `src` into `dst`, one 64-byte line at a time (fast path).
///
/// Functionally identical to [`interleave_scalar`]; ~an order of magnitude
/// faster because it writes each lane's bytes in runs with simple strides.
///
/// # Panics
///
/// Panics if `src.len() != dst.len()`.
pub fn interleave_fast(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "interleave buffers must match");
    let n = src.len();
    let body = (n / LANES) * LANES;
    let chunk = body / LANES;
    // Split dst into its 8 lanes and fill each lane with a strided gather,
    // walking src one cache line at a time.
    let (dst_body, dst_tail) = dst.split_at_mut(body);
    for (lane, lane_buf) in dst_body.chunks_exact_mut(chunk.max(1)).enumerate().take(LANES) {
        let mut s = lane;
        for d in lane_buf.iter_mut() {
            *d = src[s];
            s += LANES;
        }
    }
    dst_tail.copy_from_slice(&src[body..]);
}

/// Reverses [`interleave_fast`].
///
/// # Panics
///
/// Panics if `src.len() != dst.len()`.
pub fn deinterleave_fast(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "interleave buffers must match");
    let n = src.len();
    let body = (n / LANES) * LANES;
    let chunk = body / LANES;
    let (src_body, src_tail) = src.split_at(body);
    for (lane, lane_buf) in src_body.chunks_exact(chunk.max(1)).enumerate().take(LANES) {
        let mut d = lane;
        for &b in lane_buf {
            dst[d] = b;
            d += LANES;
        }
    }
    dst[body..].copy_from_slice(src_tail);
}

/// Interleaves `data` in place, line-locally (fast path).
///
/// Each full 64-byte line becomes an 8×8 byte-matrix transpose (byte
/// `8r + c` of the line moves to `8c + r`), computed on eight `u64` words
/// with a three-step mask-swap network; a sub-line tail is permuted with
/// [`permuted_index`] over the tail length via a 64-byte stack scratch.
/// Allocation-free.
pub fn interleave_inplace(data: &mut [u8]) {
    let body = (data.len() / LINE) * LINE;
    let (lines, tail) = data.split_at_mut(body);
    for line in lines.chunks_exact_mut(LINE) {
        transpose8x8(line);
    }
    permute_tail_forward(tail);
}

/// Reverses [`interleave_inplace`], in place and allocation-free.
///
/// The full-line transpose is an involution, so the body pass is the same
/// network; only the tail permutation inverts.
pub fn deinterleave_inplace(data: &mut [u8]) {
    let body = (data.len() / LINE) * LINE;
    let (lines, tail) = data.split_at_mut(body);
    for line in lines.chunks_exact_mut(LINE) {
        transpose8x8(line);
    }
    permute_tail_inverse(tail);
}

/// Per-byte reference for [`interleave_inplace`] (same line-local
/// permutation, no word-level tricks).
pub fn interleave_inplace_scalar(data: &mut [u8]) {
    let body = (data.len() / LINE) * LINE;
    let (lines, tail) = data.split_at_mut(body);
    for line in lines.chunks_exact_mut(LINE) {
        let mut scratch = [0u8; LINE];
        scratch.copy_from_slice(line);
        for (i, &b) in scratch.iter().enumerate() {
            line[permuted_index(i, LINE)] = b;
        }
    }
    permute_tail_forward(tail);
}

/// Per-byte reference for [`deinterleave_inplace`].
pub fn deinterleave_inplace_scalar(data: &mut [u8]) {
    let body = (data.len() / LINE) * LINE;
    let (lines, tail) = data.split_at_mut(body);
    for line in lines.chunks_exact_mut(LINE) {
        let mut scratch = [0u8; LINE];
        scratch.copy_from_slice(line);
        for (i, b) in line.iter_mut().enumerate() {
            *b = scratch[permuted_index(i, LINE)];
        }
    }
    permute_tail_inverse(tail);
}

/// Transposes one 64-byte line viewed as an 8×8 byte matrix (row `r`,
/// column `c` at index `8r + c`), using the standard three-step block
/// swap on little-endian `u64` rows: 4×4 blocks, then 2×2, then single
/// bytes. Self-inverse.
fn transpose8x8(line: &mut [u8]) {
    debug_assert_eq!(line.len(), LINE);
    let mut x = [0u64; LANES];
    for (r, chunk) in line.chunks_exact(8).enumerate() {
        x[r] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    }
    for i in 0..4 {
        let t = ((x[i] >> 32) ^ x[i + 4]) & 0x0000_0000_FFFF_FFFF;
        x[i] ^= t << 32;
        x[i + 4] ^= t;
    }
    for i in [0, 1, 4, 5] {
        let t = ((x[i] >> 16) ^ x[i + 2]) & 0x0000_FFFF_0000_FFFF;
        x[i] ^= t << 16;
        x[i + 2] ^= t;
    }
    for i in [0, 2, 4, 6] {
        let t = ((x[i] >> 8) ^ x[i + 1]) & 0x00FF_00FF_00FF_00FF;
        x[i] ^= t << 8;
        x[i + 1] ^= t;
    }
    for (r, chunk) in line.chunks_exact_mut(8).enumerate() {
        chunk.copy_from_slice(&x[r].to_le_bytes());
    }
}

/// Applies the forward interleave permutation to a sub-line tail in place.
fn permute_tail_forward(tail: &mut [u8]) {
    let t = tail.len();
    debug_assert!(t < LINE);
    if t < 2 {
        return;
    }
    let mut scratch = [0u8; LINE];
    scratch[..t].copy_from_slice(tail);
    for (i, &b) in scratch[..t].iter().enumerate() {
        tail[permuted_index(i, t)] = b;
    }
}

/// Applies the inverse interleave permutation to a sub-line tail in place.
fn permute_tail_inverse(tail: &mut [u8]) {
    let t = tail.len();
    debug_assert!(t < LINE);
    if t < 2 {
        return;
    }
    let mut scratch = [0u8; LINE];
    scratch[..t].copy_from_slice(tail);
    for (i, b) in tail.iter_mut().enumerate() {
        *b = scratch[permuted_index(i, t)];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn permutation_is_bijective() {
        for n in [0usize, 1, 7, 8, 16, 63, 64, 65, 256] {
            let mut seen = vec![false; n];
            for i in 0..n {
                let p = permuted_index(i, n);
                assert!(p < n, "index {p} out of range for n={n}");
                assert!(!seen[p], "collision at {p} for n={n}");
                seen[p] = true;
            }
        }
    }

    #[test]
    fn known_small_pattern() {
        // 16 bytes, 8 lanes of 2: byte 0 -> lane0[0], byte 8 -> lane0[1], ...
        let src: Vec<u8> = (0u8..16).collect();
        let mut dst = vec![0u8; 16];
        interleave_fast(&src, &mut dst);
        assert_eq!(dst, vec![0, 8, 1, 9, 2, 10, 3, 11, 4, 12, 5, 13, 6, 14, 7, 15]);
    }

    proptest! {
        /// Fast and scalar deinterleave agree, and each roundtrips.
        #[test]
        fn fast_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let mut inter = vec![0u8; data.len()];
            interleave_fast(&data, &mut inter);
            let mut back = vec![0u8; data.len()];
            deinterleave_fast(&inter, &mut back);
            prop_assert_eq!(back, data);
        }

        #[test]
        fn scalar_matches_fast(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
            let mut a = vec![0u8; data.len()];
            let mut b = vec![0u8; data.len()];
            interleave_fast(&data, &mut a);
            // scalar path via the explicit permutation
            for (i, &byte) in data.iter().enumerate() {
                b[permuted_index(i, data.len())] = byte;
            }
            prop_assert_eq!(a, b);
        }

        #[test]
        fn scalar_deinterleave_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
            let mut inter = vec![0u8; data.len()];
            interleave_fast(&data, &mut inter);
            let mut back = vec![0u8; data.len()];
            deinterleave_scalar(&inter, &mut back);
            prop_assert_eq!(back, data);
        }

        /// The word-level in-place swizzle computes exactly the same
        /// permutation as its per-byte reference, both directions.
        #[test]
        fn inplace_fast_matches_inplace_scalar(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let mut fast = data.clone();
            let mut scalar = data.clone();
            interleave_inplace(&mut fast);
            interleave_inplace_scalar(&mut scalar);
            prop_assert_eq!(&fast, &scalar);
            deinterleave_inplace(&mut fast);
            deinterleave_inplace_scalar(&mut scalar);
            prop_assert_eq!(&fast, &scalar);
        }

        /// interleave_inplace ∘ deinterleave_inplace ≡ id (either order),
        /// including non-multiple-of-64 tails.
        #[test]
        fn inplace_pair_is_identity(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let mut buf = data.clone();
            interleave_inplace(&mut buf);
            deinterleave_inplace(&mut buf);
            prop_assert_eq!(&buf, &data);
            deinterleave_inplace(&mut buf);
            interleave_inplace(&mut buf);
            prop_assert_eq!(&buf, &data);
        }

        /// Up to one line (≤ 64 bytes) the line-local permutation coincides
        /// with the global lane-major one.
        #[test]
        fn inplace_matches_global_scalar_within_one_line(data in proptest::collection::vec(any::<u8>(), 0..65)) {
            let mut inplace = data.clone();
            interleave_inplace(&mut inplace);
            let mut global = vec![0u8; data.len()];
            interleave_scalar(&data, &mut global);
            prop_assert_eq!(inplace, global);
        }
    }

    #[test]
    fn transpose_moves_bytes_lane_major_within_a_line() {
        let mut line: Vec<u8> = (0u8..64).collect();
        interleave_inplace(&mut line);
        for r in 0..8 {
            for c in 0..8 {
                // Logical byte 8r+c lands at lane-major index 8c+r.
                assert_eq!(line[8 * c + r], (8 * r + c) as u8);
            }
        }
        deinterleave_inplace(&mut line);
        assert_eq!(line, (0u8..64).collect::<Vec<_>>());
    }
}
