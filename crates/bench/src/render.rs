//! Text rendering of experiment results (the figures as tables).

use simkit::stats::TextTable;
use simkit::{
    AppSegment, DriverSegment, MetricValue, MetricsSnapshot, Timeline, VirtualNanos, WriteStep,
};

use crate::experiments::{
    AdaptiveRow, Fig11, Fig14, Fig15, Fig8Row, ManagerReport, OverheadSummary, PheapRow,
};

fn ms(d: VirtualNanos) -> String {
    format!("{:.2}", d.as_millis_f64())
}

fn fx(f: f64) -> String {
    format!("{f:.2}x")
}

/// Renders Table 1 (the PrIM inventory).
#[must_use]
pub fn table1() -> String {
    let mut t = TextTable::new(vec!["Domain".into(), "Benchmark".into(), "Short name".into()]);
    for app in prim::catalog() {
        t.row(vec![app.domain().into(), app.long_name().into(), app.name().into()]);
    }
    format!("Table 1: PrIM applications\n{}", t.render())
}

/// Renders Table 2 (the optimization matrix).
#[must_use]
pub fn table2() -> String {
    let mut t = TextTable::new(vec![
        "Variant".into(),
        "C Code Enhancement".into(),
        "Prefetch Cache".into(),
        "Request Batching".into(),
        "Parallel Handling".into(),
    ]);
    for v in vpim::Variant::ALL {
        let cfg = vpim::VpimConfig::variant_config(v);
        let mark = |b: bool| if b { "yes" } else { "-" }.to_string();
        t.row(vec![
            v.label().into(),
            mark(cfg.data_path == simkit::cost::DataPath::Vectorized),
            mark(cfg.prefetch_cache),
            mark(cfg.request_batching),
            mark(cfg.parallel_handling),
        ]);
    }
    format!("Table 2: optimization strategies per vPIM version\n{}", t.render())
}

/// Renders Fig. 8 rows with the four application segments.
#[must_use]
pub fn fig8(rows: &[Fig8Row]) -> String {
    let mut t = TextTable::new(vec![
        "app".into(),
        "#DPUs".into(),
        "system".into(),
        "CPU-DPU(ms)".into(),
        "DPU(ms)".into(),
        "Inter-DPU(ms)".into(),
        "DPU-CPU(ms)".into(),
        "total(ms)".into(),
        "overhead".into(),
        "msgs".into(),
    ]);
    for r in rows {
        for (name, tl, ovh) in [
            ("native", &r.native, String::new()),
            ("vPIM", &r.vpim, fx(r.overhead())),
        ] {
            t.row(vec![
                r.app.into(),
                r.dpus.to_string(),
                name.into(),
                ms(tl.app(AppSegment::CpuToDpu)),
                ms(tl.app(AppSegment::Dpu)),
                ms(tl.app(AppSegment::InterDpu)),
                ms(tl.app(AppSegment::DpuToCpu)),
                ms(tl.app_total()),
                ovh.clone(),
                tl.messages().to_string(),
            ]);
        }
    }
    format!("Fig. 8: PrIM execution time, strong scaling (segments in ms)\n{}", t.render())
}

/// Renders a §5.2-style overhead summary line.
#[must_use]
pub fn summary_line(dpus: usize, s: &OverheadSummary) -> String {
    format!(
        "{dpus} DPUs: overhead {} .. {} (mean {}); {} apps < 1.15x, {} apps < 1.5x",
        fx(s.min),
        fx(s.max),
        fx(s.mean),
        s.below_1_15,
        s.below_1_5
    )
}

/// Renders the three Fig. 9 sensitivity sweeps.
#[must_use]
pub fn fig9(f: &crate::experiments::Fig9) -> String {
    let mut out = String::from("Fig. 9: checksum sensitivity analysis\n");
    let mut a = TextTable::new(vec!["#vCPUs".into(), "native(ms)".into(), "vPIM(ms)".into()]);
    for (v, n, p) in &f.vcpus {
        a.row(vec![v.to_string(), ms(*n), ms(*p)]);
    }
    out.push_str(&format!("(a) varying vCPUs (60 DPUs, 60 MB/DPU)\n{}", a.render()));
    let mut b = TextTable::new(vec![
        "#DPUs".into(),
        "native(ms)".into(),
        "vPIM(ms)".into(),
        "overhead".into(),
    ]);
    for (d, n, p) in &f.dpus {
        b.row(vec![d.to_string(), ms(*n), ms(*p), fx(p.ratio(*n))]);
    }
    out.push_str(&format!("(b) varying #DPUs (60 MB/DPU, 16 vCPUs)\n{}", b.render()));
    let mut c = TextTable::new(vec![
        "MB/DPU".into(),
        "native(ms)".into(),
        "vPIM(ms)".into(),
        "overhead".into(),
    ]);
    for (mb, n, p) in &f.size {
        c.row(vec![mb.to_string(), ms(*n), ms(*p), fx(p.ratio(*n))]);
    }
    out.push_str(&format!("(c) varying data size (60 DPUs, 16 vCPUs)\n{}", c.render()));
    out
}

/// Renders Fig. 10.
#[must_use]
pub fn fig10(rows: &[(usize, VirtualNanos, VirtualNanos)]) -> String {
    let mut t = TextTable::new(vec![
        "#DPUs".into(),
        "native(ms)".into(),
        "vPIM(ms)".into(),
        "overhead".into(),
    ]);
    for (d, n, p) in rows {
        t.row(vec![d.to_string(), ms(*n), ms(*p), fx(p.ratio(*n))]);
    }
    format!("Fig. 10: Index Search execution time\n{}", t.render())
}

/// Renders the two Fig. 11 sweeps.
#[must_use]
pub fn fig11(f: &Fig11) -> String {
    let mut out = String::from("Fig. 11: checksum, native vs vPIM-rust vs vPIM-C\n");
    let mut a = TextTable::new(vec![
        "#DPUs".into(),
        "native(ms)".into(),
        "vPIM-rust(ms)".into(),
        "vPIM-C(ms)".into(),
        "rust ovh".into(),
        "C ovh".into(),
    ]);
    for (d, n, r, c) in &f.by_dpus {
        a.row(vec![
            d.to_string(),
            ms(*n),
            ms(*r),
            ms(*c),
            fx(r.ratio(*n)),
            fx(c.ratio(*n)),
        ]);
    }
    out.push_str(&format!("(a) varying #DPUs (60 MB/DPU)\n{}", a.render()));
    let mut b = TextTable::new(vec![
        "MB/DPU".into(),
        "native(ms)".into(),
        "vPIM-rust(ms)".into(),
        "vPIM-C(ms)".into(),
        "rust ovh".into(),
        "C ovh".into(),
    ]);
    for (mb, n, r, c) in &f.by_size {
        b.row(vec![
            mb.to_string(),
            ms(*n),
            ms(*r),
            ms(*c),
            fx(r.ratio(*n)),
            fx(c.ratio(*n)),
        ]);
    }
    out.push_str(&format!("(b) varying data size (60 DPUs)\n{}", b.render()));
    out
}

/// Renders Fig. 12 (driver-centric breakdown) from telemetry snapshots,
/// reading the `driver.*` segment metrics by name.
#[must_use]
pub fn fig12(rows: &[(vpim::Variant, MetricsSnapshot)]) -> String {
    let mut t = TextTable::new(vec![
        "variant".into(),
        "CI(ms)".into(),
        "R-rank(ms)".into(),
        "W-rank(ms)".into(),
        "total(ms)".into(),
    ]);
    for (v, snap) in rows {
        let total = DriverSegment::ALL
            .iter()
            .map(|s| snap.time(s.metric_name()))
            .fold(VirtualNanos::ZERO, |a, d| a + d);
        t.row(vec![
            v.label().into(),
            ms(snap.time(DriverSegment::Ci.metric_name())),
            ms(snap.time(DriverSegment::ReadRank.metric_name())),
            ms(snap.time(DriverSegment::WriteRank.metric_name())),
            ms(total),
        ]);
    }
    format!(
        "Fig. 12: driver-centric breakdown (checksum, 60 DPUs, 8 MB)\n{}",
        t.render()
    )
}

/// Renders Fig. 13 (write-to-rank step breakdown) from telemetry
/// snapshots, reading the `write.*` step metrics by name.
#[must_use]
pub fn fig13(rows: &[(vpim::Variant, MetricsSnapshot)]) -> String {
    let mut t = TextTable::new(vec![
        "variant".into(),
        "Page(ms)".into(),
        "Ser(ms)".into(),
        "Int(ms)".into(),
        "Deser(ms)".into(),
        "T-data(ms)".into(),
        "T-data share".into(),
    ]);
    for (v, snap) in rows {
        let total = WriteStep::ALL
            .iter()
            .map(|s| snap.time(s.metric_name()))
            .fold(VirtualNanos::ZERO, |a, d| a + d);
        let tdata = snap.time(WriteStep::TransferData.metric_name());
        t.row(vec![
            v.label().into(),
            ms(snap.time(WriteStep::PageMgmt.metric_name())),
            ms(snap.time(WriteStep::Serialize.metric_name())),
            ms(snap.time(WriteStep::Interrupt.metric_name())),
            ms(snap.time(WriteStep::Deserialize.metric_name())),
            ms(tdata),
            format!("{:.1}%", 100.0 * tdata.ratio(total)),
        ]);
    }
    format!(
        "Fig. 13: write-to-rank step breakdown (checksum, 60 DPUs, 8 MB)\n{}",
        t.render()
    )
}

/// Renders a full registry snapshot as a sorted `name = value` listing
/// (the `figures metrics` dump).
#[must_use]
pub fn metrics_dump(snap: &MetricsSnapshot) -> String {
    let mut t = TextTable::new(vec!["metric".into(), "value".into()]);
    for (name, value) in snap.iter() {
        let rendered = match value {
            MetricValue::Count(n) => n.to_string(),
            MetricValue::Level(l) => l.to_string(),
            MetricValue::Time(d) => format!("{} ms", ms(*d)),
            MetricValue::Histogram { count, total, .. } => {
                format!("{count} events, {} ms total", ms(*total))
            }
        };
        t.row(vec![name.into(), rendered]);
    }
    format!(
        "Telemetry registry after one full-vPIM checksum (60 DPUs, 8 MB)\n{}",
        t.render()
    )
}

/// Renders Fig. 14 (the NW optimization ladder).
#[must_use]
pub fn fig14(f: &Fig14) -> String {
    let mut t = TextTable::new(vec![
        "variant".into(),
        "CPU-DPU(ms)".into(),
        "DPU(ms)".into(),
        "Inter-DPU(ms)".into(),
        "DPU-CPU(ms)".into(),
        "total(ms)".into(),
        "vs native".into(),
        "perf inc".into(),
        "msgs".into(),
    ]);
    let base = f
        .ladder
        .first()
        .map(|(_, tl)| tl.app_total())
        .unwrap_or(VirtualNanos::ZERO);
    let native_total = f.native.app_total();
    let mut row = |label: &str, tl: &Timeline, inc: Option<f64>| {
        t.row(vec![
            label.into(),
            ms(tl.app(AppSegment::CpuToDpu)),
            ms(tl.app(AppSegment::Dpu)),
            ms(tl.app(AppSegment::InterDpu)),
            ms(tl.app(AppSegment::DpuToCpu)),
            ms(tl.app_total()),
            fx(tl.app_total().ratio(native_total)),
            inc.map(fx).unwrap_or_default(),
            tl.messages().to_string(),
        ]);
    };
    row("native", &f.native, None);
    for (v, tl) in &f.ladder {
        row(v.label(), tl, Some(base.ratio(tl.app_total())));
    }
    format!(
        "Fig. 14: NW under the optimization ladder (perf inc relative to vPIM-C)\n{}",
        t.render()
    )
}

/// Renders Fig. 15 and Fig. 16.
#[must_use]
pub fn fig15(f: &Fig15) -> String {
    let mut t = TextTable::new(vec![
        "#Ranks".into(),
        "whole vPIM-Seq(ms)".into(),
        "whole vPIM(ms)".into(),
        "speedup".into(),
        "write vPIM-Seq(ms)".into(),
        "write vPIM(ms)".into(),
        "write speedup".into(),
    ]);
    for (ranks, sw, pw, swr, pwr) in &f.rows {
        t.row(vec![
            ranks.to_string(),
            ms(*sw),
            ms(*pw),
            fx(sw.ratio(*pw)),
            ms(*swr),
            ms(*pwr),
            fx(swr.ratio(*pwr)),
        ]);
    }
    let mut out = format!(
        "Fig. 15: parallel operation handling on multi-rank (checksum)\n{}",
        t.render()
    );
    let mut t16 = TextTable::new(vec![
        "Rank id".into(),
        "vPIM-Seq completion(ms)".into(),
        "vPIM completion(ms)".into(),
    ]);
    for ((r, seq), (_, par)) in f.per_rank_seq.iter().zip(&f.per_rank_par) {
        t16.row(vec![r.to_string(), ms(*seq), ms(*par)]);
    }
    out.push_str(&format!(
        "Fig. 16: per-rank virtio request completion for one write across 8 ranks\n{}",
        t16.render()
    ));
    out
}

/// Renders the boot-time experiment (§3.2).
#[must_use]
pub fn boot(rows: &[(usize, VirtualNanos)]) -> String {
    let mut t = TextTable::new(vec!["#vUPMEM devices".into(), "extra boot time(ms)".into()]);
    for (n, d) in rows {
        t.row(vec![n.to_string(), ms(*d)]);
    }
    format!("§3.2: boot-time contribution of vUPMEM devices (≤2 ms each)\n{}", t.render())
}

/// Renders the manager report (§4.2).
#[must_use]
pub fn manager(r: &ManagerReport) -> String {
    format!(
        "§4.2 manager overhead:\n  dpu_alloc round trip: {} (paper: ~36 ms)\n  rank reset: {} (paper: ~597 ms)\n  exercised: {} allocations, {} resets, {} reuses, {} abandoned\n  total reset virtual time: {}\n",
        r.alloc_latency,
        r.reset_time,
        r.stats.allocations,
        r.stats.resets,
        r.stats.reuses,
        r.stats.abandoned,
        r.stats.reset_virtual
    )
}

/// Renders the frontend memory-overhead number (§4.1).
#[must_use]
pub fn memovh() -> String {
    let cfg = vpim::VpimConfig::full();
    format!(
        "§4.1 frontend memory overhead: {:.2} MB per DPU (paper: 1.37 MB)\n  = 16384 page records x 64 B + {} prefetch pages x 4 KiB + {} batch pages x 4 KiB\n",
        cfg.frontend_memory_overhead_per_dpu() as f64 / 1e6,
        cfg.prefetch_pages_per_dpu,
        cfg.batch_pages_per_dpu
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        let t1 = table1();
        assert!(t1.contains("Needleman-Wunsch"));
        assert!(t1.lines().count() > 16);
        let t2 = table2();
        assert!(t2.contains("vPIM-rust"));
        assert!(t2.contains("vPIM+PB"));
        let m = memovh();
        assert!(m.contains("1.37"));
    }
}

/// Renders the three ablations of §4's design choices.
#[must_use]
pub fn ablations(
    threads: &[(usize, VirtualNanos)],
    prefetch: &[(usize, VirtualNanos, u64)],
    batch: &[(usize, VirtualNanos, u64)],
) -> String {
    let mut out = String::from("Ablations of §4 design choices\n");
    let mut t = TextTable::new(vec!["backend threads".into(), "W-rank(ms)".into()]);
    for (n, d) in threads {
        t.row(vec![n.to_string(), ms(*d)]);
    }
    out.push_str(&format!(
        "(a) backend DPU-operation pool (§4.2 settles on 8 = one per chip)\n{}",
        t.render()
    ));
    let mut t = TextTable::new(vec![
        "prefetch pages/DPU".into(),
        "R-rank(ms)".into(),
        "messages".into(),
    ]);
    for (n, d, m) in prefetch {
        t.row(vec![n.to_string(), ms(*d), m.to_string()]);
    }
    out.push_str(&format!(
        "(b) prefetch cache size on a block-by-block read loop (paper: 16)\n{}",
        t.render()
    ));
    let mut t = TextTable::new(vec![
        "batch pages/DPU".into(),
        "W-rank(ms)".into(),
        "messages".into(),
    ]);
    for (n, d, m) in batch {
        t.row(vec![n.to_string(), ms(*d), m.to_string()]);
    }
    out.push_str(&format!(
        "(c) batch buffer size on a tiled small-write loop (paper: 64)\n{}",
        t.render()
    ));
    out
}

/// Renders the static-vs-adaptive frontend ablation (DESIGN.md §16).
#[must_use]
pub fn adaptive(rows: &[AdaptiveRow]) -> String {
    let mut t = TextTable::new(vec![
        "workload".into(),
        "segment".into(),
        "static(ms)".into(),
        "adaptive(ms)".into(),
        "speedup".into(),
        "bar".into(),
    ]);
    for r in rows {
        t.row(vec![
            r.leg.into(),
            r.metric.into(),
            ms(r.static_t),
            ms(r.adaptive_t),
            fx(r.speedup()),
            if r.pathology { ">=2x".into() } else { "<=5% reg".into() },
        ]);
    }
    format!("Adaptive frontend controller vs static policies (DESIGN.md §16)\n{}", t.render())
}

/// The adaptive ablation as the machine-readable gate artifact
/// (`BENCH_adaptive.json`). Speedups are reported in milli-units to keep
/// the document float-free and byte-stable.
#[must_use]
pub fn adaptive_json(rows: &[AdaptiveRow]) -> String {
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"leg\":\"{}\",\"segment\":\"{}\",\"static_ns\":{},\"adaptive_ns\":{},\"speedup_milli\":{},\"pathology\":{}}}",
                r.leg,
                r.metric,
                r.static_t.as_nanos(),
                r.adaptive_t.as_nanos(),
                (r.speedup() * 1000.0) as u64,
                r.pathology
            )
        })
        .collect();
    format!("{{\"bench\":\"adaptive\",\"rows\":[{}]}}", cells.join(","))
}

/// Renders the persistent-heap durability bench (DESIGN.md §17).
#[must_use]
pub fn pheap(rows: &[PheapRow]) -> String {
    let mut t = TextTable::new(vec![
        "workload".into(),
        "objects".into(),
        "value(B)".into(),
        "persists".into(),
        "persist(ms)".into(),
        "recover(ms)".into(),
        "MB/s".into(),
    ]);
    for r in rows {
        t.row(vec![
            r.leg.into(),
            r.objects.to_string(),
            r.value_bytes.to_string(),
            r.persists.to_string(),
            ms(r.persist_t),
            ms(r.recover_t),
            format!("{:.2}", r.mbps()),
        ]);
    }
    format!("Persistent-heap durability (crash + recovery, DESIGN.md §17)\n{}", t.render())
}

/// The pheap bench as the machine-readable gate artifact
/// (`BENCH_pheap.json`). Throughput is reported in milli-MB/s to keep
/// the document float-free and byte-stable.
#[must_use]
pub fn pheap_json(rows: &[PheapRow]) -> String {
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"leg\":\"{}\",\"objects\":{},\"value_bytes\":{},\"payload_bytes\":{},\"persists\":{},\"persist_ns\":{},\"recover_ns\":{},\"mbps_milli\":{}}}",
                r.leg,
                r.objects,
                r.value_bytes,
                r.payload_bytes(),
                r.persists,
                r.persist_t.as_nanos(),
                r.recover_t.as_nanos(),
                (r.mbps() * 1000.0) as u64
            )
        })
        .collect();
    format!("{{\"bench\":\"pheap\",\"rows\":[{}]}}", cells.join(","))
}
