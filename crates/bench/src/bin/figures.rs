//! Regenerates every table and figure of the vPIM paper as text tables.
//!
//! ```text
//! Usage: figures [--paper] [EXPERIMENT...]
//!
//! Experiments: table1 table2 fig8 fig9 fig10 fig11 fig12 fig13 fig14
//!              fig15 boot manager memovh ablations adaptive pheap
//!              metrics summary all quick
//!
//! `quick` (the default) runs everything except the long Fig. 8 full sweep
//! (it runs Fig. 8 on a representative application subset). `all` runs the
//! complete Fig. 8. `adaptive` (the static-vs-adaptive frontend ablation,
//! DESIGN.md §16) only runs when named explicitly, keeping `quick`/`all`
//! output stable; with `ADAPTIVE_BENCH_OUT` set it also writes the gate's
//! JSON artifact. `pheap` (the persistent-heap durability bench, DESIGN.md
//! §17) is likewise explicit-only and writes its gate artifact when
//! `PHEAP_BENCH_OUT` is set. `--paper` switches to paper-sized datasets.
//! ```

use vpim_bench::{experiments, render, BenchEnv, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper");
    let scale = if paper { Scale::Paper } else { Scale::Quick };
    let mut wanted: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    if wanted.is_empty() {
        wanted.push("quick".to_string());
    }

    let env = BenchEnv::new(scale);
    println!(
        "vPIM reproduction harness — scale: {scale:?} (machine: 8 ranks x 60 DPUs, virtual time)\n"
    );

    let run = |name: &str| wanted.iter().any(|w| w == name || w == "all" || w == "quick");

    if run("table1") {
        println!("{}", render::table1());
    }
    if run("table2") {
        println!("{}", render::table2());
    }
    if run("fig8") || run("summary") {
        // App names given on the command line restrict the sweep; `quick`
        // uses a representative subset covering every behaviour class the
        // paper discusses; `all`/`fig8` run all 16.
        let named: Vec<&str> = wanted
            .iter()
            .filter(|w| prim::by_name(w).is_some())
            .map(String::as_str)
            .collect();
        let subset: Vec<&str> = if !named.is_empty() {
            named
        } else if wanted.iter().any(|w| w == "all" || w == "fig8") {
            Vec::new()
        } else {
            vec!["VA", "GEMV", "SEL", "BFS", "RED", "NW", "TRNS", "SCAN-SSA"]
        };
        eprintln!("[running fig8 ({} apps)...]", if subset.is_empty() { 16 } else { subset.len() });
        let rows = experiments::fig8(&env, &subset);
        println!("{}", render::fig8(&rows));
        for dpus in experiments::FIG8_DPUS {
            println!("{}", render::summary_line(dpus, &experiments::fig8_summary(&rows, dpus)));
        }
        println!();
    }
    if run("fig9") {
        eprintln!("[running fig9...]");
        println!("{}", render::fig9(&experiments::fig9(&env)));
    }
    if run("fig10") {
        eprintln!("[running fig10...]");
        println!("{}", render::fig10(&experiments::fig10(&env)));
    }
    if run("fig11") {
        eprintln!("[running fig11...]");
        println!("{}", render::fig11(&experiments::fig11(&env)));
    }
    if run("fig12") {
        eprintln!("[running fig12...]");
        println!("{}", render::fig12(&experiments::fig12(&env)));
    }
    if run("fig13") {
        eprintln!("[running fig13...]");
        println!("{}", render::fig13(&experiments::fig13(&env)));
    }
    if run("fig14") {
        eprintln!("[running fig14...]");
        println!("{}", render::fig14(&experiments::fig14(&env)));
    }
    if run("fig15") || run("fig16") {
        eprintln!("[running fig15/16...]");
        println!("{}", render::fig15(&experiments::fig15(&env)));
    }
    if run("boot") {
        println!("{}", render::boot(&experiments::boot_experiment(&env)));
    }
    if run("manager") {
        println!("{}", render::manager(&experiments::manager_experiment(&env)));
    }
    if run("memovh") {
        println!("{}", render::memovh());
    }
    if run("metrics") {
        eprintln!("[running metrics dump...]");
        println!("{}", render::metrics_dump(&experiments::metrics_dump(&env)));
    }
    // Explicit-only: the adaptive ablation re-runs five workloads twice,
    // and its acceptance asserts are a gate, not part of the default
    // figure set — `quick`/`all` output stays byte-stable without it.
    if wanted.iter().any(|w| w == "adaptive") {
        eprintln!("[running adaptive ablation...]");
        let rows = experiments::ablation_adaptive(&env);
        println!("{}", render::adaptive(&rows));
        if let Ok(path) = std::env::var("ADAPTIVE_BENCH_OUT") {
            std::fs::write(&path, render::adaptive_json(&rows)).expect("write ADAPTIVE_BENCH_OUT");
        }
    }
    // Explicit-only for the same reason: the durability bench asserts the
    // crash-recovery acceptance bars (lossless, repair-free, bit-identical
    // across dispatch modes) and feeds `ci/pheap-gate.sh`.
    if wanted.iter().any(|w| w == "pheap") {
        eprintln!("[running pheap durability bench...]");
        let rows = experiments::bench_pheap(&env);
        println!("{}", render::pheap(&rows));
        if let Ok(path) = std::env::var("PHEAP_BENCH_OUT") {
            std::fs::write(&path, render::pheap_json(&rows)).expect("write PHEAP_BENCH_OUT");
        }
    }
    if run("ablations") {
        eprintln!("[running ablations...]");
        println!(
            "{}",
            render::ablations(
                &experiments::ablation_backend_threads(&env),
                &experiments::ablation_prefetch_pages(&env),
                &experiments::ablation_batch_pages(&env),
            )
        );
    }
}
