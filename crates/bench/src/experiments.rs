//! One function per table/figure of the paper's evaluation.

use simkit::{stats, MetricsSnapshot, Timeline, VirtualNanos};
use upmem_sdk::DpuSet;
use vpim::Variant;

use crate::env::BenchEnv;
use microbench::{Checksum, IndexSearch, IndexSearchParams};
use prim::{PrimApp, ScaleParams};

/// The two strong-scaling DPU counts of Fig. 8.
pub const FIG8_DPUS: [usize; 2] = [60, 480];

/// One Fig. 8 cell: an application at a DPU count, on both transports.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Application short name.
    pub app: &'static str,
    /// DPU count (60 or 480).
    pub dpus: usize,
    /// Native timeline.
    pub native: Timeline,
    /// vPIM timeline.
    pub vpim: Timeline,
}

impl Fig8Row {
    /// vPIM-over-native overhead factor.
    #[must_use]
    pub fn overhead(&self) -> f64 {
        stats::overhead(self.vpim.app_total(), self.native.app_total())
    }
}

fn run_prim_once(
    app: &dyn PrimApp,
    set: &mut DpuSet,
    elements: usize,
    seed: u64,
) -> Timeline {
    let run = app
        .run(set, &ScaleParams::of(elements), seed)
        .unwrap_or_else(|e| panic!("{} failed: {e}", app.name()));
    assert!(run.verified, "{} failed verification", app.name());
    set.take_timeline()
}

/// Fig. 8: every PrIM application, 60 vs 480 DPUs, native vs vPIM, with
/// the four application segments.
#[must_use]
pub fn fig8(env: &BenchEnv, apps: &[&str]) -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    for app in prim::catalog() {
        if !apps.is_empty() && !apps.iter().any(|a| a.eq_ignore_ascii_case(app.name())) {
            continue;
        }
        // The quadratic / wavefront workloads get a smaller element budget
        // (their op counts scale superlinearly — NW's testbed run takes
        // ~20 minutes in the paper too).
        let elements = match app.name() {
            "NW" | "TRNS" => env.scale().prim_elements() / 16,
            "BFS" | "TS" => env.scale().prim_elements() / 8,
            _ => env.scale().prim_elements(),
        };
        for dpus in FIG8_DPUS {
            let native = {
                let mut set = env.native_set(dpus).expect("native alloc");
                run_prim_once(app.as_ref(), &mut set, elements, 42)
            };
            let vpim = {
                let (sys, vm) = env.vpim_vm(Variant::Vpim, dpus).expect("vpim vm");
                let mut set = env.vm_set(&vm, dpus).expect("vm alloc");
                let tl = run_prim_once(app.as_ref(), &mut set, elements, 42);
                drop(set);
                drop(vm);
                sys.shutdown();
                tl
            };
            rows.push(Fig8Row { app: app.name(), dpus, native, vpim });
        }
    }
    rows
}

/// §5.2's headline statistics over a set of Fig. 8 rows at one DPU count.
#[derive(Debug, Clone, Copy)]
pub struct OverheadSummary {
    /// Lowest overhead factor.
    pub min: f64,
    /// Highest overhead factor.
    pub max: f64,
    /// Arithmetic mean (the paper reports arithmetic averages).
    pub mean: f64,
    /// Applications below 1.15×.
    pub below_1_15: usize,
    /// Applications below 1.5×.
    pub below_1_5: usize,
}

/// Summarizes Fig. 8 rows for one DPU count.
#[must_use]
pub fn fig8_summary(rows: &[Fig8Row], dpus: usize) -> OverheadSummary {
    let factors: Vec<f64> = rows
        .iter()
        .filter(|r| r.dpus == dpus)
        .map(Fig8Row::overhead)
        .collect();
    OverheadSummary {
        min: factors.iter().copied().fold(f64::INFINITY, f64::min),
        max: factors.iter().copied().fold(0.0, f64::max),
        mean: stats::amean(&factors),
        below_1_15: factors.iter().filter(|f| **f < 1.15).count(),
        below_1_5: factors.iter().filter(|f| **f < 1.5).count(),
    }
}

fn checksum_native(env: &BenchEnv, dpus: usize, bytes: usize) -> Timeline {
    let mut set = env.native_set(dpus).expect("native alloc");
    let run = Checksum::run(&mut set, bytes, 42).expect("checksum");
    assert!(run.verified);
    set.take_timeline()
}

fn checksum_vpim(env: &BenchEnv, variant: Variant, dpus: usize, bytes: usize) -> Timeline {
    let (sys, vm) = env.vpim_vm(variant, dpus).expect("vpim vm");
    let mut set = env.vm_set(&vm, dpus).expect("vm alloc");
    let run = Checksum::run(&mut set, bytes, 42).expect("checksum");
    assert!(run.verified);
    let tl = set.take_timeline();
    drop(set);
    drop(vm);
    sys.shutdown();
    tl
}

/// Like [`checksum_vpim`], but the run's segment timeline is flushed into
/// the system's [`simkit::MetricsRegistry`] and the *whole* registry — the
/// timeline plus every layer's counters (prefetch, batching, vmexits, IRQs,
/// manager transitions) — comes back as one snapshot. Fig. 12/13 render
/// from this instead of scraping the `Timeline` struct.
fn checksum_vpim_metrics(
    env: &BenchEnv,
    variant: Variant,
    dpus: usize,
    bytes: usize,
) -> MetricsSnapshot {
    let (sys, vm) = env.vpim_vm(variant, dpus).expect("vpim vm");
    let mut set = env.vm_set(&vm, dpus).expect("vm alloc");
    let run = Checksum::run(&mut set, bytes, 42).expect("checksum");
    assert!(run.verified);
    set.take_timeline().flush_into(sys.registry(), "");
    let snap = sys.registry().snapshot();
    drop(set);
    drop(vm);
    sys.shutdown();
    snap
}

/// Fig. 9: checksum sensitivity to (a) vCPUs, (b) DPUs, (c) transfer size.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// (vcpus, native total, vPIM total) at 60 DPUs / 60 MB.
    pub vcpus: Vec<(usize, VirtualNanos, VirtualNanos)>,
    /// (dpus, native, vPIM) at 60 MB / 16 vCPUs.
    pub dpus: Vec<(usize, VirtualNanos, VirtualNanos)>,
    /// (MB label, native, vPIM) at 60 DPUs / 16 vCPUs.
    pub size: Vec<(usize, VirtualNanos, VirtualNanos)>,
}

/// Runs the Fig. 9 sweeps.
#[must_use]
pub fn fig9(env: &BenchEnv) -> Fig9 {
    let full_mb = 60;
    let base_bytes = env.scale().mb(full_mb);
    // (a) vCPUs: execution is vCPU-independent (the paper's point); the
    // sweep runs identical configurations — any variance would be a bug.
    let base_native = checksum_native(env, 60, base_bytes);
    let base_vpim = checksum_vpim(env, Variant::Vpim, 60, base_bytes);
    let vcpus = [2usize, 4, 8, 16]
        .into_iter()
        .map(|v| (v, base_native.app_total(), base_vpim.app_total()))
        .collect();

    let dpus = [1usize, 8, 16, 60]
        .into_iter()
        .map(|d| {
            let n = checksum_native(env, d, base_bytes);
            let v = checksum_vpim(env, Variant::Vpim, d, base_bytes);
            (d, n.app_total(), v.app_total())
        })
        .collect();

    let size = [8usize, 20, 40, 60]
        .into_iter()
        .map(|mb| {
            let bytes = env.scale().mb(mb);
            let n = checksum_native(env, 60, bytes);
            let v = checksum_vpim(env, Variant::Vpim, 60, bytes);
            (mb, n.app_total(), v.app_total())
        })
        .collect();

    Fig9 { vcpus, dpus, size }
}

/// The Index Search dataset for the current scale (shared by Fig. 10 and
/// the adaptive ablation's non-regression leg).
fn index_params(env: &BenchEnv) -> IndexSearchParams {
    match env.scale() {
        crate::Scale::Quick => IndexSearchParams {
            n_docs: 430,
            doc_len: 128,
            vocab: 1024,
            n_queries: 445,
            batch: 128,
        },
        crate::Scale::Paper => IndexSearchParams::paper(),
    }
}

/// Fig. 10: Index Search execution time vs DPU count.
#[must_use]
pub fn fig10(env: &BenchEnv) -> Vec<(usize, VirtualNanos, VirtualNanos)> {
    let params = index_params(env);
    [1usize, 8, 16, 60, 128]
        .into_iter()
        .map(|d| {
            let n = {
                let mut set = env.native_set(d).expect("native alloc");
                let run = IndexSearch::run(&mut set, &params, 42).expect("search");
                assert!(run.verified);
                set.take_timeline().app_total()
            };
            let v = {
                let (sys, vm) = env.vpim_vm(Variant::Vpim, d).expect("vpim vm");
                let mut set = env.vm_set(&vm, d).expect("vm alloc");
                let run = IndexSearch::run(&mut set, &params, 42).expect("search");
                assert!(run.verified);
                let t = set.take_timeline().app_total();
                drop(set);
                drop(vm);
                sys.shutdown();
                t
            };
            (d, n, v)
        })
        .collect()
}

/// Fig. 11: native vs vPIM-rust vs vPIM-C (checksum), varying DPUs and
/// transfer sizes.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// (dpus, native, vPIM-rust, vPIM-C) at 60 MB per DPU.
    pub by_dpus: Vec<(usize, VirtualNanos, VirtualNanos, VirtualNanos)>,
    /// (MB label, native, vPIM-rust, vPIM-C) at 60 DPUs.
    pub by_size: Vec<(usize, VirtualNanos, VirtualNanos, VirtualNanos)>,
}

/// Runs the Fig. 11 sweeps.
#[must_use]
pub fn fig11(env: &BenchEnv) -> Fig11 {
    let by_dpus = [1usize, 16, 60]
        .into_iter()
        .map(|d| {
            let bytes = env.scale().mb(60);
            (
                d,
                checksum_native(env, d, bytes).app_total(),
                checksum_vpim(env, Variant::VpimRust, d, bytes).app_total(),
                checksum_vpim(env, Variant::VpimC, d, bytes).app_total(),
            )
        })
        .collect();
    let by_size = [8usize, 40, 60]
        .into_iter()
        .map(|mb| {
            let bytes = env.scale().mb(mb);
            (
                mb,
                checksum_native(env, 60, bytes).app_total(),
                checksum_vpim(env, Variant::VpimRust, 60, bytes).app_total(),
                checksum_vpim(env, Variant::VpimC, 60, bytes).app_total(),
            )
        })
        .collect();
    Fig11 { by_dpus, by_size }
}

/// Fig. 12: driver-centric breakdown (CI / R-rank / W-rank) for vPIM-rust
/// vs full vPIM — checksum, 60 DPUs, 8 MB. Each row is a full telemetry
/// snapshot; the renderer reads the `driver.*` segment metrics.
#[must_use]
pub fn fig12(env: &BenchEnv) -> Vec<(Variant, MetricsSnapshot)> {
    let bytes = env.scale().mb(8);
    [Variant::VpimRust, Variant::Vpim]
        .into_iter()
        .map(|v| (v, checksum_vpim_metrics(env, v, 60, bytes)))
        .collect()
}

/// Fig. 13: write-to-rank step breakdown (Page/Ser/Int/Deser/T-data) for
/// the two data paths — checksum, 60 DPUs, 8 MB. Each row is a full
/// telemetry snapshot; the renderer reads the `write.*` step metrics.
#[must_use]
pub fn fig13(env: &BenchEnv) -> Vec<(Variant, MetricsSnapshot)> {
    let bytes = env.scale().mb(8);
    [Variant::VpimRust, Variant::VpimC]
        .into_iter()
        .map(|v| (v, checksum_vpim_metrics(env, v, 60, bytes)))
        .collect()
}

/// `figures metrics`: one full-vPIM checksum run, returned as the complete
/// telemetry registry snapshot (every metric of every layer by name).
#[must_use]
pub fn metrics_dump(env: &BenchEnv) -> MetricsSnapshot {
    checksum_vpim_metrics(env, Variant::Vpim, 60, env.scale().mb(8))
}

/// Fig. 14: NW under the optimization ladder (vPIM-C, +P, +B, +PB), plus
/// native for the 53× context.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// Native NW timeline.
    pub native: Timeline,
    /// (variant, timeline) for the four ladder steps.
    pub ladder: Vec<(Variant, Timeline)>,
}

/// Runs the Fig. 14 ladder (single-rank strong scaling, 60 DPUs).
#[must_use]
pub fn fig14(env: &BenchEnv) -> Fig14 {
    let elements = env.scale().prim_elements();
    let nw = prim::by_name("NW").expect("NW registered");
    let native = {
        let mut set = env.native_set(60).expect("native alloc");
        run_prim_once(nw.as_ref(), &mut set, elements, 42)
    };
    let ladder = [Variant::VpimC, Variant::VpimP, Variant::VpimB, Variant::VpimPB]
        .into_iter()
        .map(|v| {
            let (sys, vm) = env.vpim_vm(v, 60).expect("vpim vm");
            let mut set = env.vm_set(&vm, 60).expect("vm alloc");
            let tl = run_prim_once(nw.as_ref(), &mut set, elements, 42);
            drop(set);
            drop(vm);
            sys.shutdown();
            (v, tl)
        })
        .collect();
    Fig14 { native, ladder }
}

/// Fig. 15/16: parallel operation handling across ranks.
#[derive(Debug, Clone)]
pub struct Fig15 {
    /// Per rank count: (ranks, whole-app seq, whole-app par,
    /// write-op seq, write-op par).
    pub rows: Vec<(usize, VirtualNanos, VirtualNanos, VirtualNanos, VirtualNanos)>,
    /// Fig. 16: per-rank completion offsets of one 8-rank write,
    /// sequential vs parallel.
    pub per_rank_seq: Vec<(usize, VirtualNanos)>,
    /// Parallel counterpart.
    pub per_rank_par: Vec<(usize, VirtualNanos)>,
}

/// Runs the multi-rank experiments.
#[must_use]
pub fn fig15(env: &BenchEnv) -> Fig15 {
    let bytes = env.scale().mb(48);
    let mut rows = Vec::new();
    let mut per_rank_seq = Vec::new();
    let mut per_rank_par = Vec::new();
    for ranks in [2usize, 4, 8] {
        let dpus = ranks * 60;
        let mut seq_whole = VirtualNanos::ZERO;
        let mut par_whole = VirtualNanos::ZERO;
        let mut seq_write = VirtualNanos::ZERO;
        let mut par_write = VirtualNanos::ZERO;
        for (variant, whole, write) in [
            (Variant::VpimSeq, &mut seq_whole, &mut seq_write),
            (Variant::Vpim, &mut par_whole, &mut par_write),
        ] {
            let (sys, vm) = env.vpim_vm(variant, dpus).expect("vpim vm");
            let mut set = env.vm_set(&vm, dpus).expect("vm alloc");
            let run = Checksum::run(&mut set, bytes, 42).expect("checksum");
            assert!(run.verified);
            let tl = set.take_timeline();
            *whole = tl.app_total();
            *write = tl.driver(simkit::DriverSegment::WriteRank);
            if ranks == 8 {
                let offsets = set.last_per_rank().to_vec();
                if variant == Variant::VpimSeq {
                    per_rank_seq = offsets;
                } else {
                    per_rank_par = offsets;
                }
            }
            drop(set);
            drop(vm);
            sys.shutdown();
        }
        rows.push((ranks, seq_whole, par_whole, seq_write, par_write));
    }
    Fig15 { rows, per_rank_seq, per_rank_par }
}

/// §3.2: boot-time contribution of vUPMEM devices.
#[must_use]
pub fn boot_experiment(env: &BenchEnv) -> Vec<(usize, VirtualNanos)> {
    (0..=4usize)
        .map(|n| {
            if n == 0 {
                // A VM without vUPMEM devices boots at the base time.
                let mut vm = pim_vmm::Vm::new(
                    pim_vmm::VmConfig::builder().vupmem_devices(0).build(),
                    pim_vmm::DispatchMode::Sequential,
                );
                let report = vm.boot(env.cost_model()).expect("boot");
                (0, report.vupmem_boot_time)
            } else {
                let (sys, vm) = env.vpim_vm(Variant::Vpim, n * 60).expect("vpim vm");
                let t = vm.boot_report().vupmem_boot_time;
                drop(vm);
                sys.shutdown();
                (n, t)
            }
        })
        .collect()
}

/// §4.2: manager overhead numbers (alloc latency, reset time, activity).
#[derive(Debug, Clone)]
pub struct ManagerReport {
    /// Modeled allocation round trip (§4.2: ~36 ms).
    pub alloc_latency: VirtualNanos,
    /// Modeled reset time for one rank (§4.2: ~597 ms).
    pub reset_time: VirtualNanos,
    /// Manager statistics after an allocate/release/recycle exercise.
    pub stats: vpim::manager::ManagerStats,
}

/// Exercises the manager and reports its § 4.2 numbers.
#[must_use]
pub fn manager_experiment(env: &BenchEnv) -> ManagerReport {
    let sys = vpim::VpimSystem::start(env.driver().clone(), vpim::VpimConfig::full(), vpim::StartOpts::default());
    let alloc_latency = sys.manager().alloc_cost();
    let reset_time = env
        .cost_model()
        .rank_reset(env.driver().machine().config().rank_mapped_bytes());
    // Exercise: launch, release, wait for recycle.
    let vm = sys.launch(vpim::TenantSpec::new("mgr-exercise").devices(2)).expect("vm");
    vm.release_all().expect("release");
    drop(vm);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while sys.manager().stats().resets < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let stats = sys.manager().stats();
    sys.shutdown();
    ManagerReport { alloc_latency, reset_time, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn fig8_single_app_has_sane_shape() {
        let env = BenchEnv::new(Scale::Quick);
        let rows = fig8(&env, &["VA"]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.overhead() >= 1.0, "{}@{}: {}", r.app, r.dpus, r.overhead());
            assert!(r.vpim.messages() > 0);
            assert_eq!(r.native.messages(), 0);
        }
    }

    #[test]
    fn fig9_size_sweep_shows_decreasing_overhead() {
        let env = BenchEnv::new(Scale::Quick);
        let bytes_small = env.scale().mb(8);
        let bytes_big = env.scale().mb(60);
        let small = stats::overhead(
            checksum_vpim(&env, Variant::Vpim, 16, bytes_small).app_total(),
            checksum_native(&env, 16, bytes_small).app_total(),
        );
        let big = stats::overhead(
            checksum_vpim(&env, Variant::Vpim, 16, bytes_big).app_total(),
            checksum_native(&env, 16, bytes_big).app_total(),
        );
        assert!(
            small > big,
            "overhead should fall with size: {small:.2}x @8MB vs {big:.2}x @60MB"
        );
    }

    #[test]
    fn fig11_rust_path_is_slower_than_c_path() {
        let env = BenchEnv::new(Scale::Quick);
        let bytes = env.scale().mb(40);
        let native = checksum_native(&env, 16, bytes).app_total();
        let rust = checksum_vpim(&env, Variant::VpimRust, 16, bytes).app_total();
        let c = checksum_vpim(&env, Variant::VpimC, 16, bytes).app_total();
        assert!(rust > c, "rust {rust} !> c {c}");
        assert!(c > native, "c {c} !> native {native}");
    }

    #[test]
    fn fig15_parallel_beats_sequential() {
        let env = BenchEnv::new(Scale::Quick);
        let f = fig15(&env);
        for (ranks, seq, par, seq_w, par_w) in &f.rows {
            assert!(par <= seq, "{ranks} ranks: whole {par} !<= {seq}");
            assert!(par_w <= seq_w, "{ranks} ranks: write {par_w} !<= {seq_w}");
        }
        // Fig. 16: sequential offsets accumulate; parallel are ~uniform.
        assert_eq!(f.per_rank_seq.len(), 8);
        assert!(f.per_rank_seq.last().unwrap().1 > f.per_rank_seq[0].1);
        let par_max = f.per_rank_par.iter().map(|(_, d)| *d).max().unwrap();
        let seq_max = f.per_rank_seq.iter().map(|(_, d)| *d).max().unwrap();
        assert!(par_max < seq_max);
    }
}

/// Ablation: backend DPU-operation thread count (§4.2 — "We empirically
/// validate that using more than 8 threads does not provide additional
/// benefits"). Reports checksum write-to-rank time per thread count.
#[must_use]
pub fn ablation_backend_threads(env: &BenchEnv) -> Vec<(usize, VirtualNanos)> {
    [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .map(|threads| {
            let mut cm = env.cost_model().clone();
            cm.backend_threads = threads;
            let sys = vpim::VpimSystem::start(env.driver().clone(), vpim::VpimConfig::full(), vpim::StartOpts::new().cost_model(cm.clone()).manager(vpim::manager::ManagerConfig::default()));
            let vm = sys
                .launch(vpim::TenantSpec::new("abl").mem_mib(env.scale().guest_mem_mib()))
                .expect("vm");
            let mut set = upmem_sdk::DpuSet::alloc_vm(vm.frontends(), 60, cm).expect("alloc");
            let run = Checksum::run(&mut set, env.scale().mb(40), 42).expect("checksum");
            assert!(run.verified);
            let t = set.take_timeline().driver(simkit::DriverSegment::WriteRank);
            drop(set);
            drop(vm);
            sys.shutdown();
            (threads, t)
        })
        .collect()
}

/// Ablation: prefetch cache size (§4.1 fixes 16 pages/DPU). Reports the
/// RED-style small-read pattern's Inter-DPU-like cost per cache size.
#[must_use]
pub fn ablation_prefetch_pages(env: &BenchEnv) -> Vec<(usize, VirtualNanos, u64)> {
    [0usize, 4, 16, 64]
        .into_iter()
        .map(|pages| {
            let cfg = vpim::VpimConfig::builder().prefetch_pages(pages).build();
            let sys = vpim::VpimSystem::start(env.driver().clone(), cfg, vpim::StartOpts::new().cost_model(env.cost_model().clone()).manager(vpim::manager::ManagerConfig::default()));
            let vm = sys
                .launch(vpim::TenantSpec::new("abl").mem_mib(env.scale().guest_mem_mib()))
                .expect("vm");
            let mut set =
                upmem_sdk::DpuSet::alloc_vm(vm.frontends(), 16, env.cost_model().clone())
                    .expect("alloc");
            // A block-by-block read loop: 512 reads of 256 B over 128 KiB.
            set.copy_to_heap(0, 0, &vec![7u8; 128 << 10]).expect("seed data");
            let before = set.take_timeline();
            drop(before);
            for i in 0..512u64 {
                let _ = set.copy_from_heap(0, i * 256, 256).expect("read");
            }
            let tl = set.take_timeline();
            let t = tl.driver(simkit::DriverSegment::ReadRank);
            let msgs = tl.messages();
            drop(set);
            drop(vm);
            sys.shutdown();
            (pages, t, msgs)
        })
        .collect()
}

/// Ablation: batch buffer size (§4.1 fixes 64 pages/DPU). Reports the
/// TRNS-style small-write pattern's cost and message count per size.
#[must_use]
pub fn ablation_batch_pages(env: &BenchEnv) -> Vec<(usize, VirtualNanos, u64)> {
    [0usize, 16, 64, 256]
        .into_iter()
        .map(|pages| {
            let cfg = vpim::VpimConfig::builder().batch_pages(pages).build();
            let sys = vpim::VpimSystem::start(env.driver().clone(), cfg, vpim::StartOpts::new().cost_model(env.cost_model().clone()).manager(vpim::manager::ManagerConfig::default()));
            let vm = sys
                .launch(vpim::TenantSpec::new("abl").mem_mib(env.scale().guest_mem_mib()))
                .expect("vm");
            let mut set =
                upmem_sdk::DpuSet::alloc_vm(vm.frontends(), 16, env.cost_model().clone())
                    .expect("alloc");
            // A tiled-write loop: 1024 writes of 256 B round-robin over DPUs.
            for i in 0..1024u64 {
                set.copy_to_heap((i % 16) as usize, (i / 16) * 256, &[9u8; 256])
                    .expect("write");
            }
            // Flush what remains via a launch-less read.
            let _ = set.copy_from_heap(0, 0, 256).expect("flush");
            let tl = set.take_timeline();
            let t = tl.driver(simkit::DriverSegment::WriteRank);
            let msgs = tl.messages();
            drop(set);
            drop(vm);
            sys.shutdown();
            (pages, t, msgs)
        })
        .collect()
}

/// One leg of the static-vs-adaptive frontend ablation (DESIGN.md §16):
/// the same workload under `VpimConfig::full()` and with the adaptive
/// controller on, compared on the segment its pathology lives in.
#[derive(Debug, Clone)]
pub struct AdaptiveRow {
    /// Workload short name.
    pub leg: &'static str,
    /// Timeline segment compared (`total` = whole-app virtual time).
    pub metric: &'static str,
    /// Virtual time under the static policies.
    pub static_t: VirtualNanos,
    /// Virtual time with the adaptive controller enabled.
    pub adaptive_t: VirtualNanos,
    /// Whether this leg is a pathology the controller must kill (`true`)
    /// or a healthy workload it must not regress (`false`).
    pub pathology: bool,
}

impl AdaptiveRow {
    /// Static-over-adaptive speedup factor (>1 = the controller won).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.static_t.as_nanos() as f64 / self.adaptive_t.as_nanos().max(1) as f64
    }
}

/// Runs `work` on a fresh 60-DPU VM under the full config, with or
/// without the adaptive controller, and returns the run's timeline.
fn adaptive_leg(env: &BenchEnv, adaptive: bool, work: &dyn Fn(&mut DpuSet)) -> Timeline {
    let cfg = if adaptive {
        vpim::VpimConfig::builder().adaptive(true).build()
    } else {
        vpim::VpimConfig::full()
    };
    let sys = vpim::VpimSystem::start(
        env.driver().clone(),
        cfg,
        vpim::StartOpts::new()
            .cost_model(env.cost_model().clone())
            .manager(vpim::manager::ManagerConfig::default()),
    );
    let vm = sys
        .launch(vpim::TenantSpec::new("adapt-abl").mem_mib(env.scale().guest_mem_mib()))
        .expect("vm");
    let mut set =
        upmem_sdk::DpuSet::alloc_vm(vm.frontends(), 60, env.cost_model().clone()).expect("alloc");
    work(&mut set);
    let tl = set.take_timeline();
    drop(set);
    drop(vm);
    sys.shutdown();
    tl
}

/// Ablation: the adaptive frontend controller vs the static policies
/// (DESIGN.md §16). Two pathology legs — RED's Inter-DPU partial gather
/// and HST-S's DPU→CPU histogram readout, both one small read per DPU
/// that the static 16-page window over-fetches 64 KiB for — and three
/// non-regression legs (checksum, Index Search, GEMV as the linear-algebra
/// representative). The acceptance bars are asserted here so the figures
/// binary, the gate, and the test suite all trip on a regression:
/// pathologies must improve ≥ 2×, healthy legs must stay within 5%.
#[must_use]
pub fn ablation_adaptive(env: &BenchEnv) -> Vec<AdaptiveRow> {
    use simkit::AppSegment;
    // The pathology segments are element-count-independent (one small
    // read per DPU regardless of input size), so the PrIM legs run at a
    // reduced element budget to keep the gate fast.
    let elements = env.scale().prim_elements() / 16;
    let mut rows = Vec::new();

    for (leg, seg, metric) in [
        ("RED", AppSegment::InterDpu, "Inter-DPU"),
        ("HST-S", AppSegment::DpuToCpu, "DPU-CPU"),
    ] {
        let app = prim::by_name(leg).expect("catalog");
        let run_one = |adaptive: bool| {
            adaptive_leg(env, adaptive, &|set| {
                let r = app.run(set, &ScaleParams::of(elements), 42).expect(leg);
                assert!(r.verified, "{leg} failed verification (adaptive={adaptive})");
            })
            .app(seg)
        };
        let static_t = run_one(false);
        let adaptive_t = run_one(true);
        rows.push(AdaptiveRow { leg, metric, static_t, adaptive_t, pathology: true });
    }

    let bytes = env.scale().mb(40);
    let checksum = |adaptive: bool| {
        adaptive_leg(env, adaptive, &|set| {
            let r = Checksum::run(set, bytes, 42).expect("checksum");
            assert!(r.verified);
        })
        .app_total()
    };
    rows.push(AdaptiveRow {
        leg: "checksum",
        metric: "total",
        static_t: checksum(false),
        adaptive_t: checksum(true),
        pathology: false,
    });

    let params = index_params(env);
    let search = |adaptive: bool| {
        adaptive_leg(env, adaptive, &|set| {
            let r = IndexSearch::run(set, &params, 42).expect("search");
            assert!(r.verified);
        })
        .app_total()
    };
    rows.push(AdaptiveRow {
        leg: "index-search",
        metric: "total",
        static_t: search(false),
        adaptive_t: search(true),
        pathology: false,
    });

    let gemv = prim::by_name("GEMV").expect("catalog");
    let linalg = |adaptive: bool| {
        adaptive_leg(env, adaptive, &|set| {
            let r = gemv.run(set, &ScaleParams::of(elements), 42).expect("GEMV");
            assert!(r.verified, "GEMV failed verification (adaptive={adaptive})");
        })
        .app_total()
    };
    rows.push(AdaptiveRow {
        leg: "GEMV",
        metric: "total",
        static_t: linalg(false),
        adaptive_t: linalg(true),
        pathology: false,
    });

    for r in &rows {
        if r.pathology {
            assert!(
                r.speedup() >= 2.0,
                "{} {}: adaptive {} vs static {} — the controller must cut the \
                 pathology at least 2x",
                r.leg,
                r.metric,
                r.adaptive_t,
                r.static_t
            );
        } else {
            assert!(
                r.adaptive_t.as_nanos() as f64 <= r.static_t.as_nanos() as f64 * 1.05,
                "{} regressed under the adaptive controller: {} vs static {}",
                r.leg,
                r.adaptive_t,
                r.static_t
            );
        }
    }
    rows
}

/// One row of the persistent-heap durability bench (DESIGN.md §17): a
/// seeded write/persist workload on [`vpim::Pheap`], a simulated crash
/// (the handle drops, taking the resident window with it), and recovery.
/// Costs are virtual-time MRAM traffic drained from the heap's cost
/// accumulator; the row reports the Sequential run after asserting the
/// Parallel-dispatch run produced bit-identical state and timings.
#[derive(Debug, Clone)]
pub struct PheapRow {
    /// Workload short name.
    pub leg: &'static str,
    /// Objects written and committed.
    pub objects: u64,
    /// Bytes per object.
    pub value_bytes: u64,
    /// WAL transactions committed (one per `persist()` batch).
    pub persists: u64,
    /// Virtual time of the write+persist phase (page faults included).
    pub persist_t: VirtualNanos,
    /// Virtual time [`vpim::Pheap::recover`] spent rebuilding the heap.
    pub recover_t: VirtualNanos,
}

impl PheapRow {
    /// Total committed payload bytes.
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.objects * self.value_bytes
    }

    /// Committed-payload throughput of the persist phase, MB/s of
    /// virtual time.
    #[must_use]
    pub fn mbps(&self) -> f64 {
        self.payload_bytes() as f64 * 1000.0 / self.persist_t.as_nanos().max(1) as f64
    }
}

/// The seeded value of object `i` in a pheap bench leg.
fn pheap_value(seed: u64, i: u64, len: u64) -> Vec<u8> {
    (0..len)
        .map(|j| {
            let x = seed ^ (i << 32) ^ j.wrapping_mul(0x9e37_79b9);
            (x.wrapping_mul(2_654_435_761) >> 11) as u8
        })
        .collect()
}

/// Runs one pheap leg under one dispatch mode and returns
/// `(persist_t, recover_t, digest)` where `digest` folds every recovered
/// byte (so any divergence across modes poisons the comparison).
fn pheap_leg(
    env: &BenchEnv,
    parallel: bool,
    seed: u64,
    objects: u64,
    value_bytes: u64,
    batch: u64,
) -> (VirtualNanos, VirtualNanos, u64) {
    let sys = vpim::VpimSystem::start(
        env.driver().clone(),
        vpim::VpimConfig::builder().parallel(parallel).build(),
        vpim::StartOpts::new()
            .cost_model(env.cost_model().clone())
            .manager(vpim::manager::ManagerConfig::default()),
    );
    let vm = sys.launch(vpim::TenantSpec::new("pheap-bench").mem_mib(16)).expect("vm");
    let opts = vpim::PheapOptions::new().attach(&sys);

    let mut heap = vpim::Pheap::format(vm.frontend(0).clone(), opts.clone()).expect("format");
    let _ = heap.drain_cost(); // format is setup, not part of the persist figure
    let mut ids = Vec::new();
    let mut persists = 0u64;
    for i in 0..objects {
        let id = heap.alloc(value_bytes).expect("alloc");
        heap.write(id, 0, &pheap_value(seed, i, value_bytes)).expect("write");
        ids.push(id);
        if (i + 1) % batch == 0 {
            heap.persist().expect("persist");
            persists += 1;
        }
    }
    if objects % batch != 0 {
        heap.persist().expect("persist");
        persists += 1;
    }
    let persist_t = heap.drain_cost();
    drop(heap); // crash: the resident window dies with the guest

    let (mut rec, report) = vpim::Pheap::recover(vm.frontend(0).clone(), opts).expect("recover");
    let recover_t = rec.drain_cost();
    assert!(
        !report.replayed && !report.discarded_tail,
        "clean crash must recover without repair: {report:?}"
    );
    assert_eq!(report.applied_seq, persists, "every persist must be durable");
    assert_eq!(report.objects as u64, objects, "every committed object must survive");

    let mut digest = 0xcbf2_9ce4_8422_2325u64 ^ persists;
    for (i, &id) in ids.iter().enumerate() {
        let got = rec.read(id, 0, value_bytes).expect("read");
        assert_eq!(got, pheap_value(seed, i as u64, value_bytes), "{} object {i} diverged", if parallel { "par" } else { "seq" });
        digest = got.iter().fold(digest, |h, &b| (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3));
    }
    drop(rec);
    drop(vm);
    sys.shutdown();
    (persist_t, recover_t, digest)
}

/// The persistent-heap durability bench (DESIGN.md §17), feeding
/// `ci/pheap-gate.sh` and `BENCH_pheap.json`. Three workload shapes —
/// a small-value KV store, a large-value blob store, and a log-style
/// append stream — each run under both dispatch modes with the
/// acceptance bars asserted here so the figures binary and the gate both
/// trip on a regression: recovery is lossless and repair-free after a
/// clean crash, bit-identical across Sequential/Parallel dispatch (state
/// *and* virtual-time costs), and never costs zero.
#[must_use]
pub fn bench_pheap(env: &BenchEnv) -> Vec<PheapRow> {
    let mut rows = Vec::new();
    for (leg, objects, value_bytes, batch) in [
        ("kv-small", 96u64, 256u64, 12u64),
        ("blob-large", 16, 8192, 4),
        ("log-append", 48, 1024, 6),
    ] {
        let seed = 0x17_u64.wrapping_mul(objects) ^ value_bytes;
        let seq = pheap_leg(env, false, seed, objects, value_bytes, batch);
        let par = pheap_leg(env, true, seed, objects, value_bytes, batch);
        assert_eq!(seq, par, "{leg}: dispatch modes must agree on state and virtual time");
        let (persist_t, recover_t, _) = seq;
        assert!(persist_t > VirtualNanos::ZERO && recover_t > VirtualNanos::ZERO);
        rows.push(PheapRow {
            leg,
            objects,
            value_bytes,
            persists: objects / batch + u64::from(objects % batch != 0),
            persist_t,
            recover_t,
        });
    }
    rows
}
