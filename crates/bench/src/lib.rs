//! # vpim-bench — the experiment harness behind every table and figure
//!
//! One function per experiment of the paper's evaluation (§5), each
//! returning structured results the `figures` binary renders as text
//! tables. The harness runs the *same* application code natively and under
//! vPIM (requirement R3) and reports deterministic virtual time.
//!
//! Scales: [`Scale::Quick`] shrinks dataset sizes so the whole evaluation
//! runs on a laptop-class machine (axes keep the paper's labels; see
//! EXPERIMENTS.md), [`Scale::Paper`] uses paper-sized datasets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod experiments;
pub mod render;

pub use env::{BenchEnv, Scale};
