//! Benchmark environments: the simulated testbed at two scales.

use std::sync::Arc;

use simkit::CostModel;
use upmem_driver::UpmemDriver;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::{PimConfig, PimMachine};
use vpim::{Variant, StartOpts, TenantSpec, VpimConfig, VpimSystem, VpimVm};

/// Dataset scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop scale: 1 "MB" of the paper's axes = 64 KiB of simulated
    /// data; PrIM inputs shrink accordingly. Shapes are preserved because
    /// both transports shrink identically.
    Quick,
    /// Paper scale (hours of runtime and tens of GB of RAM).
    Paper,
}

impl Scale {
    /// Bytes behind one "MB" label of the paper's axes.
    #[must_use]
    pub fn mb(self, mb: usize) -> usize {
        match self {
            Scale::Quick => mb * (64 << 10),
            Scale::Paper => mb * (1 << 20),
        }
    }

    /// PrIM strong-scaling element budget (rank-filling datasets; the
    /// fixed per-run costs must not dominate, as in the paper's
    /// configuration).
    #[must_use]
    pub fn prim_elements(self) -> usize {
        match self {
            Scale::Quick => 1 << 23,
            Scale::Paper => 1 << 26,
        }
    }

    /// MRAM bank size per DPU in the simulated machine.
    #[must_use]
    pub fn mram_size(self) -> u64 {
        match self {
            Scale::Quick => 8 << 20,
            Scale::Paper => 64 << 20,
        }
    }

    /// Guest memory for benchmark VMs, MiB.
    #[must_use]
    pub fn guest_mem_mib(self) -> u64 {
        match self {
            Scale::Quick => 768,
            Scale::Paper => 8192,
        }
    }
}

/// A benchmark host: the paper's testbed geometry (8 ranks, 60 functional
/// DPUs each = 480 DPUs) with every kernel registered.
#[derive(Debug, Clone)]
pub struct BenchEnv {
    driver: Arc<UpmemDriver>,
    scale: Scale,
    cm: CostModel,
}

impl BenchEnv {
    /// Builds the environment at the given scale.
    #[must_use]
    pub fn new(scale: Scale) -> Self {
        let cfg = PimConfig {
            ranks: 8,
            functional_dpus: vec![60; 8],
            mram_size: scale.mram_size(),
            // Charge interleave costs without executing the transform on
            // every transfer (the criterion benches measure the real
            // transform separately).
            verify_interleave: false,
            ..PimConfig::paper_testbed()
        };
        let machine = PimMachine::new(cfg);
        prim::register_all(&machine);
        microbench::Checksum::register(&machine);
        microbench::IndexSearch::register(&machine);
        BenchEnv {
            driver: Arc::new(UpmemDriver::new(machine)),
            scale,
            cm: CostModel::default(),
        }
    }

    /// The dataset scale.
    #[must_use]
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The cost model.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.cm
    }

    /// The host driver.
    #[must_use]
    pub fn driver(&self) -> &Arc<UpmemDriver> {
        &self.driver
    }

    /// Allocates a native set of `n_dpus`.
    ///
    /// # Errors
    ///
    /// Not enough free DPUs.
    pub fn native_set(&self, n_dpus: usize) -> Result<DpuSet, SdkError> {
        DpuSet::alloc_native(&self.driver, n_dpus, self.cm.clone())
    }

    /// Starts a vPIM system in the given variant and launches one VM with
    /// enough vUPMEM devices for `n_dpus`.
    ///
    /// # Errors
    ///
    /// Rank exhaustion or boot failures.
    pub fn vpim_vm(
        &self,
        variant: Variant,
        n_dpus: usize,
    ) -> Result<(VpimSystem, VpimVm), vpim::VpimError> {
        let n_ranks = n_dpus.div_ceil(60).max(1);
        let sys = VpimSystem::start(self.driver.clone(), VpimConfig::variant_config(variant), StartOpts::new().cost_model(self.cm.clone()).manager(vpim::manager::ManagerConfig::default()));
        let vm = sys.launch(TenantSpec::new("bench-vm").devices(n_ranks).mem_mib(self.scale.guest_mem_mib()))?;
        Ok((sys, vm))
    }

    /// Allocates a virtualized set of `n_dpus` on a launched VM.
    ///
    /// # Errors
    ///
    /// Not enough DPUs behind the VM's devices.
    pub fn vm_set(&self, vm: &VpimVm, n_dpus: usize) -> Result<DpuSet, SdkError> {
        DpuSet::alloc_vm(vm.frontends(), n_dpus, self.cm.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_matches_testbed_geometry() {
        let env = BenchEnv::new(Scale::Quick);
        assert_eq!(env.driver().rank_count(), 8);
        assert_eq!(env.driver().machine().total_dpus(), 480);
    }

    #[test]
    fn native_and_vpim_sets_allocate() {
        let env = BenchEnv::new(Scale::Quick);
        {
            let set = env.native_set(60).unwrap();
            assert_eq!(set.nr_dpus(), 60);
            assert_eq!(set.nr_ranks(), 1);
        }
        let (sys, vm) = env.vpim_vm(Variant::Vpim, 120).unwrap();
        let set = env.vm_set(&vm, 120).unwrap();
        assert_eq!(set.nr_ranks(), 2);
        drop(set);
        drop(vm);
        sys.shutdown();
    }

    #[test]
    fn scale_labels() {
        assert_eq!(Scale::Quick.mb(8), 8 * (64 << 10));
        assert_eq!(Scale::Paper.mb(8), 8 << 20);
    }
}
