//! Criterion: wall-clock effect of truly parallel multi-rank dispatch.
//!
//! The workload is §4.2's motivating case — one `dpu_push_xfer` spanning
//! several ranks. With `ddr_busy_ns_per_kb` enabled, the simulated ranks
//! occupy the host's DDR bus for a duration proportional to the bytes
//! moved (a `thread::sleep`, so the effect is visible even on one CPU):
//! sequential dispatch pays each rank's bus time back to back, parallel
//! dispatch overlaps them. Virtual-time figures are identical in both
//! modes (see `tests/dispatch_determinism.rs`); only wall time moves.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use simkit::CostModel;
use upmem_driver::UpmemDriver;
use upmem_sdk::DpuSet;
use upmem_sim::{PimConfig, PimMachine};
use vpim::{StartOpts, TenantSpec, VpimConfig, VpimSystem, VpimVm};

const RANKS: usize = 4;
/// 2 DPUs per rank keeps the whole workload within the backend's 8-thread
/// data pool (4 ranks x 2 per-DPU chunks): the pool then isn't the
/// bottleneck and the dispatch-level overlap is what the numbers show.
const DPUS_PER_RANK: usize = 2;
const BYTES_PER_DPU: usize = 128 << 10;
/// 0.05 ms of DDR-bus occupancy per KiB: each 128 KiB DPU transfer holds
/// the bus ~6.4 ms — large against the per-request bookkeeping, small
/// enough to keep iterations fast.
const DDR_BUSY_NS_PER_KB: u64 = 50_000;

fn host() -> Arc<UpmemDriver> {
    let machine = PimMachine::new(PimConfig {
        ranks: RANKS,
        functional_dpus: vec![DPUS_PER_RANK; RANKS],
        mram_size: 1 << 20,
        verify_interleave: false,
        ddr_busy_ns_per_kb: DDR_BUSY_NS_PER_KB,
        ..PimConfig::small()
    });
    Arc::new(UpmemDriver::new(machine))
}

fn launch(parallel: bool) -> (VpimSystem, VpimVm) {
    let vcfg =
        VpimConfig::builder().batching(false).prefetch(false).parallel(parallel).build();
    let sys = VpimSystem::start(host(), vcfg, StartOpts::default());
    let vm = sys.launch(TenantSpec::new("bench").devices(RANKS)).unwrap();
    (sys, vm)
}

fn push_xfer(vm: &VpimVm) {
    let mut set =
        DpuSet::alloc_vm(vm.frontends(), RANKS * DPUS_PER_RANK, CostModel::default())
            .unwrap();
    let bufs: Vec<Vec<u8>> =
        (0..set.nr_dpus()).map(|d| vec![d as u8; BYTES_PER_DPU]).collect();
    set.push_to_heap(0, &bufs).unwrap();
}

fn bench_multi_rank_push(c: &mut Criterion) {
    let mut group = c.benchmark_group(format!(
        "push_xfer_{RANKS}ranks_{}KiB_per_dpu",
        BYTES_PER_DPU >> 10
    ));

    let (seq_sys, seq_vm) = launch(false);
    group.bench_function("sequential", |b| b.iter(|| push_xfer(&seq_vm)));

    let (par_sys, par_vm) = launch(true);
    group.bench_function("parallel", |b| b.iter(|| push_xfer(&par_vm)));

    // The acceptance gate: parallel dispatch must overlap the per-rank bus
    // time for at least a 2x wall-clock win on this 4-rank workload.
    let time = |vm: &VpimVm| {
        let t = Instant::now();
        for _ in 0..3 {
            push_xfer(vm);
        }
        t.elapsed()
    };
    let seq = time(&seq_vm);
    let par = time(&par_vm);
    let speedup = seq.as_secs_f64() / par.as_secs_f64();
    println!(
        "multi-rank push_xfer wall clock: sequential {seq:?}, parallel {par:?} \
         -> {speedup:.2}x speedup"
    );
    assert!(
        speedup >= 2.0,
        "parallel dispatch must overlap rank transfers (got {speedup:.2}x)"
    );

    drop(seq_vm);
    seq_sys.shutdown();
    drop(par_vm);
    par_sys.shutdown();
    group.finish();
}

criterion_group!(benches, bench_multi_rank_push);
criterion_main!(benches);
