//! Criterion: the substrate hot paths a request crosses — virtqueue
//! cycling, transfer-matrix serialization, guest-memory access, wire
//! encode/decode. These are the real costs the `CostModel` abstracts into
//! constants; this bench keeps the constants honest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pim_virtio::queue::{DeviceQueue, DriverQueue, QueueLayout};
use pim_virtio::{Gpa, GuestMemory};
use vpim::matrix::TransferMatrix;
use vpim::spec::{Request, Response};

fn bench_virtqueue_cycle(c: &mut Criterion) {
    let mem = GuestMemory::new(8 << 20);
    let layout = QueueLayout::alloc(&mem, 512).unwrap();
    let mut driver = DriverQueue::new(mem.clone(), layout.clone());
    let mut device = DeviceQueue::new(mem.clone(), layout);
    let pages = mem.alloc_pages(3).unwrap();

    c.bench_function("virtqueue/add_pop_push_poll", |b| {
        b.iter(|| {
            let head = driver
                .add_chain(&[(pages[0], 64, false), (pages[1], 4096, false), (pages[2], 4096, true)])
                .unwrap();
            let chain = device.pop().unwrap().unwrap();
            device.push_used(chain.head, 128).unwrap();
            let (h, _) = driver.poll_used().unwrap().unwrap();
            assert_eq!(h, head);
        });
    });
}

fn bench_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix");
    for dpus in [1usize, 16, 64] {
        let mem = GuestMemory::new(64 << 20);
        let data = vec![0xA5u8; 16 << 10];
        let bufs: Vec<(u32, u64, &[u8])> =
            (0..dpus).map(|d| (d as u32, 0u64, data.as_slice())).collect();
        group.throughput(Throughput::Bytes((dpus * data.len()) as u64));
        group.bench_with_input(BenchmarkId::new("build+serialize", dpus), &bufs, |b, bufs| {
            b.iter(|| {
                let (matrix, dl) = TransferMatrix::from_user_buffers(&mem, bufs).unwrap();
                let (bufs2, ml) = matrix.serialize(&mem).unwrap();
                assert!(!bufs2.is_empty());
                ml.release();
                dl.release();
            });
        });
        // Deserialize + gather (the backend side).
        let (matrix, _dl) = TransferMatrix::from_user_buffers(&mem, &bufs).unwrap();
        let (sbufs, _ml) = matrix.serialize(&mem).unwrap();
        let flat: Vec<(Gpa, u32)> = sbufs.iter().map(|(g, l, _)| (*g, *l)).collect();
        group.bench_with_input(BenchmarkId::new("deserialize+gather", dpus), &flat, |b, flat| {
            b.iter(|| {
                let m = TransferMatrix::deserialize(&mem, flat).unwrap();
                for e in &m.entries {
                    let v = TransferMatrix::gather(&mem, e).unwrap();
                    assert_eq!(v.len(), 16 << 10);
                }
            });
        });
    }
    group.finish();
}

fn bench_guest_memory(c: &mut Criterion) {
    let mem = GuestMemory::new(16 << 20);
    let mut group = c.benchmark_group("guest_memory");
    group.throughput(Throughput::Bytes(4096));
    let page = mem.alloc_pages(1).unwrap()[0];
    let buf = vec![7u8; 4096];
    group.bench_function("write_page", |b| {
        b.iter(|| mem.write(page, &buf).unwrap());
    });
    group.bench_function("with_slice_sum", |b| {
        b.iter(|| {
            mem.with_slice(page, 4096, |s| s.iter().map(|x| u64::from(*x)).sum::<u64>())
                .unwrap()
        });
    });
    group.bench_function("alloc_free_16_pages", |b| {
        b.iter(|| {
            let pages = mem.alloc_pages(16).unwrap();
            mem.free_pages_back(&pages).unwrap();
        });
    });
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let req = Request::LoadProgram {
        name: "bfs_kernel".to_string(),
        dpus: (0..60).collect(),
    };
    c.bench_function("spec/request_roundtrip", |b| {
        b.iter(|| {
            let enc = req.encode();
            Request::decode(&enc).unwrap()
        });
    });
    let resp = Response {
        status: 0,
        kind: 0,
        error: String::new(),
        deser_ns: 1,
        translate_ns: 2,
        transfer_ns: 3,
        ddr_ns: 2,
        launch_cycles: 4,
        payload: vec![0u8; 256],
    };
    c.bench_function("spec/response_roundtrip", |b| {
        b.iter(|| {
            let enc = resp.encode();
            Response::decode(&enc).unwrap()
        });
    });
}

criterion_group!(
    benches,
    bench_virtqueue_cycle,
    bench_matrix,
    bench_guest_memory,
    bench_wire_codec
);
criterion_main!(benches);
