//! Criterion: the fleet consolidation curve (ISSUE 8's acceptance bench).
//!
//! For M ∈ {1, 2, 4} hosts the ladder offers an increasing session count
//! to `Fleet::load_run` and records the largest load the fleet sustains
//! within a p99 sojourn bound (no giveups, no launch failures). The bound
//! is self-calibrated: the p99 of a light (4-session) run on one host,
//! times four — so the curve is machine-independent virtual time, not
//! wall clock. Results are printed per fleet size and, when
//! `CLUSTER_BENCH_OUT` is set, published as a JSON document
//! (`ci/cluster-gate.sh` copies it to `BENCH_cluster.json`).
//!
//! The assertion encoded here is the paper's consolidation story: adding
//! hosts must never *shrink* the sessions the fleet sustains at the same
//! latency bound.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use vpim::cluster::{Fleet, FleetLoadReport, FleetSpec};
use vpim::load::{Arrival, LoadSpec, OpOutcome, TenantMix, TenantOp, TenantProfile};
use vpim::{TenantSpec, VpimConfig};

const SEED: u64 = 0xC1_0573;
const FLEET_SIZES: [usize; 3] = [1, 2, 4];
/// The session ladder each fleet size climbs.
const LADDER: [usize; 6] = [4, 8, 16, 24, 32, 48];

/// A two-op write/read mix that needs no registered kernels, so it runs
/// on the fleet's stock hosts.
fn mix() -> TenantMix {
    TenantMix::new().profile(
        TenantProfile::new("rw", TenantSpec::new("rw").mem_mib(16))
            .op(TenantOp::new(
                "write",
                Arc::new(|vm, seed| {
                    let data = vec![(seed & 0xff) as u8; 2048];
                    let r = vm.frontend(0).write_rank(&[(0, 0, &data)])?;
                    Ok(OpOutcome::new(r.duration(), seed))
                }),
            ))
            .op(TenantOp::new(
                "read",
                Arc::new(|vm, seed| {
                    let (data, r) = vm.frontend(0).read_rank(&[(0, 0, 1024)])?;
                    let sum = data.iter().flatten().map(|&b| u64::from(b)).sum::<u64>();
                    Ok(OpOutcome::new(r.duration(), sum.wrapping_add(seed)))
                }),
            ))
            .think_mean_ns(800),
    )
}

fn fleet(hosts: usize) -> Fleet {
    Fleet::start(
        FleetSpec::new(hosts)
            .config(VpimConfig::builder().batching(false).prefetch(false).build()),
    )
}

fn run(hosts: usize, sessions: usize) -> FleetLoadReport {
    let spec = LoadSpec::new(SEED, sessions).arrival(Arrival::Poisson { mean_gap_ns: 3_000 });
    let f = fleet(hosts);
    let report = f.load_run(&spec, &mix());
    f.shutdown();
    report
}

fn sustained(report: &FleetLoadReport, p99_bound_ns: u64) -> bool {
    report.giveups == 0
        && report.launch_failures == 0
        && report.completed == report.sessions
        && report.session_latency.p99.as_nanos() <= p99_bound_ns
}

struct Rung {
    hosts: usize,
    max_sessions: u64,
    consolidation_milli: u64,
    p99_ns: u64,
    makespan_ns: u64,
}

fn climb(hosts: usize, p99_bound_ns: u64) -> Rung {
    let mut best: Option<FleetLoadReport> = None;
    for &n in &LADDER {
        let report = run(hosts, n);
        if sustained(&report, p99_bound_ns) {
            best = Some(report);
        } else {
            break;
        }
    }
    let best = best.unwrap_or_else(|| {
        panic!("fleet of {hosts} sustains nothing — bound {p99_bound_ns} ns is broken")
    });
    Rung {
        hosts,
        max_sessions: best.sessions,
        consolidation_milli: best.consolidation_milli,
        p99_ns: best.session_latency.p99.as_nanos(),
        makespan_ns: best.makespan.as_nanos(),
    }
}

fn bench_cluster(c: &mut Criterion) {
    // The criterion-visible representative point.
    let mut group = c.benchmark_group("cluster_load");
    group.sample_size(10);
    group.bench_function("fleet2_16sessions", |b| b.iter(|| run(2, 16)));
    group.finish();

    // Self-calibrated p99 bound: 4× the light-load p99 on one host.
    let light = run(1, 4);
    let p99_bound_ns = light.session_latency.p99.as_nanos().max(1) * 4;
    println!(
        "cluster/bound: light p99 {} ns -> bound {} ns",
        light.session_latency.p99.as_nanos(),
        p99_bound_ns
    );

    let curve: Vec<Rung> = FLEET_SIZES.iter().map(|&m| climb(m, p99_bound_ns)).collect();
    for r in &curve {
        println!(
            "cluster/consolidation/{}h: max {} sessions (p99 {} ns, makespan {} ns, {} m-tenants/host)",
            r.hosts, r.max_sessions, r.p99_ns, r.makespan_ns, r.consolidation_milli
        );
    }
    // More hosts must never sustain *less* at the same bound.
    for pair in curve.windows(2) {
        assert!(
            pair[1].max_sessions >= pair[0].max_sessions,
            "consolidation regressed: {} hosts sustain {} sessions but {} hosts sustain {}",
            pair[0].hosts,
            pair[0].max_sessions,
            pair[1].hosts,
            pair[1].max_sessions
        );
    }

    let cells: Vec<String> = curve
        .iter()
        .map(|r| {
            format!(
                "\"{}\":{{\"max_sessions\":{},\"consolidation_milli\":{},\"p99_ns\":{},\"makespan_ns\":{}}}",
                r.hosts, r.max_sessions, r.consolidation_milli, r.p99_ns, r.makespan_ns
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"cluster\",\"seed\":{SEED},\"p99_bound_ns\":{p99_bound_ns},\"hosts\":{{{}}}}}",
        cells.join(",")
    );
    println!("{json}");
    if let Ok(path) = std::env::var("CLUSTER_BENCH_OUT") {
        std::fs::write(&path, &json).expect("write CLUSTER_BENCH_OUT");
    }
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
