//! Criterion: end-to-end wall time of whole operations through the stack,
//! plus ablations of the two frontend optimizations (the real-time
//! counterpart of Fig. 14's virtual-time ladder).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simkit::CostModel;
use upmem_driver::UpmemDriver;
use upmem_sdk::DpuSet;
use upmem_sim::{PimConfig, PimMachine};
use vpim::{Variant, StartOpts, TenantSpec, VpimConfig, VpimSystem};

fn host() -> Arc<UpmemDriver> {
    let machine = PimMachine::new(PimConfig {
        ranks: 2,
        functional_dpus: vec![8, 8],
        mram_size: 4 << 20,
        verify_interleave: false,
        ..PimConfig::small()
    });
    microbench::Checksum::register(&machine);
    Arc::new(UpmemDriver::new(machine))
}

fn bench_checksum_transports(c: &mut Criterion) {
    let mut group = c.benchmark_group("checksum_64KiB_8dpus");
    group.sample_size(20);
    // Native.
    {
        let driver = host();
        group.bench_function("native", |b| {
            b.iter(|| {
                let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
                let run = microbench::Checksum::run(&mut set, 64 << 10, 7).unwrap();
                assert!(run.verified);
            });
        });
    }
    // Full vPIM (VM reused across iterations; the op is what we measure).
    {
        let driver = host();
        let sys = VpimSystem::start(driver, VpimConfig::full(), StartOpts::default());
        let vm = sys.launch(TenantSpec::new("bench")).unwrap();
        group.bench_function("vpim", |b| {
            b.iter(|| {
                let mut set =
                    DpuSet::alloc_vm(vm.frontends(), 8, CostModel::default()).unwrap();
                let run = microbench::Checksum::run(&mut set, 64 << 10, 7).unwrap();
                assert!(run.verified);
            });
        });
        drop(vm);
        sys.shutdown();
    }
    group.finish();
}

fn bench_small_write_ablation(c: &mut Criterion) {
    // 128 small writes: with batching they collapse into a few messages,
    // without it each one crosses the virtqueue (more real work too).
    let mut group = c.benchmark_group("small_writes_x128");
    group.sample_size(20);
    for (label, variant) in [("batching", Variant::VpimB), ("no_batching", Variant::VpimC)] {
        let driver = host();
        let sys = VpimSystem::start(driver, VpimConfig::variant_config(variant), StartOpts::default());
        let vm = sys.launch(TenantSpec::new("bench")).unwrap();
        let mut set = DpuSet::alloc_vm(vm.frontends(), 8, CostModel::default()).unwrap();
        let payload = vec![0x5Au8; 160];
        group.bench_with_input(BenchmarkId::new(label, 128), &payload, |b, payload| {
            b.iter(|| {
                for i in 0..128u64 {
                    set.copy_to_heap((i % 8) as usize, 4096 + (i / 8) * 256, payload)
                        .unwrap();
                }
            });
        });
        // The telemetry registry is the source of truth for what the
        // variant actually did — merges collapse messages when batching is
        // on, and stay at zero when it is off.
        let snap = sys.registry().snapshot();
        eprintln!(
            "small_writes_x128/{label}: {} appends, {} merges, {} vmexits",
            snap.count("frontend.batch.appends"),
            snap.count("frontend.batch.merges"),
            snap.count("vmm.vmexits"),
        );
        drop(set);
        drop(vm);
        sys.shutdown();
    }
    group.finish();
}

fn bench_small_read_ablation(c: &mut Criterion) {
    // 128 small reads over a contiguous region: the prefetch cache serves
    // most from the guest side.
    let mut group = c.benchmark_group("small_reads_x128");
    group.sample_size(20);
    for (label, variant) in [("prefetch", Variant::VpimP), ("no_prefetch", Variant::VpimC)] {
        let driver = host();
        let sys = VpimSystem::start(driver, VpimConfig::variant_config(variant), StartOpts::default());
        let vm = sys.launch(TenantSpec::new("bench")).unwrap();
        let mut set = DpuSet::alloc_vm(vm.frontends(), 8, CostModel::default()).unwrap();
        set.copy_to_heap(0, 0, &vec![9u8; 64 << 10]).unwrap();
        group.bench_function(BenchmarkId::new(label, 128), |b| {
            b.iter(|| {
                for i in 0..128u64 {
                    let v = set.copy_from_heap(0, (i % 256) * 64, 64).unwrap();
                    assert_eq!(v.len(), 64);
                }
            });
        });
        let snap = sys.registry().snapshot();
        eprintln!(
            "small_reads_x128/{label}: {} prefetch hits, {} misses, {} IRQs",
            snap.count("frontend.prefetch.hits"),
            snap.count("frontend.prefetch.misses"),
            snap.count("virtio.irq.injections"),
        );
        drop(set);
        drop(vm);
        sys.shutdown();
    }
    group.finish();
}

fn bench_dpu_launch(c: &mut Criterion) {
    // Kernel execution engine throughput (the simulator itself).
    let driver = host();
    let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
    set.load(microbench::Checksum::KERNEL).unwrap();
    let bufs: Vec<Vec<u8>> = (0..8).map(|_| vec![1u8; 32 << 10]).collect();
    set.push_to_heap(4096, &bufs).unwrap();
    for d in 0..8 {
        set.set_symbol_u32(d, "nbytes", 32 << 10).unwrap();
    }
    let mut group = c.benchmark_group("dpu_engine");
    group.sample_size(20);
    group.bench_function("launch_8dpus_32KiB", |b| {
        b.iter(|| set.launch(16).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_checksum_transports,
    bench_small_write_ablation,
    bench_small_read_ablation,
    bench_dpu_launch
);
criterion_main!(benches);
