//! Criterion: the sharded control plane against its single-lock baseline
//! under thread churn (ISSUE 7's tentpole acceptance bench).
//!
//! Two legs, each measured at 8–64 threads:
//!
//! * **table** — rank-table churn in the manager's real mix: mostly state
//!   reads (the observer sweep / stats-poll shape) plus alloc → recycle
//!   write bursts. The baseline is [`ReferenceTable`] (the seed's one
//!   table-wide mutex, retained verbatim); the contender is the sharded
//!   [`TableState`], whose reads ride the seqlock publish path without
//!   taking any lock.
//! * **queue** — admission push/pop churn. The baseline is the retained
//!   [`AdmissionQueue`] behind one mutex; the contender is the
//!   [`ShardedAdmissionQueue`] with per-shard locks and lock-free depth.
//!
//! Wall-clock results are printed per thread count and, when
//! `CONTROL_PLANE_BENCH_OUT` is set, published as a JSON document (the
//! shard gate copies it to `BENCH_control_plane.json` at the repo root).
//! The numbers are honest wall clock on whatever machine runs the gate —
//! on a single-CPU container the win comes from eliminating lock traffic,
//! not from parallelism, so the gate records the ratios rather than
//! hard-failing on them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use simkit::CostModel;
use upmem_driver::UpmemDriver;
use upmem_sim::{PimConfig, PimMachine};
use vpim::manager::reference::ReferenceTable;
use vpim::manager::table::TableState;
use vpim::sched::{AdmissionQueue, SchedPolicy, ShardedAdmissionQueue};

const RANKS: usize = 8;
/// Reads per round: the control plane is read-dominated (observer sweeps,
/// stats polls, admission head probes), so the mix leans the same way.
const READS_PER_ROUND: usize = 16;
const ROUNDS: usize = 250;
const THREAD_COUNTS: [usize; 4] = [8, 16, 32, 64];

fn driver() -> Arc<UpmemDriver> {
    let machine = PimMachine::new(PimConfig {
        ranks: RANKS,
        functional_dpus: vec![2; RANKS],
        mram_size: 1 << 14,
        ..PimConfig::small()
    });
    Arc::new(UpmemDriver::new(machine))
}

/// Spawns `threads` workers running `work(thread_idx)` and returns the
/// wall time from first spawn to last join, minimized over 3 repetitions.
fn timed<F>(threads: usize, work: F) -> Duration
where
    F: Fn(usize) + Send + Sync + 'static,
{
    let work = Arc::new(work);
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let work = work.clone();
                std::thread::spawn(move || work(i))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        best = best.min(t0.elapsed());
    }
    best
}

fn table_round_single(table: &ReferenceTable, t: usize) {
    for i in 0..READS_PER_ROUND {
        let _ = table.state_of((t + i) % RANKS);
    }
    if let Ok(o) = table.alloc("bench", Duration::from_micros(50), 1) {
        table.recycle(o.rank);
    }
    let _ = table.states();
}

fn table_round_sharded(table: &TableState, t: usize) {
    for i in 0..READS_PER_ROUND {
        let _ = table.state_of((t + i) % RANKS);
    }
    if let Ok(o) = table.alloc("bench", Duration::from_micros(50), 1) {
        table.recycle(o.rank);
    }
    let _ = table.states();
}

fn table_single_run(threads: usize) -> Duration {
    let table = Arc::new(ReferenceTable::new(driver(), CostModel::default()));
    timed(threads, move |t| {
        for _ in 0..ROUNDS {
            table_round_single(&table, t);
        }
    })
}

fn table_sharded_run(threads: usize) -> Duration {
    let table = Arc::new(TableState::new(driver(), CostModel::default()));
    timed(threads, move |t| {
        for _ in 0..ROUNDS {
            table_round_sharded(&table, t);
        }
    })
}

/// Depth polls per admission round — `queue_depth()` feeds the stats
/// surface and the `sched.queue.depth` mirror, so reads outnumber
/// structural ops in the live scheduler.
const DEPTH_POLLS_PER_ROUND: usize = 4;
/// One in this many rounds probes the merged head (the wake-path probe;
/// the grant path itself removes the waiter's *own* ticket).
const HEAD_PROBE_PERIOD: usize = 8;

fn queue_single_run(threads: usize) -> Duration {
    let queue = Arc::new(Mutex::new(AdmissionQueue::new(SchedPolicy::Fifo)));
    let tickets = Arc::new(AtomicU64::new(0));
    timed(threads, move |t| {
        let tenant = format!("vm-{t}");
        for i in 0..ROUNDS {
            let ticket = {
                let mut q = queue.lock();
                let ticket = tickets.fetch_add(1, Ordering::Relaxed);
                q.push(&tenant, ticket, i as u64);
                ticket
            };
            for _ in 0..DEPTH_POLLS_PER_ROUND {
                let _ = queue.lock().len();
            }
            if i % HEAD_PROBE_PERIOD == 0 {
                let _ = queue.lock().head().map(|w| w.ticket);
            }
            queue.lock().remove(ticket);
        }
    })
}

fn queue_sharded_run(threads: usize) -> Duration {
    let queue = Arc::new(ShardedAdmissionQueue::new(SchedPolicy::Fifo));
    timed(threads, move |t| {
        let tenant = format!("vm-{t}");
        for i in 0..ROUNDS {
            let ticket = queue.push(&tenant, i as u64);
            for _ in 0..DEPTH_POLLS_PER_ROUND {
                let _ = queue.len();
            }
            if i % HEAD_PROBE_PERIOD == 0 {
                let _ = queue.head().map(|w| w.ticket);
            }
            queue.remove_of(&tenant, ticket);
        }
    })
}

struct Row {
    threads: usize,
    single: Duration,
    sharded: Duration,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.single.as_secs_f64() / self.sharded.as_secs_f64()
    }
}

fn sweep(name: &str, single: fn(usize) -> Duration, sharded: fn(usize) -> Duration) -> Vec<Row> {
    THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let row = Row { threads, single: single(threads), sharded: sharded(threads) };
            println!(
                "control_plane/{name}/{threads}t: single-lock {:?}, sharded {:?} -> {:.2}x",
                row.single,
                row.sharded,
                row.speedup()
            );
            row
        })
        .collect()
}

fn json_leg(rows: &[Row]) -> String {
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "\"{}\":{{\"single_ns\":{},\"sharded_ns\":{},\"speedup\":{:.3}}}",
                r.threads,
                r.single.as_nanos(),
                r.sharded.as_nanos(),
                r.speedup()
            )
        })
        .collect();
    format!("{{{}}}", cells.join(","))
}

fn bench_control_plane(c: &mut Criterion) {
    // The criterion-visible pair at the acceptance thread count.
    let mut group = c.benchmark_group("control_plane_16t");
    group.bench_function("table_single_lock", |b| b.iter(|| table_single_run(16)));
    group.bench_function("table_sharded", |b| b.iter(|| table_sharded_run(16)));
    group.finish();

    // The full sweep the gate publishes.
    let table = sweep("table", table_single_run, table_sharded_run);
    let queue = sweep("queue", queue_single_run, queue_sharded_run);
    for rows in [&table, &queue] {
        for r in rows {
            assert!(
                r.speedup() > 0.5,
                "sharded control plane pathologically slower at {} threads: {:.2}x",
                r.threads,
                r.speedup()
            );
        }
    }
    let json = format!(
        "{{\"bench\":\"control_plane\",\"ranks\":{RANKS},\"rounds\":{ROUNDS},\"table\":{},\"queue\":{}}}",
        json_leg(&table),
        json_leg(&queue)
    );
    println!("{json}");
    if let Ok(path) = std::env::var("CONTROL_PLANE_BENCH_OUT") {
        std::fs::write(&path, &json).expect("write CONTROL_PLANE_BENCH_OUT");
    }
}

criterion_group!(benches, bench_control_plane);
criterion_main!(benches);
