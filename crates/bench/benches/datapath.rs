//! Criterion: the real wall-clock gap between the two interleave
//! implementations — the measured counterpart of the paper's "C
//! enhancement" (§4.2, up to 343% improvement; Fig. 11–13 model the
//! system-level effect, this bench measures the function itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pim_virtio::{GuestMemory, SegCache};
use simkit::cost::DataPath;
use simkit::BytePool;
use upmem_sim::{interleave, PimConfig, Rank};
use vpim::backend::datapath::{self, transform_roundtrip};
use vpim::frontend::PrefetchCache;
use vpim::matrix::TransferMatrix;

fn bench_interleave(c: &mut Criterion) {
    let mut group = c.benchmark_group("interleave");
    for size in [4 << 10, 64 << 10, 1 << 20] {
        let src: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let mut dst = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("scalar", size), &src, |b, src| {
            b.iter(|| interleave::interleave_scalar(src, &mut dst));
        });
        group.bench_with_input(BenchmarkId::new("fast", size), &src, |b, src| {
            b.iter(|| interleave::interleave_fast(src, &mut dst));
        });
    }
    group.finish();
}

fn bench_deinterleave(c: &mut Criterion) {
    let mut group = c.benchmark_group("deinterleave");
    let size = 256 << 10;
    let src: Vec<u8> = (0..size).map(|i| (i % 241) as u8).collect();
    let mut dst = vec![0u8; size];
    group.throughput(Throughput::Bytes(size as u64));
    group.bench_function("scalar", |b| {
        b.iter(|| interleave::deinterleave_scalar(&src, &mut dst));
    });
    group.bench_function("fast", |b| {
        b.iter(|| interleave::deinterleave_fast(&src, &mut dst));
    });
    group.finish();
}

fn bench_roundtrip_paths(c: &mut Criterion) {
    // The backend's actual data-path entry point, per DataPath.
    let mut group = c.benchmark_group("transform_roundtrip");
    let size = 256 << 10;
    group.throughput(Throughput::Bytes(size as u64));
    for path in DataPath::ALL {
        let mut data: Vec<u8> = (0..size).map(|i| (i % 255) as u8).collect();
        group.bench_function(format!("{path:?}"), move |b| {
            b.iter(|| transform_roundtrip(&mut data, path));
        });
    }
    group.finish();
}

/// The pre-pool write path, reproduced locally for comparison: gather into
/// a fresh `Vec`, roundtrip through two full-size heap temporaries, then
/// hand a borrowed slice to the rank (which stages one more copy when
/// verification is on). Three allocations and two extra full-buffer copies
/// per entry — exactly what the zero-copy path removes.
fn seed_write_entry(
    mem: &GuestMemory,
    rank: &Rank,
    entry: &vpim::matrix::DpuXfer,
    path: DataPath,
) -> u64 {
    let data = TransferMatrix::gather(mem, entry).expect("gather");
    let mut inter = vec![0u8; data.len()];
    let mut out = vec![0u8; data.len()];
    match path {
        DataPath::Scalar => {
            interleave::interleave_scalar(&data, &mut inter);
            interleave::deinterleave_scalar(&inter, &mut out);
        }
        DataPath::Vectorized => {
            interleave::interleave_fast(&data, &mut inter);
            interleave::deinterleave_fast(&inter, &mut out);
        }
    }
    rank.write_dpu(entry.dpu as usize, entry.mram_offset, &out)
        .expect("write_dpu");
    entry.len
}

fn bench_zero_copy(c: &mut Criterion) {
    // The full per-DPU write unit (gather → swizzle → MRAM), seed path vs
    // the pooled zero-copy path, on both interleave implementations.
    let mut group = c.benchmark_group("datapath_zero_copy");
    group.sample_size(20);
    let config = PimConfig {
        ranks: 1,
        functional_dpus: vec![1],
        mram_size: 8 << 20,
        ..PimConfig::small()
    };
    let rank = Rank::new(0, &config);
    let mem = GuestMemory::new(64 << 20);
    let pool = BytePool::new();
    for size in [4usize << 10, 64 << 10, 1 << 20, 4 << 20] {
        let payload: Vec<u8> = (0..size).map(|i| (i % 239) as u8).collect();
        let (matrix, lease) =
            TransferMatrix::from_user_buffers(&mem, &[(0, 0, &payload)]).expect("matrix");
        let entry = matrix.entries[0].clone();
        group.throughput(Throughput::Bytes(size as u64));
        for path in DataPath::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("seed_{path:?}"), size),
                &entry,
                |b, entry| b.iter(|| seed_write_entry(&mem, &rank, entry, path)),
            );
            // Warm the pool so the timed region measures the steady state.
            let mut cache = SegCache::new();
            datapath::write_entry(&mem, &rank, &entry, true, path, &pool, &mut cache, None, 0)
                .expect("warmup");
            group.bench_with_input(
                BenchmarkId::new(format!("zero_copy_{path:?}"), size),
                &entry,
                |b, entry| {
                    b.iter(|| {
                        let mut cache = SegCache::new();
                        datapath::write_entry(
                            &mem, &rank, entry, true, path, &pool, &mut cache, None, 0,
                        )
                        .expect("write_entry")
                    })
                },
            );
        }
        // Payload integrity: what the zero-copy path wrote must be exactly
        // the guest payload (the swizzle pair is the identity on MRAM).
        let mut readback = vec![0u8; size];
        rank.read_dpu(0, 0, &mut readback).expect("read_dpu");
        assert_eq!(readback, payload, "payload corrupted at size {size}");
        lease.release();
    }
    // Pool hygiene: every guard returned its buffer (drop balance) and the
    // steady state ran allocation-free (hit rate ≥ 99% after warmup).
    assert_eq!(pool.outstanding(), 0, "leaked pool guards");
    let takes = pool.hits() + pool.misses();
    assert!(
        pool.hits() * 100 >= takes * 99,
        "pool hit rate below 99%: {} hits / {} takes",
        pool.hits(),
        takes
    );
    group.finish();
}

fn bench_prefetch_hit(c: &mut Criterion) {
    // The frontend's hot read path: a resident segment served per hit.
    // `alloc_per_hit` is the escaping-output path (one Vec per read);
    // `pooled_guard` stages through a reused buffer into a BytePool guard
    // — allocation-free in steady state.
    let mut group = c.benchmark_group("prefetch_hit");
    let mut cache = PrefetchCache::new(1, 16);
    cache.install(0, 0, (0..16 * 4096).map(|i| (i % 253) as u8).collect());
    let len = 256u64;
    let span = 8 * 4096u64;
    group.throughput(Throughput::Bytes(len));
    group.bench_function("alloc_per_hit", |b| {
        let mut off = 0u64;
        b.iter(|| {
            let out = cache.lookup(0, off, len).expect("resident segment");
            off = (off + len) % span;
            out
        })
    });
    let pool = BytePool::new();
    group.bench_function("pooled_guard", |b| {
        let mut off = 0u64;
        let mut staging = Vec::with_capacity(len as usize);
        b.iter(|| {
            staging.clear();
            assert!(cache.lookup_into(0, off, len, &mut staging), "resident segment");
            let mut guard = pool.take(len as usize);
            guard.as_mut_slice().copy_from_slice(&staging);
            off = (off + len) % span;
            guard.as_slice()[0]
        })
    });
    group.finish();
    // Every lookup above must have been a hit, every guard must have come
    // back (drop balance), and the pool must run allocation-free after the
    // first take.
    let (hits, misses) = cache.stats();
    assert!(hits > 0 && misses == 0, "hit path missed: {hits} hits / {misses} misses");
    assert_eq!(pool.outstanding(), 0, "leaked pool guards");
    let takes = pool.hits() + pool.misses();
    assert!(
        pool.hits() * 100 >= takes * 99,
        "pool hit rate below 99%: {} hits / {takes} takes",
        pool.hits()
    );
}

criterion_group!(
    benches,
    bench_interleave,
    bench_deinterleave,
    bench_roundtrip_paths,
    bench_zero_copy,
    bench_prefetch_hit
);
criterion_main!(benches);
