//! Criterion: the real wall-clock gap between the two interleave
//! implementations — the measured counterpart of the paper's "C
//! enhancement" (§4.2, up to 343% improvement; Fig. 11–13 model the
//! system-level effect, this bench measures the function itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simkit::cost::DataPath;
use upmem_sim::interleave;
use vpim::backend::datapath::transform_roundtrip;

fn bench_interleave(c: &mut Criterion) {
    let mut group = c.benchmark_group("interleave");
    for size in [4 << 10, 64 << 10, 1 << 20] {
        let src: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let mut dst = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("scalar", size), &src, |b, src| {
            b.iter(|| interleave::interleave_scalar(src, &mut dst));
        });
        group.bench_with_input(BenchmarkId::new("fast", size), &src, |b, src| {
            b.iter(|| interleave::interleave_fast(src, &mut dst));
        });
    }
    group.finish();
}

fn bench_deinterleave(c: &mut Criterion) {
    let mut group = c.benchmark_group("deinterleave");
    let size = 256 << 10;
    let src: Vec<u8> = (0..size).map(|i| (i % 241) as u8).collect();
    let mut dst = vec![0u8; size];
    group.throughput(Throughput::Bytes(size as u64));
    group.bench_function("scalar", |b| {
        b.iter(|| interleave::deinterleave_scalar(&src, &mut dst));
    });
    group.bench_function("fast", |b| {
        b.iter(|| interleave::deinterleave_fast(&src, &mut dst));
    });
    group.finish();
}

fn bench_roundtrip_paths(c: &mut Criterion) {
    // The backend's actual data-path entry point, per DataPath.
    let mut group = c.benchmark_group("transform_roundtrip");
    let size = 256 << 10;
    group.throughput(Throughput::Bytes(size as u64));
    for path in DataPath::ALL {
        let mut data: Vec<u8> = (0..size).map(|i| (i % 255) as u8).collect();
        group.bench_function(format!("{path:?}"), move |b| {
            b.iter(|| transform_roundtrip(&mut data, path));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interleave, bench_deinterleave, bench_roundtrip_paths);
criterion_main!(benches);
