//! Driver error type.

use core::fmt;

use simkit::{ErrorKind, HasErrorKind};
use upmem_sim::SimError;

/// Errors surfaced by the (simulated) kernel driver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DriverError {
    /// The rank is already claimed by another handle.
    RankInUse {
        /// Rank index.
        rank: usize,
        /// Current owner tag.
        owner: String,
    },
    /// The underlying hardware rejected the operation.
    Sim(SimError),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::RankInUse { rank, owner } => {
                write!(f, "rank {rank} is in use by `{owner}`")
            }
            DriverError::Sim(e) => write!(f, "hardware error: {e}"),
        }
    }
}

impl std::error::Error for DriverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DriverError::Sim(e) => Some(e),
            DriverError::RankInUse { .. } => None,
        }
    }
}

impl From<SimError> for DriverError {
    fn from(e: SimError) -> Self {
        DriverError::Sim(e)
    }
}

impl HasErrorKind for DriverError {
    fn kind(&self) -> ErrorKind {
        match self {
            DriverError::RankInUse { .. } => ErrorKind::Busy,
            DriverError::Sim(e) => e.kind(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = DriverError::RankInUse { rank: 3, owner: "vm".into() };
        assert!(e.to_string().contains("rank 3"));
        assert!(e.source().is_none());
        let s: DriverError = SimError::InvalidRank(9).into();
        assert!(s.source().is_some());
    }

    #[test]
    fn kind_delegates_through_wrapper() {
        let e = DriverError::RankInUse { rank: 0, owner: "vm".into() };
        assert_eq!(e.kind(), ErrorKind::Busy);
        let s: DriverError = SimError::RankBusy.into();
        assert_eq!(s.kind(), ErrorKind::Busy);
        let s: DriverError = SimError::InvalidRank(9).into();
        assert_eq!(s.kind(), ErrorKind::InvalidInput);
    }
}
