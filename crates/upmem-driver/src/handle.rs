//! Rank access handles: performance mode (mmap) and safe mode (ioctl).
//!
//! Both handles expose the same rank operations; they differ in the path a
//! request takes and therefore in its *cost*:
//!
//! * [`PerfMapping`] — direct loads/stores through an mmap of the MRAMs and
//!   control interfaces: no kernel involvement. Used natively by the paper's
//!   baseline and by the vPIM backend inside Firecracker.
//! * [`SafeFile`] — every operation is an ioctl, paying a kernel entry/exit
//!   ([`simkit::CostModel::syscall`]) but gaining driver-enforced isolation.
//!
//! Cost reporting: handles do not advance any clock themselves — they
//! return [`OpCost`] descriptors that callers (SDK transports, the vPIM
//! backend) convert into timeline charges. That keeps the hardware model
//! free of policy.

use std::sync::Arc;

use simkit::{CostModel, VirtualNanos};
use upmem_sim::ci::CiStatus;
use upmem_sim::dpu::LaunchReport;
use upmem_sim::kernel::{KernelImage, KernelRegistry};
use upmem_sim::Rank;

use crate::error::DriverError;
use crate::sysfs::RankClaim;

/// How a transfer spreads over the rank's DPUs, for cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XferShape {
    /// One push moving buffers to many DPUs in parallel (`dpu_push_xfer`).
    Parallel,
    /// One DPU at a time (`dpu_copy_to`/`from` in a loop).
    Serial,
}

/// The cost descriptor returned by rank operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCost {
    /// Bytes moved by the operation.
    pub bytes: u64,
    /// Number of distinct hardware operations issued.
    pub ops: u64,
    /// Transfer shape (drives the bandwidth used for conversion).
    pub shape: XferShape,
}

impl OpCost {
    /// Converts this descriptor to a duration under `cm`, excluding any
    /// interleaving cost (charged separately by the data-path owner).
    #[must_use]
    pub fn duration(&self, cm: &CostModel) -> VirtualNanos {
        let per_op_bytes = self.bytes / self.ops.max(1);
        let per_op = match self.shape {
            XferShape::Parallel => cm.rank_transfer_parallel(per_op_bytes),
            XferShape::Serial => cm.rank_transfer_serial(per_op_bytes),
        };
        per_op.saturating_mul(self.ops.max(1))
    }
}

/// Common implementation shared by the two modes.
#[derive(Debug)]
struct RankHandle {
    rank: Arc<Rank>,
    registry: KernelRegistry,
    _claim: RankClaim,
}

impl RankHandle {
    fn write_matrix(&self, entries: &[(usize, u64, &[u8])]) -> Result<OpCost, DriverError> {
        let mut bytes = 0u64;
        for (dpu, offset, data) in entries {
            self.rank.write_dpu(*dpu, *offset, data)?;
            bytes += data.len() as u64;
        }
        Ok(OpCost { bytes, ops: 1, shape: XferShape::Parallel })
    }

    fn read_matrix(&self, entries: &mut [(usize, u64, &mut [u8])]) -> Result<OpCost, DriverError> {
        let mut bytes = 0u64;
        for (dpu, offset, buf) in entries.iter_mut() {
            self.rank.read_dpu(*dpu, *offset, buf)?;
            bytes += buf.len() as u64;
        }
        Ok(OpCost { bytes, ops: 1, shape: XferShape::Parallel })
    }
}

macro_rules! shared_rank_ops {
    ($ty:ident) => {
        impl $ty {
            /// The underlying rank.
            #[must_use]
            pub fn rank(&self) -> &Arc<Rank> {
                &self.inner.rank
            }

            /// Rank index.
            #[must_use]
            pub fn rank_id(&self) -> usize {
                self.inner.rank.id()
            }

            /// Functional DPUs in the rank.
            #[must_use]
            pub fn dpu_count(&self) -> usize {
                self.inner.rank.dpu_count()
            }

            /// Writes `data` to one DPU's MRAM.
            ///
            /// # Errors
            ///
            /// Propagates hardware bounds/index errors.
            pub fn write_dpu(
                &self,
                dpu: usize,
                offset: u64,
                data: &[u8],
            ) -> Result<OpCost, DriverError> {
                self.inner.rank.write_dpu(dpu, offset, data)?;
                Ok(OpCost {
                    bytes: data.len() as u64,
                    ops: 1,
                    shape: XferShape::Serial,
                })
            }

            /// Reads one DPU's MRAM into `dst`.
            ///
            /// # Errors
            ///
            /// Propagates hardware bounds/index errors.
            pub fn read_dpu(
                &self,
                dpu: usize,
                offset: u64,
                dst: &mut [u8],
            ) -> Result<OpCost, DriverError> {
                self.inner.rank.read_dpu(dpu, offset, dst)?;
                Ok(OpCost {
                    bytes: dst.len() as u64,
                    ops: 1,
                    shape: XferShape::Serial,
                })
            }

            /// Writes a whole transfer matrix (one parallel `write-to-rank`).
            ///
            /// # Errors
            ///
            /// Propagates hardware bounds/index errors; partial writes may
            /// have landed (as on real hardware).
            pub fn write_matrix(
                &self,
                entries: &[(usize, u64, &[u8])],
            ) -> Result<OpCost, DriverError> {
                self.inner.write_matrix(entries)
            }

            /// Reads a whole transfer matrix (one parallel `read-from-rank`).
            ///
            /// # Errors
            ///
            /// Propagates hardware bounds/index errors.
            pub fn read_matrix(
                &self,
                entries: &mut [(usize, u64, &mut [u8])],
            ) -> Result<OpCost, DriverError> {
                self.inner.read_matrix(entries)
            }

            /// Loads a program image on the given DPUs (or the whole rank).
            ///
            /// # Errors
            ///
            /// IRAM overflow or invalid DPU index.
            pub fn load_program(
                &self,
                dpus: Option<&[usize]>,
                image: &KernelImage,
            ) -> Result<(), DriverError> {
                Ok(self.inner.rank.load_program(dpus, image)?)
            }

            /// Loads a program by registry name (the SDK reading a DPU
            /// "binary" from disk).
            ///
            /// # Errors
            ///
            /// Unknown kernel, IRAM overflow or invalid DPU index.
            pub fn load_by_name(
                &self,
                dpus: Option<&[usize]>,
                name: &str,
            ) -> Result<(), DriverError> {
                let image = self.inner.registry.get(name)?.image();
                Ok(self.inner.rank.load_program(dpus, &image)?)
            }

            /// Writes a host symbol on one DPU.
            ///
            /// # Errors
            ///
            /// Unknown symbol or size mismatch.
            pub fn write_symbol(
                &self,
                dpu: usize,
                name: &str,
                bytes: &[u8],
            ) -> Result<(), DriverError> {
                Ok(self.inner.rank.write_symbol(dpu, name, bytes)?)
            }

            /// Reads a host symbol from one DPU.
            ///
            /// # Errors
            ///
            /// Unknown symbol or size mismatch.
            pub fn read_symbol(
                &self,
                dpu: usize,
                name: &str,
                bytes: &mut [u8],
            ) -> Result<(), DriverError> {
                Ok(self.inner.rank.read_symbol(dpu, name, bytes)?)
            }

            /// Launches the loaded program on the given DPUs.
            ///
            /// # Errors
            ///
            /// Missing program, bad tasklet count, or a DPU fault.
            pub fn launch(
                &self,
                dpus: Option<&[usize]>,
                nr_tasklets: usize,
            ) -> Result<Vec<(usize, LaunchReport)>, DriverError> {
                Ok(self
                    .inner
                    .rank
                    .launch(dpus, nr_tasklets, &self.inner.registry)?)
            }

            /// Polls one DPU's status through the CI.
            ///
            /// # Errors
            ///
            /// Invalid DPU index.
            pub fn poll_status(&self, dpu: usize) -> Result<CiStatus, DriverError> {
                Ok(self.inner.rank.poll_status(dpu)?)
            }
        }
    };
}

/// Performance-mode handle: the process mmaps MRAM and CI and bypasses the
/// kernel (zero per-op syscall cost).
#[derive(Debug)]
pub struct PerfMapping {
    inner: RankHandle,
}

impl PerfMapping {
    pub(crate) fn new(rank: Arc<Rank>, registry: KernelRegistry, claim: RankClaim) -> Self {
        PerfMapping { inner: RankHandle { rank, registry, _claim: claim } }
    }

    /// Per-operation mode overhead: none in performance mode.
    #[must_use]
    pub fn mode_overhead(&self, _cm: &CostModel) -> VirtualNanos {
        VirtualNanos::ZERO
    }
}

shared_rank_ops!(PerfMapping);

/// Safe-mode handle: every operation is an ioctl through the kernel driver.
#[derive(Debug)]
pub struct SafeFile {
    inner: RankHandle,
}

impl SafeFile {
    pub(crate) fn new(rank: Arc<Rank>, registry: KernelRegistry, claim: RankClaim) -> Self {
        SafeFile { inner: RankHandle { rank, registry, _claim: claim } }
    }

    /// Per-operation mode overhead: one kernel entry/exit.
    #[must_use]
    pub fn mode_overhead(&self, cm: &CostModel) -> VirtualNanos {
        cm.syscall()
    }
}

shared_rank_ops!(SafeFile);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UpmemDriver;
    use upmem_sim::{PimConfig, PimMachine};

    fn perf() -> PerfMapping {
        let d = UpmemDriver::new(PimMachine::new(PimConfig::small()));
        d.open_perf(0, "test").unwrap()
    }

    #[test]
    fn matrix_roundtrip() {
        let h = perf();
        let a = vec![1u8; 64];
        let b = vec![2u8; 32];
        let cost = h
            .write_matrix(&[(0, 0, a.as_slice()), (1, 16, b.as_slice())])
            .unwrap();
        assert_eq!(cost.bytes, 96);
        assert_eq!(cost.ops, 1);

        let mut ra = vec![0u8; 64];
        let mut rb = vec![0u8; 32];
        {
            let mut entries: Vec<(usize, u64, &mut [u8])> =
                vec![(0, 0, ra.as_mut_slice()), (1, 16, rb.as_mut_slice())];
            h.read_matrix(&mut entries).unwrap();
        }
        assert_eq!(ra, a);
        assert_eq!(rb, b);
    }

    #[test]
    fn op_cost_durations_follow_shape() {
        let cm = CostModel::default();
        let par = OpCost { bytes: 1 << 20, ops: 1, shape: XferShape::Parallel };
        let ser = OpCost { bytes: 1 << 20, ops: 1, shape: XferShape::Serial };
        assert!(par.duration(&cm) < ser.duration(&cm));
        // Many small ops cost more than one large op of the same size.
        let many = OpCost { bytes: 1 << 20, ops: 256, shape: XferShape::Parallel };
        assert!(many.duration(&cm) > par.duration(&cm));
    }

    #[test]
    fn mode_overheads_differ() {
        let machine = PimMachine::new(PimConfig::small());
        let d = UpmemDriver::new(machine);
        let cm = CostModel::default();
        let p = d.open_perf(0, "p").unwrap();
        assert_eq!(p.mode_overhead(&cm), VirtualNanos::ZERO);
        drop(p);
        let s = d.open_safe(0, "s").unwrap();
        assert!(s.mode_overhead(&cm) > VirtualNanos::ZERO);
    }

    #[test]
    fn errors_propagate_from_hardware() {
        let h = perf();
        assert!(h.write_dpu(99, 0, &[0]).is_err());
        let mut b = [0u8; 1];
        assert!(h.read_dpu(0, u64::MAX, &mut b).is_err());
    }
}
