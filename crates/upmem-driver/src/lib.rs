//! # upmem-driver — the simulated UPMEM kernel driver
//!
//! §2 of the paper ("Software Stack", Fig. 3): the UPMEM driver exposes the
//! PIM hardware to userspace two ways —
//!
//! * **safe mode**: operations are ioctls into the kernel driver, providing
//!   isolation between host applications (the guest-side SDK uses this mode
//!   through the vPIM frontend);
//! * **performance mode**: the application mmaps the MRAMs and control
//!   interfaces and bypasses the driver entirely (the vPIM backend in
//!   Firecracker uses this mode, §3.4).
//!
//! The driver also publishes per-rank status through **sysfs**, which the
//! vPIM manager's observer thread watches to detect rank releases (§3.5).
//!
//! This crate models all three surfaces over [`upmem_sim`]:
//! [`UpmemDriver::open_perf`] / [`UpmemDriver::open_safe`] claim a rank and
//! return access handles; dropping a handle releases the claim, flips the
//! sysfs entry and wakes sysfs watchers — no explicit release call, exactly
//! like closing `/dev/dpu_rankN`.
//!
//! ## Example
//!
//! ```
//! use upmem_driver::UpmemDriver;
//! use upmem_sim::{PimConfig, PimMachine};
//!
//! let machine = PimMachine::new(PimConfig::small());
//! let driver = UpmemDriver::new(machine);
//! let mapping = driver.open_perf(0, "backend-vm1")?;
//! mapping.write_dpu(0, 0, b"data")?;
//! assert!(driver.open_perf(0, "someone-else").is_err()); // rank is claimed
//! drop(mapping); // release -> sysfs shows the rank free again
//! assert!(driver.open_perf(0, "someone-else").is_ok());
//! # Ok::<(), upmem_driver::DriverError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod handle;
pub mod sysfs;

use std::sync::Arc;

use upmem_sim::PimMachine;

pub use error::DriverError;
pub use handle::{PerfMapping, SafeFile};
pub use sysfs::{RankStatus, StatusBoard};

/// The host-OS driver instance.
///
/// One `UpmemDriver` exists per simulated host; the native SDK transport,
/// every Firecracker backend and the manager all share it (via `Arc`).
#[derive(Debug, Clone)]
pub struct UpmemDriver {
    machine: PimMachine,
    board: Arc<StatusBoard>,
}

impl UpmemDriver {
    /// Installs the driver on a machine.
    #[must_use]
    pub fn new(machine: PimMachine) -> Self {
        let board = Arc::new(StatusBoard::new(machine.rank_count()));
        UpmemDriver { machine, board }
    }

    /// The underlying machine.
    #[must_use]
    pub fn machine(&self) -> &PimMachine {
        &self.machine
    }

    /// The sysfs rank-status board.
    #[must_use]
    pub fn sysfs(&self) -> &Arc<StatusBoard> {
        &self.board
    }

    /// Number of ranks the driver exposes.
    #[must_use]
    pub fn rank_count(&self) -> usize {
        self.machine.rank_count()
    }

    /// Opens rank `rank` in performance mode (mmap of MRAM + CI), claiming
    /// it for `owner`.
    ///
    /// # Errors
    ///
    /// [`DriverError::RankInUse`] if another handle holds the rank, or
    /// [`DriverError::Sim`] for an invalid rank index.
    pub fn open_perf(&self, rank: usize, owner: &str) -> Result<PerfMapping, DriverError> {
        let r = self.machine.rank(rank)?;
        let claim = self.board.claim(rank, owner)?;
        Ok(PerfMapping::new(r, self.machine.registry().clone(), claim))
    }

    /// Opens rank `rank` in safe mode (ioctl through the kernel), claiming
    /// it for `owner`.
    ///
    /// # Errors
    ///
    /// [`DriverError::RankInUse`] if another handle holds the rank, or
    /// [`DriverError::Sim`] for an invalid rank index.
    pub fn open_safe(&self, rank: usize, owner: &str) -> Result<SafeFile, DriverError> {
        let r = self.machine.rank(rank)?;
        let claim = self.board.claim(rank, owner)?;
        Ok(SafeFile::new(r, self.machine.registry().clone(), claim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upmem_sim::PimConfig;

    fn driver() -> UpmemDriver {
        UpmemDriver::new(PimMachine::new(PimConfig::small()))
    }

    #[test]
    fn perf_and_safe_modes_conflict_on_same_rank() {
        let d = driver();
        let perf = d.open_perf(0, "a").unwrap();
        assert!(matches!(d.open_safe(0, "b"), Err(DriverError::RankInUse { .. })));
        drop(perf);
        assert!(d.open_safe(0, "b").is_ok());
    }

    #[test]
    fn different_ranks_coexist() {
        let d = driver();
        let _a = d.open_perf(0, "a").unwrap();
        let _b = d.open_perf(1, "b").unwrap();
    }

    #[test]
    fn invalid_rank_is_driver_error() {
        let d = driver();
        assert!(d.open_perf(7, "a").is_err());
    }

    #[test]
    fn sysfs_reflects_claims() {
        let d = driver();
        assert_eq!(d.sysfs().status(0).unwrap(), RankStatus::Free);
        let h = d.open_perf(0, "vm-1").unwrap();
        match d.sysfs().status(0).unwrap() {
            RankStatus::InUse { owner } => assert_eq!(owner, "vm-1"),
            other => panic!("unexpected status {other:?}"),
        }
        drop(h);
        assert_eq!(d.sysfs().status(0).unwrap(), RankStatus::Free);
    }
}
