//! The sysfs rank-status board.
//!
//! The real driver exposes one status file per rank under sysfs; the vPIM
//! manager's observer thread watches those files to learn about rank
//! releases without any cooperation from the releasing application (§3.5).
//! We model the directory as a [`StatusBoard`]: claims and releases update
//! entries and wake blocked watchers through a condition variable.
//!
//! # Sharding
//!
//! Entries are split into [`BOARD_SHARDS`] contiguous rank groups, each
//! behind its own mutex, so claims and releases on different groups never
//! contend and the manager's sweep can scan groups independently
//! ([`StatusBoard::snapshot_group`]). The change generation is a single
//! atomic bumped inside the owning shard's critical section; watchers
//! park on a dedicated notify mutex (never held while touching entries),
//! which sits at the leaf of the system lock hierarchy
//! (`simkit::lockorder`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use simkit::lockorder::{ordered, LockLevel};

use crate::error::DriverError;

/// Number of contiguous rank groups the board's entries are split into.
pub const BOARD_SHARDS: usize = 8;

/// Status of one rank as published in sysfs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankStatus {
    /// No handle holds the rank.
    Free,
    /// A handle holds the rank on behalf of `owner`.
    InUse {
        /// Owner tag recorded at claim time (VM id or native app name).
        owner: String,
    },
}

/// One contiguous group of entries; index `i` here is rank `base + i`.
#[derive(Debug)]
struct ShardState {
    entries: Vec<RankStatus>,
    /// Per-rank claim counters: watchers use these to detect claim/release
    /// cycles that happened entirely between two observations.
    claims: Vec<u64>,
}

/// The sysfs directory: one status entry per rank, sharded by rank group.
#[derive(Debug)]
pub struct StatusBoard {
    shards: Vec<Mutex<ShardState>>,
    /// Ranks per shard (the last shard may be short).
    span: usize,
    ranks: usize,
    /// Monotonic change counter so watchers can detect updates they
    /// missed. Bumped inside the owning shard's critical section.
    generation: AtomicU64,
    /// Pairing mutex for `changed` — held only around waits and wakeups,
    /// never while touching entries.
    notify: Mutex<()>,
    changed: Condvar,
}

impl StatusBoard {
    /// Creates a board with `ranks` free entries.
    #[must_use]
    pub fn new(ranks: usize) -> Self {
        let span = ranks.div_ceil(BOARD_SHARDS).max(1);
        let shard_count = ranks.div_ceil(span);
        StatusBoard {
            shards: (0..shard_count)
                .map(|g| {
                    let len = span.min(ranks - g * span);
                    Mutex::new(ShardState {
                        entries: vec![RankStatus::Free; len],
                        claims: vec![0; len],
                    })
                })
                .collect(),
            span,
            ranks,
            generation: AtomicU64::new(0),
            notify: Mutex::new(()),
            changed: Condvar::new(),
        }
    }

    /// The shard owning `rank` (caller guarantees `rank < ranks`).
    fn shard_of(&self, rank: usize) -> usize {
        rank / self.span
    }

    /// Number of entries.
    #[must_use]
    pub fn rank_count(&self) -> usize {
        self.ranks
    }

    /// Number of rank groups (shards) the board is split into.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Bumps the change generation (inside the owning shard's critical
    /// section) — callers must follow up with [`Self::wake_watchers`]
    /// after dropping the shard lock.
    fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Wakes blocked watchers. Briefly takes the notify mutex so a
    /// watcher between its generation check and its wait cannot miss the
    /// wakeup.
    fn wake_watchers(&self) {
        let _ord = ordered(LockLevel::Notify, 0);
        drop(self.notify.lock());
        self.changed.notify_all();
    }

    /// Reads one rank's status file.
    #[must_use]
    pub fn status(&self, rank: usize) -> Option<RankStatus> {
        if rank >= self.ranks {
            return None;
        }
        let g = self.shard_of(rank);
        let _ord = ordered(LockLevel::SysfsBoard, g);
        Some(self.shards[g].lock().entries[rank - g * self.span].clone())
    }

    /// Snapshot of every entry (one `ls`+`cat` sweep of the directory).
    /// Scans shard by shard — entries within a group are mutually
    /// consistent; cross-group consistency is what the claim counters
    /// exist to repair.
    #[must_use]
    pub fn snapshot(&self) -> Vec<RankStatus> {
        let mut out = Vec::with_capacity(self.ranks);
        for (g, shard) in self.shards.iter().enumerate() {
            let _ord = ordered(LockLevel::SysfsBoard, g);
            out.extend(shard.lock().entries.iter().cloned());
        }
        out
    }

    /// Snapshot of every entry together with its claim counter, so a
    /// watcher can tell that a rank was claimed and released entirely
    /// between two sweeps.
    #[must_use]
    pub fn snapshot_with_claims(&self) -> Vec<(RankStatus, u64)> {
        let mut out = Vec::with_capacity(self.ranks);
        for (g, shard) in self.shards.iter().enumerate() {
            let _ord = ordered(LockLevel::SysfsBoard, g);
            let st = shard.lock();
            out.extend(st.entries.iter().cloned().zip(st.claims.iter().copied()));
        }
        out
    }

    /// Snapshot of one rank group: `(base_rank, entries)` where slot `i`
    /// describes rank `base_rank + i`. `None` when `group` is out of
    /// range. This is the sharded sweep's unit of work — one group's
    /// mutex, nothing else.
    #[must_use]
    pub fn snapshot_group(&self, group: usize) -> Option<(usize, Vec<(RankStatus, u64)>)> {
        let shard = self.shards.get(group)?;
        let _ord = ordered(LockLevel::SysfsBoard, group);
        let st = shard.lock();
        Some((
            group * self.span,
            st.entries.iter().cloned().zip(st.claims.iter().copied()).collect(),
        ))
    }

    /// Total claims ever made on `rank`.
    #[must_use]
    pub fn claim_count(&self, rank: usize) -> u64 {
        if rank >= self.ranks {
            return 0;
        }
        let g = self.shard_of(rank);
        let _ord = ordered(LockLevel::SysfsBoard, g);
        self.shards[g].lock().claims[rank - g * self.span]
    }

    /// Current change generation. Increases on every claim or release.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Blocks until the generation exceeds `seen` or `timeout` elapses.
    /// Returns the new generation (equal to `seen` on timeout with no
    /// change). This is the observer thread's inotify-style wait.
    #[must_use]
    pub fn wait_for_change(&self, seen: u64, timeout: Duration) -> u64 {
        let _ord = ordered(LockLevel::Notify, 0);
        let mut guard = self.notify.lock();
        if self.generation() <= seen {
            let _ = self.changed.wait_for(&mut guard, timeout);
        }
        drop(guard);
        self.generation()
    }

    /// Claims `rank` for `owner`. Returns an RAII guard whose drop releases
    /// the claim (closing the device file).
    ///
    /// # Errors
    ///
    /// [`DriverError::RankInUse`] if the rank is already claimed;
    /// [`DriverError::Sim`] (invalid rank) if the index is out of range.
    pub fn claim(self: &Arc<Self>, rank: usize, owner: &str) -> Result<RankClaim, DriverError> {
        if rank >= self.ranks {
            return Err(DriverError::Sim(upmem_sim::SimError::InvalidRank(rank)));
        }
        let g = self.shard_of(rank);
        let slot = rank - g * self.span;
        {
            let _ord = ordered(LockLevel::SysfsBoard, g);
            let mut st = self.shards[g].lock();
            match &st.entries[slot] {
                RankStatus::InUse { owner: cur } => {
                    return Err(DriverError::RankInUse { rank, owner: cur.clone() });
                }
                RankStatus::Free => {
                    st.entries[slot] = RankStatus::InUse { owner: owner.to_string() };
                    st.claims[slot] += 1;
                    self.bump_generation();
                }
            }
        }
        self.wake_watchers();
        Ok(RankClaim { board: Arc::clone(self), rank })
    }

    fn release(&self, rank: usize) {
        if rank >= self.ranks {
            return;
        }
        let g = self.shard_of(rank);
        {
            let _ord = ordered(LockLevel::SysfsBoard, g);
            let mut st = self.shards[g].lock();
            st.entries[rank - g * self.span] = RankStatus::Free;
            self.bump_generation();
        }
        self.wake_watchers();
    }
}

/// RAII claim over one rank; releasing happens on drop (file close).
#[derive(Debug)]
pub struct RankClaim {
    board: Arc<StatusBoard>,
    rank: usize,
}

impl RankClaim {
    /// The claimed rank index.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }
}

impl Drop for RankClaim {
    fn drop(&mut self) {
        self.board.release(self.rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn claim_release_cycle() {
        let board = Arc::new(StatusBoard::new(2));
        let g0 = board.generation();
        let c = board.claim(1, "vm").unwrap();
        assert_eq!(c.rank(), 1);
        assert!(board.generation() > g0);
        assert!(matches!(board.status(1), Some(RankStatus::InUse { .. })));
        drop(c);
        assert_eq!(board.status(1), Some(RankStatus::Free));
    }

    #[test]
    fn double_claim_rejected() {
        let board = Arc::new(StatusBoard::new(1));
        let _c = board.claim(0, "a").unwrap();
        assert!(matches!(board.claim(0, "b"), Err(DriverError::RankInUse { .. })));
    }

    #[test]
    fn out_of_range_claim_rejected() {
        let board = Arc::new(StatusBoard::new(1));
        assert!(board.claim(5, "a").is_err());
        assert_eq!(board.status(5), None);
    }

    #[test]
    fn watcher_wakes_on_release() {
        let board = Arc::new(StatusBoard::new(1));
        let claim = board.claim(0, "vm").unwrap();
        let seen = board.generation();
        let watcher = {
            let board = Arc::clone(&board);
            thread::spawn(move || board.wait_for_change(seen, Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(20));
        drop(claim);
        let newgen = watcher.join().unwrap();
        assert!(newgen > seen);
        assert_eq!(board.status(0), Some(RankStatus::Free));
    }

    #[test]
    fn wait_times_out_without_changes() {
        let board = Arc::new(StatusBoard::new(1));
        let seen = board.generation();
        let g = board.wait_for_change(seen, Duration::from_millis(10));
        assert_eq!(g, seen);
    }

    #[test]
    fn snapshot_matches_entries() {
        let board = Arc::new(StatusBoard::new(3));
        let _c = board.claim(2, "x").unwrap();
        let snap = board.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0], RankStatus::Free);
        assert!(matches!(&snap[2], RankStatus::InUse { owner } if owner == "x"));
    }

    #[test]
    fn group_snapshots_tile_the_full_sweep() {
        // 19 ranks over 8 shards: span 3, last shard short — group
        // snapshots must tile exactly onto the flat snapshot.
        let board = Arc::new(StatusBoard::new(19));
        let _a = board.claim(0, "a").unwrap();
        let _b = board.claim(7, "b").unwrap();
        let _c = board.claim(18, "c").unwrap();
        let flat = board.snapshot_with_claims();
        let mut tiled: Vec<(RankStatus, u64)> = Vec::new();
        for g in 0..board.shard_count() {
            let (base, entries) = board.snapshot_group(g).unwrap();
            assert_eq!(base, tiled.len());
            tiled.extend(entries);
        }
        assert_eq!(tiled, flat);
        assert_eq!(board.snapshot_group(board.shard_count()), None);
        assert!(board.shard_count() <= BOARD_SHARDS);
    }

    #[test]
    fn concurrent_claims_on_distinct_groups_succeed_exactly_once() {
        let board = Arc::new(StatusBoard::new(16));
        let mut handles = Vec::new();
        for rank in 0..16 {
            let board = Arc::clone(&board);
            handles.push(thread::spawn(move || {
                board.claim(rank, &format!("t{rank}")).map(|c| c.rank())
            }));
        }
        let mut got: Vec<usize> =
            handles.into_iter().map(|h| h.join().unwrap().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
        // 16 claims + 16 drop-releases, each bumping the generation once.
        assert_eq!(board.generation(), 32);
        assert!(board.snapshot().iter().all(|s| *s == RankStatus::Free));
    }
}
