//! The sysfs rank-status board.
//!
//! The real driver exposes one status file per rank under sysfs; the vPIM
//! manager's observer thread watches those files to learn about rank
//! releases without any cooperation from the releasing application (§3.5).
//! We model the directory as a [`StatusBoard`]: claims and releases update
//! entries and wake blocked watchers through a condition variable.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::DriverError;

/// Status of one rank as published in sysfs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankStatus {
    /// No handle holds the rank.
    Free,
    /// A handle holds the rank on behalf of `owner`.
    InUse {
        /// Owner tag recorded at claim time (VM id or native app name).
        owner: String,
    },
}

#[derive(Debug)]
struct BoardState {
    entries: Vec<RankStatus>,
    /// Per-rank claim counters: watchers use these to detect claim/release
    /// cycles that happened entirely between two observations.
    claims: Vec<u64>,
    /// Monotonic change counter so watchers can detect updates they missed.
    generation: u64,
}

/// The sysfs directory: one status entry per rank.
#[derive(Debug)]
pub struct StatusBoard {
    state: Mutex<BoardState>,
    changed: Condvar,
}

impl StatusBoard {
    /// Creates a board with `ranks` free entries.
    #[must_use]
    pub fn new(ranks: usize) -> Self {
        StatusBoard {
            state: Mutex::new(BoardState {
                entries: vec![RankStatus::Free; ranks],
                claims: vec![0; ranks],
                generation: 0,
            }),
            changed: Condvar::new(),
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn rank_count(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Reads one rank's status file.
    #[must_use]
    pub fn status(&self, rank: usize) -> Option<RankStatus> {
        self.state.lock().entries.get(rank).cloned()
    }

    /// Snapshot of every entry (one `ls`+`cat` sweep of the directory).
    #[must_use]
    pub fn snapshot(&self) -> Vec<RankStatus> {
        self.state.lock().entries.clone()
    }

    /// Snapshot of every entry together with its claim counter, so a
    /// watcher can tell that a rank was claimed and released entirely
    /// between two sweeps.
    #[must_use]
    pub fn snapshot_with_claims(&self) -> Vec<(RankStatus, u64)> {
        let st = self.state.lock();
        st.entries.iter().cloned().zip(st.claims.iter().copied()).collect()
    }

    /// Total claims ever made on `rank`.
    #[must_use]
    pub fn claim_count(&self, rank: usize) -> u64 {
        self.state.lock().claims.get(rank).copied().unwrap_or(0)
    }

    /// Current change generation. Increases on every claim or release.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// Blocks until the generation exceeds `seen` or `timeout` elapses.
    /// Returns the new generation (equal to `seen` on timeout with no
    /// change). This is the observer thread's inotify-style wait.
    #[must_use]
    pub fn wait_for_change(&self, seen: u64, timeout: Duration) -> u64 {
        let mut st = self.state.lock();
        if st.generation <= seen {
            let _ = self.changed.wait_for(&mut st, timeout);
        }
        st.generation
    }

    /// Claims `rank` for `owner`. Returns an RAII guard whose drop releases
    /// the claim (closing the device file).
    ///
    /// # Errors
    ///
    /// [`DriverError::RankInUse`] if the rank is already claimed;
    /// [`DriverError::Sim`] (invalid rank) if the index is out of range.
    pub fn claim(self: &Arc<Self>, rank: usize, owner: &str) -> Result<RankClaim, DriverError> {
        let mut st = self.state.lock();
        match st.entries.get(rank) {
            None => Err(DriverError::Sim(upmem_sim::SimError::InvalidRank(rank))),
            Some(RankStatus::InUse { owner: cur }) => Err(DriverError::RankInUse {
                rank,
                owner: cur.clone(),
            }),
            Some(RankStatus::Free) => {
                st.entries[rank] = RankStatus::InUse { owner: owner.to_string() };
                st.claims[rank] += 1;
                st.generation += 1;
                drop(st);
                self.changed.notify_all();
                Ok(RankClaim { board: Arc::clone(self), rank })
            }
        }
    }

    fn release(&self, rank: usize) {
        let mut st = self.state.lock();
        if let Some(e) = st.entries.get_mut(rank) {
            *e = RankStatus::Free;
            st.generation += 1;
        }
        drop(st);
        self.changed.notify_all();
    }
}

/// RAII claim over one rank; releasing happens on drop (file close).
#[derive(Debug)]
pub struct RankClaim {
    board: Arc<StatusBoard>,
    rank: usize,
}

impl RankClaim {
    /// The claimed rank index.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }
}

impl Drop for RankClaim {
    fn drop(&mut self) {
        self.board.release(self.rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn claim_release_cycle() {
        let board = Arc::new(StatusBoard::new(2));
        let g0 = board.generation();
        let c = board.claim(1, "vm").unwrap();
        assert_eq!(c.rank(), 1);
        assert!(board.generation() > g0);
        assert!(matches!(board.status(1), Some(RankStatus::InUse { .. })));
        drop(c);
        assert_eq!(board.status(1), Some(RankStatus::Free));
    }

    #[test]
    fn double_claim_rejected() {
        let board = Arc::new(StatusBoard::new(1));
        let _c = board.claim(0, "a").unwrap();
        assert!(matches!(board.claim(0, "b"), Err(DriverError::RankInUse { .. })));
    }

    #[test]
    fn out_of_range_claim_rejected() {
        let board = Arc::new(StatusBoard::new(1));
        assert!(board.claim(5, "a").is_err());
        assert_eq!(board.status(5), None);
    }

    #[test]
    fn watcher_wakes_on_release() {
        let board = Arc::new(StatusBoard::new(1));
        let claim = board.claim(0, "vm").unwrap();
        let seen = board.generation();
        let watcher = {
            let board = Arc::clone(&board);
            thread::spawn(move || board.wait_for_change(seen, Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(20));
        drop(claim);
        let newgen = watcher.join().unwrap();
        assert!(newgen > seen);
        assert_eq!(board.status(0), Some(RankStatus::Free));
    }

    #[test]
    fn wait_times_out_without_changes() {
        let board = Arc::new(StatusBoard::new(1));
        let seen = board.generation();
        let g = board.wait_for_change(seen, Duration::from_millis(10));
        assert_eq!(g, seen);
    }

    #[test]
    fn snapshot_matches_entries() {
        let board = Arc::new(StatusBoard::new(3));
        let _c = board.claim(2, "x").unwrap();
        let snap = board.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0], RankStatus::Free);
        assert!(matches!(&snap[2], RankStatus::InUse { owner } if owner == "x"));
    }
}
