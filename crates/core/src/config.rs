//! The optimization matrix (Table 2) as a configuration type.

use serde::{Deserialize, Serialize};
use simkit::cost::DataPath;
use simkit::FaultPlan;

use crate::sched::SchedPolicy;

/// A fault-injection site: one of the named fault points threaded through
/// the stack. The enum (rather than a string) keeps [`VpimConfig`] `Copy`
/// and makes configurations exhaustively checkable; [`name`](Self::name)
/// yields the point name the [`simkit::FaultPlane`] is armed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// A guest kick is dropped before the device handler runs
    /// (`vmm.kick.drop`).
    KickDrop,
    /// A completion IRQ is delayed past its notify (`virtio.irq.delay`).
    IrqDelay,
    /// A guest-memory data access raises a transient EIO
    /// (`virtio.mem.eio`).
    MemEio,
    /// A backend per-DPU chunk write tears partway (`backend.chunk.torn_write`).
    ChunkTornWrite,
    /// A backend per-DPU chunk worker stalls in wall-clock time
    /// (`backend.chunk.stall`).
    ChunkStall,
    /// A simulated control-interface op fails (`sim.ci.op`).
    CiOp,
    /// A simulated MRAM DMA fails, keyed by DPU (`sim.mram.dma`).
    MramDma,
    /// A program launch faults at boot (`sim.launch.fault`).
    LaunchFault,
    /// A manager RPC (alloc / sync / mark-ckpt) fails (`manager.rpc`).
    ManagerRpc,
    /// The scheduler's checkpoint path stalls at the safe point
    /// (`sched.ckpt.stall`).
    CkptStall,
    /// An inter-host link transfer is dropped mid-migration
    /// (`cluster.link.drop`).
    LinkDrop,
    /// The migration engine stalls at its safe point in wall-clock time
    /// (`cluster.migrate.stall`).
    MigrateStall,
    /// A persistent-heap WAL append tears partway, leaving an
    /// uncommitted tail in MRAM (`pheap.wal.torn`).
    PheapWalTorn,
    /// A persistent-heap commit record is dropped before it reaches
    /// MRAM — power loss just before commit (`pheap.persist.drop`).
    PheapPersistDrop,
}

impl FaultSite {
    /// Every site, in stack order (guest-facing first).
    pub const ALL: [FaultSite; 14] = [
        FaultSite::KickDrop,
        FaultSite::IrqDelay,
        FaultSite::MemEio,
        FaultSite::ChunkTornWrite,
        FaultSite::ChunkStall,
        FaultSite::CiOp,
        FaultSite::MramDma,
        FaultSite::LaunchFault,
        FaultSite::ManagerRpc,
        FaultSite::CkptStall,
        FaultSite::LinkDrop,
        FaultSite::MigrateStall,
        FaultSite::PheapWalTorn,
        FaultSite::PheapPersistDrop,
    ];

    /// The fault-point name this site arms on the plane.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            FaultSite::KickDrop => "vmm.kick.drop",
            FaultSite::IrqDelay => "virtio.irq.delay",
            FaultSite::MemEio => "virtio.mem.eio",
            FaultSite::ChunkTornWrite => "backend.chunk.torn_write",
            FaultSite::ChunkStall => "backend.chunk.stall",
            FaultSite::CiOp => "sim.ci.op",
            FaultSite::MramDma => "sim.mram.dma",
            FaultSite::LaunchFault => "sim.launch.fault",
            FaultSite::ManagerRpc => "manager.rpc",
            FaultSite::CkptStall => "sched.ckpt.stall",
            FaultSite::LinkDrop => "cluster.link.drop",
            FaultSite::MigrateStall => "cluster.migrate.stall",
            FaultSite::PheapWalTorn => "pheap.wal.torn",
            FaultSite::PheapPersistDrop => "pheap.persist.drop",
        }
    }
}

/// One armed fault: a site plus the plan deciding which hits fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Where to inject.
    pub site: FaultSite,
    /// When to fire.
    pub plan: FaultPlan,
}

/// The fault-injection knobs (the `inject` section of [`VpimConfig`]).
///
/// Disabled by default: no plane is built, every fault point stays a
/// single relaxed atomic load, and the system is bit-identical to one
/// compiled without injection. The fixed-size `faults` array (rather than
/// a `Vec`) keeps [`VpimConfig`] `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectSection {
    /// Build and install a [`simkit::FaultPlane`] at system start.
    pub enabled: bool,
    /// Seed for probability plans and retry jitter — the *only* source of
    /// randomness, so a (seed, config) pair replays bit-identically.
    pub seed: u64,
    /// Faults to arm at start (first `None` terminates the list).
    pub faults: [Option<FaultSpec>; 8],
}

impl InjectSection {
    /// The armed faults (the leading `Some` prefix of the array).
    pub fn armed(&self) -> impl Iterator<Item = FaultSpec> + '_ {
        self.faults.iter().flatten().copied()
    }
}

impl Default for InjectSection {
    fn default() -> Self {
        InjectSection { enabled: false, seed: 0, faults: [None; 8] }
    }
}

/// The rank scheduler's knobs (the `sched` section of [`VpimConfig`]).
///
/// With `oversubscription` off (the default) the scheduler is a thin
/// pass-through over the manager: exhaustion fails fast with
/// [`NoRankAvailable`](crate::VpimError::NoRankAvailable), exactly the
/// paper's §3.5 behaviour. Switching it on turns exhaustion into
/// **block-or-queue**: requests park in an admission queue and are served
/// by time-sharing ranks through checkpoint → reset → lend → restore
/// cycles (§7's consolidation future work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedSection {
    /// Allow more tenant VMs than physical ranks (time-sharing).
    pub oversubscription: bool,
    /// Admission-queue ordering policy.
    pub policy: SchedPolicy,
    /// Protection quantum in **virtual** milliseconds: a lease that has
    /// consumed less rank time than this is only preempted when no expired
    /// lease exists.
    pub quantum_ms: u64,
    /// [`SnapshotStore`](crate::sched::SnapshotStore) budget in MiB
    /// (0 = unlimited). Preemptions that would overflow the budget are
    /// refused rather than dropping a tenant's parked state.
    pub park_budget_mib: u64,
    /// Wall-clock milliseconds a queued request waits before giving up
    /// with [`AdmissionTimeout`](crate::VpimError::AdmissionTimeout).
    pub admission_timeout_ms: u64,
}

impl Default for SchedSection {
    fn default() -> Self {
        SchedSection {
            oversubscription: false,
            policy: SchedPolicy::Fifo,
            quantum_ms: 50,
            park_budget_mib: 256,
            admission_timeout_ms: 30_000,
        }
    }
}

/// The adaptive frontend controller's knobs (the `adapt` section of
/// [`VpimConfig`]).
///
/// Disabled by default: the frontend runs the paper's static policies
/// (fixed prefetch window, capacity-triggered batch flush) and is
/// byte-identical to a build without the controller. Enabling it closes
/// the telemetry loop (DESIGN.md §16): the prefetch window resizes within
/// `[min_window_pages, max_window_pages]` from observed fetch utilization,
/// write-then-read-back patterns toggle prefetch off per DPU, and the
/// batch flush threshold tracks inter-op virtual gaps. Every decision is a
/// pure function of virtual-time observations, so Sequential and Parallel
/// dispatch stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptSection {
    /// Run the feedback controller (off = exact static-policy passthrough).
    pub enabled: bool,
    /// Smallest prefetch window in pages per DPU the controller may pick.
    pub min_window_pages: u32,
    /// Largest prefetch window in pages per DPU the controller may pick.
    pub max_window_pages: u32,
    /// Consecutive same-DPU hits that mark a stream; the next contiguous
    /// overrun miss then doubles the window.
    pub grow_hit_run: u32,
    /// A retired fetch that served less than this percentage of its bytes
    /// shrinks the window to the observed need.
    pub shrink_waste_pct: u32,
    /// Floor for the adaptive batch flush threshold, in pages per DPU.
    pub min_batch_pages: u32,
    /// Ceiling for the adaptive batch flush threshold, in pages per DPU
    /// (also the allocated buffer capacity while the controller runs).
    pub max_batch_pages: u32,
    /// Consecutive sub-`burst_gap_us` appends before the flush threshold
    /// doubles (the tenant is bursting; widen the window).
    pub burst_grow_run: u32,
    /// An inter-append virtual gap at or above this many microseconds
    /// means the tenant went idle: flush pending writes early and halve
    /// the threshold.
    pub idle_gap_us: u64,
    /// An inter-append virtual gap at or below this many microseconds
    /// counts toward a burst run.
    pub burst_gap_us: u64,
}

impl Default for AdaptSection {
    fn default() -> Self {
        AdaptSection {
            enabled: false,
            min_window_pages: 1,
            max_window_pages: 64,
            grow_hit_run: 8,
            shrink_waste_pct: 25,
            min_batch_pages: 16,
            max_batch_pages: 256,
            burst_grow_run: 32,
            idle_gap_us: 200,
            burst_gap_us: 5,
        }
    }
}

/// The named configurations evaluated in §5.4 (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Pure-Rust data path, no optimizations (`vPIM-rust`).
    VpimRust,
    /// C/AVX-512 data path only (`vPIM-C`).
    VpimC,
    /// C path + prefetch cache (`vPIM+P`).
    VpimP,
    /// C path + request batching (`vPIM+B`).
    VpimB,
    /// C path + prefetch + batching (`vPIM+PB`).
    VpimPB,
    /// All data-plane optimizations, sequential event handling (`vPIM-Seq`).
    VpimSeq,
    /// Everything enabled (`vPIM`).
    Vpim,
}

impl Variant {
    /// All variants, in Table 2 order.
    pub const ALL: [Variant; 7] = [
        Variant::VpimRust,
        Variant::VpimC,
        Variant::VpimP,
        Variant::VpimB,
        Variant::VpimPB,
        Variant::VpimSeq,
        Variant::Vpim,
    ];

    /// The label used in the paper's tables and figures.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Variant::VpimRust => "vPIM-rust",
            Variant::VpimC => "vPIM-C",
            Variant::VpimP => "vPIM+P",
            Variant::VpimB => "vPIM+B",
            Variant::VpimPB => "vPIM+PB",
            Variant::VpimSeq => "vPIM-Seq",
            Variant::Vpim => "vPIM",
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which vPIM optimizations are enabled (§4, Table 2).
///
/// Construct configurations with [`VpimConfig::builder`] (or the named
/// shorthands [`full`](VpimConfig::full) /
/// [`variant_config`](VpimConfig::variant_config)). The fields stay public
/// for *reading*; mutating them in place is deprecated in favour of the
/// builder, which keeps the flag set consistent with a Table 2 row.
///
/// # Example
///
/// ```
/// use vpim::{Variant, VpimConfig};
///
/// let full = VpimConfig::full();
/// assert_eq!(full.variant(), Variant::Vpim);
/// let rust = VpimConfig::variant_config(Variant::VpimRust);
/// assert!(!rust.prefetch_cache);
/// let custom = VpimConfig::builder().prefetch(false).parallel(false).build();
/// assert_eq!(custom.variant(), Variant::VpimB);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VpimConfig {
    /// "C Code Enhancement": which data path handles interleaving and
    /// matrix management in the backend.
    pub data_path: DataPath,
    /// Frontend prefetch cache for small reads (16 pages per DPU).
    pub prefetch_cache: bool,
    /// Frontend request batching for small writes (64 pages per DPU).
    pub request_batching: bool,
    /// Parallel operation handling across ranks in the event manager.
    pub parallel_handling: bool,
    /// Prefetch cache capacity in pages per DPU (paper: 16).
    pub prefetch_pages_per_dpu: usize,
    /// Batch buffer capacity in pages per DPU (paper: 64).
    pub batch_pages_per_dpu: usize,
    /// Rank scheduling and oversubscription knobs.
    pub sched: SchedSection,
    /// Deterministic fault-injection knobs (disabled by default).
    pub inject: InjectSection,
    /// Adaptive frontend-controller knobs (disabled by default).
    pub adapt: AdaptSection,
}

/// Fluent constructor for [`VpimConfig`], starting from the fully
/// optimized configuration. Each setter returns the builder, so a custom
/// flag set reads as one expression:
///
/// ```
/// use vpim::VpimConfig;
///
/// let cfg = VpimConfig::builder()
///     .prefetch_pages(4)
///     .batching(false)
///     .build();
/// assert!(cfg.prefetch_cache);
/// assert_eq!(cfg.prefetch_pages_per_dpu, 4);
/// assert!(!cfg.request_batching);
/// ```
#[derive(Debug, Clone)]
pub struct VpimConfigBuilder {
    cfg: VpimConfig,
}

impl VpimConfigBuilder {
    /// Selects the backend data path ("C Code Enhancement" when
    /// [`DataPath::Vectorized`]).
    #[must_use]
    pub fn data_path(mut self, path: DataPath) -> Self {
        self.cfg.data_path = path;
        self
    }

    /// Enables or disables the frontend prefetch cache.
    #[must_use]
    pub fn prefetch(mut self, on: bool) -> Self {
        self.cfg.prefetch_cache = on;
        self
    }

    /// Sets the prefetch cache capacity in pages per DPU (paper: 16) and
    /// enables the cache; `0` disables it instead.
    #[must_use]
    pub fn prefetch_pages(mut self, pages: usize) -> Self {
        if pages == 0 {
            self.cfg.prefetch_cache = false;
        } else {
            self.cfg.prefetch_cache = true;
            self.cfg.prefetch_pages_per_dpu = pages;
        }
        self
    }

    /// Enables or disables frontend request batching.
    #[must_use]
    pub fn batching(mut self, on: bool) -> Self {
        self.cfg.request_batching = on;
        self
    }

    /// Sets the batch buffer capacity in pages per DPU (paper: 64) and
    /// enables batching; `0` disables it instead.
    #[must_use]
    pub fn batch_pages(mut self, pages: usize) -> Self {
        if pages == 0 {
            self.cfg.request_batching = false;
        } else {
            self.cfg.request_batching = true;
            self.cfg.batch_pages_per_dpu = pages;
        }
        self
    }

    /// Enables or disables parallel operation handling across ranks.
    #[must_use]
    pub fn parallel(mut self, on: bool) -> Self {
        self.cfg.parallel_handling = on;
        self
    }

    /// Enables or disables rank oversubscription (block-or-queue admission
    /// plus checkpoint/restore time-sharing when tenants outnumber ranks).
    #[must_use]
    pub fn oversubscription(mut self, on: bool) -> Self {
        self.cfg.sched.oversubscription = on;
        self
    }

    /// Selects the admission-queue policy.
    #[must_use]
    pub fn sched_policy(mut self, policy: SchedPolicy) -> Self {
        self.cfg.sched.policy = policy;
        self
    }

    /// Sets the virtual-time protection quantum in milliseconds.
    #[must_use]
    pub fn sched_quantum_ms(mut self, ms: u64) -> Self {
        self.cfg.sched.quantum_ms = ms;
        self
    }

    /// Sets the snapshot-store budget in MiB (0 = unlimited).
    #[must_use]
    pub fn park_budget_mib(mut self, mib: u64) -> Self {
        self.cfg.sched.park_budget_mib = mib;
        self
    }

    /// Sets the wall-clock admission timeout in milliseconds.
    #[must_use]
    pub fn admission_timeout_ms(mut self, ms: u64) -> Self {
        self.cfg.sched.admission_timeout_ms = ms;
        self
    }

    /// Replaces the whole `sched` section.
    #[must_use]
    pub fn sched(mut self, sched: SchedSection) -> Self {
        self.cfg.sched = sched;
        self
    }

    /// Enables fault injection with the given seed (the sole randomness
    /// source for probability plans and retry jitter).
    #[must_use]
    pub fn inject_seed(mut self, seed: u64) -> Self {
        self.cfg.inject.enabled = true;
        self.cfg.inject.seed = seed;
        self
    }

    /// Arms a fault at system start (and enables injection). Up to 8
    /// faults can be armed from configuration; more can always be armed at
    /// runtime through the plane itself.
    ///
    /// # Panics
    ///
    /// When all 8 configuration slots are taken.
    #[must_use]
    pub fn inject_fault(mut self, site: FaultSite, plan: FaultPlan) -> Self {
        self.cfg.inject.enabled = true;
        let slot = self
            .cfg
            .inject
            .faults
            .iter_mut()
            .find(|s| s.is_none())
            .expect("all 8 configured fault slots are taken");
        *slot = Some(FaultSpec { site, plan });
        self
    }

    /// Replaces the whole `inject` section.
    #[must_use]
    pub fn inject(mut self, inject: InjectSection) -> Self {
        self.cfg.inject = inject;
        self
    }

    /// Enables or disables the adaptive frontend controller.
    #[must_use]
    pub fn adaptive(mut self, on: bool) -> Self {
        self.cfg.adapt.enabled = on;
        self
    }

    /// Sets the controller's prefetch-window bounds in pages per DPU (and
    /// enables the controller).
    ///
    /// # Panics
    ///
    /// When `min` is zero or greater than `max`.
    #[must_use]
    pub fn adapt_window_pages(mut self, min: u32, max: u32) -> Self {
        assert!(min >= 1 && min <= max, "window bounds must satisfy 1 <= min <= max");
        self.cfg.adapt.enabled = true;
        self.cfg.adapt.min_window_pages = min;
        self.cfg.adapt.max_window_pages = max;
        self
    }

    /// Replaces the whole `adapt` section.
    #[must_use]
    pub fn adapt(mut self, adapt: AdaptSection) -> Self {
        self.cfg.adapt = adapt;
        self
    }

    /// Finishes the configuration.
    #[must_use]
    pub fn build(self) -> VpimConfig {
        self.cfg
    }
}

impl VpimConfig {
    /// Starts a [`VpimConfigBuilder`] from the fully optimized
    /// configuration; switch individual optimizations off from there.
    #[must_use]
    pub fn builder() -> VpimConfigBuilder {
        VpimConfigBuilder {
            cfg: VpimConfig::full(),
        }
    }

    /// The fully optimized configuration (`vPIM`).
    #[must_use]
    pub fn full() -> Self {
        VpimConfig {
            data_path: DataPath::Vectorized,
            prefetch_cache: true,
            request_batching: true,
            parallel_handling: true,
            prefetch_pages_per_dpu: 16,
            batch_pages_per_dpu: 64,
            sched: SchedSection::default(),
            inject: InjectSection::default(),
            adapt: AdaptSection::default(),
        }
    }

    /// The configuration for a named Table 2 variant.
    #[must_use]
    pub fn variant_config(v: Variant) -> Self {
        let b = VpimConfig::builder();
        match v {
            Variant::VpimRust => b
                .data_path(DataPath::Scalar)
                .prefetch(false)
                .batching(false)
                .parallel(false),
            Variant::VpimC => b.prefetch(false).batching(false).parallel(false),
            Variant::VpimP => b.batching(false).parallel(false),
            Variant::VpimB => b.prefetch(false).parallel(false),
            Variant::VpimPB | Variant::VpimSeq => b.parallel(false),
            Variant::Vpim => b,
        }
        .build()
    }

    /// The Table 2 variant this configuration corresponds to (closest named
    /// row; exact for configurations produced by [`variant_config`]).
    ///
    /// [`variant_config`]: VpimConfig::variant_config
    #[must_use]
    pub fn variant(&self) -> Variant {
        match (
            self.data_path,
            self.prefetch_cache,
            self.request_batching,
            self.parallel_handling,
        ) {
            (DataPath::Scalar, _, _, _) => Variant::VpimRust,
            (_, false, false, _) => Variant::VpimC,
            (_, true, false, _) => Variant::VpimP,
            (_, false, true, _) => Variant::VpimB,
            (_, true, true, false) => Variant::VpimPB,
            (_, true, true, true) => Variant::Vpim,
        }
    }

    /// Prefetch cache capacity in bytes per DPU.
    #[must_use]
    pub fn prefetch_bytes(&self) -> u64 {
        self.prefetch_pages_per_dpu as u64 * 4096
    }

    /// Batch buffer capacity in bytes per DPU.
    #[must_use]
    pub fn batch_bytes(&self) -> u64 {
        self.batch_pages_per_dpu as u64 * 4096
    }

    /// Maximum extra frontend memory per DPU (§4.1 "Memory Overhead"):
    /// page-pointer array + prefetch cache + batch buffer.
    #[must_use]
    pub fn frontend_memory_overhead_per_dpu(&self) -> u64 {
        // §4.1: (16384 × 64) B of per-page bookkeeping (a 64-byte record
        // per 4 KiB page of the 64 MB bank) + prefetch cache + batch buffer.
        let page_records = 16_384u64 * 64;
        page_records + self.prefetch_bytes() + self.batch_bytes()
    }
}

impl Default for VpimConfig {
    fn default() -> Self {
        VpimConfig::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matrix() {
        // Rows of Table 2: (variant, C, prefetch, batching, parallel).
        let rows = [
            (Variant::VpimRust, false, false, false, false),
            (Variant::VpimC, true, false, false, false),
            (Variant::VpimP, true, true, false, false),
            (Variant::VpimB, true, false, true, false),
            (Variant::VpimPB, true, true, true, false),
            (Variant::VpimSeq, true, true, true, false),
            (Variant::Vpim, true, true, true, true),
        ];
        for (v, c, p, b, par) in rows {
            let cfg = VpimConfig::variant_config(v);
            assert_eq!(cfg.data_path == DataPath::Vectorized, c, "{v}");
            assert_eq!(cfg.prefetch_cache, p, "{v}");
            assert_eq!(cfg.request_batching, b, "{v}");
            assert_eq!(cfg.parallel_handling, par, "{v}");
        }
    }

    #[test]
    fn variant_roundtrip_except_seq_alias() {
        for v in Variant::ALL {
            let back = VpimConfig::variant_config(v).variant();
            // vPIM-Seq and vPIM+PB share the same flag set (Table 2);
            // the canonical name for that set is VpimPB.
            let expect = if v == Variant::VpimSeq { Variant::VpimPB } else { v };
            assert_eq!(back, expect);
        }
    }

    #[test]
    fn memory_overhead_matches_paper() {
        // §4.1: (16384 × 64)B + (16 × 4)KB + (64 × 4)KB = 1.37 MB per DPU.
        let cfg = VpimConfig::full();
        let bytes = cfg.frontend_memory_overhead_per_dpu();
        let mb = bytes as f64 / 1e6;
        assert!((mb - 1.37).abs() < 0.05, "got {mb} MB");
    }

    #[test]
    fn builder_defaults_to_full() {
        assert_eq!(VpimConfig::builder().build(), VpimConfig::full());
    }

    #[test]
    fn builder_expresses_every_variant() {
        // The named Table 2 rows are just builder chains; spot-check the
        // extremes and one middle row.
        let rust = VpimConfig::builder()
            .data_path(DataPath::Scalar)
            .prefetch(false)
            .batching(false)
            .parallel(false)
            .build();
        assert_eq!(rust, VpimConfig::variant_config(Variant::VpimRust));
        let pb = VpimConfig::builder().parallel(false).build();
        assert_eq!(pb, VpimConfig::variant_config(Variant::VpimPB));
        assert_eq!(VpimConfig::builder().build(), VpimConfig::variant_config(Variant::Vpim));
    }

    #[test]
    fn builder_page_setters_toggle_features() {
        let off = VpimConfig::builder().prefetch_pages(0).batch_pages(0).build();
        assert!(!off.prefetch_cache);
        assert!(!off.request_batching);
        // Capacities keep their defaults so re-enabling is sane.
        assert_eq!(off.prefetch_pages_per_dpu, 16);
        assert_eq!(off.batch_pages_per_dpu, 64);
        let sized = VpimConfig::builder().prefetch_pages(4).batch_pages(256).build();
        assert!(sized.prefetch_cache && sized.request_batching);
        assert_eq!(sized.prefetch_pages_per_dpu, 4);
        assert_eq!(sized.batch_pages_per_dpu, 256);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Variant::VpimRust.label(), "vPIM-rust");
        assert_eq!(Variant::Vpim.to_string(), "vPIM");
    }

    #[test]
    fn sched_defaults_keep_dedicated_semantics() {
        // Oversubscription is opt-in: the default config must behave
        // exactly like the pre-scheduler system (exhaustion errors).
        let cfg = VpimConfig::builder().build();
        assert!(!cfg.sched.oversubscription);
        assert_eq!(cfg.sched.policy, crate::sched::SchedPolicy::Fifo);
        assert_eq!(cfg.sched.quantum_ms, 50);
        assert_eq!(cfg.sched.park_budget_mib, 256);
        assert_eq!(cfg.sched.admission_timeout_ms, 30_000);
    }

    #[test]
    fn inject_defaults_off_and_builder_arms_faults() {
        let cfg = VpimConfig::builder().build();
        assert!(!cfg.inject.enabled);
        assert_eq!(cfg.inject.armed().count(), 0);

        let cfg = VpimConfig::builder()
            .inject_seed(42)
            .inject_fault(FaultSite::KickDrop, FaultPlan::Nth(3))
            .inject_fault(FaultSite::MemEio, FaultPlan::EveryK(5))
            .build();
        assert!(cfg.inject.enabled);
        assert_eq!(cfg.inject.seed, 42);
        let armed: Vec<FaultSpec> = cfg.inject.armed().collect();
        assert_eq!(armed.len(), 2);
        assert_eq!(armed[0].site.name(), "vmm.kick.drop");
        assert_eq!(armed[1].plan, FaultPlan::EveryK(5));
        // The config (with injection armed) is still Copy + Eq.
        let copy = cfg;
        assert_eq!(copy, cfg);
    }

    #[test]
    fn adapt_defaults_off_and_builder_enables() {
        // The controller is opt-in: the default config must run the static
        // policies untouched (byte-identical to the pre-controller system).
        let cfg = VpimConfig::builder().build();
        assert!(!cfg.adapt.enabled);
        assert_eq!(cfg.adapt.min_window_pages, 1);
        assert_eq!(cfg.adapt.max_window_pages, 64);
        assert_eq!(cfg.adapt.shrink_waste_pct, 25);
        assert_eq!(cfg.adapt.min_batch_pages, 16);
        assert_eq!(cfg.adapt.max_batch_pages, 256);

        let cfg = VpimConfig::builder().adaptive(true).build();
        assert!(cfg.adapt.enabled);
        // Flag-wise this is still the full variant: adapt tunes the data
        // path, it does not change which Table 2 row we are on.
        assert_eq!(cfg.variant(), Variant::Vpim);

        let cfg = VpimConfig::builder().adapt_window_pages(2, 32).build();
        assert!(cfg.adapt.enabled);
        assert_eq!(cfg.adapt.min_window_pages, 2);
        assert_eq!(cfg.adapt.max_window_pages, 32);

        // Whole-section replacement mirrors sched()/inject().
        let section = AdaptSection { enabled: true, grow_hit_run: 4, ..AdaptSection::default() };
        let cfg = VpimConfig::builder().adapt(section).build();
        assert_eq!(cfg.adapt, section);
        // Still Copy + Eq with the new section in place.
        let copy = cfg;
        assert_eq!(copy, cfg);
    }

    #[test]
    fn fault_site_names_are_unique_and_stable() {
        use std::collections::HashSet;
        let names: HashSet<&str> = FaultSite::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), FaultSite::ALL.len());
        assert!(names.contains("sched.ckpt.stall"));
        assert!(names.contains("backend.chunk.torn_write"));
    }

    #[test]
    fn sched_builder_methods_cover_every_knob() {
        let cfg = VpimConfig::builder()
            .oversubscription(true)
            .sched_policy(crate::sched::SchedPolicy::WeightedFair)
            .sched_quantum_ms(7)
            .park_budget_mib(32)
            .admission_timeout_ms(1_500)
            .build();
        assert!(cfg.sched.oversubscription);
        assert_eq!(cfg.sched.policy, crate::sched::SchedPolicy::WeightedFair);
        assert_eq!(cfg.sched.quantum_ms, 7);
        assert_eq!(cfg.sched.park_budget_mib, 32);
        assert_eq!(cfg.sched.admission_timeout_ms, 1_500);
        // Whole-section replacement wins over the defaults too.
        let section = SchedSection { oversubscription: true, ..SchedSection::default() };
        assert_eq!(VpimConfig::builder().sched(section).build().sched, section);
    }
}
