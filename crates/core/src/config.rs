//! The optimization matrix (Table 2) as a configuration type.

use serde::{Deserialize, Serialize};
use simkit::cost::DataPath;

/// The named configurations evaluated in §5.4 (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Pure-Rust data path, no optimizations (`vPIM-rust`).
    VpimRust,
    /// C/AVX-512 data path only (`vPIM-C`).
    VpimC,
    /// C path + prefetch cache (`vPIM+P`).
    VpimP,
    /// C path + request batching (`vPIM+B`).
    VpimB,
    /// C path + prefetch + batching (`vPIM+PB`).
    VpimPB,
    /// All data-plane optimizations, sequential event handling (`vPIM-Seq`).
    VpimSeq,
    /// Everything enabled (`vPIM`).
    Vpim,
}

impl Variant {
    /// All variants, in Table 2 order.
    pub const ALL: [Variant; 7] = [
        Variant::VpimRust,
        Variant::VpimC,
        Variant::VpimP,
        Variant::VpimB,
        Variant::VpimPB,
        Variant::VpimSeq,
        Variant::Vpim,
    ];

    /// The label used in the paper's tables and figures.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Variant::VpimRust => "vPIM-rust",
            Variant::VpimC => "vPIM-C",
            Variant::VpimP => "vPIM+P",
            Variant::VpimB => "vPIM+B",
            Variant::VpimPB => "vPIM+PB",
            Variant::VpimSeq => "vPIM-Seq",
            Variant::Vpim => "vPIM",
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which vPIM optimizations are enabled (§4, Table 2).
///
/// # Example
///
/// ```
/// use vpim::{Variant, VpimConfig};
///
/// let full = VpimConfig::full();
/// assert_eq!(full.variant(), Variant::Vpim);
/// let rust = VpimConfig::variant_config(Variant::VpimRust);
/// assert!(!rust.prefetch_cache);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VpimConfig {
    /// "C Code Enhancement": which data path handles interleaving and
    /// matrix management in the backend.
    pub data_path: DataPath,
    /// Frontend prefetch cache for small reads (16 pages per DPU).
    pub prefetch_cache: bool,
    /// Frontend request batching for small writes (64 pages per DPU).
    pub request_batching: bool,
    /// Parallel operation handling across ranks in the event manager.
    pub parallel_handling: bool,
    /// Prefetch cache capacity in pages per DPU (paper: 16).
    pub prefetch_pages_per_dpu: usize,
    /// Batch buffer capacity in pages per DPU (paper: 64).
    pub batch_pages_per_dpu: usize,
}

impl VpimConfig {
    /// The fully optimized configuration (`vPIM`).
    #[must_use]
    pub fn full() -> Self {
        VpimConfig {
            data_path: DataPath::Vectorized,
            prefetch_cache: true,
            request_batching: true,
            parallel_handling: true,
            prefetch_pages_per_dpu: 16,
            batch_pages_per_dpu: 64,
        }
    }

    /// The configuration for a named Table 2 variant.
    #[must_use]
    pub fn variant_config(v: Variant) -> Self {
        let base = VpimConfig::full();
        match v {
            Variant::VpimRust => VpimConfig {
                data_path: DataPath::Scalar,
                prefetch_cache: false,
                request_batching: false,
                parallel_handling: false,
                ..base
            },
            Variant::VpimC => VpimConfig {
                prefetch_cache: false,
                request_batching: false,
                parallel_handling: false,
                ..base
            },
            Variant::VpimP => VpimConfig {
                request_batching: false,
                parallel_handling: false,
                ..base
            },
            Variant::VpimB => VpimConfig {
                prefetch_cache: false,
                parallel_handling: false,
                ..base
            },
            Variant::VpimPB | Variant::VpimSeq => VpimConfig {
                parallel_handling: false,
                ..base
            },
            Variant::Vpim => base,
        }
    }

    /// The Table 2 variant this configuration corresponds to (closest named
    /// row; exact for configurations produced by [`variant_config`]).
    ///
    /// [`variant_config`]: VpimConfig::variant_config
    #[must_use]
    pub fn variant(&self) -> Variant {
        match (
            self.data_path,
            self.prefetch_cache,
            self.request_batching,
            self.parallel_handling,
        ) {
            (DataPath::Scalar, _, _, _) => Variant::VpimRust,
            (_, false, false, _) => Variant::VpimC,
            (_, true, false, _) => Variant::VpimP,
            (_, false, true, _) => Variant::VpimB,
            (_, true, true, false) => Variant::VpimPB,
            (_, true, true, true) => Variant::Vpim,
        }
    }

    /// Prefetch cache capacity in bytes per DPU.
    #[must_use]
    pub fn prefetch_bytes(&self) -> u64 {
        self.prefetch_pages_per_dpu as u64 * 4096
    }

    /// Batch buffer capacity in bytes per DPU.
    #[must_use]
    pub fn batch_bytes(&self) -> u64 {
        self.batch_pages_per_dpu as u64 * 4096
    }

    /// Maximum extra frontend memory per DPU (§4.1 "Memory Overhead"):
    /// page-pointer array + prefetch cache + batch buffer.
    #[must_use]
    pub fn frontend_memory_overhead_per_dpu(&self) -> u64 {
        // §4.1: (16384 × 64) B of per-page bookkeeping (a 64-byte record
        // per 4 KiB page of the 64 MB bank) + prefetch cache + batch buffer.
        let page_records = 16_384u64 * 64;
        page_records + self.prefetch_bytes() + self.batch_bytes()
    }
}

impl Default for VpimConfig {
    fn default() -> Self {
        VpimConfig::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matrix() {
        // Rows of Table 2: (variant, C, prefetch, batching, parallel).
        let rows = [
            (Variant::VpimRust, false, false, false, false),
            (Variant::VpimC, true, false, false, false),
            (Variant::VpimP, true, true, false, false),
            (Variant::VpimB, true, false, true, false),
            (Variant::VpimPB, true, true, true, false),
            (Variant::VpimSeq, true, true, true, false),
            (Variant::Vpim, true, true, true, true),
        ];
        for (v, c, p, b, par) in rows {
            let cfg = VpimConfig::variant_config(v);
            assert_eq!(cfg.data_path == DataPath::Vectorized, c, "{v}");
            assert_eq!(cfg.prefetch_cache, p, "{v}");
            assert_eq!(cfg.request_batching, b, "{v}");
            assert_eq!(cfg.parallel_handling, par, "{v}");
        }
    }

    #[test]
    fn variant_roundtrip_except_seq_alias() {
        for v in Variant::ALL {
            let back = VpimConfig::variant_config(v).variant();
            // vPIM-Seq and vPIM+PB share the same flag set (Table 2);
            // the canonical name for that set is VpimPB.
            let expect = if v == Variant::VpimSeq { Variant::VpimPB } else { v };
            assert_eq!(back, expect);
        }
    }

    #[test]
    fn memory_overhead_matches_paper() {
        // §4.1: (16384 × 64)B + (16 × 4)KB + (64 × 4)KB = 1.37 MB per DPU.
        let cfg = VpimConfig::full();
        let bytes = cfg.frontend_memory_overhead_per_dpu();
        let mb = bytes as f64 / 1e6;
        assert!((mb - 1.37).abs() < 0.05, "got {mb} MB");
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Variant::VpimRust.label(), "vPIM-rust");
        assert_eq!(Variant::Vpim.to_string(), "vPIM");
    }
}
