//! The host-side parking lot for preempted tenants' rank checkpoints.

use std::collections::HashMap;

use parking_lot::Mutex;
use simkit::telemetry::{Gauge, MetricsRegistry};
use upmem_sim::rank::RankSnapshot;

/// Why a snapshot could not be parked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Parking the snapshot would exceed the store's byte budget. The
    /// preemption that wanted it is refused — dropping a live tenant's
    /// only copy of its rank state is never acceptable.
    BudgetExceeded {
        /// Bytes the rejected snapshot needs.
        needed: u64,
        /// Bytes already parked.
        used: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BudgetExceeded { needed, used, budget } => write!(
                f,
                "snapshot store budget exceeded: need {needed} B with {used} B of {budget} B used"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

#[derive(Debug)]
struct Parked {
    snap: RankSnapshot,
    bytes: u64,
}

/// Parked rank checkpoints, keyed by tenant, under an eviction budget.
///
/// A tenant has at most one parked snapshot (re-parking replaces it). The
/// budget bounds host memory: a park that would overflow it fails with
/// [`StoreError::BudgetExceeded`] and the caller must keep the tenant on
/// its rank instead — parked state is a tenant's only copy, so the store
/// never evicts behind a live tenant's back. Eviction happens only when
/// the tenant itself releases ([`evict`](Self::evict)) or re-grants
/// ([`take`](Self::take)).
#[derive(Debug)]
pub struct SnapshotStore {
    budget_bytes: u64,
    inner: Mutex<HashMap<String, Parked>>,
    /// Mirrors total parked bytes into a registry gauge when constructed
    /// via [`with_registry`](Self::with_registry).
    bytes_gauge: Option<Gauge>,
}

impl SnapshotStore {
    /// A store bounded to `budget_bytes` (0 = unlimited).
    #[must_use]
    pub fn new(budget_bytes: u64) -> Self {
        SnapshotStore { budget_bytes, inner: Mutex::new(HashMap::new()), bytes_gauge: None }
    }

    /// A store that mirrors its total parked bytes into `registry`'s
    /// `gauge_name` gauge (the scheduler publishes `snapshot.bytes`, the
    /// fleet's in-flight migration store `migrate.inflight.bytes`). The
    /// gauge tracks every park/take/evict delta exactly.
    #[must_use]
    pub fn with_registry(budget_bytes: u64, registry: &MetricsRegistry, gauge_name: &str) -> Self {
        SnapshotStore {
            budget_bytes,
            inner: Mutex::new(HashMap::new()),
            bytes_gauge: Some(registry.gauge(gauge_name)),
        }
    }

    /// The configured budget in bytes (0 = unlimited).
    #[must_use]
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Parks `tenant`'s checkpoint; returns its accounted size.
    ///
    /// # Errors
    ///
    /// [`StoreError::BudgetExceeded`] when it does not fit (an existing
    /// snapshot of the *same* tenant is counted as replaced, not added).
    pub fn park(&self, tenant: &str, snap: RankSnapshot) -> Result<u64, StoreError> {
        let bytes = snap.resident_bytes() as u64;
        let mut inner = self.inner.lock();
        let used: u64 = inner
            .iter()
            .filter(|(t, _)| t.as_str() != tenant)
            .map(|(_, p)| p.bytes)
            .sum();
        if self.budget_bytes > 0 && used.saturating_add(bytes) > self.budget_bytes {
            return Err(StoreError::BudgetExceeded {
                needed: bytes,
                used,
                budget: self.budget_bytes,
            });
        }
        let replaced = inner.insert(tenant.to_string(), Parked { snap, bytes });
        if let Some(g) = &self.bytes_gauge {
            g.add(bytes as i64 - replaced.map_or(0, |p| p.bytes as i64));
        }
        Ok(bytes)
    }

    /// Removes and returns `tenant`'s parked checkpoint (the restore half
    /// of a re-grant).
    #[must_use]
    pub fn take(&self, tenant: &str) -> Option<RankSnapshot> {
        let parked = self.inner.lock().remove(tenant);
        if let (Some(g), Some(p)) = (&self.bytes_gauge, &parked) {
            g.sub(p.bytes as i64);
        }
        parked.map(|p| p.snap)
    }

    /// Drops `tenant`'s parked checkpoint without restoring it (tenant
    /// shut down); returns whether one existed.
    pub fn evict(&self, tenant: &str) -> bool {
        let parked = self.inner.lock().remove(tenant);
        if let (Some(g), Some(p)) = (&self.bytes_gauge, &parked) {
            g.sub(p.bytes as i64);
        }
        parked.is_some()
    }

    /// The accounted size of `tenant`'s parked checkpoint, if any — the
    /// byte count migration charges against the inter-host link.
    #[must_use]
    pub fn bytes_of(&self, tenant: &str) -> Option<u64> {
        self.inner.lock().get(tenant).map(|p| p.bytes)
    }

    /// Whether `tenant` has a parked checkpoint.
    #[must_use]
    pub fn contains(&self, tenant: &str) -> bool {
        self.inner.lock().contains_key(tenant)
    }

    /// Total parked bytes.
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().values().map(|p| p.bytes).sum()
    }

    /// Number of parked checkpoints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upmem_sim::geometry::PimConfig;
    use upmem_sim::Rank;

    fn snap_with_bytes(n: usize) -> RankSnapshot {
        let rank = Rank::new(0, &PimConfig::small());
        rank.write_dpu(0, 0, &vec![7u8; n]).unwrap();
        rank.snapshot()
    }

    #[test]
    fn park_take_roundtrip() {
        let store = SnapshotStore::new(0);
        let snap = snap_with_bytes(128);
        let bytes = store.park("vm-a", snap).unwrap();
        assert!(bytes >= 128);
        assert!(store.contains("vm-a"));
        assert_eq!(store.len(), 1);
        let back = store.take("vm-a").unwrap();
        assert!(back.resident_bytes() >= 128);
        assert!(store.is_empty());
        assert!(store.take("vm-a").is_none());
    }

    #[test]
    fn budget_refuses_overflow_but_allows_replacement() {
        let snap = snap_with_bytes(4096);
        let one = snap.resident_bytes() as u64;
        let store = SnapshotStore::new(one + one / 2); // fits one, not two
        store.park("vm-a", snap.clone()).unwrap();
        assert!(matches!(
            store.park("vm-b", snap.clone()),
            Err(StoreError::BudgetExceeded { .. })
        ));
        // Re-parking the same tenant replaces, so it still fits.
        store.park("vm-a", snap).unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn evict_discards() {
        let store = SnapshotStore::new(0);
        store.park("vm-a", snap_with_bytes(8)).unwrap();
        assert!(store.evict("vm-a"));
        assert!(!store.evict("vm-a"));
        assert_eq!(store.used_bytes(), 0);
    }

    #[test]
    fn bytes_of_reports_accounted_size() {
        let store = SnapshotStore::new(0);
        let snap = snap_with_bytes(512);
        let bytes = store.park("vm-a", snap).unwrap();
        assert_eq!(store.bytes_of("vm-a"), Some(bytes));
        assert_eq!(store.bytes_of("vm-b"), None);
        let _ = store.take("vm-a");
        assert_eq!(store.bytes_of("vm-a"), None);
    }

    #[test]
    fn registry_gauge_tracks_every_delta() {
        let registry = MetricsRegistry::new();
        let store = SnapshotStore::with_registry(0, &registry, "snapshot.bytes");
        let gauge = registry.gauge("snapshot.bytes");
        assert_eq!(gauge.get(), 0);

        let small = store.park("vm-a", snap_with_bytes(64)).unwrap();
        assert_eq!(gauge.get() as u64, small);

        // Replacement adjusts by the delta, not the sum.
        let big = store.park("vm-a", snap_with_bytes(4096)).unwrap();
        assert_eq!(gauge.get() as u64, big);

        let other = store.park("vm-b", snap_with_bytes(128)).unwrap();
        assert_eq!(gauge.get() as u64, big + other);

        let _ = store.take("vm-a");
        assert_eq!(gauge.get() as u64, other);
        assert!(store.evict("vm-b"));
        assert_eq!(gauge.get(), 0);
    }
}
