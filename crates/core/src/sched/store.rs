//! The host-side parking lot for preempted tenants' rank checkpoints.

use std::collections::HashMap;

use parking_lot::Mutex;
use upmem_sim::rank::RankSnapshot;

/// Why a snapshot could not be parked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Parking the snapshot would exceed the store's byte budget. The
    /// preemption that wanted it is refused — dropping a live tenant's
    /// only copy of its rank state is never acceptable.
    BudgetExceeded {
        /// Bytes the rejected snapshot needs.
        needed: u64,
        /// Bytes already parked.
        used: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BudgetExceeded { needed, used, budget } => write!(
                f,
                "snapshot store budget exceeded: need {needed} B with {used} B of {budget} B used"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

#[derive(Debug)]
struct Parked {
    snap: RankSnapshot,
    bytes: u64,
}

/// Parked rank checkpoints, keyed by tenant, under an eviction budget.
///
/// A tenant has at most one parked snapshot (re-parking replaces it). The
/// budget bounds host memory: a park that would overflow it fails with
/// [`StoreError::BudgetExceeded`] and the caller must keep the tenant on
/// its rank instead — parked state is a tenant's only copy, so the store
/// never evicts behind a live tenant's back. Eviction happens only when
/// the tenant itself releases ([`evict`](Self::evict)) or re-grants
/// ([`take`](Self::take)).
#[derive(Debug)]
pub struct SnapshotStore {
    budget_bytes: u64,
    inner: Mutex<HashMap<String, Parked>>,
}

impl SnapshotStore {
    /// A store bounded to `budget_bytes` (0 = unlimited).
    #[must_use]
    pub fn new(budget_bytes: u64) -> Self {
        SnapshotStore { budget_bytes, inner: Mutex::new(HashMap::new()) }
    }

    /// The configured budget in bytes (0 = unlimited).
    #[must_use]
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Parks `tenant`'s checkpoint; returns its accounted size.
    ///
    /// # Errors
    ///
    /// [`StoreError::BudgetExceeded`] when it does not fit (an existing
    /// snapshot of the *same* tenant is counted as replaced, not added).
    pub fn park(&self, tenant: &str, snap: RankSnapshot) -> Result<u64, StoreError> {
        let bytes = snap.resident_bytes() as u64;
        let mut inner = self.inner.lock();
        let used: u64 = inner
            .iter()
            .filter(|(t, _)| t.as_str() != tenant)
            .map(|(_, p)| p.bytes)
            .sum();
        if self.budget_bytes > 0 && used.saturating_add(bytes) > self.budget_bytes {
            return Err(StoreError::BudgetExceeded {
                needed: bytes,
                used,
                budget: self.budget_bytes,
            });
        }
        inner.insert(tenant.to_string(), Parked { snap, bytes });
        Ok(bytes)
    }

    /// Removes and returns `tenant`'s parked checkpoint (the restore half
    /// of a re-grant).
    #[must_use]
    pub fn take(&self, tenant: &str) -> Option<RankSnapshot> {
        self.inner.lock().remove(tenant).map(|p| p.snap)
    }

    /// Drops `tenant`'s parked checkpoint without restoring it (tenant
    /// shut down); returns whether one existed.
    pub fn evict(&self, tenant: &str) -> bool {
        self.inner.lock().remove(tenant).is_some()
    }

    /// Whether `tenant` has a parked checkpoint.
    #[must_use]
    pub fn contains(&self, tenant: &str) -> bool {
        self.inner.lock().contains_key(tenant)
    }

    /// Total parked bytes.
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().values().map(|p| p.bytes).sum()
    }

    /// Number of parked checkpoints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upmem_sim::geometry::PimConfig;
    use upmem_sim::Rank;

    fn snap_with_bytes(n: usize) -> RankSnapshot {
        let rank = Rank::new(0, &PimConfig::small());
        rank.write_dpu(0, 0, &vec![7u8; n]).unwrap();
        rank.snapshot()
    }

    #[test]
    fn park_take_roundtrip() {
        let store = SnapshotStore::new(0);
        let snap = snap_with_bytes(128);
        let bytes = store.park("vm-a", snap).unwrap();
        assert!(bytes >= 128);
        assert!(store.contains("vm-a"));
        assert_eq!(store.len(), 1);
        let back = store.take("vm-a").unwrap();
        assert!(back.resident_bytes() >= 128);
        assert!(store.is_empty());
        assert!(store.take("vm-a").is_none());
    }

    #[test]
    fn budget_refuses_overflow_but_allows_replacement() {
        let snap = snap_with_bytes(4096);
        let one = snap.resident_bytes() as u64;
        let store = SnapshotStore::new(one + one / 2); // fits one, not two
        store.park("vm-a", snap.clone()).unwrap();
        assert!(matches!(
            store.park("vm-b", snap.clone()),
            Err(StoreError::BudgetExceeded { .. })
        ));
        // Re-parking the same tenant replaces, so it still fits.
        store.park("vm-a", snap).unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn evict_discards() {
        let store = SnapshotStore::new(0);
        store.park("vm-a", snap_with_bytes(8)).unwrap();
        assert!(store.evict("vm-a"));
        assert!(!store.evict("vm-a"));
        assert_eq!(store.used_bytes(), 0);
    }
}
