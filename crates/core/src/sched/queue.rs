//! The admission queue: tenants waiting for a rank, ordered by policy.

use serde::{Deserialize, Serialize};

/// Ordering policy for the admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// Strict arrival order.
    Fifo,
    /// Weighted-fair queuing: the waiter with the smallest weighted
    /// virtual runtime (`Σ consumed / weight`) goes first, so a tenant
    /// that has had less rank time is served sooner. Ties break by
    /// arrival order.
    WeightedFair,
}

/// One queued rank request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiter {
    /// The requesting tenant (backend owner tag).
    pub tenant: String,
    /// Monotonic arrival ticket (FIFO key).
    pub ticket: u64,
    /// The tenant's weighted virtual runtime at enqueue time, in
    /// virtual nanoseconds (weighted-fair key).
    pub vruntime: u64,
}

/// The scheduler's admission queue. Not thread-safe on its own — the
/// [`Scheduler`](crate::sched::Scheduler) guards it with its state mutex.
#[derive(Debug)]
pub struct AdmissionQueue {
    policy: SchedPolicy,
    waiters: Vec<Waiter>,
}

impl AdmissionQueue {
    /// An empty queue ordered by `policy`.
    #[must_use]
    pub fn new(policy: SchedPolicy) -> Self {
        AdmissionQueue { policy, waiters: Vec::new() }
    }

    /// The queue's policy.
    #[must_use]
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Enqueues a waiter.
    pub fn push(&mut self, tenant: &str, ticket: u64, vruntime: u64) {
        self.waiters.push(Waiter { tenant: tenant.to_string(), ticket, vruntime });
    }

    /// Removes the waiter with `ticket`; returns whether it was present.
    pub fn remove(&mut self, ticket: u64) -> bool {
        match self.waiters.iter().position(|w| w.ticket == ticket) {
            Some(i) => {
                self.waiters.remove(i);
                true
            }
            None => false,
        }
    }

    /// The waiter the policy serves next, if any.
    #[must_use]
    pub fn head(&self) -> Option<&Waiter> {
        match self.policy {
            SchedPolicy::Fifo => self.waiters.iter().min_by_key(|w| w.ticket),
            SchedPolicy::WeightedFair => {
                self.waiters.iter().min_by_key(|w| (w.vruntime, w.ticket))
            }
        }
    }

    /// Number of queued waiters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.waiters.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.waiters.is_empty()
    }

    /// Whether `ticket` is queued.
    #[must_use]
    pub fn contains(&self, ticket: u64) -> bool {
        self.waiters.iter().any(|w| w.ticket == ticket)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_serves_in_arrival_order() {
        let mut q = AdmissionQueue::new(SchedPolicy::Fifo);
        q.push("b", 2, 0);
        q.push("a", 1, 999);
        q.push("c", 3, 0);
        assert_eq!(q.head().unwrap().tenant, "a");
        assert!(q.remove(1));
        assert_eq!(q.head().unwrap().tenant, "b");
        assert!(!q.remove(1), "double remove must be a no-op");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn weighted_fair_prefers_least_served() {
        let mut q = AdmissionQueue::new(SchedPolicy::WeightedFair);
        q.push("greedy", 1, 5_000);
        q.push("starved", 2, 100);
        assert_eq!(q.head().unwrap().tenant, "starved");
        // Equal vruntime falls back to arrival order.
        q.push("tied", 3, 100);
        assert_eq!(q.head().unwrap().tenant, "starved");
    }

    #[test]
    fn empty_queue_has_no_head() {
        let q = AdmissionQueue::new(SchedPolicy::Fifo);
        assert!(q.head().is_none());
        assert!(q.is_empty());
        assert!(!q.contains(7));
    }
}
