//! The admission queue: tenants waiting for a rank, ordered by policy.
//!
//! Two implementations live here:
//!
//! * [`AdmissionQueue`] — the original single-structure queue, externally
//!   locked. It is retained verbatim as the **differential-testing
//!   oracle**: `tests/control_plane_equivalence.rs` replays identical op
//!   sequences against it and the sharded queue and asserts identical
//!   head orders.
//! * [`ShardedAdmissionQueue`] — the internally-synchronized queue the
//!   [`Scheduler`](crate::sched::Scheduler) uses. Waiters are striped
//!   across tenant-hash shards, each under its own mutex, so pushes and
//!   removals by different tenants never contend. The merged policy head
//!   is computed with an epoch-validated scan (a seqlock over the shard
//!   set) and falls back to locking every shard in ascending order when
//!   writers keep invalidating the scan.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use simkit::{ordered, LockLevel};

/// Ordering policy for the admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// Strict arrival order.
    Fifo,
    /// Weighted-fair queuing: the waiter with the smallest weighted
    /// virtual runtime (`Σ consumed / weight`) goes first, so a tenant
    /// that has had less rank time is served sooner. Ties break by
    /// arrival order.
    WeightedFair,
}

/// One queued rank request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiter {
    /// The requesting tenant (backend owner tag).
    pub tenant: String,
    /// Monotonic arrival ticket (FIFO key).
    pub ticket: u64,
    /// The tenant's weighted virtual runtime at enqueue time, in
    /// virtual nanoseconds (weighted-fair key).
    pub vruntime: u64,
}

/// The scheduler's admission queue. Not thread-safe on its own — the
/// [`Scheduler`](crate::sched::Scheduler) guards it with its state mutex.
#[derive(Debug)]
pub struct AdmissionQueue {
    policy: SchedPolicy,
    waiters: Vec<Waiter>,
}

impl AdmissionQueue {
    /// An empty queue ordered by `policy`.
    #[must_use]
    pub fn new(policy: SchedPolicy) -> Self {
        AdmissionQueue { policy, waiters: Vec::new() }
    }

    /// The queue's policy.
    #[must_use]
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Enqueues a waiter.
    pub fn push(&mut self, tenant: &str, ticket: u64, vruntime: u64) {
        self.waiters.push(Waiter { tenant: tenant.to_string(), ticket, vruntime });
    }

    /// Removes the waiter with `ticket`; returns whether it was present.
    pub fn remove(&mut self, ticket: u64) -> bool {
        match self.waiters.iter().position(|w| w.ticket == ticket) {
            Some(i) => {
                self.waiters.remove(i);
                true
            }
            None => false,
        }
    }

    /// The waiter the policy serves next, if any.
    #[must_use]
    pub fn head(&self) -> Option<&Waiter> {
        match self.policy {
            SchedPolicy::Fifo => self.waiters.iter().min_by_key(|w| w.ticket),
            SchedPolicy::WeightedFair => {
                self.waiters.iter().min_by_key(|w| (w.vruntime, w.ticket))
            }
        }
    }

    /// Number of queued waiters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.waiters.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.waiters.is_empty()
    }

    /// Whether `ticket` is queued.
    #[must_use]
    pub fn contains(&self, ticket: u64) -> bool {
        self.waiters.iter().any(|w| w.ticket == ticket)
    }
}

/// Default shard count for [`ShardedAdmissionQueue`].
pub const QUEUE_SHARDS: usize = 8;

/// Lock-order index base for queue shard locks. Queue shards share
/// [`LockLevel::SchedState`] with the scheduler's tenant shards; offsetting
/// their indices keeps `tenant shard → queue shard` nesting legal (indices
/// are non-decreasing) while flagging the reverse order as a violation.
const QUEUE_LOCK_BASE: usize = 1 << 10;

/// Stable FNV-1a hash — the shard routing function, shared with the
/// scheduler's tenant shards so one tenant's queue entry and account live
/// on like-numbered shards. Deliberately not `DefaultHasher`, whose output
/// may change across Rust releases; shard placement feeds the bench and
/// stress suites and must be reproducible.
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How many epoch-validated head scans to attempt before falling back to
/// locking every shard.
const HEAD_SCAN_RETRIES: usize = 8;

/// The sharded admission queue: per-tenant-hash shards, each independently
/// locked, with a global arrival-ticket counter and an epoch-validated
/// merged head.
///
/// # Semantics vs the oracle
///
/// Applied sequentially, every operation is indistinguishable from
/// [`AdmissionQueue`]: tickets are handed out in call order and `head()`
/// is the same policy minimum over the same waiter set. Under concurrency
/// the *ticket assignment* order across shards can differ from the order
/// in which pushes become visible — but any such inversion is equivalent
/// to the two pushes arriving in the other order, which concurrent
/// arrivals always permit. Within one tenant (one shard) FIFO order is
/// exact, because the ticket is drawn while holding the tenant's shard
/// lock.
#[derive(Debug)]
pub struct ShardedAdmissionQueue {
    policy: SchedPolicy,
    shards: Vec<Mutex<Vec<Waiter>>>,
    /// Per-shard waiter counts, so `len()` never takes a lock.
    depths: Vec<AtomicUsize>,
    /// Next arrival ticket; drawn inside the owning shard's lock.
    next_ticket: AtomicU64,
    /// Mutation epoch: bumped (under the mutated shard's lock) by every
    /// push/removal. `head()` treats an unchanged epoch across its scan as
    /// proof the merged minimum is consistent.
    epoch: AtomicU64,
}

impl ShardedAdmissionQueue {
    /// An empty queue ordered by `policy` with [`QUEUE_SHARDS`] shards.
    #[must_use]
    pub fn new(policy: SchedPolicy) -> Self {
        Self::new_with_shards(policy, QUEUE_SHARDS)
    }

    /// An empty queue with an explicit shard count (clamped to ≥ 1).
    /// `1` degenerates to a mutex-wrapped [`AdmissionQueue`] — the
    /// configuration the load harness byte-compares against.
    #[must_use]
    pub fn new_with_shards(policy: SchedPolicy, shards: usize) -> Self {
        let n = shards.max(1);
        ShardedAdmissionQueue {
            policy,
            shards: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            depths: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            next_ticket: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// The queue's policy.
    #[must_use]
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `tenant`'s waiters live on.
    #[must_use]
    pub fn shard_of(&self, tenant: &str) -> usize {
        (fnv1a(tenant) % self.shards.len() as u64) as usize
    }

    fn lock_shard(&self, i: usize) -> (simkit::LockToken, parking_lot::MutexGuard<'_, Vec<Waiter>>) {
        let token = ordered(LockLevel::SchedState, QUEUE_LOCK_BASE + i);
        (token, self.shards[i].lock())
    }

    /// Enqueues `tenant` and returns its arrival ticket. The ticket is
    /// drawn while the owning shard's lock is held, so per-tenant FIFO
    /// order is exact.
    pub fn push(&self, tenant: &str, vruntime: u64) -> u64 {
        let i = self.shard_of(tenant);
        let (_t, mut shard) = self.lock_shard(i);
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        shard.push(Waiter { tenant: tenant.to_string(), ticket, vruntime });
        self.depths[i].fetch_add(1, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Release);
        ticket
    }

    /// Removes `tenant`'s waiter with `ticket`, touching only the owning
    /// shard. Returns whether it was present.
    pub fn remove_of(&self, tenant: &str, ticket: u64) -> bool {
        let i = self.shard_of(tenant);
        let (_t, mut shard) = self.lock_shard(i);
        match shard.iter().position(|w| w.ticket == ticket) {
            Some(p) => {
                shard.remove(p);
                self.depths[i].fetch_sub(1, Ordering::Relaxed);
                self.epoch.fetch_add(1, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// Removes the waiter with `ticket` wherever it lives (scans shards in
    /// ascending order). Prefer [`remove_of`](Self::remove_of) when the
    /// tenant is known.
    pub fn remove(&self, ticket: u64) -> bool {
        for i in 0..self.shards.len() {
            let (_t, mut shard) = self.lock_shard(i);
            if let Some(p) = shard.iter().position(|w| w.ticket == ticket) {
                shard.remove(p);
                self.depths[i].fetch_sub(1, Ordering::Relaxed);
                self.epoch.fetch_add(1, Ordering::Release);
                return true;
            }
        }
        false
    }

    fn shard_min(&self, shard: &[Waiter]) -> Option<Waiter> {
        match self.policy {
            SchedPolicy::Fifo => shard.iter().min_by_key(|w| w.ticket).cloned(),
            SchedPolicy::WeightedFair => {
                shard.iter().min_by_key(|w| (w.vruntime, w.ticket)).cloned()
            }
        }
    }

    fn better(&self, a: &Waiter, b: &Waiter) -> bool {
        match self.policy {
            SchedPolicy::Fifo => a.ticket < b.ticket,
            SchedPolicy::WeightedFair => (a.vruntime, a.ticket) < (b.vruntime, b.ticket),
        }
    }

    /// The waiter the policy serves next, if any — the merged minimum over
    /// all shards. Fast path: scan each shard under its own (brief) lock
    /// and validate with the mutation epoch; if writers keep racing the
    /// scan, fall back to locking every shard in ascending order, which is
    /// trivially consistent.
    #[must_use]
    pub fn head(&self) -> Option<Waiter> {
        for _ in 0..HEAD_SCAN_RETRIES {
            let e1 = self.epoch.load(Ordering::Acquire);
            let mut best: Option<Waiter> = None;
            for i in 0..self.shards.len() {
                let (_t, shard) = self.lock_shard(i);
                if let Some(m) = self.shard_min(&shard) {
                    if best.as_ref().is_none_or(|b| self.better(&m, b)) {
                        best = Some(m);
                    }
                }
            }
            if self.epoch.load(Ordering::Acquire) == e1 {
                return best;
            }
        }
        // Locked fallback: hold every shard at once (ascending index, per
        // the lock hierarchy).
        let guards: Vec<_> = (0..self.shards.len()).map(|i| self.lock_shard(i)).collect();
        let mut best: Option<Waiter> = None;
        for (_, shard) in &guards {
            if let Some(m) = self.shard_min(shard) {
                if best.as_ref().is_none_or(|b| self.better(&m, b)) {
                    best = Some(m);
                }
            }
        }
        best
    }

    /// Pops the policy minimum of one shard — the **work-stealing** entry
    /// point: a consumer drains its own stripe first and steals from
    /// others only when its stripe is empty, never contending on a global
    /// lock. Out of range or empty shards return `None`.
    pub fn pop_from(&self, shard: usize) -> Option<Waiter> {
        if shard >= self.shards.len() {
            return None;
        }
        let (_t, mut guard) = self.lock_shard(shard);
        let pos = match self.policy {
            SchedPolicy::Fifo => {
                guard.iter().enumerate().min_by_key(|(_, w)| w.ticket).map(|(p, _)| p)
            }
            SchedPolicy::WeightedFair => guard
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| (w.vruntime, w.ticket))
                .map(|(p, _)| p),
        }?;
        let w = guard.remove(pos);
        self.depths[shard].fetch_sub(1, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Release);
        Some(w)
    }

    /// Pops the merged policy head (the [`head`](Self::head) waiter),
    /// retrying when a racing consumer wins it first.
    pub fn pop_head(&self) -> Option<Waiter> {
        loop {
            let h = self.head()?;
            if self.remove_of(&h.tenant, h.ticket) {
                return Some(h);
            }
        }
    }

    /// Number of queued waiters (sum of per-shard depth counters; exact
    /// whenever no push/removal is concurrently in flight).
    #[must_use]
    pub fn len(&self) -> usize {
        self.depths.iter().map(|d| d.load(Ordering::Relaxed)).sum()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `ticket` is queued (scans all shards).
    #[must_use]
    pub fn contains(&self, ticket: u64) -> bool {
        (0..self.shards.len()).any(|i| {
            let (_t, shard) = self.lock_shard(i);
            shard.iter().any(|w| w.ticket == ticket)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_serves_in_arrival_order() {
        let mut q = AdmissionQueue::new(SchedPolicy::Fifo);
        q.push("b", 2, 0);
        q.push("a", 1, 999);
        q.push("c", 3, 0);
        assert_eq!(q.head().unwrap().tenant, "a");
        assert!(q.remove(1));
        assert_eq!(q.head().unwrap().tenant, "b");
        assert!(!q.remove(1), "double remove must be a no-op");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn weighted_fair_prefers_least_served() {
        let mut q = AdmissionQueue::new(SchedPolicy::WeightedFair);
        q.push("greedy", 1, 5_000);
        q.push("starved", 2, 100);
        assert_eq!(q.head().unwrap().tenant, "starved");
        // Equal vruntime falls back to arrival order.
        q.push("tied", 3, 100);
        assert_eq!(q.head().unwrap().tenant, "starved");
    }

    #[test]
    fn empty_queue_has_no_head() {
        let q = AdmissionQueue::new(SchedPolicy::Fifo);
        assert!(q.head().is_none());
        assert!(q.is_empty());
        assert!(!q.contains(7));
    }

    #[test]
    fn sharded_fifo_matches_oracle_sequentially() {
        let q = ShardedAdmissionQueue::new(SchedPolicy::Fifo);
        let mut oracle = AdmissionQueue::new(SchedPolicy::Fifo);
        for (t, vrt) in [("b", 0), ("a", 999), ("c", 0), ("aa", 7)] {
            let ticket = q.push(t, vrt);
            oracle.push(t, ticket, vrt);
        }
        assert_eq!(q.len(), oracle.len());
        while let Some(h) = oracle.head().cloned() {
            let sh = q.head().expect("sharded head present while oracle non-empty");
            assert_eq!((sh.tenant.as_str(), sh.ticket), (h.tenant.as_str(), h.ticket));
            assert!(oracle.remove(h.ticket));
            assert!(q.remove_of(&h.tenant, h.ticket));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn sharded_weighted_fair_merges_across_shards() {
        let q = ShardedAdmissionQueue::new_with_shards(SchedPolicy::WeightedFair, 4);
        let t_greedy = q.push("greedy", 5_000);
        let t_starved = q.push("starved", 100);
        assert_eq!(q.head().unwrap().tenant, "starved");
        // Equal vruntime falls back to global ticket order.
        let t_tied = q.push("tied", 100);
        assert!(t_tied > t_starved);
        assert_eq!(q.head().unwrap().ticket, t_starved);
        assert!(q.remove(t_starved));
        assert_eq!(q.head().unwrap().tenant, "tied");
        assert!(q.contains(t_greedy));
        assert!(!q.contains(t_starved));
    }

    #[test]
    fn pop_from_steals_only_the_named_shard() {
        let q = ShardedAdmissionQueue::new_with_shards(SchedPolicy::Fifo, 4);
        let tickets: Vec<u64> = (0..16).map(|i| q.push(&format!("t{i}"), 0)).collect();
        assert_eq!(q.len(), 16);
        // Drain via work-stealing: sweep every shard until all are empty.
        let mut popped = Vec::new();
        while !q.is_empty() {
            for s in 0..q.shard_count() {
                while let Some(w) = q.pop_from(s) {
                    assert_eq!(q.shard_of(&w.tenant), s, "stolen from the owning shard");
                    popped.push(w.ticket);
                }
            }
        }
        popped.sort_unstable();
        assert_eq!(popped, tickets);
        assert!(q.pop_from(99).is_none(), "out-of-range shard is None");
    }

    #[test]
    fn pop_head_drains_in_policy_order() {
        let q = ShardedAdmissionQueue::new(SchedPolicy::Fifo);
        for t in ["x", "y", "z"] {
            q.push(t, 0);
        }
        let order: Vec<String> =
            std::iter::from_fn(|| q.pop_head().map(|w| w.tenant)).collect();
        assert_eq!(order, ["x", "y", "z"]);
    }

    #[test]
    fn single_shard_degenerates_to_oracle_layout() {
        let q = ShardedAdmissionQueue::new_with_shards(SchedPolicy::Fifo, 1);
        assert_eq!(q.shard_count(), 1);
        assert_eq!(q.shard_of("anything"), 0);
        q.push("a", 0);
        q.push("b", 0);
        assert_eq!(q.head().unwrap().tenant, "a");
    }

    #[test]
    fn concurrent_push_remove_keeps_exact_depth() {
        use std::sync::Arc;
        let q = Arc::new(ShardedAdmissionQueue::new(SchedPolicy::Fifo));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let tenant = format!("vm-{t}");
                    for _ in 0..200 {
                        let ticket = q.push(&tenant, 0);
                        assert!(q.remove_of(&tenant, ticket));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(q.len(), 0, "every push was matched by a removal");
        assert!(q.head().is_none());
    }
}
