//! Rank scheduling and consolidation: time-sharing physical ranks among
//! more tenant VMs than the machine has ranks.
//!
//! The manager (§3.5) is an allocator — when every rank is `ALLO` it can
//! only retry and abandon. This module adds the missing policy layer on
//! top of it. A [`Scheduler`] sits between every backend's `ensure_linked`
//! and [`ManagerClient::alloc`]:
//!
//! * **Dedicated mode** (`sched.oversubscription = false`, the default):
//!   [`Scheduler::acquire`] is a thin pass-through to the manager, so the
//!   exhaustion semantics of the paper are unchanged — the Nth+1 tenant's
//!   request is abandoned with [`VpimError::NoRankAvailable`].
//! * **Oversubscribed mode**: acquire enqueues the tenant in a
//!   [`ShardedAdmissionQueue`] (FIFO or weighted-fair) and blocks. The queue head
//!   probes the manager; when the machine is exhausted it *preempts* a
//!   running tenant: wait for the victim's **safe point** (its per-device
//!   rank slot unlocked, i.e. no in-flight operation, and every DPU idle),
//!   checkpoint the rank with [`Rank::snapshot_quiescent`], park the
//!   checkpoint in a budgeted [`SnapshotStore`], flip the rank's table
//!   entry to `CKPT` and drop the victim's claim so the manager's observer
//!   recycles the rank (reset → `NAAV`). When a preempted tenant is next
//!   granted a rank, its parked checkpoint is restored bit-identically
//!   before the grant returns.
//!
//! All accounting is in **virtual time** — the backend charges each
//! completed operation's modeled duration via [`Scheduler::charge`], so a
//! Sequential and a Parallel dispatch of the same workload observe
//! identical vruntime growth and (policy inputs being equal) identical
//! schedules, preserving the virtual-clock determinism rule.
//!
//! [`Rank::snapshot_quiescent`]: upmem_sim::Rank::snapshot_quiescent

pub mod queue;
pub mod store;

pub use queue::{AdmissionQueue, SchedPolicy, ShardedAdmissionQueue, Waiter, QUEUE_SHARDS};
pub use store::{SnapshotStore, StoreError};

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};
use simkit::{
    ordered, CostModel, Counter, FaultPlane, Gauge, InjectCell, LockLevel, LockToken,
    MetricsRegistry, RetryMetrics, RetryPolicy, TimeoutClass, VirtualNanos,
};
use upmem_driver::{PerfMapping, UpmemDriver};

use crate::config::SchedSection;
use crate::error::VpimError;
use crate::manager::ManagerClient;

/// Default shard count for the scheduler's control-plane state (tenant
/// accounts/leases and the admission queue alike).
pub const CONTROL_SHARDS: usize = 8;

/// Fault point for the scheduler's checkpoint path: firing stalls the
/// preempter ~2 ms of wall-clock time at the safe point (slot locked,
/// snapshot not yet taken). The checkpoint itself — and therefore the
/// restored state and all `sched.*` telemetry — is unaffected: the stall
/// models a slow host thread, not a torn checkpoint.
pub const CKPT_STALL_POINT: &str = "sched.ckpt.stall";

/// A backend's rank slot: the mutex-guarded perf mapping the scheduler
/// time-shares. Holding the lock *is* holding the safe-point token — the
/// scheduler only checkpoints a tenant whose slot it has locked, so an
/// in-flight operation (which keeps the lock for its whole duration)
/// can never be torn.
pub type RankSlot = Arc<Mutex<Option<PerfMapping>>>;

/// An empty [`RankSlot`] — for embedders (and tests) wiring a scheduler
/// to raw slots without a full backend.
#[must_use]
pub fn empty_slot() -> RankSlot {
    Arc::new(Mutex::new(None))
}

/// How often a blocked waiter re-examines the queue between notifications.
const WAIT_TICK: Duration = Duration::from_millis(10);

/// The outcome of a successful [`Scheduler::acquire`].
#[derive(Debug)]
pub struct RankGrant {
    /// The granted physical rank.
    pub rank: usize,
    /// The manager handed back a `NANA` rank to its previous owner
    /// without a reset.
    pub reused: bool,
    /// A parked checkpoint was restored onto the rank before the grant
    /// returned (the tenant resumes exactly where preemption stopped it).
    pub restored: bool,
    /// Modeled wait cost of this grant in virtual time: the manager
    /// round-trip, plus snapshot + reset time for every preemption this
    /// waiter performed, plus restore time when `restored`.
    pub wait_vt: VirtualNanos,
    /// The claimed performance-mode mapping; the caller installs it into
    /// its slot (which it must already hold locked).
    pub mapping: PerfMapping,
}

/// Point-in-time scheduler statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStats {
    /// Rank grants handed out (dedicated and oversubscribed).
    pub grants: u64,
    /// Preemptions performed (checkpoint + rank recycle).
    pub preemptions: u64,
    /// Checkpoint restores performed on re-grant.
    pub restores: u64,
    /// Tenants currently waiting in the admission queue.
    pub queued: usize,
    /// Tenants currently holding a rank lease.
    pub running: usize,
    /// Bytes of checkpoints currently parked.
    pub parked_bytes: u64,
    /// Total virtual time charged across all tenants.
    pub vclock_ns: u64,
}

#[derive(Debug)]
struct Lease {
    /// Weak so a dropped backend never pins a lease alive.
    slot: Weak<Mutex<Option<PerfMapping>>>,
    rank: usize,
    /// Grant order; preemption targets the oldest un-expired lease.
    grant_seq: u64,
    /// Virtual nanoseconds charged against this lease.
    used_vt: u64,
    /// A preemption of this lease is in flight (victim is off-limits to
    /// other preempters until it resolves).
    preempting: bool,
}

#[derive(Debug)]
struct Account {
    weight: u64,
    /// Weighted virtual runtime in nanoseconds (`Σ charged / weight`).
    vruntime: u64,
}

impl Default for Account {
    fn default() -> Self {
        Account { weight: 1, vruntime: 0 }
    }
}

/// One tenant-hash shard of the scheduler's mutable state: the leases and
/// fair-share accounts of the tenants that hash here. Keeping both maps
/// under one lock means `charge` — the hottest control-plane call, issued
/// once per completed operation — takes exactly one shard lock.
#[derive(Debug, Default)]
struct TenantShard {
    running: HashMap<String, Lease>,
    accounts: HashMap<String, Account>,
}

#[derive(Debug)]
struct SchedMetrics {
    grants: Counter,
    preemptions: Counter,
    restores: Counter,
    queue_depth: Gauge,
}

impl SchedMetrics {
    fn from_registry(registry: &MetricsRegistry) -> Self {
        SchedMetrics {
            grants: registry.counter("sched.grants"),
            preemptions: registry.counter("sched.preemptions"),
            restores: registry.counter("sched.restores"),
            queue_depth: registry.gauge("sched.queue.depth"),
        }
    }
}

struct Inner {
    driver: Arc<UpmemDriver>,
    manager: ManagerClient,
    cfg: SchedSection,
    cm: CostModel,
    /// Tenant-hash shards of leases + accounts. Locked at
    /// [`LockLevel::SchedState`] with the shard index, so multi-shard
    /// holders (preemption's victim scan) must lock in ascending order.
    tenants: Vec<Mutex<TenantShard>>,
    /// The sharded admission queue (its shard locks sit at the same
    /// lock level, index-offset above the tenant shards).
    queue: ShardedAdmissionQueue,
    /// Grant-order sequence; atomically drawn, no lock.
    grant_seq: AtomicU64,
    /// Total charged virtual nanoseconds (the scheduler's virtual clock).
    vclock: AtomicU64,
    /// Change generation for waiters: bumped by [`Scheduler::wake`]
    /// before notifying, re-checked under `notify` before blocking — the
    /// lost-wakeup guard now that state updates are not serialized by one
    /// mutex.
    generation: AtomicU64,
    /// The dedicated condvar mutex ([`LockLevel::Notify`], the hierarchy
    /// leaf). Waiters hold *only* this while blocked.
    notify: Mutex<()>,
    changed: Condvar,
    store: SnapshotStore,
    metrics: SchedMetrics,
    retry: RetryMetrics,
    registry: MetricsRegistry,
    inject: InjectCell,
}

/// The admission-controlled rank scheduler (one per [`VpimSystem`]).
///
/// Cloning shares the scheduler — every backend of every VM on a host
/// must hold clones of the *same* scheduler, or double-grants become
/// possible.
///
/// [`VpimSystem`]: crate::system::VpimSystem
#[derive(Clone)]
pub struct Scheduler {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("oversubscription", &self.inner.cfg.oversubscription)
            .field("policy", &self.inner.cfg.policy)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Scheduler {
    /// A scheduler driving `manager` under the policy in `cfg`, publishing
    /// `sched.*` metrics into `registry`, with [`CONTROL_SHARDS`] state
    /// shards.
    #[must_use]
    pub fn new(
        driver: Arc<UpmemDriver>,
        manager: ManagerClient,
        cfg: SchedSection,
        cm: CostModel,
        registry: &MetricsRegistry,
    ) -> Self {
        Self::new_with_shards(driver, manager, cfg, cm, registry, CONTROL_SHARDS)
    }

    /// [`new`](Self::new) with an explicit control-plane shard count
    /// (clamped to ≥ 1), applied to both the tenant-state shards and the
    /// admission queue. `1` reproduces the pre-sharding single-lock
    /// serialization order exactly — the load harness byte-compares the
    /// two configurations.
    #[must_use]
    pub fn new_with_shards(
        driver: Arc<UpmemDriver>,
        manager: ManagerClient,
        cfg: SchedSection,
        cm: CostModel,
        registry: &MetricsRegistry,
        shards: usize,
    ) -> Self {
        let n = shards.max(1);
        Scheduler {
            inner: Arc::new(Inner {
                driver,
                manager,
                cm,
                tenants: (0..n).map(|_| Mutex::new(TenantShard::default())).collect(),
                queue: ShardedAdmissionQueue::new_with_shards(cfg.policy, n),
                grant_seq: AtomicU64::new(0),
                vclock: AtomicU64::new(0),
                generation: AtomicU64::new(0),
                notify: Mutex::new(()),
                changed: Condvar::new(),
                store: SnapshotStore::with_registry(
                    cfg.park_budget_mib.saturating_mul(1 << 20),
                    registry,
                    "snapshot.bytes",
                ),
                metrics: SchedMetrics::from_registry(registry),
                retry: RetryMetrics::from_registry(registry),
                registry: registry.clone(),
                inject: InjectCell::new(),
                cfg,
            }),
        }
    }

    /// Locks tenant-state shard `i` (ordered at [`LockLevel::SchedState`]).
    fn lock_shard(&self, i: usize) -> (LockToken, MutexGuard<'_, TenantShard>) {
        let token = ordered(LockLevel::SchedState, i);
        (token, self.inner.tenants[i].lock())
    }

    /// Locks the shard owning `tenant`'s lease and account.
    fn lock_tenant(&self, tenant: &str) -> (LockToken, MutexGuard<'_, TenantShard>) {
        let i = (queue::fnv1a(tenant) % self.inner.tenants.len() as u64) as usize;
        self.lock_shard(i)
    }

    /// Bumps the change generation and pokes every blocked waiter. The
    /// notify mutex is taken (briefly, at the hierarchy leaf) and dropped
    /// before notifying: a waiter that read the old generation is either
    /// already inside its re-check — where it sees the new value or holds
    /// the mutex we must wait for — or has yet to block, and will observe
    /// the bump. Either way the wakeup cannot be lost.
    fn wake(&self) {
        let inner = &*self.inner;
        inner.generation.fetch_add(1, Ordering::Release);
        {
            let _t = ordered(LockLevel::Notify, 0);
            drop(inner.notify.lock());
        }
        inner.changed.notify_all();
    }

    /// Installs the fault-injection plane consulted by the checkpoint path
    /// ([`CKPT_STALL_POINT`]); its seed also drives the allocation retry
    /// policy's deterministic jitter. Clones share the cell.
    pub fn install_fault_plane(&self, plane: Arc<FaultPlane>) {
        self.inner.inject.install(plane);
    }

    /// The seed retry jitter is derived from: the installed plane's seed,
    /// or 0 when injection is off (jitter is then still deterministic).
    fn retry_seed(&self) -> u64 {
        self.inner.inject.plane().map_or(0, |p| p.seed())
    }

    /// The scheduling configuration this scheduler runs under.
    #[must_use]
    pub fn config(&self) -> &SchedSection {
        &self.inner.cfg
    }

    /// The checkpoint parking store.
    #[must_use]
    pub fn store(&self) -> &SnapshotStore {
        &self.inner.store
    }

    /// Tenants currently waiting for a rank (lock-free: folded per-shard
    /// depth counters).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.len()
    }

    /// Point-in-time statistics.
    #[must_use]
    pub fn stats(&self) -> SchedStats {
        let running = (0..self.inner.tenants.len())
            .map(|i| self.lock_shard(i).1.running.len())
            .sum();
        SchedStats {
            grants: self.inner.metrics.grants.get(),
            preemptions: self.inner.metrics.preemptions.get(),
            restores: self.inner.metrics.restores.get(),
            queued: self.inner.queue.len(),
            running,
            parked_bytes: self.inner.store.used_bytes(),
            vclock_ns: self.inner.vclock.load(Ordering::Relaxed),
        }
    }

    /// `tenant`'s weighted virtual runtime so far, if it has an account.
    /// (Exposed for the equivalence and stress suites.)
    #[must_use]
    pub fn vruntime_of(&self, tenant: &str) -> Option<u64> {
        self.lock_tenant(tenant).1.accounts.get(tenant).map(|a| a.vruntime)
    }

    /// Sets `tenant`'s weighted-fair share weight (clamped to ≥ 1; the
    /// default is 1). Twice the weight means vruntime grows half as fast,
    /// i.e. twice the rank time under contention.
    pub fn set_weight(&self, tenant: &str, weight: u64) {
        let (_t, mut sh) = self.lock_tenant(tenant);
        sh.accounts.entry(tenant.to_string()).or_default().weight = weight.max(1);
    }

    /// Acquires a rank for `tenant`, whose (empty) slot the caller must
    /// currently hold locked. The returned mapping must be installed into
    /// that slot before the lock is released — the lock held across
    /// acquire-and-install is what makes grant registration atomic with
    /// respect to preempters.
    ///
    /// # Errors
    ///
    /// Dedicated mode propagates manager errors unchanged (notably
    /// [`VpimError::NoRankAvailable`] on exhaustion). Oversubscribed mode
    /// converts exhaustion into queueing and returns
    /// [`VpimError::AdmissionTimeout`] only when `admission_timeout_ms`
    /// elapses without a grant.
    pub fn acquire(&self, tenant: &str, slot: &RankSlot) -> Result<RankGrant, VpimError> {
        if self.inner.cfg.oversubscription {
            self.acquire_oversubscribed(tenant, slot)
        } else {
            self.acquire_dedicated(tenant, slot)
        }
    }

    fn acquire_dedicated(&self, tenant: &str, slot: &RankSlot) -> Result<RankGrant, VpimError> {
        let inner = &*self.inner;
        // Transient (injected) manager failures are retried under the
        // allocation timeout class; backoff is charged to the grant's
        // virtual wait so both dispatch modes report identical timelines.
        let policy = RetryPolicy::for_class(&inner.cm, TimeoutClass::ManagerAlloc);
        let (outcome, backoff_vt) = policy.run(
            self.retry_seed(),
            Some(&inner.retry),
            VpimError::is_transient,
            |_| inner.manager.alloc(tenant),
        );
        let outcome = outcome?;
        let mapping = inner.driver.open_perf(outcome.rank, tenant)?;
        let wait_vt = inner.cm.manager_alloc() + backoff_vt;
        self.register_grant(tenant, outcome.rank, slot);
        inner.metrics.grants.inc();
        inner.registry.histogram(&format!("sched.wait.{tenant}")).record(wait_vt);
        Ok(RankGrant { rank: outcome.rank, reused: outcome.reused, restored: false, wait_vt, mapping })
    }

    fn acquire_oversubscribed(
        &self,
        tenant: &str,
        slot: &RankSlot,
    ) -> Result<RankGrant, VpimError> {
        let inner = &*self.inner;
        let deadline = Instant::now() + Duration::from_millis(inner.cfg.admission_timeout_ms);
        let mut wait_vt = VirtualNanos::ZERO;
        let ticket = {
            let vruntime = {
                let (_t, mut sh) = self.lock_tenant(tenant);
                sh.accounts.entry(tenant.to_string()).or_default().vruntime
            };
            let ticket = inner.queue.push(tenant, vruntime);
            inner.metrics.queue_depth.add(1);
            ticket
        };
        self.wake();
        let policy = RetryPolicy::for_class(&inner.cm, TimeoutClass::ManagerAlloc);
        let mut transient_left = policy.max_attempts.max(1);
        let mut transient_n = 0u32;
        loop {
            // Read the generation *before* probing: any state change after
            // the probe bumps it, so the blocked re-check below cannot
            // sleep through the wakeup that would have changed the answer.
            let generation = inner.generation.load(Ordering::Acquire);
            // Only the policy's head probes the manager: at most one
            // admission request occupies the manager pool at a time, and
            // grants leave in policy order.
            let is_head = inner.queue.head().map(|w| w.ticket) == Some(ticket);
            if is_head {
                match inner.manager.alloc(tenant) {
                    Ok(outcome) => {
                        return self.finish_grant(tenant, ticket, &outcome, wait_vt, slot);
                    }
                    Err(VpimError::NoRankAvailable) => {
                        match self.try_preempt(tenant, &mut wait_vt) {
                            Ok(true) => continue, // a rank is being recycled; re-probe
                            Ok(false) => {}       // nothing preemptable right now
                            Err(e) => {
                                self.dequeue(tenant, ticket);
                                return Err(e);
                            }
                        }
                    }
                    Err(e) if e.is_transient() && transient_left > 1 => {
                        // Injected manager fault: keep the ticket and
                        // re-probe after a bounded, deterministic backoff
                        // charged to the grant's virtual wait.
                        transient_left -= 1;
                        let b = policy.backoff(self.retry_seed(), transient_n);
                        transient_n += 1;
                        wait_vt += b;
                        inner.retry.attempts.inc();
                        inner.retry.backoff_vt.add(b);
                    }
                    Err(e) => {
                        if e.is_transient() {
                            inner.retry.giveups.inc();
                        }
                        self.dequeue(tenant, ticket);
                        return Err(e);
                    }
                }
            }
            if Instant::now() >= deadline {
                self.dequeue(tenant, ticket);
                return Err(VpimError::AdmissionTimeout(tenant.to_string()));
            }
            // Block on the notify mutex only (the hierarchy leaf); the
            // generation re-check under the mutex closes the window
            // between the probe above and the wait.
            let _t = ordered(LockLevel::Notify, 0);
            let mut g = inner.notify.lock();
            if inner.generation.load(Ordering::Acquire) == generation {
                let _ = inner.changed.wait_for(&mut g, WAIT_TICK);
            }
        }
    }

    fn finish_grant(
        &self,
        tenant: &str,
        ticket: u64,
        outcome: &crate::manager::AllocOutcome,
        mut wait_vt: VirtualNanos,
        slot: &RankSlot,
    ) -> Result<RankGrant, VpimError> {
        let inner = &*self.inner;
        let mapping = match inner.driver.open_perf(outcome.rank, tenant) {
            Ok(m) => m,
            Err(e) => {
                self.dequeue(tenant, ticket);
                return Err(e.into());
            }
        };
        wait_vt += inner.cm.manager_alloc();
        let mut restored = false;
        if let Some(snap) = inner.store.take(tenant) {
            let bytes = snap.resident_bytes() as u64;
            match mapping.rank().restore(&snap) {
                Ok(()) => {
                    restored = true;
                    wait_vt += inner.cm.rank_restore(bytes);
                }
                Err(e) => {
                    // The parked copy is the tenant's only state: put it
                    // back (same-tenant park cannot exceed the budget) and
                    // fail the grant rather than resume from a torn rank.
                    let _ = inner.store.park(tenant, snap);
                    self.dequeue(tenant, ticket);
                    return Err(e.into());
                }
            }
        }
        if inner.queue.remove_of(tenant, ticket) {
            inner.metrics.queue_depth.sub(1);
        }
        self.register_grant(tenant, outcome.rank, slot);
        inner.metrics.grants.inc();
        if restored {
            inner.metrics.restores.inc();
        }
        inner.registry.histogram(&format!("sched.wait.{tenant}")).record(wait_vt);
        self.wake();
        Ok(RankGrant { rank: outcome.rank, reused: outcome.reused, restored, wait_vt, mapping })
    }

    fn register_grant(&self, tenant: &str, rank: usize, slot: &RankSlot) {
        let seq = self.inner.grant_seq.fetch_add(1, Ordering::Relaxed);
        let (_t, mut sh) = self.lock_tenant(tenant);
        sh.running.insert(
            tenant.to_string(),
            Lease {
                slot: Arc::downgrade(slot),
                rank,
                grant_seq: seq,
                used_vt: 0,
                preempting: false,
            },
        );
    }

    fn dequeue(&self, tenant: &str, ticket: u64) {
        let inner = &*self.inner;
        if inner.queue.remove_of(tenant, ticket) {
            inner.metrics.queue_depth.sub(1);
        }
        self.wake();
    }

    /// Picks a victim and checkpoints it. `Ok(true)` means a rank was (or
    /// is being) freed and the caller should re-probe the manager;
    /// `Ok(false)` means nothing was preemptable and the caller should
    /// block until the next change.
    ///
    /// Victim order: leases that exhausted their quantum first, then the
    /// oldest grant — so an idle long-holder is eventually preempted even
    /// if it never spends its quantum, which is what makes the admission
    /// queue deadlock-free.
    fn try_preempt(&self, me: &str, wait_vt: &mut VirtualNanos) -> Result<bool, VpimError> {
        let inner = &*self.inner;
        let quantum_ns = inner.cfg.quantum_ms.saturating_mul(1_000_000);
        let picked = {
            // Victim selection needs a consistent view of *every* lease:
            // lock all tenant shards, in ascending index order per the
            // lock hierarchy. This is the one cold multi-shard path; the
            // hot paths (charge, grant) stay single-shard.
            let mut guards: Vec<_> =
                (0..inner.tenants.len()).map(|i| self.lock_shard(i)).collect();
            let pick = guards
                .iter()
                .enumerate()
                .flat_map(|(si, (_t, sh))| {
                    sh.running
                        .iter()
                        .filter(|(t, l)| t.as_str() != me && !l.preempting)
                        .map(move |(t, l)| {
                            ((u64::from(l.used_vt < quantum_ns), l.grant_seq), si, t.clone())
                        })
                })
                .min_by_key(|(key, _, _)| *key)
                .map(|(_, si, t)| (si, t));
            match pick {
                Some((si, t)) => {
                    let lease =
                        guards[si].1.running.get_mut(&t).expect("picked from running");
                    lease.preempting = true;
                    Some((t, lease.slot.clone(), lease.rank))
                }
                None => None,
            }
        };
        let Some((victim, weak_slot, rank)) = picked else {
            return Ok(false);
        };
        let Some(slot) = weak_slot.upgrade() else {
            // The victim's backend is gone; its claim dropped with it.
            self.reap(&victim);
            return Ok(true);
        };
        // Safe point: taking the slot lock waits out any in-flight
        // operation (operations hold the lock for their full duration).
        // All tenant-shard locks were dropped above — RankSlot sits below
        // SchedState in the hierarchy.
        let _slot_order = ordered(LockLevel::RankSlot, 0);
        let mut guard = slot.lock();
        if inner.inject.hit(CKPT_STALL_POINT) {
            // Wall-clock stall only: the slot stays locked (no operation can
            // sneak in), the snapshot below is still quiescent, and no
            // virtual time is charged — parked state restores bit-identically.
            std::thread::sleep(Duration::from_millis(2));
        }
        let Some(mapping) = guard.as_ref() else {
            // The victim released on its own while we were picking it.
            drop(guard);
            self.reap(&victim);
            return Ok(true);
        };
        let snap = match mapping.rank().snapshot_quiescent() {
            Ok(s) => s,
            Err(_) => {
                // DPUs still running — not a safe point; back off and let
                // the victim finish.
                drop(guard);
                self.clear_preempting(&victim);
                return Ok(false);
            }
        };
        let bytes = snap.resident_bytes() as u64;
        if inner.store.park(&victim, snap).is_err() {
            // Park budget exhausted: refusing the preemption is the only
            // safe move (parked state is the victim's sole copy).
            drop(guard);
            self.clear_preempting(&victim);
            return Ok(false);
        }
        // ALLO → CKPT in the rank table, then drop the victim's claim so
        // the observer sees the release and recycles the rank.
        let _ = inner.manager.mark_ckpt(rank);
        *guard = None;
        drop(guard);
        {
            let (_t, mut sh) = self.lock_tenant(&victim);
            sh.running.remove(&victim);
        }
        inner.metrics.preemptions.inc();
        *wait_vt = *wait_vt
            + inner.cm.rank_snapshot(bytes)
            + inner.cm.rank_reset(inner.driver.machine().config().rank_mapped_bytes());
        // Expedite observe + reset instead of waiting for the 50 ms
        // observer sweep.
        inner.manager.sync();
        self.wake();
        Ok(true)
    }

    fn reap(&self, tenant: &str) {
        let inner = &*self.inner;
        {
            let (_t, mut sh) = self.lock_tenant(tenant);
            sh.running.remove(tenant);
        }
        inner.manager.sync();
        self.wake();
    }

    fn clear_preempting(&self, tenant: &str) {
        let (_t, mut sh) = self.lock_tenant(tenant);
        if let Some(l) = sh.running.get_mut(tenant) {
            l.preempting = false;
        }
    }

    /// Charges `vt` of virtual time against `tenant`'s lease and account.
    /// The backend calls this once per successfully completed operation
    /// with the operation's modeled duration, so scheduling accounts are
    /// identical under Sequential and Parallel dispatch.
    ///
    /// This is the control plane's hottest call (once per operation): it
    /// takes exactly one tenant-shard lock plus one atomic add, so charges
    /// by tenants on different shards never serialize.
    pub fn charge(&self, tenant: &str, vt: VirtualNanos) {
        let inner = &*self.inner;
        let ns = vt.as_nanos();
        {
            let (_t, mut sh) = self.lock_tenant(tenant);
            let acct = sh.accounts.entry(tenant.to_string()).or_default();
            acct.vruntime = acct.vruntime.saturating_add(ns / acct.weight.max(1));
            if let Some(l) = sh.running.get_mut(tenant) {
                l.used_vt = l.used_vt.saturating_add(ns);
            }
        }
        inner.vclock.fetch_add(ns, Ordering::Relaxed);
        if !inner.queue.is_empty() {
            self.wake();
        }
    }

    /// Tells the scheduler `tenant` released its rank voluntarily (device
    /// unlink / VM shutdown): the lease dies, any parked checkpoint is
    /// discarded, and waiters are woken.
    pub fn notify_release(&self, tenant: &str) {
        let inner = &*self.inner;
        {
            let (_t, mut sh) = self.lock_tenant(tenant);
            sh.running.remove(tenant);
        }
        inner.store.evict(tenant);
        if inner.cfg.oversubscription {
            // Expedite rank recycling for the waiters we are about to wake.
            inner.manager.sync();
        }
        self.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{Manager, ManagerConfig};
    use upmem_sim::{PimConfig, PimMachine};

    fn snappy() -> ManagerConfig {
        ManagerConfig {
            retry_timeout: Duration::from_millis(5),
            max_attempts: 1,
            ..ManagerConfig::default()
        }
    }

    fn host(ranks: usize) -> (Arc<UpmemDriver>, Manager) {
        let cfg = PimConfig {
            ranks,
            functional_dpus: vec![8; ranks],
            mram_size: 1 << 20,
            ..PimConfig::small()
        };
        let driver = Arc::new(UpmemDriver::new(PimMachine::new(cfg)));
        let mgr = Manager::start(driver.clone(), CostModel::default(), snappy());
        (driver, mgr)
    }

    fn sched(driver: &Arc<UpmemDriver>, mgr: &Manager, section: SchedSection) -> Scheduler {
        Scheduler::new(
            driver.clone(),
            mgr.client(),
            section,
            CostModel::default(),
            &MetricsRegistry::new(),
        )
    }

    fn oversub() -> SchedSection {
        SchedSection { oversubscription: true, quantum_ms: 0, ..SchedSection::default() }
    }

    #[test]
    fn dedicated_mode_passes_exhaustion_through() {
        let (driver, mgr) = host(1);
        let s = sched(&driver, &mgr, SchedSection::default());
        let slot_a: RankSlot = Arc::new(Mutex::new(None));
        let slot_b: RankSlot = Arc::new(Mutex::new(None));
        let grant = {
            let mut g = slot_a.lock();
            let grant = s.acquire("vm-a", &slot_a).unwrap();
            *g = Some(grant.mapping);
            grant.rank
        };
        assert_eq!(grant, 0);
        let mut g = slot_b.lock();
        assert!(matches!(s.acquire("vm-b", &slot_b), Err(VpimError::NoRankAvailable)));
        drop(g.take());
        mgr.shutdown();
    }

    #[test]
    fn oversubscription_preempts_checkpoints_and_restores() {
        let (driver, mgr) = host(1);
        let s = sched(&driver, &mgr, oversub());
        let slot_a: RankSlot = Arc::new(Mutex::new(None));
        let slot_b: RankSlot = Arc::new(Mutex::new(None));
        // vm-a takes the only rank and dirties it.
        {
            let mut g = slot_a.lock();
            let grant = s.acquire("vm-a", &slot_a).unwrap();
            grant.mapping.rank().write_dpu(0, 0, &[0xC4; 32]).unwrap();
            *g = Some(grant.mapping);
        }
        // vm-b must preempt vm-a to get in.
        {
            let mut g = slot_b.lock();
            let grant = s.acquire("vm-b", &slot_b).unwrap();
            assert_eq!(grant.rank, 0);
            assert!(!grant.restored);
            // The rank was reset: vm-a's bytes must not leak to vm-b.
            let mut buf = [1u8; 32];
            grant.mapping.rank().read_dpu(0, 0, &mut buf).unwrap();
            assert_eq!(buf, [0u8; 32]);
            *g = Some(grant.mapping);
        }
        assert!(slot_a.lock().is_none(), "vm-a's slot was emptied by preemption");
        assert!(s.store().contains("vm-a"));
        // vm-a comes back: vm-b gets preempted, vm-a's checkpoint restores.
        {
            let mut g = slot_a.lock();
            let grant = s.acquire("vm-a", &slot_a).unwrap();
            assert!(grant.restored);
            let mut buf = [0u8; 32];
            grant.mapping.rank().read_dpu(0, 0, &mut buf).unwrap();
            assert_eq!(buf, [0xC4; 32], "restore must be bit-identical");
            *g = Some(grant.mapping);
        }
        let stats = s.stats();
        assert!(stats.preemptions >= 2);
        assert_eq!(stats.restores, 1);
        assert_eq!(stats.grants, 3);
        slot_a.lock().take();
        s.notify_release("vm-a");
        mgr.shutdown();
    }

    #[test]
    fn admission_times_out_when_nothing_is_preemptable() {
        let (driver, mgr) = host(1);
        let s = sched(
            &driver,
            &mgr,
            SchedSection { admission_timeout_ms: 50, ..oversub() },
        );
        let slot_a: RankSlot = Arc::new(Mutex::new(None));
        {
            let mut g = slot_a.lock();
            let grant = s.acquire("vm-a", &slot_a).unwrap();
            *g = Some(grant.mapping);
        }
        // Make vm-a unpreemptable (as if another preempter already owned
        // it): vm-b can then neither allocate nor preempt, and must time
        // out cleanly.
        {
            let (_t, mut sh) = s.lock_tenant("vm-a");
            sh.running.get_mut("vm-a").unwrap().preempting = true;
        }
        let slot_b: RankSlot = Arc::new(Mutex::new(None));
        let _g = slot_b.lock();
        assert!(matches!(
            s.acquire("vm-b", &slot_b),
            Err(VpimError::AdmissionTimeout(t)) if t == "vm-b"
        ));
        assert_eq!(s.queue_depth(), 0, "timed-out waiter left the queue");
        mgr.shutdown();
    }

    #[test]
    fn weighted_fair_serves_least_served_tenant_first() {
        let (driver, mgr) = host(2);
        let s = sched(
            &driver,
            &mgr,
            SchedSection { policy: SchedPolicy::WeightedFair, ..oversub() },
        );
        s.charge("greedy", VirtualNanos::from_nanos(1_000_000));
        // Both can be served immediately (2 ranks); the point is just that
        // charge() feeds the vruntime the queue orders by.
        let slot: RankSlot = Arc::new(Mutex::new(None));
        {
            let mut g = slot.lock();
            let grant = s.acquire("greedy", &slot).unwrap();
            *g = Some(grant.mapping);
        }
        assert!(s.vruntime_of("greedy").unwrap() >= 1_000_000);
        mgr.shutdown();
    }
}
