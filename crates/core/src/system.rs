//! Top-level wiring: one host running the manager, launching microVMs with
//! vUPMEM devices.

use std::sync::Arc;

use pim_vmm::{BootReport, DispatchMode, VirtioDevice, Vm, VmConfig};
use simkit::{BytePool, CostModel, Counter, FaultPlane, Gauge, MetricsRegistry, WorkerPool};
use upmem_driver::UpmemDriver;

use crate::backend::Backend;
use crate::config::VpimConfig;
use crate::device::VupmemDevice;
use crate::error::VpimError;
use crate::frontend::Frontend;
use crate::frontend::ProbeOpts;
use crate::manager::{Manager, ManagerConfig};
use crate::sched::Scheduler;

/// Host-level options for [`VpimSystem::start`]: the cost model every
/// layer charges against and the manager daemon's tuning. The default is
/// what `start` used before the options struct existed, so
/// `StartOpts::default()` is always a safe argument.
#[derive(Debug, Clone, Default)]
pub struct StartOpts {
    cost_model: CostModel,
    manager: ManagerConfig,
    /// `None` leaves each layer on its own default shard count
    /// ([`crate::manager::RANK_SHARDS`], [`crate::sched::CONTROL_SHARDS`]).
    control_shards: Option<usize>,
}

impl StartOpts {
    /// Default cost model and manager tuning.
    #[must_use]
    pub fn new() -> Self {
        StartOpts::default()
    }

    /// Uses `cm` as the host cost model.
    #[must_use]
    pub fn cost_model(mut self, cm: CostModel) -> Self {
        self.cost_model = cm;
        self
    }

    /// Uses `mcfg` as the manager daemon tuning.
    #[must_use]
    pub fn manager(mut self, mcfg: ManagerConfig) -> Self {
        self.manager = mcfg;
        self
    }

    /// Shard count for the host's control plane (clamped to ≥ 1): the
    /// manager's rank table, the scheduler's tenant state, and the
    /// admission queue. Unset, each layer uses its own default
    /// ([`crate::manager::RANK_SHARDS`] / [`crate::sched::CONTROL_SHARDS`]).
    /// `1` reproduces the pre-sharding single-lock serialization exactly —
    /// the load harness byte-compares reports across this knob to prove
    /// sharding changes no observable behavior.
    #[must_use]
    pub fn control_shards(mut self, shards: usize) -> Self {
        self.control_shards = Some(shards.max(1));
        self
    }
}

/// What to launch: a tenant microVM described by a builder — tag, device
/// count, guest memory, and scheduler weight. [`VpimSystem::launch`] is
/// the single admission path; the load harness spawns every session
/// through it.
///
/// # Example
///
/// ```ignore
/// let vm = sys.launch(TenantSpec::new("tenant-a").devices(2).mem_mib(64).weight(3))?;
/// ```
#[derive(Debug, Clone)]
pub struct TenantSpec {
    tag: String,
    devices: usize,
    mem_mib: u64,
    weight: u64,
}

impl TenantSpec {
    /// A tenant named `tag` with one device, 512 MiB of guest RAM, and
    /// scheduler weight 1 — the old `launch_vm(tag, 1)` shape.
    #[must_use]
    pub fn new(tag: impl Into<String>) -> Self {
        TenantSpec { tag: tag.into(), devices: 1, mem_mib: 512, weight: 1 }
    }

    /// Number of vUPMEM devices (one physical rank each).
    #[must_use]
    pub fn devices(mut self, n: usize) -> Self {
        self.devices = n;
        self
    }

    /// Guest memory in MiB. Guest RAM is allocated eagerly, so size it to
    /// the workload's transfer buffers (a load-harness session runs fine
    /// in 16 MiB; the default suits the large PrIM inputs).
    #[must_use]
    pub fn mem_mib(mut self, mib: u64) -> Self {
        self.mem_mib = mib;
        self
    }

    /// Proportional-share weight for the oversubscribed scheduler
    /// (clamped to at least 1 there; weight 1 is the default share).
    #[must_use]
    pub fn weight(mut self, w: u64) -> Self {
        self.weight = w;
        self
    }

    /// Replaces the tag, keeping everything else — how the load harness
    /// stamps a per-session tag onto a profile's template.
    #[must_use]
    pub fn retag(mut self, tag: impl Into<String>) -> Self {
        self.tag = tag.into();
        self
    }

    /// The tenant tag.
    #[must_use]
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// The device count.
    #[must_use]
    pub fn n_devices(&self) -> usize {
        self.devices
    }

    /// The guest memory size in MiB.
    #[must_use]
    pub fn guest_mem_mib(&self) -> u64 {
        self.mem_mib
    }

    /// The scheduler weight.
    #[must_use]
    pub fn sched_weight(&self) -> u64 {
        self.weight
    }
}

/// A host running vPIM: the driver, the manager daemon, and the knobs every
/// VM launched on this host inherits. All layers record into one
/// [`MetricsRegistry`] (see [`Self::registry`]).
#[derive(Debug)]
pub struct VpimSystem {
    driver: Arc<UpmemDriver>,
    manager: Option<Manager>,
    /// The host-wide rank scheduler, shared by every backend of every VM
    /// (admission and preemption decisions must see all tenants).
    sched: Scheduler,
    vcfg: VpimConfig,
    cm: CostModel,
    registry: MetricsRegistry,
    /// The host's DPU-operation thread pool (§4.2's 8 threads), shared by
    /// every backend on this host so the worker count reflects the machine,
    /// not the number of attached devices.
    data_pool: Arc<WorkerPool>,
    /// The host's scratch-buffer pool for the zero-copy data path, shared
    /// by every frontend serializer and backend worker (telemetry under
    /// `datapath.pool.*`).
    scratch: BytePool,
    /// The host's fault-injection plane (`Some` iff `VpimConfig.inject`
    /// enables it): one seeded plane shared by every layer so the armed
    /// schedules are global and `inject.*` telemetry aggregates host-wide.
    inject: Option<Arc<FaultPlane>>,
    /// `system.tenants.launched` — microVMs launched over the host's life.
    tenants_launched: Counter,
    /// `system.tenants.live` — microVMs currently alive (decremented when
    /// a [`VpimVm`] drops).
    tenants_live: Gauge,
}

impl VpimSystem {
    /// Starts a host. `opts` carries the cost model and manager tuning;
    /// `StartOpts::default()` reproduces the old two-argument `start`.
    #[must_use]
    pub fn start(driver: Arc<UpmemDriver>, vcfg: VpimConfig, opts: StartOpts) -> Self {
        let StartOpts { cost_model: cm, manager: mut mcfg, control_shards } = opts;
        if let Some(n) = control_shards {
            mcfg.rank_shards = n;
        }
        let registry = MetricsRegistry::new();
        let manager = Manager::start_with_registry(driver.clone(), cm.clone(), mcfg, &registry);
        let sched = Scheduler::new_with_shards(
            driver.clone(),
            manager.client(),
            vcfg.sched,
            cm.clone(),
            &registry,
            control_shards.unwrap_or(crate::sched::CONTROL_SHARDS),
        );
        let data_pool = Arc::new(WorkerPool::new(cm.backend_threads));
        let scratch = BytePool::with_registry(&registry, "datapath.pool");
        let inject = if vcfg.inject.enabled {
            let plane = Arc::new(FaultPlane::with_registry(vcfg.inject.seed, &registry));
            for spec in vcfg.inject.armed() {
                plane.arm(spec.site.name(), spec.plan);
            }
            // Host-side layers: simulated ranks (CI ops, MRAM DMA, launch),
            // the manager's RPC surface, and the scheduler's checkpoint
            // path. Per-VM layers are installed at launch.
            driver.machine().install_fault_plane(&plane);
            manager.install_fault_plane(plane.clone());
            sched.install_fault_plane(plane.clone());
            Some(plane)
        } else {
            None
        };
        let tenants_launched = registry.counter("system.tenants.launched");
        let tenants_live = registry.gauge("system.tenants.live");
        VpimSystem {
            driver,
            manager: Some(manager),
            sched,
            vcfg,
            cm,
            registry,
            data_pool,
            scratch,
            inject,
            tenants_launched,
            tenants_live,
        }
    }

    /// Old spelling of [`start`](Self::start) with explicit cost model and
    /// manager tuning.
    #[deprecated(note = "use `VpimSystem::start(driver, vcfg, StartOpts)`")]
    #[must_use]
    pub fn start_with(
        driver: Arc<UpmemDriver>,
        vcfg: VpimConfig,
        cm: CostModel,
        mcfg: ManagerConfig,
    ) -> Self {
        Self::start(driver, vcfg, StartOpts::new().cost_model(cm).manager(mcfg))
    }

    /// The host's fault-injection plane, when `VpimConfig.inject` enabled
    /// one. Tests use this to re-arm points or read per-point stats.
    #[must_use]
    pub fn fault_plane(&self) -> Option<&Arc<FaultPlane>> {
        self.inject.as_ref()
    }

    /// The host driver.
    #[must_use]
    pub fn driver(&self) -> &Arc<UpmemDriver> {
        &self.driver
    }

    /// The manager daemon.
    ///
    /// # Panics
    ///
    /// Panics if called after `shutdown` (the system is consumed then, so
    /// this cannot happen in safe usage).
    #[must_use]
    pub fn manager(&self) -> &Manager {
        self.manager.as_ref().expect("manager runs until shutdown")
    }

    /// The host-wide rank scheduler (admission queue, preemption engine,
    /// checkpoint store).
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Forces one synchronous manager rank sweep so freshly released
    /// ranks re-enter the allocatable pool without waiting for the
    /// background observer. The fleet plane calls this after tearing down
    /// a migrated tenant's source VM (cross-host release → re-admit).
    pub fn sync_ranks(&self) {
        self.manager().sync_now();
    }

    /// The optimization configuration VMs inherit.
    #[must_use]
    pub fn config(&self) -> &VpimConfig {
        &self.vcfg
    }

    /// The cost model.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.cm
    }

    /// The host-wide metrics registry. Every layer records here:
    /// `frontend.prefetch.*` and `frontend.batch.*` (guest driver),
    /// `backend.*` (device model), `datapath.pool.{hits,misses,bytes,
    /// outstanding}` and `datapath.bytes.zero_copy` (zero-copy data path),
    /// `manager.rank_state.transitions`, `vmm.vmexits`,
    /// `virtio.irq.injections`, and the per-device
    /// `virtio.queue.depth.rank{i}` gauges.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Old spelling of [`launch`](Self::launch) with the default 512 MiB
    /// of guest RAM.
    ///
    /// # Errors
    ///
    /// Boot or device initialization failures.
    #[deprecated(note = "use `VpimSystem::launch(TenantSpec::new(tag).devices(n))`")]
    pub fn launch_vm(&self, tag: &str, n_devices: usize) -> Result<VpimVm, VpimError> {
        self.launch(TenantSpec::new(tag).devices(n_devices))
    }

    /// Old spelling of [`launch`](Self::launch) with explicit guest memory.
    ///
    /// # Errors
    ///
    /// Boot or device initialization failures.
    #[deprecated(note = "use `VpimSystem::launch(TenantSpec::new(tag).devices(n).mem_mib(m))`")]
    pub fn launch_vm_with_memory(
        &self,
        tag: &str,
        n_devices: usize,
        mem_mib: u64,
    ) -> Result<VpimVm, VpimError> {
        self.launch(TenantSpec::new(tag).devices(n_devices).mem_mib(mem_mib))
    }

    /// Launches a tenant microVM described by `spec`: boots a VM with
    /// `spec.devices` vUPMEM devices, registers the tenant's scheduler
    /// weight, probes and initializes the guest drivers (which links each
    /// device to a physical rank through the manager's admission path).
    ///
    /// # Errors
    ///
    /// Boot or device initialization failures.
    pub fn launch(&self, spec: TenantSpec) -> Result<VpimVm, VpimError> {
        let TenantSpec { tag, devices: n_devices, mem_mib, weight } = spec;
        let dispatch = if self.vcfg.parallel_handling {
            DispatchMode::Parallel
        } else {
            DispatchMode::Sequential
        };
        let cfg = VmConfig::builder()
            .vupmem_devices(n_devices)
            .mem_mib(mem_mib)
            .build();
        let mut vm = Vm::new(cfg, dispatch);
        // Guest kicks from every VM on this host aggregate into one
        // `vmm.vmexits` cell (install before the manager is cloned below).
        vm.event_manager_mut()
            .set_kick_counter(self.registry.counter("vmm.vmexits"));
        if let Some(plane) = &self.inject {
            // Per-VM fault surfaces: guest kicks (dropped at dispatch) and
            // guest-memory access (transient EIO). Installed before the
            // event manager or memory handle is cloned below.
            vm.event_manager_mut().set_fault_plane(plane.clone());
            vm.memory().install_fault_plane(plane.clone());
        }

        let mut devices = Vec::with_capacity(n_devices);
        for i in 0..n_devices {
            // Scheduler accounts are keyed by backend tag, one per device.
            if weight != 1 {
                self.sched.set_weight(&format!("{tag}/vupmem{i}"), weight);
            }
            let backend = Backend::with_parts(
                self.driver.clone(),
                self.sched.clone(),
                self.vcfg,
                self.cm.clone(),
                format!("{tag}/vupmem{i}"),
                &self.registry,
                self.data_pool.clone(),
                self.scratch.clone(),
            );
            if let Some(plane) = &self.inject {
                backend.install_fault_plane(plane.clone());
            }
            let device = Arc::new(VupmemDevice::with_registry(
                format!("{tag}/vupmem{i}"),
                backend,
                Vm::irq_number(i),
                &self.registry,
            ));
            if let Some(plane) = &self.inject {
                // Delayed completion IRQs (virtio.irq.delay).
                device.irq().install_fault_plane(plane.clone());
            }
            vm.event_manager_mut().register(device.clone());
            devices.push(device);
        }

        // Guest driver probes each device (queue setup) before boot…
        let em = vm.event_manager().clone();
        let mut frontends = Vec::with_capacity(n_devices);
        for (i, device) in devices.iter().enumerate() {
            let opts = ProbeOpts::new(i, em.clone(), vm.memory().clone())
                .cost_model(self.cm.clone())
                .config(self.vcfg)
                .registry(&self.registry)
                .scratch(self.scratch.clone());
            frontends.push(Arc::new(Frontend::probe(device.clone(), opts)?));
        }
        // …the VMM boots (devices activate)…
        let boot = vm.boot(&self.cm)?;
        // …and the drivers finish initialization (configuration request,
        // which links each device to a physical rank through the manager).
        for f in &frontends {
            f.initialize()?;
        }
        self.tenants_launched.inc();
        self.tenants_live.add(1);
        Ok(VpimVm { vm, devices, frontends, boot, live: self.tenants_live.clone() })
    }

    /// Stops the manager daemon and consumes the system.
    pub fn shutdown(mut self) {
        if let Some(m) = self.manager.take() {
            m.shutdown();
        }
    }
}

impl Drop for VpimSystem {
    fn drop(&mut self) {
        if let Some(m) = self.manager.take() {
            m.shutdown();
        }
    }
}

/// A launched microVM with its vUPMEM devices and guest-side frontends.
#[derive(Debug)]
pub struct VpimVm {
    vm: Vm,
    devices: Vec<Arc<VupmemDevice>>,
    frontends: Vec<Arc<Frontend>>,
    boot: BootReport,
    /// The host's `system.tenants.live` gauge; dropped VMs step it down.
    live: Gauge,
}

impl Drop for VpimVm {
    fn drop(&mut self) {
        self.live.sub(1);
    }
}

impl VpimVm {
    /// The underlying microVM.
    #[must_use]
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// The attached vUPMEM devices.
    #[must_use]
    pub fn devices(&self) -> &[Arc<VupmemDevice>] {
        &self.devices
    }

    /// The guest-side frontends, one per device.
    #[must_use]
    pub fn frontends(&self) -> &[Arc<Frontend>] {
        &self.frontends
    }

    /// Frontend `i`.
    #[must_use]
    pub fn frontend(&self, i: usize) -> &Arc<Frontend> {
        &self.frontends[i]
    }

    /// The boot report (cmdline + timing, §3.2).
    #[must_use]
    pub fn boot_report(&self) -> &BootReport {
        &self.boot
    }

    /// Releases every device's physical rank (guest shutdown path).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn release_all(&self) -> Result<(), VpimError> {
        for f in &self.frontends {
            f.release_rank()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upmem_sim::{PimConfig, PimMachine};

    fn system() -> VpimSystem {
        let machine = PimMachine::new(PimConfig::small());
        VpimSystem::start(Arc::new(UpmemDriver::new(machine)), VpimConfig::full(), StartOpts::default())
    }

    #[test]
    fn launch_links_ranks_and_reports_boot_time() {
        let sys = system();
        let vm = sys.launch(TenantSpec::new("vm-0").devices(2)).unwrap();
        assert_eq!(vm.frontends().len(), 2);
        assert_eq!(vm.frontend(0).nr_dpus(), 8);
        // Two vUPMEM devices: +4 ms of boot time (§3.2: up to 2 ms each).
        assert_eq!(vm.boot_report().vupmem_boot_time.as_millis(), 4);
        // Each device linked a distinct rank.
        let r0 = vm.devices()[0].backend().linked_rank().unwrap();
        let r1 = vm.devices()[1].backend().linked_rank().unwrap();
        assert_ne!(r0, r1);
        sys.shutdown();
    }

    #[test]
    fn two_vms_cannot_share_a_rank() {
        let sys = system();
        let a = sys.launch(TenantSpec::new("vm-a")).unwrap();
        let b = sys.launch(TenantSpec::new("vm-b")).unwrap();
        assert_ne!(
            a.devices()[0].backend().linked_rank(),
            b.devices()[0].backend().linked_rank()
        );
        // A third VM finds no rank (machine has 2). The exhaustion crosses
        // the virtio boundary, so it surfaces as NotLinked.
        assert!(matches!(
            sys.launch(TenantSpec::new("vm-c")),
            Err(VpimError::NotLinked | VpimError::NoRankAvailable)
        ));
        sys.shutdown();
    }

    #[test]
    fn write_read_through_the_full_stack() {
        let sys = system();
        let vm = sys.launch(TenantSpec::new("vm-0")).unwrap();
        let fe = vm.frontend(0);
        let data = vec![0xC3u8; 10_000];
        let report = fe.write_rank(&[(1, 64, &data)]).unwrap();
        assert!(report.messages() >= 1);
        let (out, rreport) = fe.read_rank(&[(1, 64, 10_000)]).unwrap();
        assert_eq!(out[0], data);
        assert!(rreport.duration() > simkit::VirtualNanos::ZERO);
        sys.shutdown();
    }

    #[test]
    fn registry_records_prefetch_hits_and_misses() {
        let sys = system();
        let vm = sys.launch(TenantSpec::new("vm-0")).unwrap();
        let fe = vm.frontend(0);
        fe.write_rank(&[(0, 0, &[7u8; 256])]).unwrap();
        // First small read misses (and installs a segment), second hits.
        let _ = fe.read_rank(&[(0, 0, 64)]).unwrap();
        let _ = fe.read_rank(&[(0, 64, 64)]).unwrap();
        let snap = sys.registry().snapshot();
        assert!(snap.count("frontend.prefetch.misses") >= 1, "{snap:?}");
        assert!(snap.count("frontend.prefetch.hits") >= 1, "{snap:?}");
        sys.shutdown();
    }

    #[test]
    fn registry_records_batch_merges() {
        let sys = system();
        let vm = sys.launch(TenantSpec::new("vm-0")).unwrap();
        let fe = vm.frontend(0);
        // Two small writes landing on the same MRAM page: the second is a
        // merge within the batch window.
        fe.write_rank(&[(0, 0, &[1u8; 128])]).unwrap();
        fe.write_rank(&[(0, 128, &[2u8; 128])]).unwrap();
        let snap = sys.registry().snapshot();
        assert!(snap.count("frontend.batch.appends") >= 2, "{snap:?}");
        assert_eq!(snap.count("frontend.batch.merges"), 1, "{snap:?}");
        assert_eq!(fe.batch_merges(), 1);
        sys.shutdown();
    }

    #[test]
    fn registry_records_vmexits() {
        let sys = system();
        let vm = sys.launch(TenantSpec::new("vm-0")).unwrap();
        // Initialization alone kicks the device (Configure round trip).
        let before = sys.registry().snapshot().count("vmm.vmexits");
        assert!(before >= 1);
        vm.frontend(0).write_rank(&[(0, 0, &[3u8; 8192])]).unwrap();
        let after = sys.registry().snapshot().count("vmm.vmexits");
        assert!(after > before, "write must trap to the VMM ({before} -> {after})");
        sys.shutdown();
    }

    #[test]
    fn registry_records_irq_injections() {
        let sys = system();
        let vm = sys.launch(TenantSpec::new("vm-0")).unwrap();
        let before = sys.registry().snapshot().count("virtio.irq.injections");
        assert!(before >= 1, "configure completion already injected");
        vm.frontend(0).write_rank(&[(0, 0, &[4u8; 8192])]).unwrap();
        let after = sys.registry().snapshot().count("virtio.irq.injections");
        assert!(after > before);
        sys.shutdown();
    }

    #[test]
    fn registry_tracks_queue_depth_per_rank() {
        let sys = system();
        let vm = sys.launch(TenantSpec::new("vm-0").devices(2)).unwrap();
        vm.frontend(1).write_rank(&[(0, 0, &[5u8; 8192])]).unwrap();
        let snap = sys.registry().snapshot();
        // The gauge exists per device and is back to zero once every
        // request completed (requests are synchronous on this path).
        assert!(snap.get("virtio.queue.depth.rank0").is_some(), "{snap:?}");
        assert!(snap.get("virtio.queue.depth.rank1").is_some(), "{snap:?}");
        assert_eq!(snap.level("virtio.queue.depth.rank0"), 0);
        assert_eq!(snap.level("virtio.queue.depth.rank1"), 0);
        sys.shutdown();
    }

    #[test]
    fn registry_records_rank_state_transitions() {
        let sys = system();
        let vm = sys.launch(TenantSpec::new("vm-0")).unwrap();
        // Linking the device walked NAAV -> ALLO.
        assert!(sys.registry().snapshot().count("manager.rank_state.transitions") >= 1);
        assert_eq!(
            sys.manager().state_transitions(),
            sys.registry().snapshot().count("manager.rank_state.transitions")
        );
        drop(vm);
        sys.shutdown();
    }

    #[test]
    fn release_recycles_ranks_for_new_vms() {
        let machine = PimMachine::new(PimConfig::small());
        let sys = VpimSystem::start(Arc::new(UpmemDriver::new(machine)), VpimConfig::full(), StartOpts::default());
        let a = sys.launch(TenantSpec::new("vm-a")).unwrap();
        let _b = sys.launch(TenantSpec::new("vm-b")).unwrap();
        a.release_all().unwrap();
        drop(a);
        // The released rank must come back (after observer + reset).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match sys.launch(TenantSpec::new("vm-c")) {
                Ok(_) => break,
                Err(VpimError::NoRankAvailable | VpimError::NotLinked) => {
                    assert!(std::time::Instant::now() < deadline, "rank never recycled");
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        sys.shutdown();
    }
}
