//! Per-operation cost reports.
//!
//! Every vPIM operation returns an [`OpReport`] describing its virtual-time
//! cost, its guest↔VMM message count, and its contribution to the paper's
//! write-step breakdown (Fig. 13). The SDK folds reports into a
//! [`simkit::Timeline`]; the figure harness aggregates them.

use simkit::{VirtualNanos, WriteStep};

/// The cost accounting of one vPIM (or native) operation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpReport {
    /// End-to-end virtual duration of the operation as observed by the
    /// caller (guest application).
    pub duration: VirtualNanos,
    /// Guest↔VMM message exchanges this operation performed (0 when served
    /// from the prefetch cache or absorbed by the batch buffer).
    pub messages: u64,
    /// Hardware rank operations issued.
    pub rank_ops: u64,
    /// Contributions to the Fig. 13 write-step breakdown.
    pub steps: Vec<(WriteStep, VirtualNanos)>,
    /// For launches: the slowest DPU's cycle count.
    pub launch_cycles: u64,
    /// Per-rank completion offsets for multi-rank operations (Fig. 16);
    /// empty for single-rank operations.
    pub per_rank: Vec<(usize, VirtualNanos)>,
    /// The portion of `duration` that occupies the shared DDR bus (rank
    /// data transfer). Parallel multi-rank handling overlaps everything
    /// *except* this part — the ranks share one memory controller.
    pub ddr: VirtualNanos,
}

impl OpReport {
    /// A report with only a duration.
    #[must_use]
    pub fn of(duration: VirtualNanos) -> Self {
        OpReport { duration, ..OpReport::default() }
    }

    /// Adds a write-step contribution and extends the duration.
    pub fn step(&mut self, step: WriteStep, d: VirtualNanos) {
        self.steps.push((step, d));
        self.duration += d;
    }

    /// Sums another report into this one (sequential composition).
    pub fn absorb(&mut self, other: &OpReport) {
        self.duration += other.duration;
        self.messages += other.messages;
        self.rank_ops += other.rank_ops;
        self.steps.extend(other.steps.iter().cloned());
        self.launch_cycles = self.launch_cycles.max(other.launch_cycles);
        self.ddr += other.ddr;
    }

    /// Sum of the recorded step contributions.
    #[must_use]
    pub fn steps_total(&self) -> VirtualNanos {
        self.steps.iter().map(|(_, d)| *d).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_accumulates_duration() {
        let mut r = OpReport::default();
        r.step(WriteStep::Serialize, VirtualNanos::from_nanos(10));
        r.step(WriteStep::TransferData, VirtualNanos::from_nanos(30));
        assert_eq!(r.duration.as_nanos(), 40);
        assert_eq!(r.steps_total().as_nanos(), 40);
    }

    #[test]
    fn absorb_merges() {
        let mut a = OpReport::of(VirtualNanos::from_nanos(5));
        a.messages = 1;
        let mut b = OpReport::of(VirtualNanos::from_nanos(7));
        b.messages = 2;
        b.launch_cycles = 99;
        a.absorb(&b);
        assert_eq!(a.duration.as_nanos(), 12);
        assert_eq!(a.messages, 3);
        assert_eq!(a.launch_cycles, 99);
    }
}
