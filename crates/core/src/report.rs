//! Per-operation cost reports.
//!
//! Every vPIM operation returns an [`OpReport`] describing its virtual-time
//! cost, its guest↔VMM message count, and its contribution to the paper's
//! write-step breakdown (Fig. 13). Since the telemetry redesign the report
//! is a thin view over a [`simkit::MetricSet`]: every quantity lives under a
//! stable metric name, so reports can be merged, folded into a
//! [`simkit::Timeline`], or published into a [`simkit::MetricsRegistry`]
//! without per-field plumbing. The SDK folds reports into a timeline; the
//! figure harness reads the registry.

use simkit::{MetricSet, MetricsRegistry, VirtualNanos, WriteStep};

/// Metric name for the end-to-end operation duration.
pub const METRIC_DURATION: &str = "op.duration";
/// Metric name for the DDR-bus portion of the duration.
pub const METRIC_DDR: &str = "op.ddr";
/// Metric name for guest↔VMM message exchanges.
pub const METRIC_MESSAGES: &str = "op.messages";
/// Metric name for hardware rank operations.
pub const METRIC_RANK_OPS: &str = "op.rank_ops";

/// The cost accounting of one vPIM (or native) operation.
///
/// A thin view over a [`MetricSet`]: the duration, message count, rank-op
/// count, DDR share, and Fig. 13 write-step contributions are all metric
/// entries; only quantities with non-additive merge semantics (the max-of
/// `launch_cycles`, the positional `per_rank` offsets) stay as plain fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpReport {
    metrics: MetricSet,
    launch_cycles: u64,
    per_rank: Vec<(usize, VirtualNanos)>,
}

impl OpReport {
    /// A report with only a duration.
    #[must_use]
    pub fn of(duration: VirtualNanos) -> Self {
        let mut r = OpReport::default();
        r.add_duration(duration);
        r
    }

    // ------------------------------------------------------------- reading

    /// End-to-end virtual duration of the operation as observed by the
    /// caller (guest application).
    #[must_use]
    pub fn duration(&self) -> VirtualNanos {
        self.metrics.get_time(METRIC_DURATION)
    }

    /// Guest↔VMM message exchanges this operation performed (0 when served
    /// from the prefetch cache or absorbed by the batch buffer).
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.metrics.get_count(METRIC_MESSAGES)
    }

    /// Hardware rank operations issued.
    #[must_use]
    pub fn rank_ops(&self) -> u64 {
        self.metrics.get_count(METRIC_RANK_OPS)
    }

    /// The portion of the duration that occupies the shared DDR bus (rank
    /// data transfer). Parallel multi-rank handling overlaps everything
    /// *except* this part — the ranks share one memory controller.
    #[must_use]
    pub fn ddr(&self) -> VirtualNanos {
        self.metrics.get_time(METRIC_DDR)
    }

    /// For launches: the slowest DPU's cycle count.
    #[must_use]
    pub fn launch_cycles(&self) -> u64 {
        self.launch_cycles
    }

    /// Per-rank completion offsets for multi-rank operations (Fig. 16);
    /// empty for single-rank operations.
    #[must_use]
    pub fn per_rank(&self) -> &[(usize, VirtualNanos)] {
        &self.per_rank
    }

    /// The Fig. 13 write-step contributions, in plotting order. Steps with
    /// no recorded time are omitted.
    #[must_use]
    pub fn steps(&self) -> Vec<(WriteStep, VirtualNanos)> {
        WriteStep::ALL
            .iter()
            .filter_map(|&s| {
                let d = self.metrics.get_time(s.metric_name());
                (d > VirtualNanos::ZERO).then_some((s, d))
            })
            .collect()
    }

    /// Time recorded for one write step.
    #[must_use]
    pub fn step_time(&self, step: WriteStep) -> VirtualNanos {
        self.metrics.get_time(step.metric_name())
    }

    /// Sum of the recorded step contributions.
    #[must_use]
    pub fn steps_total(&self) -> VirtualNanos {
        self.metrics.time_under("write")
    }

    /// The backing metric set.
    #[must_use]
    pub fn metrics(&self) -> &MetricSet {
        &self.metrics
    }

    // ------------------------------------------------------------ recording

    /// Adds a write-step contribution and extends the duration.
    pub fn step(&mut self, step: WriteStep, d: VirtualNanos) {
        self.metrics.charge(step.metric_name(), d);
        self.add_duration(d);
    }

    /// Records a write-step contribution without extending the duration
    /// (used when the duration is composed separately).
    pub fn step_only(&mut self, step: WriteStep, d: VirtualNanos) {
        self.metrics.charge(step.metric_name(), d);
    }

    /// Extends the duration.
    pub fn add_duration(&mut self, d: VirtualNanos) {
        self.metrics.charge(METRIC_DURATION, d);
    }

    /// Overwrites the duration (parallel composition picks a maximum
    /// rather than a sum).
    pub fn set_duration(&mut self, d: VirtualNanos) {
        self.metrics.set_time(METRIC_DURATION, d);
    }

    /// Records message exchanges.
    pub fn add_messages(&mut self, n: u64) {
        self.metrics.count(METRIC_MESSAGES, n);
    }

    /// Records rank operations.
    pub fn add_rank_ops(&mut self, n: u64) {
        self.metrics.count(METRIC_RANK_OPS, n);
    }

    /// Extends the DDR-bus share of the duration.
    pub fn add_ddr(&mut self, d: VirtualNanos) {
        self.metrics.charge(METRIC_DDR, d);
    }

    /// Overwrites the DDR-bus share.
    pub fn set_ddr(&mut self, d: VirtualNanos) {
        self.metrics.set_time(METRIC_DDR, d);
    }

    /// Records the slowest DPU's cycle count for a launch.
    pub fn set_launch_cycles(&mut self, cycles: u64) {
        self.launch_cycles = cycles;
    }

    /// Records per-rank completion offsets (Fig. 16).
    pub fn set_per_rank(&mut self, offsets: Vec<(usize, VirtualNanos)>) {
        self.per_rank = offsets;
    }

    /// Sums another report into this one (sequential composition). Counts
    /// and times add; `launch_cycles` takes the maximum (the slowest DPU
    /// bounds the launch); `per_rank` keeps this report's offsets.
    pub fn absorb(&mut self, other: &OpReport) {
        self.metrics.merge(&other.metrics);
        self.launch_cycles = self.launch_cycles.max(other.launch_cycles);
    }

    /// Publishes this report's metrics into `registry`, prefixing every
    /// name with `prefix.`.
    pub fn flush_into(&self, registry: &MetricsRegistry, prefix: &str) {
        self.metrics.flush_into(registry, prefix);
    }
}

impl From<OpReport> for MetricSet {
    fn from(r: OpReport) -> Self {
        r.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_accumulates_duration() {
        let mut r = OpReport::default();
        r.step(WriteStep::Serialize, VirtualNanos::from_nanos(10));
        r.step(WriteStep::TransferData, VirtualNanos::from_nanos(30));
        assert_eq!(r.duration().as_nanos(), 40);
        assert_eq!(r.steps_total().as_nanos(), 40);
        assert_eq!(r.steps().len(), 2);
        assert_eq!(r.step_time(WriteStep::Serialize).as_nanos(), 10);
    }

    #[test]
    fn absorb_merges() {
        let mut a = OpReport::of(VirtualNanos::from_nanos(5));
        a.add_messages(1);
        let mut b = OpReport::of(VirtualNanos::from_nanos(7));
        b.add_messages(2);
        b.set_launch_cycles(99);
        a.absorb(&b);
        assert_eq!(a.duration().as_nanos(), 12);
        assert_eq!(a.messages(), 3);
        assert_eq!(a.launch_cycles(), 99);
    }

    #[test]
    fn report_flushes_into_registry() {
        let mut r = OpReport::of(VirtualNanos::from_nanos(100));
        r.add_messages(2);
        r.add_rank_ops(1);
        r.step_only(WriteStep::Serialize, VirtualNanos::from_nanos(40));
        let reg = MetricsRegistry::new();
        r.flush_into(&reg, "sdk");
        let snap = reg.snapshot();
        assert_eq!(snap.count("sdk.op.messages"), 2);
        assert_eq!(snap.count("sdk.op.rank_ops"), 1);
        assert_eq!(snap.time("sdk.op.duration").as_nanos(), 100);
        assert_eq!(snap.time("sdk.write.serialize").as_nanos(), 40);
    }

    #[test]
    fn steps_report_in_plotting_order() {
        let mut r = OpReport::default();
        r.step(WriteStep::TransferData, VirtualNanos::from_nanos(3));
        r.step(WriteStep::PageMgmt, VirtualNanos::from_nanos(1));
        let steps = r.steps();
        assert_eq!(steps[0].0, WriteStep::PageMgmt);
        assert_eq!(steps[1].0, WriteStep::TransferData);
    }
}
