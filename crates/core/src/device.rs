//! The vUPMEM virtio device model registered with the VMM.
//!
//! One `VupmemDevice` represents one virtual rank attached to a VM. It owns
//! the virtio-mmio transport surface (register block + IRQ line) and the
//! [`Backend`] that performs rank operations; the VMM's event manager calls
//! [`VupmemDevice::handle_notify`] when the guest kicks `transferq`.

use parking_lot::Mutex;
use pim_virtio::mmio::MmioBlock;
use pim_virtio::queue::{DescChain, DeviceQueue, QueueLayout};
use pim_virtio::{Gpa, GuestMemory, IrqLine};
use pim_vmm::{VirtioDevice, VmmError};

use crate::backend::Backend;
use crate::spec;

/// Lock-order indices for the device's mutexes, both at
/// [`simkit::LockLevel::DeviceQueue`] (below the frontend, above the
/// backend's rank slot — see `simkit::lockorder`). Neither is held while
/// the backend processes a chain, so the descent into
/// `RankSlot`/`SchedState`/`ManagerTable` always starts from a clean
/// device layer.
mod dev_lock {
    pub const MEM: usize = 0;
    pub const TRANSFERQ: usize = 1;
}

/// The vUPMEM device (one per virtual rank).
#[derive(Debug)]
pub struct VupmemDevice {
    tag: String,
    mmio: MmioBlock,
    irq: IrqLine,
    backend: Backend,
    mem: Mutex<Option<GuestMemory>>,
    transferq: Mutex<Option<DeviceQueue>>,
}

impl VupmemDevice {
    /// Creates the device with its backend. `irq_number` is the GSI the VMM
    /// advertises on the kernel command line.
    #[must_use]
    pub fn new(tag: impl Into<String>, backend: Backend, irq_number: u32) -> Self {
        Self::with_registry(tag, backend, irq_number, &simkit::MetricsRegistry::new())
    }

    /// [`new`](Self::new), with the IRQ line's injection count published
    /// into `registry` as `virtio.irq.injections` (shared with every other
    /// device on the same registry).
    #[must_use]
    pub fn with_registry(
        tag: impl Into<String>,
        backend: Backend,
        irq_number: u32,
        registry: &simkit::MetricsRegistry,
    ) -> Self {
        VupmemDevice {
            tag: tag.into(),
            mmio: MmioBlock::new(
                spec::DEVICE_ID,
                2,
                u32::from(spec::TRANSFERQ_SIZE),
                vec![0u8; 64],
            ),
            irq: IrqLine::with_counter(irq_number, registry.counter("virtio.irq.injections")),
            backend,
            mem: Mutex::new(None),
            transferq: Mutex::new(None),
        }
    }

    /// The backend (manager linkage, counters).
    #[must_use]
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    fn process_chain(&self, chain: &DescChain) -> Result<(), VmmError> {
        let mem = {
            let _order = simkit::ordered(simkit::LockLevel::DeviceQueue, dev_lock::MEM);
            self.mem
                .lock()
                .clone()
                .ok_or_else(|| VmmError::BadState("device not activated".to_string()))?
        };
        let response = self.backend.process(&mem, chain);
        // Write the response into the chain's final (device-writable)
        // descriptor.
        let status = chain
            .descriptors
            .last()
            .filter(|d| d.is_write_only())
            .copied()
            .ok_or_else(|| VmmError::Device("chain lacks a status buffer".to_string()))?;
        let mut encoded = response.encode();
        if encoded.len() > status.len as usize {
            // Truncate the error text rather than corrupt guest memory.
            let mut short = response;
            short.error.truncate(64);
            short.payload.clear();
            encoded = short.encode();
            encoded.truncate(status.len as usize);
        }
        mem.write(status.addr, &encoded).map_err(VmmError::Virtio)?;
        let written = encoded.len() as u32;
        {
            let _order =
                simkit::ordered(simkit::LockLevel::DeviceQueue, dev_lock::TRANSFERQ);
            self.transferq
                .lock()
                .as_mut()
                .expect("activated")
                .push_used(chain.head, written)
                .map_err(VmmError::Virtio)?;
        }
        self.mmio.raise_interrupt();
        self.irq.assert_irq();
        Ok(())
    }
}

impl VirtioDevice for VupmemDevice {
    fn tag(&self) -> String {
        self.tag.clone()
    }

    fn device_id(&self) -> u32 {
        spec::DEVICE_ID
    }

    fn mmio(&self) -> &MmioBlock {
        &self.mmio
    }

    fn irq(&self) -> &IrqLine {
        &self.irq
    }

    fn activate(&self, mem: &GuestMemory) -> Result<(), VmmError> {
        let q = self
            .mmio
            .queue(spec::TRANSFERQ as usize)
            .ok_or_else(|| VmmError::BadState("transferq not configured".to_string()))?;
        if !q.ready {
            return Err(VmmError::BadState(
                "guest driver did not mark transferq ready".to_string(),
            ));
        }
        let layout = QueueLayout {
            size: q.num as u16,
            desc: Gpa(q.desc),
            avail: Gpa(q.driver_area),
            used: Gpa(q.device_area),
        };
        *self.transferq.lock() = Some(DeviceQueue::new(mem.clone(), layout));
        *self.mem.lock() = Some(mem.clone());
        Ok(())
    }

    fn handle_notify(&self, queue: u32) -> Result<(), VmmError> {
        if queue != spec::TRANSFERQ {
            return Ok(()); // controlq traffic carries no work in this model
        }
        loop {
            let popped = {
                let _order =
                    simkit::ordered(simkit::LockLevel::DeviceQueue, dev_lock::TRANSFERQ);
                let mut q = self.transferq.lock();
                let q = q
                    .as_mut()
                    .ok_or_else(|| VmmError::BadState("device not activated".to_string()))?;
                q.pop().map_err(VmmError::Virtio)?
            };
            match popped {
                Some(chain) => self.process_chain(&chain)?,
                None => break,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VpimConfig;
    use crate::manager::{Manager, ManagerConfig};
    use crate::spec::{Request, Response};
    use pim_virtio::mmio::{reg, status};
    use pim_virtio::queue::DriverQueue;
    use simkit::CostModel;
    use std::sync::Arc;
    use upmem_driver::UpmemDriver;
    use upmem_sim::{PimConfig, PimMachine};

    fn device() -> (VupmemDevice, Manager) {
        let driver = Arc::new(UpmemDriver::new(PimMachine::new(PimConfig::small())));
        let mgr = Manager::start(driver.clone(), CostModel::default(), ManagerConfig::default());
        let backend = Backend::new(
            driver,
            mgr.client(),
            VpimConfig::full(),
            CostModel::default(),
            "vm-t".to_string(),
        );
        (VupmemDevice::new("vupmem0", backend, 33), mgr)
    }

    fn program_queue(dev: &VupmemDevice, mem: &GuestMemory) -> DriverQueue {
        let layout = QueueLayout::alloc(mem, 512).unwrap();
        let m = dev.mmio();
        m.write(reg::QUEUE_SEL, 0).unwrap();
        m.write(reg::QUEUE_NUM, 512).unwrap();
        m.write(reg::QUEUE_DESC_LOW, (layout.desc.0 & 0xffff_ffff) as u32).unwrap();
        m.write(reg::QUEUE_DESC_HIGH, (layout.desc.0 >> 32) as u32).unwrap();
        m.write(reg::QUEUE_DRIVER_LOW, (layout.avail.0 & 0xffff_ffff) as u32).unwrap();
        m.write(reg::QUEUE_DRIVER_HIGH, (layout.avail.0 >> 32) as u32).unwrap();
        m.write(reg::QUEUE_DEVICE_LOW, (layout.used.0 & 0xffff_ffff) as u32).unwrap();
        m.write(reg::QUEUE_DEVICE_HIGH, (layout.used.0 >> 32) as u32).unwrap();
        m.write(reg::QUEUE_READY, 1).unwrap();
        m.write(reg::STATUS, status::ACKNOWLEDGE | status::DRIVER | status::DRIVER_OK)
            .unwrap();
        DriverQueue::new(mem.clone(), layout)
    }

    #[test]
    fn notify_processes_request_and_injects_irq() {
        let (dev, mgr) = device();
        let mem = GuestMemory::new(4 << 20);
        let mut dq = program_queue(&dev, &mem);
        dev.activate(&mem).unwrap();

        let req_page = mem.alloc_pages(1).unwrap()[0];
        let status_page = mem.alloc_pages(1).unwrap()[0];
        let enc = Request::Configure.encode();
        mem.write(req_page, &enc).unwrap();
        let head = dq
            .add_chain(&[(req_page, enc.len() as u32, false), (status_page, 4096, true)])
            .unwrap();

        dev.handle_notify(spec::TRANSFERQ).unwrap();
        assert!(dev.irq().try_take());
        let (h, len) = dq.poll_used().unwrap().unwrap();
        assert_eq!(h, head);
        assert!(len > 0);
        let raw = mem.with_slice(status_page, 4096, <[u8]>::to_vec).unwrap();
        let resp = Response::decode(&raw).unwrap();
        assert!(resp.is_ok());
        assert!(!resp.payload.is_empty());
        mgr.shutdown();
    }

    #[test]
    fn activate_requires_ready_queue() {
        let (dev, mgr) = device();
        let mem = GuestMemory::new(1 << 20);
        assert!(dev.activate(&mem).is_err());
        mgr.shutdown();
    }

    #[test]
    fn notify_before_activate_is_bad_state() {
        let (dev, mgr) = device();
        assert!(dev.handle_notify(spec::TRANSFERQ).is_err());
        // controlq notifications are accepted quietly.
        assert!(dev.handle_notify(spec::CONTROLQ).is_ok());
        mgr.shutdown();
    }
}
