//! The vPIM backend (§3.1, §4.2): the device model inside Firecracker.
//!
//! The backend decodes requests popped from `transferq`, translates the
//! transfer matrix's guest page addresses to host addresses with a thread
//! pool, performs the operation on the physical rank in performance mode
//! (mmap), and returns the payload plus its own timing breakdown. DPU
//! operations are spread over an 8-thread pool (one per chip — the paper
//! found more threads bring no benefit).

pub mod datapath;
pub mod partition;

use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};
use pim_virtio::queue::DescChain;
use pim_virtio::{Gpa, GuestMemory, SegCache};
use simkit::compose::pool_schedule;
use simkit::cost::DataPath;
use simkit::{
    BytePool, CostModel, Counter, FaultPlane, HasErrorKind, InjectCell, MetricsRegistry,
    VirtualNanos, WorkerPool,
};
use upmem_driver::{PerfMapping, UpmemDriver};
use upmem_sim::Rank;

use crate::config::VpimConfig;
use crate::error::VpimError;
use crate::manager::ManagerClient;
use crate::matrix::{DpuXfer, TransferMatrix};
use crate::sched::{RankSlot, Scheduler};
use crate::spec::{PimDeviceConfig, Request, Response};

/// The per-entry transfer unit [`run_entries`](Backend::run_entries)
/// executes: [`datapath::write_entry`] or [`datapath::read_entry`]. The
/// trailing `(Option<&FaultPlane>, u64)` pair is the fault plane (if
/// installed) and the entry's index in its request — the deterministic key
/// the chunk fault points are evaluated over.
type EntryOp = fn(
    &GuestMemory,
    &Rank,
    &DpuXfer,
    bool,
    DataPath,
    &BytePool,
    &mut SegCache,
    Option<&FaultPlane>,
    u64,
) -> Result<u64, VpimError>;

/// Response status: success.
pub const STATUS_OK: u32 = 0;
/// Response status: hardware/driver error (message in `error`).
pub const STATUS_HW: u32 = 1;
/// Response status: a DPU program faulted.
pub const STATUS_FAULT: u32 = 2;
/// Response status: no physical rank could be linked.
pub const STATUS_NOT_LINKED: u32 = 3;
/// Response status: malformed request.
pub const STATUS_BAD: u32 = 4;

/// Request counters (telemetry for tests and figures). The cells are
/// registry-owned ([`MetricsRegistry::counter`]), so every backend sharing a
/// registry aggregates into `backend.writes` / `backend.reads` /
/// `backend.ci`.
#[derive(Debug)]
pub struct BackendCounters {
    /// `write-to-rank` requests processed.
    pub writes: Counter,
    /// `read-from-rank` requests processed.
    pub reads: Counter,
    /// CI-class requests processed (load, launch, poll, symbols).
    pub ci: Counter,
    /// Payload bytes moved through the zero-copy data path
    /// (`datapath.bytes.zero_copy`): guest RAM → pooled scratch or borrowed
    /// view → MRAM and back, with no fresh per-entry heap allocation.
    pub zero_copy: Counter,
}

impl BackendCounters {
    fn from_registry(registry: &MetricsRegistry) -> Self {
        BackendCounters {
            writes: registry.counter("backend.writes"),
            reads: registry.counter("backend.reads"),
            ci: registry.counter("backend.ci"),
            zero_copy: registry.counter("datapath.bytes.zero_copy"),
        }
    }
}

/// The per-device backend.
#[derive(Debug)]
pub struct Backend {
    driver: Arc<UpmemDriver>,
    sched: Scheduler,
    vcfg: VpimConfig,
    cm: CostModel,
    owner: String,
    /// The scheduler's preemption unit: holding this lock is holding the
    /// safe-point token (see [`crate::sched`]).
    perf: RankSlot,
    counters: BackendCounters,
    pool: Arc<WorkerPool>,
    /// Scratch-buffer pool for the zero-copy data path (shared with the
    /// frontend serializer in the system wiring).
    scratch: BytePool,
    /// Late-bound fault plane for the chunk fault points.
    inject: InjectCell,
}

impl Backend {
    /// Creates a backend for one vUPMEM device owned by `owner` (the VM
    /// tag; used for manager requests and driver claims). Counters go into
    /// a private registry; use [`Self::with_registry`] to publish them.
    #[must_use]
    pub fn new(
        driver: Arc<UpmemDriver>,
        manager: ManagerClient,
        vcfg: VpimConfig,
        cm: CostModel,
        owner: String,
    ) -> Self {
        Self::with_registry(driver, manager, vcfg, cm, owner, &MetricsRegistry::new())
    }

    /// Creates a backend whose request counters live in `registry` (as
    /// `backend.writes` / `backend.reads` / `backend.ci`, shared with every
    /// other backend on the same registry).
    #[must_use]
    pub fn with_registry(
        driver: Arc<UpmemDriver>,
        manager: ManagerClient,
        vcfg: VpimConfig,
        cm: CostModel,
        owner: String,
        registry: &MetricsRegistry,
    ) -> Self {
        let pool = Arc::new(WorkerPool::new(cm.backend_threads));
        Self::with_pool(driver, manager, vcfg, cm, owner, registry, pool)
    }

    /// [`with_registry`](Self::with_registry), sharing an existing worker
    /// pool instead of spawning a private one — the system wiring hands
    /// every backend of a VM the same pool, mirroring the paper's single
    /// 8-thread pool for all DPU operations (§4.2).
    #[must_use]
    pub fn with_pool(
        driver: Arc<UpmemDriver>,
        manager: ManagerClient,
        vcfg: VpimConfig,
        cm: CostModel,
        owner: String,
        registry: &MetricsRegistry,
        pool: Arc<WorkerPool>,
    ) -> Self {
        let sched = Scheduler::new(driver.clone(), manager, vcfg.sched, cm.clone(), registry);
        Self::with_scheduler(driver, sched, vcfg, cm, owner, registry, pool)
    }

    /// [`with_pool`](Self::with_pool), sharing an existing [`Scheduler`]
    /// instead of wrapping the manager client in a private one. The system
    /// wiring hands every backend on a host the same scheduler — required
    /// for correctness under oversubscription (admission and preemption
    /// decisions must see all tenants).
    #[must_use]
    pub fn with_scheduler(
        driver: Arc<UpmemDriver>,
        sched: Scheduler,
        vcfg: VpimConfig,
        cm: CostModel,
        owner: String,
        registry: &MetricsRegistry,
        pool: Arc<WorkerPool>,
    ) -> Self {
        let scratch = BytePool::with_registry(registry, "datapath.pool");
        Self::with_parts(driver, sched, vcfg, cm, owner, registry, pool, scratch)
    }

    /// [`with_scheduler`](Self::with_scheduler), sharing an existing
    /// scratch-buffer [`BytePool`] instead of creating a private one. The
    /// system wiring hands every backend and frontend of a system the same
    /// pool, so a buffer released by the serializer is reusable by any
    /// backend worker.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn with_parts(
        driver: Arc<UpmemDriver>,
        sched: Scheduler,
        vcfg: VpimConfig,
        cm: CostModel,
        owner: String,
        registry: &MetricsRegistry,
        pool: Arc<WorkerPool>,
        scratch: BytePool,
    ) -> Self {
        Backend {
            driver,
            sched,
            vcfg,
            cm,
            owner,
            perf: Arc::new(Mutex::new(None)),
            counters: BackendCounters::from_registry(registry),
            pool,
            scratch,
            inject: InjectCell::new(),
        }
    }

    /// Installs the fault-injection plane consulted by the per-DPU chunk
    /// fault points ([`datapath::CHUNK_TORN_WRITE_POINT`],
    /// [`datapath::CHUNK_STALL_POINT`]).
    pub fn install_fault_plane(&self, plane: Arc<FaultPlane>) {
        self.inject.install(plane);
    }

    /// The worker pool executing this backend's data path.
    #[must_use]
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Request counters.
    #[must_use]
    pub fn counters(&self) -> &BackendCounters {
        &self.counters
    }

    /// The rank currently linked, if any.
    #[must_use]
    pub fn linked_rank(&self) -> Option<usize> {
        let _order = simkit::ordered(simkit::LockLevel::RankSlot, 0);
        self.perf.lock().as_ref().map(PerfMapping::rank_id)
    }

    /// The scheduler this backend acquires ranks through.
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Links a physical rank through the scheduler if not already linked
    /// (§3.3: allocation happens at device instantiation or first DPU
    /// allocation). Under oversubscription a preempted backend relinks
    /// transparently here: its parked checkpoint is restored before the
    /// guard is returned, so the operation that triggered the relink sees
    /// the rank exactly as the preemption left it.
    ///
    /// # Errors
    ///
    /// Manager exhaustion (dedicated mode), admission timeout
    /// (oversubscribed mode) or a driver claim conflict.
    pub fn ensure_linked(&self) -> Result<MutexGuard<'_, Option<PerfMapping>>, VpimError> {
        // Rank slots sit at `LockLevel::RankSlot`, below the scheduler and
        // manager locks `acquire` takes while we hold the slot — the
        // canonical descending chain of the lock hierarchy. The token only
        // brackets acquisition (the guard legitimately outlives it and is
        // released by the caller).
        let _order = simkit::ordered(simkit::LockLevel::RankSlot, 0);
        let mut guard = self.perf.lock();
        if guard.is_none() {
            let grant = self.sched.acquire(&self.owner, &self.perf)?;
            *guard = Some(grant.mapping);
        }
        Ok(guard)
    }

    /// Unlinks the physical rank (drops the perf mapping; sysfs flips and
    /// the manager's observer takes over) and tells the scheduler the
    /// lease ended voluntarily.
    pub fn unlink(&self) {
        {
            let _order = simkit::ordered(simkit::LockLevel::RankSlot, 0);
            *self.perf.lock() = None;
        }
        self.sched.notify_release(&self.owner);
    }

    /// Processes one popped `transferq` chain and returns the response to
    /// write into the chain's status buffer. Never panics the VMM: every
    /// failure becomes an error response.
    #[must_use]
    pub fn process(&self, mem: &GuestMemory, chain: &DescChain) -> Response {
        let resp = match self.try_process(mem, chain) {
            Ok(resp) => resp,
            Err(e) => Response::err(classify(&e), e.kind(), e.to_string()),
        };
        if self.vcfg.sched.oversubscription && resp.status == STATUS_OK {
            // Charge the operation's modeled duration against this
            // tenant's lease. Virtual-time-derived, so Sequential and
            // Parallel dispatch grow the accounts identically.
            let vt = VirtualNanos::from_nanos(
                resp.deser_ns
                    .saturating_add(resp.translate_ns)
                    .saturating_add(resp.transfer_ns),
            ) + self.cm.dpu_cycles(resp.launch_cycles);
            self.sched.charge(&self.owner, vt);
        }
        resp
    }

    fn try_process(&self, mem: &GuestMemory, chain: &DescChain) -> Result<Response, VpimError> {
        if chain.descriptors.len() < 2 {
            return Err(VpimError::BadRequest("chain needs request + status".into()));
        }
        let req_desc = &chain.descriptors[0];
        let req_bytes =
            mem.with_slice(req_desc.addr, u64::from(req_desc.len), <[u8]>::to_vec)?;
        let request = Request::decode(&req_bytes)?;

        // Middle descriptors (between request and status) carry payloads.
        let middle: Vec<(Gpa, u32)> = chain.descriptors[1..chain.descriptors.len() - 1]
            .iter()
            .map(|d| (d.addr, d.len))
            .collect();

        match request {
            Request::Configure => self.handle_configure(),
            Request::WriteRank { nr_dpus } => self.handle_write(mem, &middle, nr_dpus, chain),
            Request::ReadRank { nr_dpus } => self.handle_read(mem, &middle, nr_dpus, chain),
            Request::LoadProgram { name, dpus } => self.handle_load(&name, &dpus),
            Request::Launch { dpus, nr_tasklets } => self.handle_launch(&dpus, nr_tasklets),
            Request::PollStatus { dpu } => self.handle_poll(dpu),
            Request::WriteSymbol { dpu, name, len } => {
                self.handle_write_symbol(mem, &middle, dpu, &name, len)
            }
            Request::ReadSymbol { dpu, name, len } => self.handle_read_symbol(dpu, &name, len),
            Request::ScatterSymbol { name, entries } => self.handle_scatter(&name, &entries),
            Request::ReleaseRank => {
                self.unlink();
                Ok(Response::default())
            }
        }
    }

    fn handle_configure(&self) -> Result<Response, VpimError> {
        let guard = self.ensure_linked()?;
        let perf = guard.as_ref().expect("linked above");
        let cfg = PimDeviceConfig {
            clock_division: 2,
            mram_size: perf.rank().mram_size(),
            nr_cis: upmem_sim::geometry::CHIPS_PER_RANK as u32,
            nr_dpus: perf.dpu_count() as u32,
            freq_mhz: perf.rank().freq_mhz() as u32,
            power_mgmt: 1,
        };
        Ok(Response { payload: cfg.encode(), ..Response::default() })
    }

    /// DDR window time for a rank data operation: bounded by the shared
    /// bus (parallel bandwidth over the total), by the most-loaded single
    /// DPU's stream (serial bandwidth), and paying the per-region command
    /// overhead for every discontiguous entry.
    fn rank_ddr_time(
        &self,
        total_bytes: u64,
        per_dpu_bytes: &std::collections::HashMap<u32, u64>,
        entries: u64,
    ) -> VirtualNanos {
        let max_dpu = per_dpu_bytes.values().copied().max().unwrap_or(0);
        let bus = self.cm.rank_transfer_parallel(total_bytes);
        let stream = self.cm.rank_transfer_serial(max_dpu);
        bus.max(stream)
            + VirtualNanos::from_nanos(self.cm.rank_op_fixed_ns)
                .saturating_mul(entries.saturating_sub(1))
    }

    /// The deserialization + translation costs common to rank data ops.
    fn matrix_costs(&self, ndesc: u64, matrix: &TransferMatrix) -> (VirtualNanos, VirtualNanos) {
        let deser = self.cm.descriptor_walk(ndesc)
            + self.cm.deserialize_matrix(matrix.total_pages());
        let translate = self.cm.gpa_translate(matrix.total_pages());
        (deser, translate)
    }

    /// Virtual-time report for a rank data op, derived from the matrix
    /// alone (in entry order) so the numbers are bit-identical no matter
    /// how execution interleaves on the worker pool.
    fn data_op_response(&self, matrix: &TransferMatrix, ndesc: u64) -> Response {
        let mut per_entry = Vec::with_capacity(matrix.entries.len());
        let mut total_bytes = 0u64;
        let mut per_dpu_bytes = std::collections::HashMap::new();
        for entry in &matrix.entries {
            per_entry.push(self.cm.memcpy(entry.len));
            total_bytes += entry.len;
            *per_dpu_bytes.entry(entry.dpu).or_insert(0u64) += entry.len;
        }
        let (deser, translate) = self.matrix_costs(ndesc, matrix);
        // Per-DPU copies spread over the 8-thread pool; the byte
        // (de)interleaving runs on the handler's data path (the function
        // the paper rewrote in C), serially. The DDR time is bounded both
        // by the shared bus (parallel bandwidth over all bytes) and by the
        // slowest single DPU's stream (serial bandwidth) — so a one-DPU
        // matrix behaves like native serial mode, and batching merges
        // messages without reducing total data-writing time (§4.1).
        let prep = pool_schedule(per_entry, self.cm.backend_threads);
        let ddr = self.rank_ddr_time(total_bytes, &per_dpu_bytes, matrix.entries.len() as u64);
        let transfer =
            prep + datapath::interleave_cost(&self.cm, total_bytes, self.vcfg.data_path) + ddr;
        Response {
            deser_ns: deser.as_nanos(),
            translate_ns: translate.as_nanos(),
            transfer_ns: transfer.as_nanos(),
            ddr_ns: ddr.as_nanos(),
            ..Response::default()
        }
    }

    /// Executes a data op's per-entry work on the worker pool, chunked
    /// along DPU boundaries so no two workers touch the same MRAM bank.
    /// Each worker draws scratch buffers from the shared [`BytePool`] and
    /// elides bounds re-checks with a chunk-local [`SegCache`]. On full
    /// success the bytes moved are published as `datapath.bytes.zero_copy`.
    /// On failure the error of the **lowest entry index** is returned —
    /// the same error a sequential in-order walk would report — so error
    /// responses are deterministic too. As on real hardware, other
    /// entries' transfers may already have landed.
    fn run_entries(
        &self,
        mem: &GuestMemory,
        rank: &Arc<Rank>,
        matrix: &TransferMatrix,
        verify: bool,
        op: EntryOp,
    ) -> Result<(), VpimError> {
        let path = self.vcfg.data_path;
        let plane = self.inject.plane();
        let chunks = partition::partition_by_dpu(&matrix.entries, self.pool.workers());
        if chunks.len() <= 1 {
            let mut cache = SegCache::new();
            let mut moved = 0u64;
            for (i, entry) in matrix.entries.iter().enumerate() {
                moved += op(
                    mem,
                    rank,
                    entry,
                    verify,
                    path,
                    &self.scratch,
                    &mut cache,
                    plane.as_deref(),
                    i as u64,
                )?;
            }
            self.counters.zero_copy.add(moved);
            return Ok(());
        }
        let jobs: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let mem = mem.clone();
                let rank = Arc::clone(rank);
                let scratch = self.scratch.clone();
                let plane = plane.clone();
                let entries: Vec<(usize, DpuXfer)> = chunk
                    .entry_indices
                    .iter()
                    .map(|&i| (i, matrix.entries[i].clone()))
                    .collect();
                move || -> Result<u64, (usize, VpimError)> {
                    let mut cache = SegCache::new();
                    let mut moved = 0u64;
                    for (i, entry) in &entries {
                        moved += op(
                            &mem,
                            &rank,
                            entry,
                            verify,
                            path,
                            &scratch,
                            &mut cache,
                            plane.as_deref(),
                            *i as u64,
                        )
                        .map_err(|e| (*i, e))?;
                    }
                    Ok(moved)
                }
            })
            .collect();
        let outcomes = self.pool.run_all(jobs);
        let mut moved = 0u64;
        let mut first_failure: Option<(usize, VpimError)> = None;
        for outcome in outcomes {
            match outcome {
                Ok(bytes) => moved += bytes,
                Err((i, e)) => {
                    if first_failure.as_ref().is_none_or(|(fi, _)| i < *fi) {
                        first_failure = Some((i, e));
                    }
                }
            }
        }
        match first_failure {
            Some((_, e)) => Err(e),
            None => {
                // Published only on full success, so the total is the same
                // deterministic quantity Sequential dispatch reports.
                self.counters.zero_copy.add(moved);
                Ok(())
            }
        }
    }

    fn handle_write(
        &self,
        mem: &GuestMemory,
        middle: &[(Gpa, u32)],
        nr_dpus: u32,
        chain: &DescChain,
    ) -> Result<Response, VpimError> {
        self.counters.writes.inc();
        let matrix = TransferMatrix::deserialize(mem, middle)?;
        if matrix.entries.len() != nr_dpus as usize {
            return Err(VpimError::BadRequest(format!(
                "request says {nr_dpus} dpus, matrix has {}",
                matrix.entries.len()
            )));
        }
        let guard = self.ensure_linked()?;
        let perf = guard.as_ref().expect("linked above");
        let verify = perf.rank().verify_interleave();
        self.run_entries(mem, perf.rank(), &matrix, verify, datapath::write_entry)?;
        Ok(self.data_op_response(&matrix, chain.descriptors.len() as u64))
    }

    fn handle_read(
        &self,
        mem: &GuestMemory,
        middle: &[(Gpa, u32)],
        nr_dpus: u32,
        chain: &DescChain,
    ) -> Result<Response, VpimError> {
        self.counters.reads.inc();
        let matrix = TransferMatrix::deserialize(mem, middle)?;
        if matrix.entries.len() != nr_dpus as usize {
            return Err(VpimError::BadRequest(format!(
                "request says {nr_dpus} dpus, matrix has {}",
                matrix.entries.len()
            )));
        }
        let guard = self.ensure_linked()?;
        let perf = guard.as_ref().expect("linked above");
        let verify = perf.rank().verify_interleave();
        self.run_entries(mem, perf.rank(), &matrix, verify, datapath::read_entry)?;
        Ok(self.data_op_response(&matrix, chain.descriptors.len() as u64))
    }

    fn dpu_list(dpus: &[u32]) -> Option<Vec<usize>> {
        if dpus.is_empty() {
            None
        } else {
            Some(dpus.iter().map(|d| *d as usize).collect())
        }
    }

    fn handle_load(&self, name: &str, dpus: &[u32]) -> Result<Response, VpimError> {
        self.counters.ci.inc();
        let guard = self.ensure_linked()?;
        let perf = guard.as_ref().expect("linked above");
        let image = self.driver.machine().registry().get(name)?.image();
        let list = Self::dpu_list(dpus);
        perf.load_program(list.as_deref(), &image)?;
        Ok(Response {
            transfer_ns: self.cm.ci_op().as_nanos() * perf.dpu_count() as u64,
            ..Response::default()
        })
    }

    fn handle_launch(&self, dpus: &[u32], nr_tasklets: u32) -> Result<Response, VpimError> {
        self.counters.ci.inc();
        let guard = self.ensure_linked()?;
        let perf = guard.as_ref().expect("linked above");
        let list = Self::dpu_list(dpus);
        let reports = perf.launch(list.as_deref(), nr_tasklets as usize)?;
        let max_cycles = reports.iter().map(|(_, r)| r.cycles).max().unwrap_or(0);
        Ok(Response { launch_cycles: max_cycles, ..Response::default() })
    }

    fn handle_poll(&self, dpu: u32) -> Result<Response, VpimError> {
        self.counters.ci.inc();
        let guard = self.ensure_linked()?;
        let perf = guard.as_ref().expect("linked above");
        let status = perf.poll_status(dpu as usize)?;
        let code: u8 = match status {
            upmem_sim::ci::CiStatus::Idle => 0,
            upmem_sim::ci::CiStatus::Running => 1,
            upmem_sim::ci::CiStatus::Done => 2,
            upmem_sim::ci::CiStatus::Fault => 3,
        };
        Ok(Response { payload: vec![code], ..Response::default() })
    }

    fn handle_write_symbol(
        &self,
        mem: &GuestMemory,
        middle: &[(Gpa, u32)],
        dpu: u32,
        name: &str,
        len: u32,
    ) -> Result<Response, VpimError> {
        self.counters.ci.inc();
        let (gpa, blen) = *middle
            .first()
            .ok_or_else(|| VpimError::BadRequest("write-symbol without payload".into()))?;
        if blen < len {
            return Err(VpimError::BadRequest("symbol payload shorter than declared".into()));
        }
        let bytes = mem.with_slice(gpa, u64::from(len), <[u8]>::to_vec)?;
        let guard = self.ensure_linked()?;
        let perf = guard.as_ref().expect("linked above");
        perf.write_symbol(dpu as usize, name, &bytes)?;
        Ok(Response::default())
    }

    fn handle_scatter(&self, name: &str, entries: &[(u32, u32)]) -> Result<Response, VpimError> {
        self.counters.ci.inc();
        let guard = self.ensure_linked()?;
        let perf = guard.as_ref().expect("linked above");
        for (dpu, value) in entries {
            perf.write_symbol(*dpu as usize, name, &value.to_le_bytes())?;
        }
        Ok(Response {
            transfer_ns: self.cm.ci_op().saturating_mul(entries.len() as u64).as_nanos(),
            ..Response::default()
        })
    }

    fn handle_read_symbol(&self, dpu: u32, name: &str, len: u32) -> Result<Response, VpimError> {
        self.counters.ci.inc();
        let guard = self.ensure_linked()?;
        let perf = guard.as_ref().expect("linked above");
        let mut bytes = vec![0u8; len as usize];
        perf.read_symbol(dpu as usize, name, &mut bytes)?;
        Ok(Response { payload: bytes, ..Response::default() })
    }
}

fn classify(e: &VpimError) -> u32 {
    match e {
        VpimError::Sim(upmem_sim::SimError::Fault(_))
        | VpimError::Driver(upmem_driver::DriverError::Sim(upmem_sim::SimError::Fault(_))) => {
            STATUS_FAULT
        }
        VpimError::NoRankAvailable | VpimError::NotLinked | VpimError::ManagerDown => {
            STATUS_NOT_LINKED
        }
        VpimError::BadRequest(_) | VpimError::ProtocolViolation(_) => STATUS_BAD,
        _ => STATUS_HW,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{Manager, ManagerConfig};
    use pim_virtio::queue::{DeviceQueue, DriverQueue, QueueLayout};
    use upmem_sim::{PimConfig, PimMachine};

    struct Rig {
        mem: GuestMemory,
        driver_q: DriverQueue,
        device_q: DeviceQueue,
        backend: Backend,
        _mgr: Manager,
    }

    fn rig() -> Rig {
        let driver = Arc::new(UpmemDriver::new(PimMachine::new(PimConfig::small())));
        let mgr = Manager::start(driver.clone(), CostModel::default(), ManagerConfig::default());
        let backend = Backend::new(
            driver,
            mgr.client(),
            VpimConfig::full(),
            CostModel::default(),
            "vm-test".to_string(),
        );
        let mem = GuestMemory::new(8 << 20);
        let layout = QueueLayout::alloc(&mem, 512).unwrap();
        Rig {
            driver_q: DriverQueue::new(mem.clone(), layout.clone()),
            device_q: DeviceQueue::new(mem.clone(), layout),
            mem,
            backend,
            _mgr: mgr,
        }
    }

    /// Sends a request + optional payload bufs through the queue pair and
    /// returns the backend's response.
    fn send(rig: &mut Rig, req: &Request, extra: &[(Gpa, u32, bool)]) -> Response {
        let req_page = rig.mem.alloc_pages(1).unwrap()[0];
        let enc = req.encode();
        rig.mem.write(req_page, &enc).unwrap();
        let status_page = rig.mem.alloc_pages(1).unwrap()[0];
        let mut bufs = vec![(req_page, enc.len() as u32, false)];
        bufs.extend_from_slice(extra);
        bufs.push((status_page, 4096, true));
        rig.driver_q.add_chain(&bufs).unwrap();
        let chain = rig.device_q.pop().unwrap().unwrap();
        let resp = rig.backend.process(&rig.mem, &chain);
        let enc = resp.encode();
        rig.mem.write(status_page, &enc).unwrap();
        rig.device_q.push_used(chain.head, enc.len() as u32).unwrap();
        let back = rig.mem.with_slice(status_page, 4096, <[u8]>::to_vec).unwrap();
        let decoded = Response::decode(&back).unwrap();
        rig.mem.free_pages_back(&[req_page, status_page]).unwrap();
        assert_eq!(decoded, resp);
        resp
    }

    #[test]
    fn configure_links_a_rank_and_reports_geometry() {
        let mut r = rig();
        let resp = send(&mut r, &Request::Configure, &[]);
        assert!(resp.is_ok());
        let cfg = PimDeviceConfig::decode(&{
            let mut p = resp.payload.clone();
            p.resize(PimDeviceConfig::ENCODED_LEN, 0);
            p
        })
        .unwrap();
        assert_eq!(cfg.nr_dpus, 8);
        assert_eq!(cfg.freq_mhz, 350);
        assert!(r.backend.linked_rank().is_some());
    }

    #[test]
    fn write_then_read_roundtrip_through_the_wire() {
        let mut r = rig();
        let data = vec![0x5Au8; 6000];
        let (matrix, dl) =
            TransferMatrix::from_user_buffers(&r.mem, &[(2, 128, &data)]).unwrap();
        let (bufs, ml) = matrix.serialize(&r.mem).unwrap();
        let resp = send(&mut r, &Request::WriteRank { nr_dpus: 1 }, &bufs);
        assert!(resp.is_ok(), "{}", resp.error);
        assert!(resp.transfer_ns > 0);
        assert!(resp.deser_ns > 0);
        ml.release();
        dl.release();

        // Read it back through a ReadRank request.
        let (rmatrix, rl) = TransferMatrix::alloc_read_buffers(&r.mem, &[(2, 128, 6000)]).unwrap();
        let (rbufs, rml) = rmatrix.serialize(&r.mem).unwrap();
        let resp = send(&mut r, &Request::ReadRank { nr_dpus: 1 }, &rbufs);
        assert!(resp.is_ok(), "{}", resp.error);
        let got = TransferMatrix::gather(&r.mem, &rmatrix.entries[0]).unwrap();
        assert_eq!(got, data);
        rml.release();
        rl.release();

        assert_eq!(r.backend.counters().writes.get(), 1);
        assert_eq!(r.backend.counters().reads.get(), 1);
    }

    #[test]
    fn dpu_count_mismatch_is_rejected() {
        let mut r = rig();
        let data = vec![1u8; 64];
        let (matrix, dl) = TransferMatrix::from_user_buffers(&r.mem, &[(0, 0, &data)]).unwrap();
        let (bufs, ml) = matrix.serialize(&r.mem).unwrap();
        let resp = send(&mut r, &Request::WriteRank { nr_dpus: 2 }, &bufs);
        assert_eq!(resp.status, STATUS_BAD);
        ml.release();
        dl.release();
    }

    #[test]
    fn hardware_errors_become_error_responses() {
        let mut r = rig();
        // MRAM offset beyond the 1 MB test bank.
        let data = vec![1u8; 64];
        let (matrix, dl) =
            TransferMatrix::from_user_buffers(&r.mem, &[(0, 1 << 30, &data)]).unwrap();
        let (bufs, ml) = matrix.serialize(&r.mem).unwrap();
        let resp = send(&mut r, &Request::WriteRank { nr_dpus: 1 }, &bufs);
        assert_eq!(resp.status, STATUS_HW);
        assert!(resp.error.contains("out of bounds"));
        ml.release();
        dl.release();
    }

    #[test]
    fn release_unlinks() {
        let mut r = rig();
        send(&mut r, &Request::Configure, &[]);
        assert!(r.backend.linked_rank().is_some());
        let resp = send(&mut r, &Request::ReleaseRank, &[]);
        assert!(resp.is_ok());
        assert!(r.backend.linked_rank().is_none());
    }

    #[test]
    fn malformed_chain_is_an_error_response() {
        let mut r = rig();
        let page = r.mem.alloc_pages(1).unwrap()[0];
        r.mem.write(page, &Request::Configure.encode()).unwrap();
        r.driver_q.add_chain(&[(page, 16, false)]).unwrap();
        let chain = r.device_q.pop().unwrap().unwrap();
        let resp = r.backend.process(&r.mem, &chain);
        assert_eq!(resp.status, STATUS_BAD);
    }
}
