//! Per-DPU chunking of a transfer matrix for the backend worker pool.
//!
//! The backend spreads a `write-to-rank` / `read-from-rank` over
//! `backend_threads` OS workers (§4.2's 8-thread DPU operation pool). The
//! unit of distribution is a **DPU**, never a single entry: all entries
//! targeting one DPU stay in one chunk, in their original matrix order, so
//! no two workers ever touch the same MRAM bank and same-DPU writes keep
//! their program order. Chunks are balanced by byte count with a
//! deterministic greedy rule, so the partition is a pure function of the
//! matrix (execution order never feeds back into it).

use crate::matrix::DpuXfer;

/// One worker's share of a transfer matrix: indices into the original
/// entry slice, grouped so that a DPU's entries are contiguous and ordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Indices into the matrix's `entries`, in per-DPU original order.
    pub entry_indices: Vec<usize>,
    /// Total payload bytes in this chunk (the balancing weight).
    pub bytes: u64,
}

/// Partitions `entries` into at most `max_chunks` chunks along DPU
/// boundaries.
///
/// Guarantees (property-tested):
/// * every entry index appears in exactly one chunk;
/// * no DPU's entries are split across two chunks;
/// * within a chunk, entries for one DPU keep their original relative order;
/// * the result is deterministic for a given `(entries, max_chunks)`.
///
/// DPU groups are assigned greedily — heaviest group first onto the
/// currently lightest chunk (ties: lowest chunk index; equal-weight groups
/// keep first-appearance order) — a standard LPT balance that is stable
/// because every tie-break is total.
#[must_use]
pub fn partition_by_dpu(entries: &[DpuXfer], max_chunks: usize) -> Vec<Chunk> {
    let max_chunks = max_chunks.max(1);
    // Group entry indices per DPU, preserving first-appearance order.
    let mut order: Vec<u32> = Vec::new();
    let mut groups: std::collections::HashMap<u32, (Vec<usize>, u64)> =
        std::collections::HashMap::new();
    for (i, e) in entries.iter().enumerate() {
        let g = groups.entry(e.dpu).or_insert_with(|| {
            order.push(e.dpu);
            (Vec::new(), 0)
        });
        g.0.push(i);
        g.1 += e.len;
    }

    // LPT: heaviest DPU group first; stable sort keeps first-appearance
    // order among equal weights.
    let mut by_weight: Vec<u32> = order.clone();
    by_weight.sort_by_key(|d| std::cmp::Reverse(groups[d].1));

    let n = max_chunks.min(order.len().max(1));
    let mut chunks: Vec<Chunk> =
        (0..n).map(|_| Chunk { entry_indices: Vec::new(), bytes: 0 }).collect();
    for dpu in by_weight {
        let (indices, bytes) = groups.remove(&dpu).expect("grouped above");
        let lightest = chunks
            .iter()
            .enumerate()
            .min_by_key(|(i, c)| (c.bytes, *i))
            .map(|(i, _)| i)
            .expect("n >= 1");
        chunks[lightest].entry_indices.extend(indices);
        chunks[lightest].bytes += bytes;
    }
    chunks.retain(|c| !c.entry_indices.is_empty());
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DpuXfer;

    fn xfer(dpu: u32, len: u64) -> DpuXfer {
        DpuXfer { dpu, mram_offset: 0, len, pages: Vec::new() }
    }

    #[test]
    fn empty_matrix_partitions_to_nothing() {
        assert!(partition_by_dpu(&[], 8).is_empty());
    }

    #[test]
    fn single_dpu_stays_in_one_chunk_in_order() {
        let entries = vec![xfer(3, 10), xfer(3, 20), xfer(3, 30)];
        let chunks = partition_by_dpu(&entries, 8);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].entry_indices, vec![0, 1, 2]);
        assert_eq!(chunks[0].bytes, 60);
    }

    #[test]
    fn one_chunk_takes_everything() {
        let entries: Vec<DpuXfer> = (0..8).map(|d| xfer(d, 100)).collect();
        let chunks = partition_by_dpu(&entries, 1);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].entry_indices.len(), 8);
    }

    #[test]
    fn balances_unequal_dpus() {
        // One heavy DPU and seven light ones over two chunks: the heavy one
        // should sit alone-ish, not stack with everything else.
        let mut entries = vec![xfer(0, 700)];
        entries.extend((1..8).map(|d| xfer(d, 100)));
        let chunks = partition_by_dpu(&entries, 2);
        assert_eq!(chunks.len(), 2);
        let max = chunks.iter().map(|c| c.bytes).max().unwrap();
        assert_eq!(max, 700, "heavy DPU alone in its chunk");
    }

    #[test]
    fn deterministic_for_same_input() {
        let entries: Vec<DpuXfer> =
            (0..32).map(|i| xfer(i % 11, u64::from(i % 7) * 64 + 8)).collect();
        let a = partition_by_dpu(&entries, 8);
        let b = partition_by_dpu(&entries, 8);
        assert_eq!(a, b);
    }

    proptest::proptest! {
        /// Every entry index lands in exactly one chunk, and no DPU's
        /// entries are split across two chunks.
        #[test]
        fn chunks_cover_entries_exactly_once_and_never_split_a_dpu(
            raw in proptest::collection::vec((0u32..16, 1u64..10_000), 0..64),
            max_chunks in 1usize..12,
        ) {
            let entries: Vec<DpuXfer> =
                raw.iter().map(|(d, l)| xfer(*d, *l)).collect();
            let chunks = partition_by_dpu(&entries, max_chunks);

            // Exactly-once coverage.
            let mut seen = vec![0u32; entries.len()];
            for c in &chunks {
                for &i in &c.entry_indices {
                    proptest::prop_assert!(i < entries.len());
                    seen[i] += 1;
                }
            }
            proptest::prop_assert!(seen.iter().all(|&n| n == 1));

            // A DPU appears in at most one chunk, and its entries keep
            // their original relative order within that chunk.
            let mut dpu_chunk: std::collections::HashMap<u32, usize> =
                std::collections::HashMap::new();
            for (ci, c) in chunks.iter().enumerate() {
                proptest::prop_assert_eq!(
                    c.bytes,
                    c.entry_indices.iter().map(|&i| entries[i].len).sum::<u64>()
                );
                let mut last_per_dpu: std::collections::HashMap<u32, usize> =
                    std::collections::HashMap::new();
                for &i in &c.entry_indices {
                    let d = entries[i].dpu;
                    if let Some(&owner) = dpu_chunk.get(&d) {
                        proptest::prop_assert!(owner == ci, "DPU split across chunks");
                    } else {
                        dpu_chunk.insert(d, ci);
                    }
                    if let Some(&prev) = last_per_dpu.get(&d) {
                        proptest::prop_assert!(prev < i, "same-DPU order broken");
                    }
                    last_per_dpu.insert(d, i);
                }
            }
            proptest::prop_assert!(chunks.len() <= max_chunks);

            // Pure function of the input.
            proptest::prop_assert_eq!(chunks, partition_by_dpu(&entries, max_chunks));
        }
    }
}
