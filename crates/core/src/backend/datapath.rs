//! The backend data path: byte interleaving in its two implementations,
//! plus the zero-copy per-entry transfer functions.
//!
//! §4.2 ("AVX512 and C enhancements in Firecracker"): the hot loop of rank
//! transfers is the byte interleave/deinterleave needed by the DDR layout.
//! The authors found Rust's AVX-512 support unstable and rewrote the loop
//! in C, for up to 343% improvement. We model the choice as
//! [`DataPath::Scalar`] (per-byte loop, the `vPIM-rust` path) vs
//! [`DataPath::Vectorized`] (word-wise swizzle, the `vPIM-C` path); both
//! are real implementations whose wall-clock gap is measured by criterion,
//! and whose modeled gap comes from [`CostModel::interleave`].
//!
//! [`write_entry`] / [`read_entry`] are the per-DPU units the backend's
//! worker pool executes. They form the zero-copy, zero-allocation data
//! path: payload bytes flow guest RAM → pooled scratch (or borrowed view)
//! → in-place interleave → MRAM and back without a single fresh heap
//! allocation in steady state (see DESIGN.md, "Zero-copy data path").

use pim_virtio::{GuestMemory, SegCache};
use simkit::cost::DataPath;
use simkit::{BytePool, CostModel, FaultPlane, VirtualNanos};
use upmem_sim::interleave;
use upmem_sim::Rank;

use crate::error::VpimError;
use crate::matrix::{DpuXfer, TransferMatrix};

/// Fault point for a torn per-DPU chunk write ([`write_entry`] only): the
/// entry's first half lands in MRAM, then the op fails typed. Keyed by the
/// entry's index in its request, so both dispatch modes and any worker
/// interleaving observe the identical schedule.
pub const CHUNK_TORN_WRITE_POINT: &str = "backend.chunk.torn_write";

/// Fault point for a stalled chunk worker ([`write_entry`] and
/// [`read_entry`]): the worker sleeps ~2 ms of *wall-clock* time before
/// proceeding normally. Virtual-time reports are untouched — the stall
/// models a slow host thread, not a slower device.
pub const CHUNK_STALL_POINT: &str = "backend.chunk.stall";

/// Consults [`CHUNK_STALL_POINT`] for entry `key`: a hit blocks the worker
/// for ~2 ms of wall-clock time, then the op proceeds normally.
fn maybe_stall(plane: Option<&FaultPlane>, key: u64) {
    if let Some(plane) = plane {
        if plane.hit_keyed(CHUNK_STALL_POINT, key) {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
}

/// Runs the fused interleave→deinterleave pair on `data` **in place** using
/// the selected implementation. The result is the identity transform (what
/// the host writes is what the DDR bus carries and what lands in MRAM), but
/// the real loops execute — two separate in-place passes, so the compiler
/// cannot elide the identity — and the two paths differ in wall-clock cost
/// exactly like the paper's Rust vs C implementations. Needs at most one
/// 64-byte stack line of scratch, never a heap temporary.
pub fn transform_fused(data: &mut [u8], path: DataPath) {
    if data.is_empty() {
        return;
    }
    match path {
        DataPath::Scalar => {
            interleave::interleave_inplace_scalar(data);
            interleave::deinterleave_inplace_scalar(data);
        }
        DataPath::Vectorized => {
            interleave::interleave_inplace(data);
            interleave::deinterleave_inplace(data);
        }
    }
}

/// Compatibility name for [`transform_fused`] (the pre-fusion API took the
/// same arguments but staged through full-size heap temporaries).
pub fn transform_roundtrip(data: &mut [u8], path: DataPath) {
    transform_fused(data, path);
}

/// Modeled duration of interleaving `bytes` once on the given path.
#[must_use]
pub fn interleave_cost(cm: &CostModel, bytes: u64, path: DataPath) -> VirtualNanos {
    cm.interleave(bytes, path)
}

/// Moves one matrix entry guest→MRAM (the per-DPU unit of
/// `write-to-rank`), returning the bytes moved.
///
/// With interleave verification on, the payload is gathered into a pooled
/// scratch buffer, swizzled in place, and handed to the rank's in-place
/// writer — zero heap allocations once the pool is warm. With verification
/// off, each guest page is a borrowed [`GuestMemory::with_slice`] view
/// written straight into MRAM — no staging buffer at all. Either way the
/// per-request [`SegCache`] elides repeated page bounds checks.
///
/// # Errors
///
/// Out-of-bounds guest access, invalid DPU, or MRAM range errors.
#[allow(clippy::too_many_arguments)]
pub fn write_entry(
    mem: &GuestMemory,
    rank: &Rank,
    entry: &DpuXfer,
    verify: bool,
    path: DataPath,
    pool: &BytePool,
    cache: &mut SegCache,
    plane: Option<&FaultPlane>,
    key: u64,
) -> Result<u64, VpimError> {
    use pim_virtio::memory::PAGE_SIZE;
    maybe_stall(plane, key);
    if let Some(plane) = plane {
        if plane.hit_keyed(CHUNK_TORN_WRITE_POINT, key) {
            // Tear: the entry's first half lands in MRAM, then the op
            // fails typed. A recovered retry must overwrite the torn range
            // idempotently (guaranteed: entries address disjoint ranges
            // and the retry rewrites the same offsets).
            let mut data = pool.take(entry.len as usize);
            TransferMatrix::gather_into(mem, entry, &mut data, cache)?;
            let torn = (data.len() / 2) & !7;
            if torn > 0 {
                rank.write_dpu(entry.dpu as usize, entry.mram_offset, &data[..torn])?;
            }
            return Err(VpimError::Injected { point: CHUNK_TORN_WRITE_POINT });
        }
    }
    if !verify {
        let dpu = entry.dpu as usize;
        for (i, page) in entry.pages.iter().enumerate() {
            let lo = i as u64 * PAGE_SIZE;
            let hi = ((i as u64 + 1) * PAGE_SIZE).min(entry.len);
            if lo >= hi {
                break;
            }
            mem.with_slice_cached(cache, *page, hi - lo, |s| {
                rank.write_dpu(dpu, entry.mram_offset + lo, s)
            })??;
        }
        return Ok(entry.len);
    }
    let mut data = pool.take(entry.len as usize);
    TransferMatrix::gather_into(mem, entry, &mut data, cache)?;
    transform_fused(&mut data, path);
    rank.write_dpu_inplace(entry.dpu as usize, entry.mram_offset, &mut data)?;
    Ok(entry.len)
}

/// Moves one matrix entry MRAM→guest (the per-DPU unit of
/// `read-from-rank`), returning the bytes moved. Mirror of
/// [`write_entry`]: pooled scratch + in-place swizzle when verifying,
/// borrowed mutable page views when not.
///
/// # Errors
///
/// Out-of-bounds guest access, invalid DPU, or MRAM range errors.
#[allow(clippy::too_many_arguments)]
pub fn read_entry(
    mem: &GuestMemory,
    rank: &Rank,
    entry: &DpuXfer,
    verify: bool,
    path: DataPath,
    pool: &BytePool,
    cache: &mut SegCache,
    plane: Option<&FaultPlane>,
    key: u64,
) -> Result<u64, VpimError> {
    use pim_virtio::memory::PAGE_SIZE;
    maybe_stall(plane, key);
    if !verify {
        let dpu = entry.dpu as usize;
        for (i, page) in entry.pages.iter().enumerate() {
            let lo = i as u64 * PAGE_SIZE;
            let hi = ((i as u64 + 1) * PAGE_SIZE).min(entry.len);
            if lo >= hi {
                break;
            }
            mem.with_slice_mut_cached(cache, *page, hi - lo, |s| {
                rank.read_dpu(dpu, entry.mram_offset + lo, s)
            })??;
        }
        return Ok(entry.len);
    }
    let mut data = pool.take(entry.len as usize);
    rank.read_dpu(entry.dpu as usize, entry.mram_offset, &mut data)?;
    transform_fused(&mut data, path);
    TransferMatrix::scatter_from(mem, entry, &data, cache)?;
    Ok(entry.len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn both_paths_are_identity() {
        for path in DataPath::ALL {
            let original: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
            let mut data = original.clone();
            transform_roundtrip(&mut data, path);
            assert_eq!(data, original, "{path:?}");
        }
    }

    #[test]
    fn empty_buffer_is_fine() {
        let mut data: Vec<u8> = Vec::new();
        transform_fused(&mut data, DataPath::Scalar);
        transform_fused(&mut data, DataPath::Vectorized);
    }

    #[test]
    fn modeled_costs_mirror_paper_gap() {
        let cm = CostModel::default();
        let scalar = interleave_cost(&cm, 1 << 20, DataPath::Scalar);
        let vector = interleave_cost(&cm, 1 << 20, DataPath::Vectorized);
        // The paper reports up to 343% improvement from the C rewrite; our
        // modeled gap is of that order (scalar several times slower).
        let ratio = scalar.ratio(vector);
        assert!(ratio > 3.0, "ratio {ratio}");
    }

    proptest! {
        /// transform_fused ≡ interleave_scalar ∘ deinterleave_scalar for
        /// arbitrary lengths, including non-multiple-of-64 tails. (Both
        /// compose to the identity; the fused path must agree byte for
        /// byte with the composed two-buffer reference.)
        #[test]
        fn fused_matches_composed_scalar_pair(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let mut composed = vec![0u8; data.len()];
            interleave::interleave_scalar(&data, &mut composed);
            let mut composed_out = vec![0u8; data.len()];
            interleave::deinterleave_scalar(&composed, &mut composed_out);

            for path in DataPath::ALL {
                let mut fused = data.clone();
                transform_fused(&mut fused, path);
                prop_assert_eq!(&fused, &composed_out);
            }
        }
    }
}
