//! The backend data path: byte interleaving in its two implementations.
//!
//! §4.2 ("AVX512 and C enhancements in Firecracker"): the hot loop of rank
//! transfers is the byte interleave/deinterleave needed by the DDR layout.
//! The authors found Rust's AVX-512 support unstable and rewrote the loop
//! in C, for up to 343% improvement. We model the choice as
//! [`DataPath::Scalar`] (per-byte loop, the `vPIM-rust` path) vs
//! [`DataPath::Vectorized`] (word-wise swizzle, the `vPIM-C` path); both
//! are real implementations whose wall-clock gap is measured by criterion,
//! and whose modeled gap comes from [`CostModel::interleave`].

use simkit::cost::DataPath;
use simkit::{CostModel, VirtualNanos};
use upmem_sim::interleave;

/// Runs the interleave→deinterleave pair on `data` in place using the
/// selected implementation. The result is the identity transform (what the
/// host writes is what the DDR bus carries and what lands in MRAM), but the
/// real loop executes, so the two paths differ in wall-clock cost exactly
/// like the paper's Rust vs C implementations.
pub fn transform_roundtrip(data: &mut [u8], path: DataPath) {
    if data.is_empty() {
        return;
    }
    let mut wire = vec![0u8; data.len()];
    match path {
        DataPath::Scalar => {
            interleave::interleave_scalar(data, &mut wire);
            let mut back = vec![0u8; data.len()];
            interleave::deinterleave_scalar(&wire, &mut back);
            data.copy_from_slice(&back);
        }
        DataPath::Vectorized => {
            interleave::interleave_fast(data, &mut wire);
            interleave::deinterleave_fast(&wire, data);
        }
    }
}

/// Modeled duration of interleaving `bytes` once on the given path.
#[must_use]
pub fn interleave_cost(cm: &CostModel, bytes: u64, path: DataPath) -> VirtualNanos {
    cm.interleave(bytes, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paths_are_identity() {
        for path in DataPath::ALL {
            let original: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
            let mut data = original.clone();
            transform_roundtrip(&mut data, path);
            assert_eq!(data, original, "{path:?}");
        }
    }

    #[test]
    fn empty_buffer_is_fine() {
        let mut data: Vec<u8> = Vec::new();
        transform_roundtrip(&mut data, DataPath::Scalar);
        transform_roundtrip(&mut data, DataPath::Vectorized);
    }

    #[test]
    fn modeled_costs_mirror_paper_gap() {
        let cm = CostModel::default();
        let scalar = interleave_cost(&cm, 1 << 20, DataPath::Scalar);
        let vector = interleave_cost(&cm, 1 << 20, DataPath::Vectorized);
        // The paper reports up to 343% improvement from the C rewrite; our
        // modeled gap is of that order (scalar several times slower).
        let ratio = scalar.ratio(vector);
        assert!(ratio > 3.0, "ratio {ratio}");
    }
}
