//! `vpim::pheap` — a persistent guest heap over rank MRAM.
//!
//! vPIM virtualizes rank MRAM, but every workload so far treats it as
//! scratch. This module turns it into **durable** memory, porting the
//! vNV-Heap idea (an ownership-based virtually non-volatile heap) to a
//! guest-side library over the vPIM SDK:
//!
//! - Objects live at fixed MRAM home locations handed out by a
//!   bump-then-free-list allocator ([`alloc`]).
//! - A bounded guest-RAM **resident window** ([`object`]) holds working
//!   copies: at most `resident_budget` bytes at once, dirty bytes never
//!   evicted (home locations hold only committed data), clean copies
//!   evicted LRU. [`Pheap::pin`]/[`Pheap::unpin`] give vNV-Heap-style
//!   ownership: pinned objects cannot be evicted or freed.
//! - [`Pheap::persist`] is the explicit durability point: dirty objects
//!   and the root table are appended to a reserved write-ahead-log
//!   region (intent + data, then a checksummed commit record written
//!   after a [`Frontend::persist_barrier`]), then applied to their home
//!   locations ([`wal`]). A write that would push the dirty total past
//!   the budget triggers the same persist automatically.
//! - [`Pheap::recover`] rebuilds a heap from MRAM alone ([`recover`]):
//!   a committed-but-unapplied transaction is replayed (idempotently);
//!   torn tails — a tear mid-append ([`PHEAP_WAL_TORN_POINT`]) or a
//!   dropped commit record ([`PHEAP_PERSIST_DROP_POINT`]) — are
//!   discarded, landing exactly on the last committed persist point.
//!
//! Both fault sites consult the system [`FaultPlane`] **keyed by the
//! transaction sequence number**, so fault schedules are pure in
//! `(seed, site, seq)` and replay bit-identically across dispatch
//! modes. `pheap.*` telemetry is registered lazily — constructing the
//! first heap registers it; an unused system publishes none.

mod alloc;
mod object;
pub(crate) mod recover;
pub(crate) mod wal;

use std::collections::BTreeMap;
use std::sync::Arc;

use simkit::telemetry::{Counter, Gauge, MetricsRegistry};
use simkit::FaultPlane;

use crate::error::VpimError;
use crate::frontend::Frontend;
use crate::system::VpimSystem;

use alloc::PAllocator;
use object::{ObjectMeta, ResidentSet};
pub use recover::RecoverReport;
use wal::{encode_root, encode_txn, Geometry, Superblock, WalRecord, ROOT_RECORD_ID};

/// Fault point: a WAL append tears partway ([`crate::config::FaultSite::PheapWalTorn`]).
pub const PHEAP_WAL_TORN_POINT: &str = "pheap.wal.torn";
/// Fault point: the commit record is dropped before MRAM
/// ([`crate::config::FaultSite::PheapPersistDrop`]).
pub const PHEAP_PERSIST_DROP_POINT: &str = "pheap.persist.drop";

/// Placement and policy for one heap instance.
///
/// The MRAM footprint is `[base, base + 80 + wal + root + data)` on one
/// DPU; region sizes must be multiples of 8. `resident_budget` bounds
/// the guest-RAM window (and therefore the largest single object).
#[derive(Debug, Clone)]
pub struct PheapOptions {
    dpu: u32,
    base: u64,
    wal_size: u64,
    root_size: u64,
    data_size: u64,
    resident_budget: u64,
    plane: Option<Arc<FaultPlane>>,
    registry: Option<MetricsRegistry>,
}

impl Default for PheapOptions {
    fn default() -> Self {
        PheapOptions {
            dpu: 0,
            base: 1 << 20,
            wal_size: 64 << 10,
            root_size: 32 << 10,
            data_size: 256 << 10,
            resident_budget: 64 << 10,
            plane: None,
            registry: None,
        }
    }
}

impl PheapOptions {
    /// The defaults: DPU 0, 1 MiB base, 64 KiB WAL, 32 KiB root table,
    /// 256 KiB data region, 64 KiB resident budget, no fault plane.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The DPU whose MRAM bank holds the heap.
    #[must_use]
    pub fn dpu(mut self, dpu: u32) -> Self {
        self.dpu = dpu;
        self
    }

    /// Absolute MRAM offset of the heap's superblock.
    #[must_use]
    pub fn base(mut self, base: u64) -> Self {
        self.base = base;
        self
    }

    /// WAL region size in bytes (bounds one transaction: all dirty
    /// objects plus the root table plus framing).
    #[must_use]
    pub fn wal_size(mut self, bytes: u64) -> Self {
        self.wal_size = bytes;
        self
    }

    /// Root-table region size in bytes (bounds the object count).
    #[must_use]
    pub fn root_size(mut self, bytes: u64) -> Self {
        self.root_size = bytes;
        self
    }

    /// Data region size in bytes (total object capacity).
    #[must_use]
    pub fn data_size(mut self, bytes: u64) -> Self {
        self.data_size = bytes;
        self
    }

    /// Resident-window budget in bytes.
    #[must_use]
    pub fn resident_budget(mut self, bytes: u64) -> Self {
        self.resident_budget = bytes;
        self
    }

    /// Wires the heap into `sys`'s fault plane and metrics registry —
    /// the usual way to construct options for a launched VM.
    #[must_use]
    pub fn attach(mut self, sys: &VpimSystem) -> Self {
        self.plane = sys.fault_plane().cloned();
        self.registry = Some(sys.registry().clone());
        self
    }

    /// An explicit fault plane (tests that build their own).
    #[must_use]
    pub fn fault_plane(mut self, plane: Arc<FaultPlane>) -> Self {
        self.plane = Some(plane);
        self
    }

    /// An explicit metrics registry for the `pheap.*` instruments.
    #[must_use]
    pub fn registry(mut self, registry: &MetricsRegistry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    pub(crate) fn resident_budget_bytes(&self) -> u64 {
        self.resident_budget
    }

    pub(crate) fn dpu_index(&self) -> u32 {
        self.dpu
    }

    pub(crate) fn base_off(&self) -> u64 {
        self.base
    }

    pub(crate) fn take_plane(&self) -> Option<Arc<FaultPlane>> {
        self.plane.clone()
    }

    pub(crate) fn make_metrics(&self) -> PheapMetrics {
        let private;
        let reg = match &self.registry {
            Some(r) => r,
            None => {
                private = MetricsRegistry::new();
                &private
            }
        };
        PheapMetrics::from_registry(reg)
    }
}

/// The `pheap.*` instruments (registered at heap construction only).
#[derive(Debug, Clone)]
pub(crate) struct PheapMetrics {
    allocs: Counter,
    frees: Counter,
    writes: Counter,
    reads: Counter,
    persists: Counter,
    persists_auto: Counter,
    persist_failures: Counter,
    wal_bytes: Counter,
    pub(crate) recoveries: Counter,
    pub(crate) recover_replayed: Counter,
    pub(crate) recover_discarded: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    evictions: Counter,
    resident_bytes: Gauge,
    dirty_bytes: Gauge,
    objects: Gauge,
}

impl PheapMetrics {
    fn from_registry(r: &MetricsRegistry) -> Self {
        PheapMetrics {
            allocs: r.counter("pheap.allocs"),
            frees: r.counter("pheap.frees"),
            writes: r.counter("pheap.writes"),
            reads: r.counter("pheap.reads"),
            persists: r.counter("pheap.persists"),
            persists_auto: r.counter("pheap.persists.auto"),
            persist_failures: r.counter("pheap.persist.failures"),
            wal_bytes: r.counter("pheap.wal.bytes"),
            recoveries: r.counter("pheap.recoveries"),
            recover_replayed: r.counter("pheap.recover.replayed"),
            recover_discarded: r.counter("pheap.recover.discarded"),
            cache_hits: r.counter("pheap.cache.hits"),
            cache_misses: r.counter("pheap.cache.misses"),
            evictions: r.counter("pheap.cache.evictions"),
            resident_bytes: r.gauge("pheap.resident.bytes"),
            dirty_bytes: r.gauge("pheap.dirty.bytes"),
            objects: r.gauge("pheap.objects"),
        }
    }
}

/// What one [`Pheap::persist`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistReport {
    /// The transaction sequence number (unchanged on a no-op).
    pub seq: u64,
    /// Records written (dirty objects + 1 root table; 0 on a no-op).
    pub records: u64,
    /// WAL bytes written, framing included.
    pub wal_bytes: u64,
    /// True when nothing was dirty and no metadata changed.
    pub noop: bool,
}

/// A persistent heap bound to one launched VM's device frontend. See
/// the [module docs](self) for the durability model.
#[derive(Debug)]
pub struct Pheap {
    front: Arc<Frontend>,
    dpu: u32,
    geom: Geometry,
    alloc: PAllocator,
    objects: BTreeMap<u64, ObjectMeta>,
    resident: ResidentSet,
    next_id: u64,
    next_seq: u64,
    applied_seq: u64,
    /// Allocator/directory changed since the last persist (alloc/free
    /// without a dirty object still needs a transaction).
    meta_dirty: bool,
    plane: Option<Arc<FaultPlane>>,
    metrics: PheapMetrics,
    /// Virtual-time cost of MRAM traffic issued since the last drain.
    cost: simkit::VirtualNanos,
}

impl Pheap {
    /// Formats a fresh, empty heap at `opts.base` and persists its
    /// superblock and root table.
    ///
    /// # Errors
    ///
    /// [`VpimError::BadRequest`] on bad geometry (unaligned or
    /// oversized regions, DPU out of range); transport failures.
    pub fn format(front: Arc<Frontend>, opts: PheapOptions) -> Result<Pheap, VpimError> {
        let geom =
            Geometry::from_base(opts.base, opts.wal_size, opts.root_size, opts.data_size);
        if opts.base % 8 != 0
            || opts.wal_size % 8 != 0
            || opts.root_size % 8 != 0
            || opts.data_size % 8 != 0
            || opts.wal_size < 256
            || opts.root_size < 64
            || opts.data_size == 0
        {
            return Err(bad("pheap: regions must be 8-byte multiples (wal >= 256)"));
        }
        if opts.resident_budget == 0 {
            return Err(bad("pheap: resident budget must be positive"));
        }
        if opts.dpu >= front.nr_dpus() {
            return Err(bad(format!("pheap: dpu {} out of range", opts.dpu)));
        }
        if geom.end() > front.mram_size() {
            return Err(bad(format!(
                "pheap: heap end {} beyond MRAM size {}",
                geom.end(),
                front.mram_size()
            )));
        }
        let metrics = opts.make_metrics();
        let mut heap = Pheap {
            front,
            dpu: opts.dpu,
            geom,
            alloc: PAllocator::new(geom.data_off, geom.data_size),
            objects: BTreeMap::new(),
            resident: ResidentSet::new(opts.resident_budget),
            next_id: 1,
            next_seq: 1,
            applied_seq: 0,
            meta_dirty: false,
            plane: opts.take_plane(),
            metrics,
            cost: simkit::VirtualNanos::ZERO,
        };
        // Erase any stale WAL header from a previous instance, lay down
        // the empty root table, then the superblock.
        heap.mram_write(geom.wal_off, &[0u8; wal::TXN_HEADER_LEN as usize])?;
        heap.mram_write(geom.root_off, &encode_root(1, &heap.alloc, &heap.objects))?;
        heap.mram_write(
            geom.sb_off,
            &Superblock { geom, applied_seq: 0 }.encode(),
        )?;
        heap.barrier()?;
        heap.update_gauges();
        Ok(heap)
    }

    /// Rebuilds a heap from MRAM alone: replays a committed-but-unapplied
    /// WAL transaction, discards torn tails, and reloads the directory
    /// and allocator from the root table. Idempotent — recovering twice
    /// is identical to recovering once.
    ///
    /// # Errors
    ///
    /// [`VpimError::ProtocolViolation`] when no valid heap exists at
    /// `opts.base`; transport failures.
    pub fn recover(
        front: Arc<Frontend>,
        opts: PheapOptions,
    ) -> Result<(Pheap, RecoverReport), VpimError> {
        recover::run(front, opts)
    }

    /// Allocates a zero-filled object of `len` bytes, returning its id.
    /// The object is born dirty (it exists only in the resident window
    /// until the next persist).
    ///
    /// # Errors
    ///
    /// [`VpimError::BadRequest`] on zero/oversized length, an exhausted
    /// data region, or a resident window filled by pinned objects.
    pub fn alloc(&mut self, len: u64) -> Result<u64, VpimError> {
        if len == 0 {
            return Err(bad("pheap: zero-length object"));
        }
        if len > self.resident.budget() {
            return Err(bad(format!(
                "pheap: object of {len} bytes exceeds the {}-byte resident budget",
                self.resident.budget()
            )));
        }
        if self.resident.dirty_bytes() + len > self.resident.budget() {
            self.persist_internal(true)?;
        }
        self.make_room(len)?;
        let off = self
            .alloc
            .alloc(len)
            .ok_or_else(|| bad(format!("pheap: data region exhausted allocating {len} bytes")))?;
        let id = self.next_id;
        self.next_id += 1;
        self.objects.insert(id, ObjectMeta { off, len });
        self.resident.insert(id, vec![0; len as usize], true);
        self.meta_dirty = true;
        self.metrics.allocs.inc();
        self.update_gauges();
        Ok(id)
    }

    /// Frees an object. Uncommitted: the home location is reusable at
    /// once, but the free itself only becomes durable at the next
    /// persist — a crash before it resurrects the object.
    ///
    /// # Errors
    ///
    /// [`VpimError::BadRequest`] on an unknown id or a pinned object.
    pub fn free(&mut self, id: u64) -> Result<(), VpimError> {
        let meta = *self.objects.get(&id).ok_or_else(|| bad_id(id))?;
        if self.resident.pins(id) > 0 {
            return Err(bad(format!("pheap: object {id} is pinned")));
        }
        self.objects.remove(&id);
        self.resident.remove(id);
        self.alloc.free(meta.off, meta.len);
        self.meta_dirty = true;
        self.metrics.frees.inc();
        self.update_gauges();
        Ok(())
    }

    /// Writes `data` at byte `off` inside object `id` (guest-RAM only;
    /// durable at the next persist). Triggers an automatic persist
    /// first when marking the object dirty would exceed the budget.
    ///
    /// # Errors
    ///
    /// [`VpimError::BadRequest`] on unknown id / out-of-range span;
    /// persist errors (including injected faults) from the auto path.
    pub fn write(&mut self, id: u64, off: u64, data: &[u8]) -> Result<(), VpimError> {
        let meta = *self.objects.get(&id).ok_or_else(|| bad_id(id))?;
        if off + data.len() as u64 > meta.len {
            return Err(bad(format!(
                "pheap: write of {} bytes at {off} overruns object {id} ({} bytes)",
                data.len(),
                meta.len
            )));
        }
        self.metrics.writes.inc();
        if !self.resident.is_dirty(id) {
            if self.resident.dirty_bytes() + meta.len > self.resident.budget() {
                self.persist_internal(true)?;
            }
            self.ensure_resident(id, meta)?;
            self.resident.mark_dirty(id);
        }
        let buf = self.resident.data_mut(id).expect("resident after ensure");
        buf[off as usize..off as usize + data.len()].copy_from_slice(data);
        self.update_gauges();
        Ok(())
    }

    /// Reads `len` bytes at `off` from object `id`: dirty resident bytes
    /// when present (read-your-writes), MRAM home otherwise, caching the
    /// object when the window has room.
    ///
    /// # Errors
    ///
    /// [`VpimError::BadRequest`] on unknown id / out-of-range span;
    /// transport failures.
    pub fn read(&mut self, id: u64, off: u64, len: u64) -> Result<Vec<u8>, VpimError> {
        let meta = *self.objects.get(&id).ok_or_else(|| bad_id(id))?;
        if off + len > meta.len {
            return Err(bad(format!(
                "pheap: read of {len} bytes at {off} overruns object {id} ({} bytes)",
                meta.len
            )));
        }
        self.metrics.reads.inc();
        if let Some(bytes) = self.resident.touch(id) {
            self.metrics.cache_hits.inc();
            return Ok(bytes[off as usize..(off + len) as usize].to_vec());
        }
        self.metrics.cache_misses.inc();
        if self.try_make_room(meta.len) {
            let data = self.mram_read(meta.off, meta.len)?;
            let out = data[off as usize..(off + len) as usize].to_vec();
            self.resident.insert(id, data, false);
            self.update_gauges();
            return Ok(out);
        }
        // Window full of pins/dirty: serve directly, uncached.
        self.mram_read(meta.off + off, len)
    }

    /// Pins an object into the resident window (vNV-Heap ownership): it
    /// cannot be evicted or freed until every pin is dropped.
    ///
    /// # Errors
    ///
    /// [`VpimError::BadRequest`] on unknown id or a window too full of
    /// pinned/dirty objects to load it.
    pub fn pin(&mut self, id: u64) -> Result<(), VpimError> {
        let meta = *self.objects.get(&id).ok_or_else(|| bad_id(id))?;
        self.ensure_resident(id, meta)?;
        self.resident.pin(id);
        self.update_gauges();
        Ok(())
    }

    /// Drops one pin.
    ///
    /// # Errors
    ///
    /// [`VpimError::BadRequest`] when the object is not pinned.
    pub fn unpin(&mut self, id: u64) -> Result<(), VpimError> {
        if self.resident.pins(id) == 0 {
            return Err(bad(format!("pheap: object {id} is not pinned")));
        }
        self.resident.unpin(id);
        Ok(())
    }

    /// The explicit durability point: appends every dirty object plus
    /// the root table to the WAL, commits (checksummed commit record
    /// behind a durability barrier), applies the records to their home
    /// locations, and bumps the superblock. A no-op when nothing
    /// changed since the last persist.
    ///
    /// # Errors
    ///
    /// [`VpimError::Injected`] when [`PHEAP_WAL_TORN_POINT`] or
    /// [`PHEAP_PERSIST_DROP_POINT`] fires — the transaction is **not**
    /// committed, working state is untouched, and retrying persists
    /// under the next sequence number. [`VpimError::BadRequest`] when
    /// the transaction overflows the WAL region; transport failures.
    pub fn persist(&mut self) -> Result<PersistReport, VpimError> {
        self.persist_internal(false)
    }

    fn persist_internal(&mut self, auto_persist: bool) -> Result<PersistReport, VpimError> {
        let dirty = self.resident.dirty_ids();
        if dirty.is_empty() && !self.meta_dirty {
            return Ok(PersistReport {
                seq: self.applied_seq,
                records: 0,
                wal_bytes: 0,
                noop: true,
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;

        let mut records = Vec::with_capacity(dirty.len() + 1);
        for &id in &dirty {
            let meta = self.objects[&id];
            let payload = self.resident.touch(id).expect("dirty objects are resident").to_vec();
            records.push(WalRecord { id, home_off: meta.off, payload });
        }
        let root = encode_root(self.next_id, &self.alloc, &self.objects);
        if root.len() as u64 > self.geom.root_size {
            return Err(bad(format!(
                "pheap: root table of {} bytes overflows the {}-byte root region",
                root.len(),
                self.geom.root_size
            )));
        }
        records.push(WalRecord {
            id: ROOT_RECORD_ID,
            home_off: self.geom.root_off,
            payload: root,
        });
        let (body, commit) = encode_txn(seq, &records);
        let total = (body.len() + commit.len()) as u64;
        if total > self.geom.wal_size {
            return Err(bad(format!(
                "pheap: transaction of {total} bytes overflows the {}-byte WAL",
                self.geom.wal_size
            )));
        }

        // Intent + data pages. A torn append writes a strict prefix of
        // the body (cut derived from seq, so both dispatch modes tear
        // identically) and fails before the commit record can exist.
        if self.site_fires(PHEAP_WAL_TORN_POINT, seq - 1) {
            let cut = 8 + (splitmix(seq) % (body.len() as u64 - 8)) as usize;
            self.mram_write(self.geom.wal_off, &body[..cut])?;
            self.barrier()?;
            self.metrics.persist_failures.inc();
            return Err(VpimError::Injected { point: PHEAP_WAL_TORN_POINT });
        }
        self.mram_write(self.geom.wal_off, &body)?;
        self.barrier()?;

        // Commit record — the durability point. A dropped commit leaves
        // a fully-written body that recovery must still discard.
        if self.site_fires(PHEAP_PERSIST_DROP_POINT, seq - 1) {
            self.metrics.persist_failures.inc();
            return Err(VpimError::Injected { point: PHEAP_PERSIST_DROP_POINT });
        }
        self.mram_write(self.geom.wal_off + body.len() as u64, &commit)?;
        self.barrier()?;

        // Apply to home locations, then advance the superblock. A crash
        // anywhere in here is repaired by recovery replaying the
        // committed transaction (idempotent copies).
        for r in &records {
            self.mram_write(r.home_off, &r.payload)?;
        }
        self.mram_write(
            self.geom.sb_off,
            &Superblock { geom: self.geom, applied_seq: seq }.encode(),
        )?;
        self.barrier()?;

        self.applied_seq = seq;
        self.resident.clean_all();
        self.meta_dirty = false;
        self.metrics.persists.inc();
        if auto_persist {
            self.metrics.persists_auto.inc();
        }
        self.metrics.wal_bytes.add(total);
        self.update_gauges();
        Ok(PersistReport { seq, records: records.len() as u64, wal_bytes: total, noop: false })
    }

    /// Virtual-time cost of all MRAM traffic (writes, reads, barriers)
    /// this heap issued since construction or the last drain. Lets load
    /// harness ops and benches charge heap work to a session's service
    /// time.
    pub fn drain_cost(&mut self) -> simkit::VirtualNanos {
        std::mem::replace(&mut self.cost, simkit::VirtualNanos::ZERO)
    }

    /// Live object ids, ascending.
    #[must_use]
    pub fn ids(&self) -> Vec<u64> {
        self.objects.keys().copied().collect()
    }

    /// An object's length, or `None` for an unknown id.
    #[must_use]
    pub fn len_of(&self, id: u64) -> Option<u64> {
        self.objects.get(&id).map(|m| m.len)
    }

    /// Live object count.
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Sequence number of the last applied (committed) transaction.
    #[must_use]
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Bytes currently in the resident window.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.resident.bytes()
    }

    /// Dirty (uncommitted) bytes in the resident window.
    #[must_use]
    pub fn dirty_bytes(&self) -> u64 {
        self.resident.dirty_bytes()
    }

    /// The configured resident budget.
    #[must_use]
    pub fn resident_budget(&self) -> u64 {
        self.resident.budget()
    }

    /// Bytes still allocatable in the data region.
    #[must_use]
    pub fn free_bytes(&self) -> u64 {
        self.alloc.free_bytes()
    }

    /// The frontend this heap writes through.
    #[must_use]
    pub fn frontend(&self) -> &Arc<Frontend> {
        &self.front
    }

    /// Checks every internal invariant — allocator span disjointness
    /// and byte conservation, resident-window accounting and budget,
    /// resident/directory agreement. The proof suites call this after
    /// every operation; a violation is a heap bug, described in the
    /// returned string.
    ///
    /// # Errors
    ///
    /// The first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let spans: Vec<(u64, u64)> = self.objects.values().map(|m| (m.off, m.len)).collect();
        self.alloc.check(&spans)?;
        self.resident.check()?;
        for id in self.resident_ids() {
            let Some(meta) = self.objects.get(&id) else {
                return Err(format!("resident {id} not in directory"));
            };
            if meta.off < self.geom.data_off || meta.off + meta.len > self.geom.end() {
                return Err(format!("object {id} outside the data region"));
            }
        }
        Ok(())
    }

    fn resident_ids(&self) -> Vec<u64> {
        self.objects.keys().copied().filter(|&id| self.resident.contains(id)).collect()
    }

    /// Loads `id` into the resident window (no-op when present).
    fn ensure_resident(&mut self, id: u64, meta: ObjectMeta) -> Result<(), VpimError> {
        if self.resident.contains(id) {
            self.metrics.cache_hits.inc();
            return Ok(());
        }
        self.metrics.cache_misses.inc();
        self.make_room(meta.len)?;
        let data = self.mram_read(meta.off, meta.len)?;
        self.resident.insert(id, data, false);
        Ok(())
    }

    fn make_room(&mut self, need: u64) -> Result<(), VpimError> {
        if !self.try_make_room(need) {
            return Err(bad(format!(
                "pheap: resident window cannot fit {need} bytes (pinned/dirty objects fill \
                 the {}-byte budget)",
                self.resident.budget()
            )));
        }
        Ok(())
    }

    fn try_make_room(&mut self, need: u64) -> bool {
        match self.resident.make_room(need) {
            Some(evicted) => {
                self.metrics.evictions.add(evicted.len() as u64);
                true
            }
            None => false,
        }
    }

    fn site_fires(&self, point: &'static str, key: u64) -> bool {
        self.plane.as_ref().is_some_and(|p| p.hit_keyed(point, key))
    }

    fn mram_write(&mut self, off: u64, data: &[u8]) -> Result<(), VpimError> {
        if data.is_empty() {
            return Ok(());
        }
        let report = self.front.write_rank(&[(self.dpu, off, data)])?;
        self.cost += report.duration();
        Ok(())
    }

    fn mram_read(&mut self, off: u64, len: u64) -> Result<Vec<u8>, VpimError> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let (mut bufs, report) = self.front.read_rank(&[(self.dpu, off, len)])?;
        self.cost += report.duration();
        Ok(bufs.remove(0))
    }

    fn barrier(&mut self) -> Result<(), VpimError> {
        let report = self.front.persist_barrier()?;
        self.cost += report.duration();
        Ok(())
    }

    fn update_gauges(&self) {
        self.metrics.resident_bytes.set(self.resident.bytes() as i64);
        self.metrics.dirty_bytes.set(self.resident.dirty_bytes() as i64);
        self.metrics.objects.set(self.objects.len() as i64);
    }

    /// Internal constructor for [`recover`](Self::recover).
    pub(crate) fn from_recovered(
        front: Arc<Frontend>,
        opts: &PheapOptions,
        geom: Geometry,
        alloc: PAllocator,
        objects: BTreeMap<u64, ObjectMeta>,
        next_id: u64,
        applied_seq: u64,
        metrics: PheapMetrics,
    ) -> Pheap {
        let heap = Pheap {
            front,
            dpu: opts.dpu_index(),
            geom,
            alloc,
            objects,
            resident: ResidentSet::new(opts.resident_budget_bytes()),
            next_id,
            next_seq: applied_seq + 1,
            applied_seq,
            meta_dirty: false,
            plane: opts.take_plane(),
            metrics,
            cost: simkit::VirtualNanos::ZERO,
        };
        heap.update_gauges();
        heap
    }
}

fn bad(msg: impl Into<String>) -> VpimError {
    VpimError::BadRequest(msg.into())
}

fn bad_id(id: u64) -> VpimError {
    bad(format!("pheap: unknown object {id}"))
}

/// splitmix64 — derives the torn-append cut point from the sequence
/// number so tears are deterministic in `(seq)` alone.
fn splitmix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
