//! Crash recovery: rebuild a [`Pheap`] from rank MRAM alone.
//!
//! Recovery is a pure function of the MRAM image and is idempotent:
//!
//! 1. Read and validate the superblock (geometry + `applied_seq`).
//! 2. Parse the WAL region. A committed transaction with
//!    `seq > applied_seq` is **replayed** — every record copied to its
//!    home location, superblock bumped — which is safe to repeat (the
//!    copies are idempotent). A torn transaction (torn append or
//!    dropped commit) is **discarded**: home locations were never
//!    touched for an uncommitted transaction, so the heap is already at
//!    the previous persist point. Anything older is stale and skipped.
//! 3. Rebuild the object directory and allocator from the root table,
//!    which the replay in step 2 may just have made current.
//!
//! The resident window starts empty — uncommitted guest-RAM state is
//! exactly what a crash destroys.

use std::sync::Arc;

use crate::error::VpimError;
use crate::frontend::Frontend;

use super::alloc::PAllocator;
use super::wal::{decode_root, parse_txn, Superblock, WalParse, SB_LEN};
use super::{Pheap, PheapOptions};

/// What [`Pheap::recover`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoverReport {
    /// A committed-but-unapplied transaction was replayed.
    pub replayed: bool,
    /// A torn/uncommitted WAL tail was discarded.
    pub discarded_tail: bool,
    /// The last committed sequence number after recovery.
    pub applied_seq: u64,
    /// Live objects in the recovered heap.
    pub objects: usize,
}

pub(crate) fn run(
    front: Arc<Frontend>,
    opts: PheapOptions,
) -> Result<(Pheap, RecoverReport), VpimError> {
    let dpu = opts.dpu_index();
    // Recovery traffic is charged to the recovered heap's cost accumulator
    // so `drain_cost()` right after `recover()` yields the recovery time.
    let cost = std::cell::Cell::new(simkit::VirtualNanos::ZERO);
    let read = |off: u64, len: u64| -> Result<Vec<u8>, VpimError> {
        let (mut bufs, report) = front.read_rank(&[(dpu, off, len)])?;
        cost.set(cost.get() + report.duration());
        Ok(bufs.remove(0))
    };

    let sb_bytes = read(opts.base_off(), SB_LEN)?;
    let sb = Superblock::decode(&sb_bytes, opts.base_off()).ok_or_else(|| {
        VpimError::ProtocolViolation(format!(
            "pheap: no valid superblock at MRAM offset {} (dpu {dpu})",
            opts.base_off()
        ))
    })?;
    let geom = sb.geom;
    let mut applied_seq = sb.applied_seq;

    let wal = read(geom.wal_off, geom.wal_size)?;
    let mut replayed = false;
    let mut discarded_tail = false;
    match parse_txn(&wal) {
        WalParse::Committed { seq, records } if seq > applied_seq => {
            for r in &records {
                let report = front.write_rank(&[(dpu, r.home_off, r.payload.as_slice())])?;
                cost.set(cost.get() + report.duration());
            }
            let bumped = Superblock { geom, applied_seq: seq }.encode();
            let report = front.write_rank(&[(dpu, geom.sb_off, bumped.as_slice())])?;
            cost.set(cost.get() + report.duration());
            let report = front.persist_barrier()?;
            cost.set(cost.get() + report.duration());
            applied_seq = seq;
            replayed = true;
        }
        // Already applied (or pre-dating this heap generation): stale.
        WalParse::Committed { .. } | WalParse::Empty => {}
        WalParse::Torn { seq } => {
            // Discarded by doing nothing: home locations only ever hold
            // committed data. Report it only when the tail belongs to a
            // transaction newer than the persist point (a stale torn
            // header below `applied_seq` cannot occur in practice, but
            // the classification stays honest).
            discarded_tail = seq > applied_seq;
        }
    }

    let root_bytes = read(geom.root_off, geom.root_size)?;
    let rt = decode_root(&root_bytes).ok_or_else(|| {
        VpimError::ProtocolViolation("pheap: corrupt root table".to_string())
    })?;
    let alloc = PAllocator::from_parts(geom.data_off, geom.data_size, rt.bump, rt.free);

    let metrics = opts.make_metrics();
    metrics.recoveries.inc();
    if replayed {
        metrics.recover_replayed.inc();
    }
    if discarded_tail {
        metrics.recover_discarded.inc();
    }
    let mut heap = Pheap::from_recovered(
        front,
        &opts,
        geom,
        alloc,
        rt.objects,
        rt.next_id,
        applied_seq,
        metrics,
    );
    heap.cost = cost.get();
    let report = RecoverReport {
        replayed,
        discarded_tail,
        applied_seq,
        objects: heap.object_count(),
    };
    Ok((heap, report))
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use upmem_driver::UpmemDriver;
    use upmem_sim::{PimConfig, PimMachine};

    use super::super::wal::{encode_txn, Superblock, WalRecord};
    use super::super::{Pheap, PheapOptions};
    use crate::config::VpimConfig;
    use crate::system::{StartOpts, TenantSpec, VpimSystem, VpimVm};

    fn sys_vm() -> (VpimSystem, VpimVm) {
        let driver = Arc::new(UpmemDriver::new(PimMachine::new(PimConfig::small())));
        let sys =
            VpimSystem::start(driver, VpimConfig::builder().build(), StartOpts::default());
        let vm = sys.launch(TenantSpec::new("replay")).unwrap();
        (sys, vm)
    }

    fn opts(sys: &VpimSystem) -> PheapOptions {
        PheapOptions::new()
            .base(64 << 10)
            .wal_size(16 << 10)
            .root_size(8 << 10)
            .data_size(64 << 10)
            .resident_budget(16 << 10)
            .attach(sys)
    }

    /// The state the fault sites cannot reach from outside: a committed
    /// transaction whose apply/bump never ran (crash right after the
    /// commit barrier). Recovery must replay it to the home location and
    /// advance the superblock; a second recovery must be a no-op.
    #[test]
    fn replays_committed_unapplied_txn_and_is_idempotent() {
        let (sys, vm) = sys_vm();
        let mut heap = Pheap::format(vm.frontend(0).clone(), opts(&sys)).unwrap();
        let id = heap.alloc(64).unwrap();
        heap.write(id, 0, &[0xAA; 64]).unwrap();
        heap.persist().unwrap();
        let geom = heap.geom;
        let home = heap.objects[&id].off;
        drop(heap);

        let (body, commit) =
            encode_txn(2, &[WalRecord { id, home_off: home, payload: vec![0xBB; 64] }]);
        let front = vm.frontend(0).clone();
        front.write_rank(&[(0, geom.wal_off, body.as_slice())]).unwrap();
        front
            .write_rank(&[(0, geom.wal_off + body.len() as u64, commit.as_slice())])
            .unwrap();
        front.persist_barrier().unwrap();

        let (mut rec, report) = Pheap::recover(front, opts(&sys)).unwrap();
        assert!(report.replayed);
        assert!(!report.discarded_tail);
        assert_eq!(report.applied_seq, 2);
        assert_eq!(rec.read(id, 0, 64).unwrap(), vec![0xBB; 64]);
        rec.check_invariants().unwrap();
        drop(rec);

        let (mut rec2, report2) = Pheap::recover(vm.frontend(0).clone(), opts(&sys)).unwrap();
        assert!(!report2.replayed);
        assert_eq!(report2.applied_seq, 2);
        assert_eq!(rec2.read(id, 0, 64).unwrap(), vec![0xBB; 64]);
        drop(rec2);
        drop(vm);
        sys.shutdown();
    }

    /// Apply completed but the superblock bump was lost: replay re-copies
    /// the (already current) payloads — idempotent — and the heap comes
    /// back at the committed point.
    #[test]
    fn replays_idempotently_when_only_the_bump_was_lost() {
        let (sys, vm) = sys_vm();
        let mut heap = Pheap::format(vm.frontend(0).clone(), opts(&sys)).unwrap();
        let id = heap.alloc(48).unwrap();
        heap.write(id, 0, &[0x5C; 48]).unwrap();
        heap.persist().unwrap();
        let geom = heap.geom;
        drop(heap);

        let front = vm.frontend(0).clone();
        let stale = Superblock { geom, applied_seq: 0 }.encode();
        front.write_rank(&[(0, geom.sb_off, stale.as_slice())]).unwrap();
        front.persist_barrier().unwrap();

        let (mut rec, report) = Pheap::recover(front, opts(&sys)).unwrap();
        assert!(report.replayed);
        assert_eq!(report.applied_seq, 1);
        assert_eq!(report.objects, 1);
        assert_eq!(rec.read(id, 0, 48).unwrap(), vec![0x5C; 48]);
        rec.check_invariants().unwrap();
        drop(rec);
        drop(vm);
        sys.shutdown();
    }
}
