//! Bump-then-free-list allocator over the pheap's MRAM data region.
//!
//! All bookkeeping lives in guest RAM; the serialized state rides in the
//! root table ([`super::wal`]) so it is replayed atomically with the
//! objects it describes. Offsets handed out are **absolute** MRAM
//! offsets; internally everything is relative to the region start.
//!
//! Placement policy: exhaust the free list first (first-fit with split),
//! fall back to the bump frontier. Frees coalesce with both neighbours,
//! and a free run that touches the frontier retracts it — so a
//! fully-freed heap returns to its pristine `bump == 0` state, which the
//! conservation invariant in [`check`](PAllocator::check) relies on.

/// Rounds an object length up to the 8-byte MRAM transfer granule.
#[must_use]
pub(crate) const fn round8(len: u64) -> u64 {
    (len + 7) & !7
}

/// The data-region allocator (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PAllocator {
    region_off: u64,
    region_size: u64,
    /// Bump frontier, relative to `region_off`.
    bump: u64,
    /// Free spans `(rel_off, len)`, sorted by offset, never adjacent
    /// (adjacent spans coalesce on insert).
    free: Vec<(u64, u64)>,
}

impl PAllocator {
    /// A fresh allocator owning `[region_off, region_off + region_size)`.
    pub(crate) fn new(region_off: u64, region_size: u64) -> Self {
        PAllocator { region_off, region_size, bump: 0, free: Vec::new() }
    }

    /// Rebuilds an allocator from root-table state.
    pub(crate) fn from_parts(
        region_off: u64,
        region_size: u64,
        bump: u64,
        free: Vec<(u64, u64)>,
    ) -> Self {
        PAllocator { region_off, region_size, bump, free }
    }

    pub(crate) fn bump(&self) -> u64 {
        self.bump
    }

    pub(crate) fn free_spans(&self) -> &[(u64, u64)] {
        &self.free
    }

    /// Total bytes available without growing past the frontier.
    pub(crate) fn free_bytes(&self) -> u64 {
        let listed: u64 = self.free.iter().map(|&(_, l)| l).sum();
        listed + (self.region_size - self.bump)
    }

    /// Allocates `len` bytes (rounded to the 8-byte granule), returning
    /// the **absolute** MRAM offset, or `None` when no span fits.
    pub(crate) fn alloc(&mut self, len: u64) -> Option<u64> {
        let need = round8(len);
        if need == 0 || need > self.region_size {
            return None;
        }
        if let Some(i) = self.free.iter().position(|&(_, l)| l >= need) {
            let (off, l) = self.free[i];
            if l == need {
                self.free.remove(i);
            } else {
                self.free[i] = (off + need, l - need);
            }
            return Some(self.region_off + off);
        }
        if self.bump + need <= self.region_size {
            let off = self.bump;
            self.bump += need;
            return Some(self.region_off + off);
        }
        None
    }

    /// Returns `[abs_off, abs_off + round8(len))` to the free list,
    /// coalescing neighbours and retracting the bump frontier when the
    /// freed run touches it.
    ///
    /// # Panics
    ///
    /// Panics on a span outside the allocated region or a double free —
    /// both are heap-metadata corruption the caller must have prevented.
    pub(crate) fn free(&mut self, abs_off: u64, len: u64) {
        let need = round8(len);
        assert!(abs_off >= self.region_off, "pheap: free below data region");
        let off = abs_off - self.region_off;
        assert!(off + need <= self.bump, "pheap: free beyond bump frontier");
        let i = self.free.partition_point(|&(o, _)| o < off);
        if i > 0 {
            let (po, pl) = self.free[i - 1];
            assert!(po + pl <= off, "pheap: double free (prev overlap)");
        }
        if i < self.free.len() {
            assert!(off + need <= self.free[i].0, "pheap: double free (next overlap)");
        }
        self.free.insert(i, (off, need));
        // Coalesce with the next span, then the previous one.
        if i + 1 < self.free.len() && self.free[i].0 + self.free[i].1 == self.free[i + 1].0 {
            self.free[i].1 += self.free[i + 1].1;
            self.free.remove(i + 1);
        }
        if i > 0 && self.free[i - 1].0 + self.free[i - 1].1 == self.free[i].0 {
            self.free[i - 1].1 += self.free[i].1;
            self.free.remove(i);
        }
        // Retract the frontier over a trailing free run.
        if let Some(&(o, l)) = self.free.last() {
            if o + l == self.bump {
                self.bump = o;
                self.free.pop();
            }
        }
    }

    /// Metadata invariants: spans sorted, disjoint, non-adjacent, inside
    /// the frontier, and byte conservation against the live object list
    /// (`(abs_off, len)` pairs). Returns a description of the first
    /// violation.
    pub(crate) fn check(&self, objects: &[(u64, u64)]) -> Result<(), String> {
        if self.bump > self.region_size {
            return Err(format!("bump {} beyond region {}", self.bump, self.region_size));
        }
        let mut prev_end = 0u64;
        for &(o, l) in &self.free {
            if l == 0 || l % 8 != 0 || o % 8 != 0 {
                return Err(format!("unaligned free span ({o}, {l})"));
            }
            if o < prev_end || (prev_end != 0 && o == prev_end) {
                return Err(format!("free span ({o}, {l}) overlaps or touches previous"));
            }
            if o + l > self.bump {
                return Err(format!("free span ({o}, {l}) beyond bump {}", self.bump));
            }
            prev_end = o + l;
        }
        // No object may overlap another object or a free span.
        let mut spans: Vec<(u64, u64, bool)> = self
            .free
            .iter()
            .map(|&(o, l)| (o, l, true))
            .chain(objects.iter().map(|&(o, l)| (o - self.region_off, round8(l), false)))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[0].0 + w[0].1 > w[1].0 {
                return Err(format!("span overlap at rel {} and {}", w[0].0, w[1].0));
            }
        }
        // Conservation: everything below the frontier is an object or free.
        let used: u64 = objects.iter().map(|&(_, l)| round8(l)).sum();
        let listed: u64 = self.free.iter().map(|&(_, l)| l).sum();
        if used + listed != self.bump {
            return Err(format!(
                "conservation violated: used {used} + free {listed} != bump {}",
                self.bump
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_coalesce_roundtrip() {
        let mut a = PAllocator::new(1000, 64);
        let x = a.alloc(8).unwrap();
        let y = a.alloc(9).unwrap(); // rounds to 16
        let z = a.alloc(8).unwrap();
        assert_eq!((x, y, z), (1000, 1008, 1024));
        a.check(&[(x, 8), (y, 9), (z, 8)]).unwrap();
        a.free(y, 9);
        a.check(&[(x, 8), (z, 8)]).unwrap();
        // First-fit reuses the hole.
        assert_eq!(a.alloc(16).unwrap(), 1008);
        a.free(1008, 16);
        a.free(z, 8); // touches frontier through the hole: full retract
        assert_eq!(a.bump(), 8);
        assert!(a.free_spans().is_empty());
        a.free(x, 8);
        assert_eq!(a.bump(), 0);
        assert_eq!(a.free_bytes(), 64);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = PAllocator::new(0, 32);
        assert!(a.alloc(24).is_some());
        assert!(a.alloc(16).is_none());
        assert!(a.alloc(8).is_some());
        assert!(a.alloc(1).is_none());
    }
}
