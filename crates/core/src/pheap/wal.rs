//! On-MRAM formats for the persistent heap: superblock, write-ahead log
//! and root table.
//!
//! Everything is little-endian `u64` words guarded by FNV-1a checksums.
//! The WAL holds **one** transaction at a time (the heap persists
//! synchronously), laid out at `wal_off`:
//!
//! ```text
//! [ txn header | record* | commit ]
//!   header (32 B):  WAL_MAGIC, seq, n_records, body_len
//!   record:         id, home_off, len, crc(payload)   (32 B header)
//!                   payload, zero-padded to 8 bytes
//!   commit (24 B):  COMMIT_MAGIC, seq, crc(seq ‖ n ‖ record crcs)
//! ```
//!
//! The commit record is written by a **separate** MRAM write after a
//! durability barrier, so a crash can only produce (a) no new header,
//! (b) a torn header/body, or (c) header+body without commit — all of
//! which [`parse_txn`] classifies as non-committed and recovery
//! discards. Stale bytes from an older, longer transaction may trail a
//! newer one; the per-record and commit checksums keep them from ever
//! parsing as part of it.

use std::collections::BTreeMap;

use super::alloc::PAllocator;
use super::object::ObjectMeta;

pub(crate) const SB_MAGIC: u64 = 0x5650_494d_5048_5031; // "VPIMPHP1"
pub(crate) const WAL_MAGIC: u64 = 0x5650_494d_5741_4c31; // "VPIMWAL1"
pub(crate) const COMMIT_MAGIC: u64 = 0x5650_494d_434d_5431; // "VPIMCMT1"
pub(crate) const ROOT_MAGIC: u64 = 0x5650_494d_524f_4f54; // "VPIMROOT"

/// Record id carried by the root-table record of every transaction.
pub(crate) const ROOT_RECORD_ID: u64 = u64::MAX;

pub(crate) const SB_LEN: u64 = 80;
pub(crate) const TXN_HEADER_LEN: u64 = 32;
pub(crate) const REC_HEADER_LEN: u64 = 32;
pub(crate) const COMMIT_LEN: u64 = 24;

/// FNV-1a over `bytes` — the integrity check for payloads and tables.
#[must_use]
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get(bytes: &[u8], word: usize) -> u64 {
    let i = word * 8;
    u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte word"))
}

/// The fixed MRAM placement of one heap instance, stored in (and
/// re-read from) the superblock so `recover` needs only the base offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Geometry {
    pub sb_off: u64,
    pub wal_off: u64,
    pub wal_size: u64,
    pub root_off: u64,
    pub root_size: u64,
    pub data_off: u64,
    pub data_size: u64,
}

impl Geometry {
    /// Lays the regions out contiguously from `base`.
    pub(crate) fn from_base(base: u64, wal_size: u64, root_size: u64, data_size: u64) -> Self {
        let sb_off = base;
        let wal_off = sb_off + SB_LEN;
        let root_off = wal_off + wal_size;
        let data_off = root_off + root_size;
        Geometry { sb_off, wal_off, wal_size, root_off, root_size, data_off, data_size }
    }

    /// One past the last MRAM byte the heap owns.
    pub(crate) fn end(&self) -> u64 {
        self.data_off + self.data_size
    }
}

/// Superblock: geometry plus the sequence number of the last transaction
/// whose records were applied to their home locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Superblock {
    pub geom: Geometry,
    pub applied_seq: u64,
}

impl Superblock {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SB_LEN as usize);
        put(&mut out, SB_MAGIC);
        put(&mut out, 1); // version
        put(&mut out, self.geom.wal_off);
        put(&mut out, self.geom.wal_size);
        put(&mut out, self.geom.root_off);
        put(&mut out, self.geom.root_size);
        put(&mut out, self.geom.data_off);
        put(&mut out, self.geom.data_size);
        put(&mut out, self.applied_seq);
        let crc = fnv64(&out);
        put(&mut out, crc);
        out
    }

    /// Decodes and validates a superblock read at `sb_off`.
    pub(crate) fn decode(bytes: &[u8], sb_off: u64) -> Option<Superblock> {
        if bytes.len() < SB_LEN as usize {
            return None;
        }
        if get(bytes, 0) != SB_MAGIC || get(bytes, 1) != 1 {
            return None;
        }
        if fnv64(&bytes[..72]) != get(bytes, 9) {
            return None;
        }
        Some(Superblock {
            geom: Geometry {
                sb_off,
                wal_off: get(bytes, 2),
                wal_size: get(bytes, 3),
                root_off: get(bytes, 4),
                root_size: get(bytes, 5),
                data_off: get(bytes, 6),
                data_size: get(bytes, 7),
            },
            applied_seq: get(bytes, 8),
        })
    }
}

/// One WAL record: `payload` destined for absolute MRAM `home_off`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WalRecord {
    pub id: u64,
    pub home_off: u64,
    pub payload: Vec<u8>,
}

/// Encodes a transaction, returning `(body, commit)` — body is header +
/// records and is written first; commit is written separately after the
/// durability barrier. The commit's MRAM offset is `wal_off + body.len()`.
pub(crate) fn encode_txn(seq: u64, records: &[WalRecord]) -> (Vec<u8>, Vec<u8>) {
    let mut body = Vec::new();
    put(&mut body, WAL_MAGIC);
    put(&mut body, seq);
    put(&mut body, records.len() as u64);
    let body_len_at = body.len();
    put(&mut body, 0); // body_len patched below
    let mut crcs = Vec::new();
    put(&mut crcs, seq);
    put(&mut crcs, records.len() as u64);
    for r in records {
        let crc = fnv64(&r.payload);
        put(&mut body, r.id);
        put(&mut body, r.home_off);
        put(&mut body, r.payload.len() as u64);
        put(&mut body, crc);
        body.extend_from_slice(&r.payload);
        body.resize(body.len().next_multiple_of(8), 0);
        put(&mut crcs, crc);
    }
    let body_len = (body.len() as u64) - TXN_HEADER_LEN;
    body[body_len_at..body_len_at + 8].copy_from_slice(&body_len.to_le_bytes());

    let mut commit = Vec::with_capacity(COMMIT_LEN as usize);
    put(&mut commit, COMMIT_MAGIC);
    put(&mut commit, seq);
    put(&mut commit, fnv64(&crcs));
    (body, commit)
}

/// What a WAL region scan found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WalParse {
    /// No transaction header at all (fresh heap).
    Empty,
    /// A header for `seq` whose body or commit record does not check out:
    /// a torn append or a dropped commit. Recovery discards it.
    Torn { seq: u64 },
    /// A fully committed transaction.
    Committed { seq: u64, records: Vec<WalRecord> },
}

/// Parses the WAL region (`wal_size` bytes read at `wal_off`).
pub(crate) fn parse_txn(wal: &[u8]) -> WalParse {
    if wal.len() < TXN_HEADER_LEN as usize || get(wal, 0) != WAL_MAGIC {
        return WalParse::Empty;
    }
    let seq = get(wal, 1);
    let n_records = get(wal, 2);
    let body_len = get(wal, 3);
    let body_end = TXN_HEADER_LEN + body_len;
    if body_end + COMMIT_LEN > wal.len() as u64 {
        return WalParse::Torn { seq };
    }
    // Walk the records, checking each against its own checksum; any
    // mismatch (old bytes shining through a torn append) is a torn txn.
    let mut records = Vec::new();
    let mut crcs = Vec::new();
    put(&mut crcs, seq);
    put(&mut crcs, n_records);
    let mut pos = TXN_HEADER_LEN;
    for _ in 0..n_records {
        if pos + REC_HEADER_LEN > body_end {
            return WalParse::Torn { seq };
        }
        let at = (pos / 8) as usize;
        let (id, home_off, len, crc) =
            (get(wal, at), get(wal, at + 1), get(wal, at + 2), get(wal, at + 3));
        pos += REC_HEADER_LEN;
        let padded = (len + 7) & !7;
        if pos + padded > body_end {
            return WalParse::Torn { seq };
        }
        let payload = wal[pos as usize..(pos + len) as usize].to_vec();
        if fnv64(&payload) != crc {
            return WalParse::Torn { seq };
        }
        put(&mut crcs, crc);
        records.push(WalRecord { id, home_off, payload });
        pos += padded;
    }
    if pos != body_end {
        return WalParse::Torn { seq };
    }
    let c = (body_end / 8) as usize;
    if get(wal, c) != COMMIT_MAGIC || get(wal, c + 1) != seq || get(wal, c + 2) != fnv64(&crcs) {
        return WalParse::Torn { seq };
    }
    WalParse::Committed { seq, records }
}

/// Serializes the root table: object directory plus allocator state.
/// Written as the final record of every transaction, so the directory
/// and the data it points at commit atomically. Self-delimiting (a byte
/// length follows the magic) because it is read back from the
/// fixed-size root region with stale bytes trailing it.
pub(crate) fn encode_root(
    next_id: u64,
    alloc: &PAllocator,
    objects: &BTreeMap<u64, ObjectMeta>,
) -> Vec<u8> {
    let mut out = Vec::new();
    put(&mut out, ROOT_MAGIC);
    let len_at = out.len();
    put(&mut out, 0); // byte length, patched below
    put(&mut out, next_id);
    put(&mut out, alloc.bump());
    put(&mut out, alloc.free_spans().len() as u64);
    for &(off, len) in alloc.free_spans() {
        put(&mut out, off);
        put(&mut out, len);
    }
    put(&mut out, objects.len() as u64);
    for (&id, m) in objects {
        put(&mut out, id);
        put(&mut out, m.off);
        put(&mut out, m.len);
    }
    let total = (out.len() + 8) as u64;
    out[len_at..len_at + 8].copy_from_slice(&total.to_le_bytes());
    let crc = fnv64(&out);
    put(&mut out, crc);
    out
}

/// Decoded root table.
pub(crate) struct RootTable {
    pub next_id: u64,
    pub bump: u64,
    pub free: Vec<(u64, u64)>,
    pub objects: BTreeMap<u64, ObjectMeta>,
}

/// Decodes and validates a root table (`None` on any corruption). The
/// slice may extend past the table (a full root-region read).
pub(crate) fn decode_root(bytes: &[u8]) -> Option<RootTable> {
    if bytes.len() < 56 || get(bytes, 0) != ROOT_MAGIC {
        return None;
    }
    let total = get(bytes, 1);
    if total % 8 != 0 || total < 56 || total > bytes.len() as u64 {
        return None;
    }
    let bytes = &bytes[..total as usize];
    let words = bytes.len() / 8;
    if fnv64(&bytes[..(words - 1) * 8]) != get(bytes, words - 1) {
        return None;
    }
    let next_id = get(bytes, 2);
    let bump = get(bytes, 3);
    let n_free = get(bytes, 4) as usize;
    let mut at = 5;
    if words < 5 + n_free * 2 + 2 {
        return None;
    }
    let mut free = Vec::with_capacity(n_free);
    for _ in 0..n_free {
        free.push((get(bytes, at), get(bytes, at + 1)));
        at += 2;
    }
    let n_objects = get(bytes, at) as usize;
    at += 1;
    if words != at + n_objects * 3 + 1 {
        return None;
    }
    let mut objects = BTreeMap::new();
    for _ in 0..n_objects {
        objects.insert(
            get(bytes, at),
            ObjectMeta { off: get(bytes, at + 1), len: get(bytes, at + 2) },
        );
        at += 3;
    }
    Some(RootTable { next_id, bump, free, objects })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_roundtrip_and_corruption() {
        let sb = Superblock {
            geom: Geometry::from_base(1 << 20, 4096, 1024, 65536),
            applied_seq: 7,
        };
        let bytes = sb.encode();
        assert_eq!(Superblock::decode(&bytes, 1 << 20), Some(sb));
        let mut bad = bytes.clone();
        bad[40] ^= 1;
        assert_eq!(Superblock::decode(&bad, 1 << 20), None);
    }

    #[test]
    fn txn_roundtrip_and_torn_tails() {
        let recs = vec![
            WalRecord { id: 1, home_off: 100, payload: vec![1, 2, 3] },
            WalRecord { id: 2, home_off: 200, payload: vec![9; 16] },
        ];
        let (body, commit) = encode_txn(5, &recs);
        let mut wal = body.clone();
        wal.extend_from_slice(&commit);
        wal.resize(1024, 0xAA); // stale trailing bytes must not matter
        assert_eq!(parse_txn(&wal), WalParse::Committed { seq: 5, records: recs });
        // Every proper prefix is torn (or empty below the header).
        for cut in 8..body.len() + commit.len() {
            let mut torn = wal.clone();
            for b in torn.iter_mut().skip(cut).take(1024 - cut) {
                *b = 0x55; // "old" bytes beyond the tear
            }
            match parse_txn(&torn) {
                WalParse::Torn { .. } | WalParse::Empty => {}
                other => panic!("cut at {cut} parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn root_roundtrip() {
        let mut objects = BTreeMap::new();
        objects.insert(3, ObjectMeta { off: 4096, len: 33 });
        objects.insert(9, ObjectMeta { off: 8192, len: 8 });
        let alloc = PAllocator::from_parts(4096, 65536, 128, vec![(40, 16)]);
        let mut bytes = encode_root(10, &alloc, &objects);
        let exact = bytes.len();
        bytes.resize(exact + 64, 0xEE); // stale region tail must not matter
        let rt = decode_root(&bytes).unwrap();
        assert_eq!((rt.next_id, rt.bump), (10, 128));
        assert_eq!(rt.free, vec![(40, 16)]);
        assert_eq!(rt.objects, objects);
        assert!(decode_root(&bytes[..exact - 8]).is_none());
    }
}
