//! Object directory entries and the bounded guest-RAM resident set.
//!
//! The resident set is the vNV-Heap-style ownership window: an object
//! must be resident to be read through the cache, written, or pinned,
//! and the set never holds more than `budget` bytes. Dirty residents
//! cannot be evicted (their bytes exist nowhere else — home locations
//! hold only committed data), so the heap persists *before* a write
//! would push the dirty total past the budget; clean residents are
//! evicted LRU to make room.

use std::collections::BTreeMap;

/// Directory entry: where an object lives in MRAM. `off` is absolute;
/// `len` is the user-visible length (the allocator rounds to 8 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ObjectMeta {
    pub off: u64,
    pub len: u64,
}

/// A resident copy of one object.
#[derive(Debug, Clone)]
pub(crate) struct Resident {
    pub data: Vec<u8>,
    pub dirty: bool,
    pub pins: u32,
    /// LRU stamp (monotone clock; larger = more recently used).
    stamp: u64,
}

/// The bounded resident set (see module docs).
#[derive(Debug)]
pub(crate) struct ResidentSet {
    map: BTreeMap<u64, Resident>,
    budget: u64,
    bytes: u64,
    dirty_bytes: u64,
    clock: u64,
}

impl ResidentSet {
    pub(crate) fn new(budget: u64) -> Self {
        ResidentSet { map: BTreeMap::new(), budget, bytes: 0, dirty_bytes: 0, clock: 0 }
    }

    pub(crate) fn budget(&self) -> u64 {
        self.budget
    }

    pub(crate) fn bytes(&self) -> u64 {
        self.bytes
    }

    pub(crate) fn dirty_bytes(&self) -> u64 {
        self.dirty_bytes
    }

    pub(crate) fn contains(&self, id: u64) -> bool {
        self.map.contains_key(&id)
    }

    pub(crate) fn is_dirty(&self, id: u64) -> bool {
        self.map.get(&id).is_some_and(|r| r.dirty)
    }

    pub(crate) fn pins(&self, id: u64) -> u32 {
        self.map.get(&id).map_or(0, |r| r.pins)
    }

    /// Borrows a resident's bytes, touching its LRU stamp.
    pub(crate) fn touch(&mut self, id: u64) -> Option<&[u8]> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(&id).map(|r| {
            r.stamp = clock;
            r.data.as_slice()
        })
    }

    /// Mutably borrows a resident's bytes; the caller must have marked
    /// it dirty first (the set's byte accounting assumes it).
    pub(crate) fn data_mut(&mut self, id: u64) -> Option<&mut Vec<u8>> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(&id).map(|r| {
            r.stamp = clock;
            &mut r.data
        })
    }

    /// Evicts clean, unpinned residents (LRU-first) until `need` bytes
    /// fit inside the budget. Returns the evicted ids, or `None` when
    /// the room cannot be made (everything left is dirty or pinned).
    pub(crate) fn make_room(&mut self, need: u64) -> Option<Vec<u64>> {
        let mut evicted = Vec::new();
        while self.bytes + need > self.budget {
            let victim = self
                .map
                .iter()
                .filter(|(_, r)| !r.dirty && r.pins == 0)
                .min_by_key(|(_, r)| r.stamp)
                .map(|(&id, _)| id)?;
            self.remove(victim);
            evicted.push(victim);
        }
        Some(evicted)
    }

    /// Inserts a resident copy. The caller is responsible for having
    /// called [`make_room`](Self::make_room); inserting past the budget
    /// is a logic error.
    pub(crate) fn insert(&mut self, id: u64, data: Vec<u8>, dirty: bool) {
        let len = data.len() as u64;
        assert!(self.bytes + len <= self.budget, "pheap: resident budget overflow");
        self.clock += 1;
        self.bytes += len;
        if dirty {
            self.dirty_bytes += len;
        }
        let prev = self.map.insert(id, Resident { data, dirty, pins: 0, stamp: self.clock });
        assert!(prev.is_none(), "pheap: double-insert of resident {id}");
    }

    /// Marks a resident dirty (no-op when already dirty).
    pub(crate) fn mark_dirty(&mut self, id: u64) {
        if let Some(r) = self.map.get_mut(&id) {
            if !r.dirty {
                r.dirty = true;
                self.dirty_bytes += r.data.len() as u64;
            }
        }
    }

    /// Clears every dirty flag (after a successful persist).
    pub(crate) fn clean_all(&mut self) {
        for r in self.map.values_mut() {
            r.dirty = false;
        }
        self.dirty_bytes = 0;
    }

    /// Drops a resident (freed object or eviction).
    pub(crate) fn remove(&mut self, id: u64) -> Option<Vec<u8>> {
        let r = self.map.remove(&id)?;
        self.bytes -= r.data.len() as u64;
        if r.dirty {
            self.dirty_bytes -= r.data.len() as u64;
        }
        Some(r.data)
    }

    pub(crate) fn pin(&mut self, id: u64) {
        if let Some(r) = self.map.get_mut(&id) {
            r.pins += 1;
        }
    }

    /// Returns the remaining pin count.
    pub(crate) fn unpin(&mut self, id: u64) -> u32 {
        let r = self.map.get_mut(&id).expect("pheap: unpin of non-resident");
        r.pins -= 1;
        r.pins
    }

    /// Dirty ids in ascending order — the deterministic record order of
    /// a persist transaction.
    pub(crate) fn dirty_ids(&self) -> Vec<u64> {
        self.map.iter().filter(|(_, r)| r.dirty).map(|(&id, _)| id).collect()
    }

    /// Byte-accounting invariants; returns the first violation.
    pub(crate) fn check(&self) -> Result<(), String> {
        let bytes: u64 = self.map.values().map(|r| r.data.len() as u64).sum();
        let dirty: u64 =
            self.map.values().filter(|r| r.dirty).map(|r| r.data.len() as u64).sum();
        if bytes != self.bytes {
            return Err(format!("resident bytes {} != tracked {}", bytes, self.bytes));
        }
        if dirty != self.dirty_bytes {
            return Err(format!("dirty bytes {} != tracked {}", dirty, self.dirty_bytes));
        }
        if self.bytes > self.budget {
            return Err(format!("resident {} over budget {}", self.bytes, self.budget));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_skips_dirty_and_pinned() {
        let mut s = ResidentSet::new(24);
        s.insert(1, vec![0; 8], false);
        s.insert(2, vec![0; 8], true);
        s.insert(3, vec![0; 8], false);
        s.pin(3);
        // Only object 1 is evictable; 8 more bytes need exactly that.
        assert_eq!(s.make_room(8), Some(vec![1]));
        s.insert(4, vec![0; 8], false);
        // Now nothing clean+unpinned is left except 4 itself.
        s.pin(4);
        assert_eq!(s.make_room(8), None);
        s.check().unwrap();
        assert_eq!(s.dirty_bytes(), 8);
        s.clean_all();
        assert_eq!(s.dirty_bytes(), 0);
        assert_eq!(s.unpin(4), 0);
        // Object 2 (now clean, never re-touched) is the LRU victim.
        assert_eq!(s.make_room(8), Some(vec![2]));
    }
}
