//! # vpim — Processing-in-Memory virtualization
//!
//! An open-source reproduction of **"vPIM: Processing-in-Memory
//! Virtualization"** (Teguia, Chen, Bitchebe, Balmau, Tchana — MIDDLEWARE
//! 2024, <https://hal.science/hal-04737700>): the first system to
//! virtualize a commercial PIM device (UPMEM) for the cloud.
//!
//! vPIM follows the para-virtualization approach, extending the virtio
//! standard with a new PIM device type (id 42, two queues — see [`spec`]).
//! It consists of three components (§3.1, Fig. 4):
//!
//! * the **[`frontend`]** — a virtio device driver in the guest kernel that
//!   exposes a vUPMEM device file to guest userspace and forwards SDK
//!   requests to the backend. It implements the transfer-matrix
//!   serialization (Fig. 6/7), the **prefetch cache** (16 pages/DPU) and
//!   **request batching** (64 pages/DPU) optimizations (§4.1);
//! * the **[`backend`]** — the device model inside Firecracker that decodes
//!   requests, translates guest page addresses (GPA→HVA) with a thread
//!   pool, and performs rank operations in performance mode with an
//!   8-thread DPU-operation pool and a selectable scalar/vectorized data
//!   path (§4.2, the "C enhancement");
//! * the **[`manager`]** — a host userspace daemon that owns the
//!   rank-sharing policy: the {NAAV, ALLO, NANA} state machine, round-robin
//!   allocation, FIFO queuing, an observer thread over sysfs, and content
//!   reset on release (§3.5, Fig. 5).
//!
//! On top of these, the **[`sched`]** module adds an admission-controlled
//! rank scheduler for *oversubscribed* hosts: more tenant VMs than
//! physical ranks, time-shared through safe-point checkpoint / restore
//! preemption with virtual-time accounting (off by default; see
//! [`VpimConfigBuilder::oversubscription`]).
//!
//! The seven configurations evaluated in §5.4 (Table 2) are expressed as
//! [`VpimConfig`] variants: `vPIM-rust`, `vPIM-C`, `vPIM+P`, `vPIM+B`,
//! `vPIM+PB`, `vPIM-Seq` and full `vPIM`.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use vpim::{VpimConfig, VpimSystem};
//! use upmem_sim::{PimConfig, PimMachine};
//! use upmem_driver::UpmemDriver;
//!
//! // One host: machine + driver + manager.
//! use vpim::prelude::*;
//! let machine = PimMachine::new(PimConfig::small());
//! let driver = Arc::new(UpmemDriver::new(machine));
//! let system = VpimSystem::start(driver, VpimConfig::full(), StartOpts::default());
//!
//! // One VM with one vUPMEM device, booted and linked to a rank.
//! let vm = system.launch(TenantSpec::new("vm-0")).unwrap();
//! assert_eq!(vm.devices().len(), 1);
//! # system.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cluster;
pub mod config;
pub mod device;
pub mod error;
pub mod frontend;
pub mod load;
pub mod manager;
pub mod matrix;
pub mod pheap;
pub mod report;
pub mod sched;
pub mod spec;
pub mod system;

pub use backend::datapath::{CHUNK_STALL_POINT, CHUNK_TORN_WRITE_POINT};
pub use cluster::{
    Fleet, FleetLoadReport, FleetSpec, LinkSpec, MigrateMode, MigrateOpts, MigrationReport,
    PlacementPolicy, LINK_DROP_POINT, MIGRATE_STALL_POINT,
};
pub use config::{
    AdaptSection, FaultSite, FaultSpec, InjectSection, SchedSection, Variant, VpimConfig,
    VpimConfigBuilder,
};
pub use error::VpimError;
pub use frontend::{Frontend, ProbeOpts};
pub use load::{LoadHarness, LoadReport, LoadSpec};
pub use manager::MANAGER_RPC_POINT;
pub use pheap::{
    PersistReport, Pheap, PheapOptions, RecoverReport, PHEAP_PERSIST_DROP_POINT,
    PHEAP_WAL_TORN_POINT,
};
pub use report::OpReport;
pub use sched::{SchedPolicy, SchedStats, Scheduler, SnapshotStore, CKPT_STALL_POINT};
pub use system::{StartOpts, TenantSpec, VpimSystem, VpimVm};

/// The session-facing surface in one import: host bring-up
/// ([`VpimSystem`], [`StartOpts`], [`VpimConfig`]), tenant launch
/// ([`TenantSpec`], [`VpimVm`]), the guest driver ([`Frontend`],
/// [`ProbeOpts`], [`OpReport`]), errors, and the load harness.
///
/// ```
/// use vpim::prelude::*;
/// ```
pub mod prelude {
    pub use crate::cluster::{
        Fleet, FleetLoadReport, FleetSpec, LinkSpec, MigrateMode, MigrateOpts, MigrationReport,
        PlacementPolicy,
    };
    pub use crate::config::{AdaptSection, Variant, VpimConfig, VpimConfigBuilder};
    pub use crate::error::VpimError;
    pub use crate::frontend::{Frontend, ProbeOpts};
    pub use crate::load::{
        Arrival, Execution, LoadHarness, LoadReport, LoadSpec, OpOutcome, TenantMix,
        TenantProfile,
    };
    pub use crate::pheap::{PersistReport, Pheap, PheapOptions, RecoverReport};
    pub use crate::report::OpReport;
    pub use crate::system::{StartOpts, TenantSpec, VpimSystem, VpimVm};
    pub use upmem_driver::UpmemDriver;
    pub use upmem_sim::{PimConfig, PimMachine};
}
