//! The transfer matrix and its virtqueue serialization (Fig. 6 and 7).
//!
//! Rank operations move data for up to 64 DPUs at once. The SDK hands the
//! frontend a *transfer matrix*: global metadata, per-DPU metadata, and per
//! DPU an array of userspace pages holding that DPU's data. Because
//! Firecracker cannot follow guest `struct page` pointers, the frontend
//! *serializes* the matrix into flat buffers of 64-bit guest physical
//! addresses (Fig. 7):
//!
//! ```text
//! [request info][matrix meta][dpu0 meta][dpu0 pages][dpu1 meta][dpu1 pages]...
//! ```
//!
//! at most `2 + 2 × 64 = 130` buffers, which always fits the 512-slot
//! `transferq`. The backend deserializes the buffers, translates each GPA
//! to a host address, and accesses the pages directly — zero copies on the
//! guest-to-Firecracker path.

use pim_virtio::memory::PAGE_SIZE;
use pim_virtio::{Gpa, GuestMemory, SegCache};
use simkit::BytePool;

use crate::error::VpimError;

/// Maximum DPUs one matrix may address (one rank).
pub const MAX_DPUS: usize = 64;
/// Maximum pages per DPU (64 MB MRAM / 4 KiB pages).
pub const MAX_PAGES_PER_DPU: usize = 16_384;
/// Maximum serialized buffer count (`1 request + 1 matrix meta + 64 × 2`).
pub const MAX_BUFFERS: usize = 130;

/// One DPU's slice of a transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpuXfer {
    /// Target DPU within the rank.
    pub dpu: u32,
    /// MRAM byte offset of the transfer.
    pub mram_offset: u64,
    /// Transfer length in bytes.
    pub len: u64,
    /// Guest pages holding the data (the last page may be partial).
    pub pages: Vec<Gpa>,
}

impl DpuXfer {
    fn required_pages(len: u64) -> usize {
        (len as usize).div_ceil(PAGE_SIZE as usize)
    }
}

/// A transfer matrix: per-DPU metadata plus page lists.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransferMatrix {
    /// Per-DPU transfer descriptions (≤ 64 entries).
    pub entries: Vec<DpuXfer>,
}

/// Guest pages owned by an in-flight operation, returned to the allocator
/// with [`PageLease::release`].
#[derive(Debug)]
pub struct PageLease {
    mem: GuestMemory,
    pages: Vec<Gpa>,
}

/// What serialization produces: the virtqueue buffer list
/// `(guest address, length, device-writable)` plus the lease on the meta
/// pages backing it.
pub type SerializedMatrix = (Vec<(Gpa, u32, bool)>, PageLease);

impl PageLease {
    /// Number of leased pages.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn free_now(&mut self) {
        if !self.pages.is_empty() {
            let _ = self.mem.free_pages_back(&self.pages);
            self.pages.clear();
        }
    }

    /// Returns the pages to the guest allocator (also happens on drop, so
    /// error paths cannot leak guest memory).
    pub fn release(mut self) {
        self.free_now();
    }
}

impl Drop for PageLease {
    fn drop(&mut self) {
        self.free_now();
    }
}

impl TransferMatrix {
    /// Builds a write-direction matrix from user buffers, copying each
    /// buffer into freshly allocated guest pages (the guest userspace side
    /// of `dpu_prepare_xfer` + `dpu_push_xfer`).
    ///
    /// # Errors
    ///
    /// [`VpimError::ProtocolViolation`] for > 64 DPUs or oversized buffers;
    /// guest allocator exhaustion.
    pub fn from_user_buffers(
        mem: &GuestMemory,
        bufs: &[(u32, u64, &[u8])],
    ) -> Result<(TransferMatrix, PageLease), VpimError> {
        if bufs.len() > MAX_DPUS {
            return Err(VpimError::ProtocolViolation(format!(
                "{} dpus in one matrix",
                bufs.len()
            )));
        }
        let mut entries = Vec::with_capacity(bufs.len());
        let mut all_pages = Vec::new();
        for (dpu, offset, data) in bufs {
            let n = DpuXfer::required_pages(data.len() as u64);
            if n > MAX_PAGES_PER_DPU {
                return Err(VpimError::ProtocolViolation(format!(
                    "dpu {dpu} transfer of {} bytes exceeds the 64 MB bank",
                    data.len()
                )));
            }
            let pages = mem.alloc_pages(n)?;
            for (i, page) in pages.iter().enumerate() {
                let lo = i * PAGE_SIZE as usize;
                let hi = ((i + 1) * PAGE_SIZE as usize).min(data.len());
                mem.write(*page, &data[lo..hi])?;
            }
            all_pages.extend_from_slice(&pages);
            entries.push(DpuXfer {
                dpu: *dpu,
                mram_offset: *offset,
                len: data.len() as u64,
                pages,
            });
        }
        Ok((
            TransferMatrix { entries },
            PageLease { mem: mem.clone(), pages: all_pages },
        ))
    }

    /// Builds a read-direction matrix: allocates destination pages the
    /// backend will fill.
    ///
    /// # Errors
    ///
    /// Same conditions as [`from_user_buffers`](Self::from_user_buffers).
    pub fn alloc_read_buffers(
        mem: &GuestMemory,
        reqs: &[(u32, u64, u64)],
    ) -> Result<(TransferMatrix, PageLease), VpimError> {
        if reqs.len() > MAX_DPUS {
            return Err(VpimError::ProtocolViolation(format!(
                "{} dpus in one matrix",
                reqs.len()
            )));
        }
        let mut entries = Vec::with_capacity(reqs.len());
        let mut all_pages = Vec::new();
        for (dpu, offset, len) in reqs {
            let n = DpuXfer::required_pages(*len);
            if n > MAX_PAGES_PER_DPU {
                return Err(VpimError::ProtocolViolation(format!(
                    "dpu {dpu} read of {len} bytes exceeds the 64 MB bank"
                )));
            }
            let pages = mem.alloc_pages(n)?;
            all_pages.extend_from_slice(&pages);
            entries.push(DpuXfer { dpu: *dpu, mram_offset: *offset, len: *len, pages });
        }
        Ok((
            TransferMatrix { entries },
            PageLease { mem: mem.clone(), pages: all_pages },
        ))
    }

    /// Total bytes the matrix moves.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.len).sum()
    }

    /// Total page slots across all DPUs (drives serialization costs).
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.entries.iter().map(|e| e.pages.len() as u64).sum()
    }

    /// Serializes the matrix into flat u64 buffers placed in guest memory,
    /// returning the descriptor list to append after the request-info
    /// buffer: `[matrix meta][dpu meta][dpu pages]...` (Fig. 7). When
    /// `device_writes_data` is set (read-from-rank), the page buffers'
    /// *data pages* will be marked device-writable by the caller; the
    /// serialization buffers themselves are always device-readable.
    ///
    /// # Errors
    ///
    /// Guest allocator exhaustion or out-of-bounds writes.
    pub fn serialize(&self, mem: &GuestMemory) -> Result<SerializedMatrix, VpimError> {
        let total = self.serialized_bytes() as usize;
        let mut scratch = vec![0u8; total];
        self.serialize_via(mem, &mut scratch)
    }

    /// [`serialize`](Self::serialize) staging through a pooled scratch
    /// buffer — the steady-state path allocates nothing.
    ///
    /// # Errors
    ///
    /// Guest allocator exhaustion or out-of-bounds writes.
    pub fn serialize_pooled(
        &self,
        mem: &GuestMemory,
        pool: &BytePool,
    ) -> Result<SerializedMatrix, VpimError> {
        let total = self.serialized_bytes() as usize;
        let mut scratch = pool.take(total);
        self.serialize_via(mem, &mut scratch)
    }

    /// Total serialized size: matrix meta (8 B) then per DPU meta (32 B) +
    /// pages (8 B each), each buffer 8-byte aligned, densely packed.
    fn serialized_bytes(&self) -> u64 {
        let mut total = 8u64;
        for e in &self.entries {
            total += 32 + 8 * e.pages.len() as u64;
        }
        total
    }

    /// Assembles the whole flat layout in `scratch` (every byte written, so
    /// dirty pooled buffers are fine), then lands it in guest memory with
    /// **one** bulk write into contiguous pages — instead of the seed's one
    /// `write_u64` VM access per field.
    fn serialize_via(
        &self,
        mem: &GuestMemory,
        scratch: &mut [u8],
    ) -> Result<SerializedMatrix, VpimError> {
        let total = scratch.len();
        let npages = (total as u64).div_ceil(PAGE_SIZE) as usize;
        let base = mem.alloc_contiguous(npages.max(1))?;
        let lease_pages: Vec<Gpa> = (0..npages.max(1))
            .map(|i| Gpa(base.0 + i as u64 * PAGE_SIZE))
            .collect();

        fn put(scratch: &mut [u8], off: &mut usize, v: u64) {
            scratch[*off..*off + 8].copy_from_slice(&v.to_le_bytes());
            *off += 8;
        }

        let mut bufs: Vec<(Gpa, u32, bool)> = Vec::with_capacity(2 * self.entries.len() + 1);
        let mut off = 0usize;

        // Matrix metadata buffer: [nr_dpus].
        put(scratch, &mut off, self.entries.len() as u64);
        bufs.push((base, 8, false));

        for e in &self.entries {
            // Per-DPU metadata buffer: [dpu, mram_offset, len, nb_pages].
            bufs.push((base.add(off as u64), 32, false));
            put(scratch, &mut off, u64::from(e.dpu));
            put(scratch, &mut off, e.mram_offset);
            put(scratch, &mut off, e.len);
            put(scratch, &mut off, e.pages.len() as u64);

            // Page buffer: the GPAs of the data pages.
            if !e.pages.is_empty() {
                bufs.push((base.add(off as u64), (8 * e.pages.len()) as u32, false));
            }
            for p in &e.pages {
                put(scratch, &mut off, p.0);
            }
        }
        debug_assert_eq!(off, total);
        debug_assert!(bufs.len() < MAX_BUFFERS);
        mem.write(base, scratch)?;
        Ok((bufs, PageLease { mem: mem.clone(), pages: lease_pages }))
    }

    /// Deserializes a matrix from the flat buffers of a popped chain
    /// (everything after the request-info and before the status buffer).
    /// This is the backend half of Fig. 7.
    ///
    /// # Errors
    ///
    /// [`VpimError::BadRequest`] on malformed structure or counts that do
    /// not match the advertised `nr_dpus`.
    pub fn deserialize(
        mem: &GuestMemory,
        bufs: &[(Gpa, u32)],
    ) -> Result<TransferMatrix, VpimError> {
        if bufs.is_empty() {
            return Err(VpimError::BadRequest("empty matrix serialization".into()));
        }
        let (meta_gpa, meta_len) = bufs[0];
        if meta_len < 8 {
            return Err(VpimError::BadRequest("matrix metadata too short".into()));
        }
        let nr_dpus = mem.read_u64(meta_gpa)? as usize;
        if nr_dpus > MAX_DPUS {
            return Err(VpimError::BadRequest(format!("{nr_dpus} dpus in matrix")));
        }
        let mut entries = Vec::with_capacity(nr_dpus);
        let mut i = 1usize;
        for _ in 0..nr_dpus {
            let (dm_gpa, dm_len) = *bufs
                .get(i)
                .ok_or_else(|| VpimError::BadRequest("missing dpu metadata buffer".into()))?;
            if dm_len < 32 {
                return Err(VpimError::BadRequest("dpu metadata too short".into()));
            }
            let dpu = mem.read_u64(dm_gpa)? as u32;
            let mram_offset = mem.read_u64(dm_gpa.add(8))?;
            let len = mem.read_u64(dm_gpa.add(16))?;
            let nb_pages = mem.read_u64(dm_gpa.add(24))? as usize;
            i += 1;
            let mut pages = Vec::with_capacity(nb_pages);
            if nb_pages > 0 {
                let (pg_gpa, pg_len) = *bufs
                    .get(i)
                    .ok_or_else(|| VpimError::BadRequest("missing page buffer".into()))?;
                if (pg_len as usize) < 8 * nb_pages {
                    return Err(VpimError::BadRequest("page buffer too short".into()));
                }
                for k in 0..nb_pages {
                    pages.push(Gpa(mem.read_u64(pg_gpa.add(8 * k as u64))?));
                }
                i += 1;
            }
            if len > (nb_pages as u64) * PAGE_SIZE {
                return Err(VpimError::BadRequest(format!(
                    "dpu {dpu}: {len} bytes do not fit {nb_pages} pages"
                )));
            }
            entries.push(DpuXfer { dpu, mram_offset, len, pages });
        }
        Ok(TransferMatrix { entries })
    }

    /// Gathers one entry's data out of its guest pages into a contiguous
    /// buffer (the backend's access pattern for `write-to-rank`).
    ///
    /// # Errors
    ///
    /// Out-of-bounds guest access (a malicious or buggy page list).
    pub fn gather(mem: &GuestMemory, entry: &DpuXfer) -> Result<Vec<u8>, VpimError> {
        let mut out = vec![0u8; entry.len as usize];
        Self::gather_into(mem, entry, &mut out, &mut SegCache::new())?;
        Ok(out)
    }

    /// [`gather`](Self::gather) into a caller-owned buffer (typically a
    /// pooled one) through borrowed guest views, with bounds checks served
    /// from a per-request [`SegCache`]. Writes every byte of `out`.
    ///
    /// # Errors
    ///
    /// [`VpimError::BadRequest`] on length mismatch; out-of-bounds guest
    /// access (a malicious or buggy page list).
    pub fn gather_into(
        mem: &GuestMemory,
        entry: &DpuXfer,
        out: &mut [u8],
        cache: &mut SegCache,
    ) -> Result<(), VpimError> {
        if out.len() as u64 != entry.len {
            return Err(VpimError::BadRequest(format!(
                "gather length {} != entry length {}",
                out.len(),
                entry.len
            )));
        }
        for (i, page) in entry.pages.iter().enumerate() {
            let lo = i * PAGE_SIZE as usize;
            let hi = ((i + 1) * PAGE_SIZE as usize).min(entry.len as usize);
            if lo >= hi {
                break;
            }
            mem.with_slice_cached(cache, *page, (hi - lo) as u64, |s| {
                out[lo..hi].copy_from_slice(s);
            })?;
        }
        Ok(())
    }

    /// Scatters contiguous data into one entry's guest pages (the backend's
    /// completion path for `read-from-rank`).
    ///
    /// # Errors
    ///
    /// [`VpimError::BadRequest`] on length mismatch; out-of-bounds access.
    pub fn scatter(mem: &GuestMemory, entry: &DpuXfer, data: &[u8]) -> Result<(), VpimError> {
        Self::scatter_from(mem, entry, data, &mut SegCache::new())
    }

    /// [`scatter`](Self::scatter) through borrowed mutable guest views with
    /// a per-request [`SegCache`].
    ///
    /// # Errors
    ///
    /// [`VpimError::BadRequest`] on length mismatch; out-of-bounds access.
    pub fn scatter_from(
        mem: &GuestMemory,
        entry: &DpuXfer,
        data: &[u8],
        cache: &mut SegCache,
    ) -> Result<(), VpimError> {
        if data.len() as u64 != entry.len {
            return Err(VpimError::BadRequest(format!(
                "scatter length {} != entry length {}",
                data.len(),
                entry.len
            )));
        }
        for (i, page) in entry.pages.iter().enumerate() {
            let lo = i * PAGE_SIZE as usize;
            let hi = ((i + 1) * PAGE_SIZE as usize).min(data.len());
            if lo >= hi {
                break;
            }
            mem.with_slice_mut_cached(cache, *page, (hi - lo) as u64, |s| {
                s.copy_from_slice(&data[lo..hi]);
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mem() -> GuestMemory {
        GuestMemory::new(8 << 20)
    }

    #[test]
    fn build_serialize_deserialize_roundtrip() {
        let mem = mem();
        let a = vec![1u8; 5000]; // spans 2 pages
        let b = vec![2u8; 100];
        let (matrix, data_lease) =
            TransferMatrix::from_user_buffers(&mem, &[(0, 0, &a), (3, 4096, &b)]).unwrap();
        assert_eq!(matrix.total_bytes(), 5100);
        assert_eq!(matrix.total_pages(), 3);

        let (bufs, meta_lease) = matrix.serialize(&mem).unwrap();
        // matrix meta + 2 × (dpu meta + page buffer)
        assert_eq!(bufs.len(), 1 + 2 * 2);

        let flat: Vec<(Gpa, u32)> = bufs.iter().map(|(g, l, _)| (*g, *l)).collect();
        let back = TransferMatrix::deserialize(&mem, &flat).unwrap();
        assert_eq!(back, matrix);

        // Gather returns the original data.
        assert_eq!(TransferMatrix::gather(&mem, &back.entries[0]).unwrap(), a);
        assert_eq!(TransferMatrix::gather(&mem, &back.entries[1]).unwrap(), b);

        meta_lease.release();
        data_lease.release();
    }

    #[test]
    fn read_buffers_scatter_gather() {
        let mem = mem();
        let (matrix, lease) = TransferMatrix::alloc_read_buffers(&mem, &[(1, 0, 9000)]).unwrap();
        let data: Vec<u8> = (0..9000u32).map(|i| (i % 251) as u8).collect();
        TransferMatrix::scatter(&mem, &matrix.entries[0], &data).unwrap();
        assert_eq!(TransferMatrix::gather(&mem, &matrix.entries[0]).unwrap(), data);
        lease.release();
    }

    #[test]
    fn scatter_length_mismatch_rejected() {
        let mem = mem();
        let (matrix, lease) = TransferMatrix::alloc_read_buffers(&mem, &[(0, 0, 100)]).unwrap();
        assert!(TransferMatrix::scatter(&mem, &matrix.entries[0], &[0u8; 99]).is_err());
        lease.release();
    }

    #[test]
    fn too_many_dpus_rejected() {
        let mem = mem();
        let reqs: Vec<(u32, u64, u64)> = (0..65).map(|d| (d, 0, 8)).collect();
        assert!(matches!(
            TransferMatrix::alloc_read_buffers(&mem, &reqs),
            Err(VpimError::ProtocolViolation(_))
        ));
    }

    #[test]
    fn buffer_budget_matches_fig7() {
        // 64 DPUs: 1 matrix meta + 64 × 2 buffers = 129; +1 request info
        // buffer = 130 total, within the documented MAX_BUFFERS.
        let mem = GuestMemory::new(16 << 20);
        let reqs: Vec<(u32, u64, u64)> = (0..64).map(|d| (d, 0, 4096)).collect();
        let (matrix, lease) = TransferMatrix::alloc_read_buffers(&mem, &reqs).unwrap();
        let (bufs, meta_lease) = matrix.serialize(&mem).unwrap();
        assert_eq!(bufs.len(), 129);
        assert!(bufs.len() + 1 <= MAX_BUFFERS);
        meta_lease.release();
        lease.release();
    }

    #[test]
    fn deserialize_rejects_malformed_structures() {
        let mem = mem();
        assert!(TransferMatrix::deserialize(&mem, &[]).is_err());
        // Claim 1 DPU but provide no metadata buffer.
        let page = mem.alloc_pages(1).unwrap()[0];
        mem.write_u64(page, 1).unwrap();
        assert!(TransferMatrix::deserialize(&mem, &[(page, 8)]).is_err());
        // Claim an absurd DPU count.
        mem.write_u64(page, 1000).unwrap();
        assert!(TransferMatrix::deserialize(&mem, &[(page, 8)]).is_err());
    }

    #[test]
    fn leases_return_pages() {
        let mem = GuestMemory::new(64 * PAGE_SIZE);
        let before = mem.free_pages();
        let data = vec![0u8; 3 * PAGE_SIZE as usize];
        let (matrix, data_lease) =
            TransferMatrix::from_user_buffers(&mem, &[(0, 0, &data)]).unwrap();
        let (_bufs, meta_lease) = matrix.serialize(&mem).unwrap();
        assert!(mem.free_pages() < before);
        meta_lease.release();
        data_lease.release();
        assert_eq!(mem.free_pages(), before);
    }

    proptest! {
        /// Arbitrary per-DPU sizes survive the full build→serialize→
        /// deserialize→gather pipeline bit-exactly.
        #[test]
        fn pipeline_roundtrip(sizes in proptest::collection::vec(1usize..20_000, 1..8)) {
            let mem = GuestMemory::new(32 << 20);
            let datas: Vec<Vec<u8>> = sizes
                .iter()
                .enumerate()
                .map(|(i, n)| (0..*n).map(|k| ((k * 7 + i * 13) % 256) as u8).collect())
                .collect();
            let bufs: Vec<(u32, u64, &[u8])> = datas
                .iter()
                .enumerate()
                .map(|(i, d)| (i as u32, (i * 4096) as u64, d.as_slice()))
                .collect();
            let (matrix, dl) = TransferMatrix::from_user_buffers(&mem, &bufs).unwrap();
            let (sbufs, ml) = matrix.serialize(&mem).unwrap();
            let flat: Vec<(Gpa, u32)> = sbufs.iter().map(|(g, l, _)| (*g, *l)).collect();
            let back = TransferMatrix::deserialize(&mem, &flat).unwrap();
            for (entry, want) in back.entries.iter().zip(&datas) {
                prop_assert_eq!(&TransferMatrix::gather(&mem, entry).unwrap(), want);
            }
            ml.release();
            dl.release();
        }

        /// Read-direction matrices over arbitrary page-aligned layouts:
        /// scatter into freshly allocated buffers, then serialize,
        /// deserialize and gather — data and structure survive bit-exactly.
        #[test]
        fn scatter_gather_roundtrip_on_page_aligned_layouts(
            layout in proptest::collection::vec(
                (0u32..64, 0u64..16, 1u64..20_000),
                1..8,
            )
        ) {
            let mem = GuestMemory::new(32 << 20);
            // Page-aligned MRAM offsets, arbitrary (dpu, len) combinations.
            let reqs: Vec<(u32, u64, u64)> = layout
                .iter()
                .map(|(dpu, page, len)| (*dpu, page * PAGE_SIZE, *len))
                .collect();
            let (matrix, lease) = TransferMatrix::alloc_read_buffers(&mem, &reqs).unwrap();
            prop_assert_eq!(matrix.entries.len(), reqs.len());

            let datas: Vec<Vec<u8>> = matrix
                .entries
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    (0..e.len).map(|k| ((k * 11 + i as u64 * 17) % 256) as u8).collect()
                })
                .collect();
            for (entry, data) in matrix.entries.iter().zip(&datas) {
                TransferMatrix::scatter(&mem, entry, data).unwrap();
            }

            let (sbufs, ml) = matrix.serialize(&mem).unwrap();
            let flat: Vec<(Gpa, u32)> = sbufs.iter().map(|(g, l, _)| (*g, *l)).collect();
            let back = TransferMatrix::deserialize(&mem, &flat).unwrap();
            prop_assert_eq!(&back, &matrix);
            for (entry, want) in back.entries.iter().zip(&datas) {
                prop_assert_eq!(&TransferMatrix::gather(&mem, entry).unwrap(), want);
            }
            ml.release();
            lease.release();
        }
    }
}
