//! Live migration: move a tenant's ranks between fleet hosts,
//! bit-identically, with rollback on any failure.
//!
//! # The state machine
//!
//! **Stop-and-copy** (the default):
//!
//! 1. *Pin* — take the tenant's entry lock. Every tenant op routes
//!    through [`Fleet::with_vm`], which needs the same lock, so from here
//!    the tenant is frozen: nothing can mutate its ranks until cutover.
//! 2. *Flush* — drain every frontend's write batch so all guest-visible
//!    state is in MRAM (the prefetch cache is read-only soft state; the
//!    destination frontend simply starts cold).
//! 3. *Snapshot* — per device, take the rank-slot lock
//!    ([`Backend::ensure_linked`], the same safe point scheduler
//!    preemption uses) and capture [`Rank::snapshot_quiescent`], charging
//!    the cost model's snapshot rate.
//! 4. *Ship* — each snapshot crosses the [`Link`] (serialized,
//!    fault-injectable, virtual-time cost) and parks in the fleet's
//!    budgeted in-flight store.
//! 5. *Restore* — launch a fresh VM for the tenant on the destination,
//!    then [`Rank::restore`] each parked snapshot onto its linked rank.
//! 6. *Cutover* — swap the entry's VM handle, release the source VM's
//!    ranks, expedite the source manager's sweep, and atomically re-home
//!    the tenant in the placement table.
//!
//! **Pre-copy** adds a warm round before step 1: snapshot the running
//! ranks (brief slot holds, no freeze), ship the *full* bytes while the
//! tenant keeps executing, then run stop-and-copy shipping only the
//! **dirty** bytes ([`RankSnapshot::diff_bytes`]) — the classic trade:
//! more total bytes on the wire, less downtime on the wire.
//!
//! # Rollback rules
//!
//! Every failure before step 6 leaves the tenant running on the source,
//! untouched: the source VM is never modified (snapshots are reads), the
//! destination reservation is returned, any destination VM is released,
//! and parked in-flight snapshots are evicted. There is no partial
//! cutover state — the placement table re-homes only after the new VM
//! handle is installed, both under the entry lock.
//!
//! # Determinism
//!
//! Every cost is integer virtual time derived from byte counts (link
//! serialization, snapshot/restore rates), and snapshots are bit-exact —
//! so a [`MigrationReport`] and the migrated tenant's subsequent op
//! results are identical across Sequential/Parallel dispatch, thread
//! counts, and seeds that don't fire faults.
//!
//! [`Backend::ensure_linked`]: crate::backend::Backend::ensure_linked
//! [`Rank::snapshot_quiescent`]: upmem_sim::Rank::snapshot_quiescent
//! [`Rank::restore`]: upmem_sim::Rank::restore
//! [`RankSnapshot::diff_bytes`]: upmem_sim::rank::RankSnapshot::diff_bytes
//! [`Link`]: super::Link

use simkit::lockorder::{ordered, LockLevel};
use simkit::VirtualNanos;
use upmem_sim::rank::RankSnapshot;

use super::{Fleet, TenantState};
use crate::error::VpimError;

/// The fault point the migration engine consults after pinning the
/// tenant (`cluster.migrate.stall`; armed via
/// [`FaultSite::MigrateStall`](crate::config::FaultSite::MigrateStall)).
/// A firing stalls the engine in *wall-clock* time only — like the
/// scheduler's checkpoint stall, it charges no virtual time and must not
/// perturb the migrated bits.
pub const MIGRATE_STALL_POINT: &str = "cluster.migrate.stall";

/// Which copy scheme to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MigrateMode {
    /// One round: freeze, copy everything, resume on the destination.
    #[default]
    StopAndCopy,
    /// Two rounds: ship a warm full copy while the tenant runs, then
    /// freeze and re-send only the dirty bytes.
    PreCopy,
}

/// Options for [`Fleet::migrate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrateOpts {
    /// The copy scheme.
    pub mode: MigrateMode,
}

impl MigrateOpts {
    /// Stop-and-copy.
    #[must_use]
    pub fn new() -> Self {
        MigrateOpts::default()
    }

    /// Selects `mode`.
    #[must_use]
    pub fn mode(mut self, mode: MigrateMode) -> Self {
        self.mode = mode;
        self
    }
}

/// What a completed migration measured. All times are virtual and pure
/// in the shipped byte counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    /// The migrated tenant.
    pub tenant: String,
    /// Source host.
    pub from: usize,
    /// Destination host.
    pub to: usize,
    /// The scheme that ran.
    pub mode: MigrateMode,
    /// Ranks moved (one per device).
    pub ranks_moved: usize,
    /// Bytes shipped by the warm pre-copy round (0 for stop-and-copy).
    pub precopy_bytes: u64,
    /// Dirty bytes re-sent in the final round (0 for stop-and-copy).
    pub dirty_bytes: u64,
    /// Total bytes that crossed the link, all rounds.
    pub bytes_shipped: u64,
    /// Copy rounds (1 for stop-and-copy, 2 for pre-copy).
    pub rounds: u32,
    /// Virtual time the tenant was frozen (final snapshot + final ship +
    /// destination boot + restore).
    pub downtime: VirtualNanos,
    /// Total virtual migration time (warm round included).
    pub total: VirtualNanos,
}

fn inflight_key(tenant: &str, device: usize) -> String {
    format!("{tenant}/dev{device}")
}

impl Fleet {
    /// Live-migrates `tenant` to host `to`. On success the tenant is
    /// running on `to` with bit-identical rank state and the placement
    /// table re-homed; on failure it is still running on its source host,
    /// untouched (see the module docs for the rollback rules).
    ///
    /// # Errors
    ///
    /// [`VpimError::BadRequest`] for an unknown/released tenant, an
    /// out-of-range destination, or a self-migration;
    /// [`VpimError::NoRankAvailable`] when the destination lacks
    /// capacity; [`VpimError::Injected`] when an armed
    /// `cluster.link.drop` severs a transfer; plus any launch or restore
    /// failure from the destination host. Every aborted attempt
    /// increments `migrate.aborted`.
    pub fn migrate(
        &self,
        tenant: &str,
        to: usize,
        opts: MigrateOpts,
    ) -> Result<MigrationReport, VpimError> {
        if to >= self.hosts().len() {
            return Err(VpimError::BadRequest(format!("no host {to} in the fleet")));
        }
        let entry = self.entry(tenant)?;
        self.metrics.attempts.inc();

        let mut rounds = 0u32;
        let mut precopy_bytes = 0u64;
        let mut warm_vt = VirtualNanos::ZERO;
        let mut base: Option<Vec<RankSnapshot>> = None;

        if opts.mode == MigrateMode::PreCopy {
            // Warm round: capture the running ranks under brief slot
            // holds, then ship with the tenant live (dirtying freely).
            let snaps = {
                let _ord = ordered(LockLevel::Fleet, 1);
                let state = entry.state.lock();
                let Some(state) = state.as_ref() else {
                    self.metrics.aborted.inc();
                    return Err(VpimError::BadRequest(format!("tenant {tenant} released")));
                };
                if state.host == to {
                    self.metrics.aborted.inc();
                    return Err(VpimError::BadRequest(format!(
                        "tenant {tenant} already on host {to}"
                    )));
                }
                let mut snaps = Vec::with_capacity(state.vm.devices().len());
                for dev in state.vm.devices() {
                    let guard = dev.backend().ensure_linked()?;
                    let mapping = guard.as_ref().ok_or(VpimError::NotLinked)?;
                    let snap = mapping.rank().snapshot();
                    warm_vt += self.cm.rank_snapshot(snap.resident_bytes() as u64);
                    snaps.push(snap);
                }
                snaps
            };
            rounds += 1;
            for snap in &snaps {
                let bytes = snap.resident_bytes() as u64;
                match self.link().ship(bytes) {
                    Ok(cost) => {
                        warm_vt += cost;
                        precopy_bytes += bytes;
                    }
                    Err(e) => {
                        self.metrics.aborted.inc();
                        return Err(e);
                    }
                }
            }
            base = Some(snaps);
        }

        // Final (stop-and-copy) round: entry locked for the duration — the
        // tenant is frozen because every op path needs this same lock.
        let _ord = ordered(LockLevel::Fleet, 1);
        let mut slot = entry.state.lock();
        let Some(state) = slot.as_mut() else {
            self.metrics.aborted.inc();
            return Err(VpimError::BadRequest(format!("tenant {tenant} released")));
        };
        let from = state.host;
        if from == to {
            self.metrics.aborted.inc();
            return Err(VpimError::BadRequest(format!("tenant {tenant} already on host {to}")));
        }
        let need = state.spec.n_devices();

        // Reserve the destination before touching the source, so capacity
        // is pessimistic during the move and a failed move never
        // overcommits.
        {
            let _p = ordered(LockLevel::Placement, 0);
            if let Err(e) = self.placement.lock().reserve(to, need) {
                self.metrics.aborted.inc();
                return Err(e);
            }
        }

        match self.stop_and_copy(tenant, state, to, need, base.as_deref()) {
            Ok((bytes_final, dirty_bytes, downtime)) => {
                rounds += 1;
                {
                    let _p = ordered(LockLevel::Placement, 0);
                    self.placement.lock().rehome(tenant, from, to, need);
                }
                let total = warm_vt + downtime;
                self.metrics.completed.inc();
                self.metrics.bytes.add(precopy_bytes + bytes_final);
                self.metrics.dirty_bytes.add(dirty_bytes);
                self.metrics.downtime.record(downtime);
                self.metrics.vt.add(total);
                Ok(MigrationReport {
                    tenant: tenant.to_string(),
                    from,
                    to,
                    mode: opts.mode,
                    ranks_moved: need,
                    precopy_bytes,
                    dirty_bytes,
                    bytes_shipped: precopy_bytes + bytes_final,
                    rounds,
                    downtime,
                    total,
                })
            }
            Err(e) => {
                {
                    let _p = ordered(LockLevel::Placement, 0);
                    self.placement.lock().unreserve(to, need);
                }
                self.metrics.aborted.inc();
                Err(e)
            }
        }
    }

    /// The frozen half of a migration. On entry the tenant's entry lock
    /// is held and the destination capacity is reserved. Returns
    /// `(bytes shipped this round, dirty bytes, downtime)`; on error the
    /// source VM is untouched and every transient artifact (in-flight
    /// snapshots, destination VM) has been cleaned up.
    fn stop_and_copy(
        &self,
        tenant: &str,
        state: &mut TenantState,
        to: usize,
        need: usize,
        base: Option<&[RankSnapshot]>,
    ) -> Result<(u64, u64, VirtualNanos), VpimError> {
        let evict_inflight = |n: usize| {
            for j in 0..n {
                let _ = self.inflight.evict(&inflight_key(tenant, j));
            }
        };

        if self.inject.hit(MIGRATE_STALL_POINT) {
            // Wall-clock stall only: the entry lock stays held, no virtual
            // time is charged — the migrated bits must be unaffected.
            std::thread::sleep(std::time::Duration::from_millis(2));
        }

        // Flush guest-side soft state: the write batch must land in MRAM
        // before the snapshot.
        for frontend in state.vm.frontends() {
            frontend.flush_batch()?;
        }

        // Snapshot each rank at its slot safe point (brief holds — the
        // entry lock is what keeps the tenant frozen between them).
        let mut downtime = VirtualNanos::ZERO;
        let mut snaps = Vec::with_capacity(need);
        for dev in state.vm.devices() {
            let guard = dev.backend().ensure_linked()?;
            let mapping = guard.as_ref().ok_or(VpimError::NotLinked)?;
            let snap = mapping.rank().snapshot_quiescent().map_err(VpimError::from)?;
            downtime += self.cm.rank_snapshot(snap.resident_bytes() as u64);
            snaps.push(snap);
        }

        // Ship (full or dirty bytes) and park in flight.
        let mut bytes_shipped = 0u64;
        let mut dirty_bytes = 0u64;
        for (i, snap) in snaps.iter().enumerate() {
            let bytes = match base {
                Some(warm) => {
                    let dirty = snap.diff_bytes(warm.get(i).unwrap_or(snap));
                    dirty_bytes += dirty;
                    dirty
                }
                None => snap.resident_bytes() as u64,
            };
            downtime += self.link().ship(bytes)?;
            bytes_shipped += bytes;
        }
        for (i, snap) in snaps.into_iter().enumerate() {
            if let Err(e) = self.inflight.park(&inflight_key(tenant, i), snap) {
                evict_inflight(i);
                return Err(VpimError::BadRequest(format!("migration in-flight budget: {e}")));
            }
        }

        // Destination VM + restore. The tenant stays frozen (entry lock);
        // this whole window is downtime.
        let dst = match self.hosts()[to].launch_with_retry(&state.spec) {
            Ok(vm) => vm,
            Err(e) => {
                evict_inflight(need);
                return Err(e);
            }
        };
        downtime += dst.boot_report().total();
        for (i, dev) in dst.devices().iter().enumerate() {
            let restored: Result<(), VpimError> = (|| {
                let guard = dev.backend().ensure_linked()?;
                let mapping = guard.as_ref().ok_or(VpimError::NotLinked)?;
                let snap = self
                    .inflight
                    .take(&inflight_key(tenant, i))
                    .ok_or_else(|| VpimError::BadRequest("in-flight snapshot vanished".into()))?;
                downtime += self.cm.rank_restore(snap.resident_bytes() as u64);
                mapping.rank().restore(&snap).map_err(VpimError::from)
            })();
            if let Err(e) = restored {
                evict_inflight(need);
                let _ = dst.release_all();
                drop(dst);
                self.hosts()[to].system().sync_ranks();
                return Err(e);
            }
        }

        // Cutover: swap the handle, then tear the source down.
        let old = std::mem::replace(&mut state.vm, dst);
        let _ = old.release_all();
        drop(old);
        self.hosts()[state.host].system().sync_ranks();
        state.host = to;
        Ok((bytes_shipped, dirty_bytes, downtime))
    }
}
