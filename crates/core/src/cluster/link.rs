//! The modeled inter-host network link snapshots ship over.
//!
//! Transfer time is **virtual**: a pure integer function of the byte
//! count and the link's `(latency, bandwidth)` spec, charged through the
//! same virtual-clock accounting as every other cost in the system — so
//! migration reports are bit-identical across Sequential/Parallel
//! dispatch and thread counts, exactly like [`LoadReport`]s.
//!
//! The link is *serialized*: one transfer occupies it at a time (its
//! mutex orders at [`LockLevel::Link`], **inside** `RankSlot` — shipping
//! happens while the source ranks are quiesced under their slot locks,
//! and that hold window is the migration's downtime). Each transfer
//! consults the `cluster.link.drop` fault point first, so a chaos
//! schedule can sever the wire mid-migration deterministically.
//!
//! [`LoadReport`]: crate::load::LoadReport

use parking_lot::Mutex;
use simkit::lockorder::{ordered, LockLevel};
use simkit::telemetry::{Counter, MetricsRegistry, TimeCounter};
use simkit::{InjectCell, VirtualNanos};

use crate::error::VpimError;

/// The fault point a [`Link`] consults before every transfer
/// (`cluster.link.drop`; armed via
/// [`FaultSite::LinkDrop`](crate::config::FaultSite::LinkDrop)).
pub const LINK_DROP_POINT: &str = "cluster.link.drop";

/// Bandwidth/latency of the inter-host wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// One-way latency per transfer, nanoseconds.
    pub latency_ns: u64,
    /// Bandwidth in gigabits per second (clamped to ≥ 1 when charging).
    pub gbits_per_sec: u64,
}

impl Default for LinkSpec {
    /// A 25 GbE-class datacenter link: 50 µs latency, 25 Gbit/s.
    fn default() -> Self {
        LinkSpec { latency_ns: 50_000, gbits_per_sec: 25 }
    }
}

/// The fleet's inter-host link: serialized, cost-modeled, fault-injectable.
#[derive(Debug)]
pub struct Link {
    spec: LinkSpec,
    /// One transfer at a time ([`LockLevel::Link`]).
    busy: Mutex<()>,
    inject: InjectCell,
    /// `cluster.link.bytes` — payload bytes shipped.
    bytes: Counter,
    /// `cluster.link.transfers` — completed transfers.
    transfers: Counter,
    /// `cluster.link.drops` — transfers severed by the fault plane.
    drops: Counter,
    /// `cluster.link.vt` — virtual time spent on the wire.
    vt: TimeCounter,
}

impl Link {
    /// A link publishing `cluster.link.*` telemetry into `registry`.
    #[must_use]
    pub fn with_registry(spec: LinkSpec, registry: &MetricsRegistry) -> Self {
        Link {
            spec,
            busy: Mutex::new(()),
            inject: InjectCell::new(),
            bytes: registry.counter("cluster.link.bytes"),
            transfers: registry.counter("cluster.link.transfers"),
            drops: registry.counter("cluster.link.drops"),
            vt: registry.time("cluster.link.vt"),
        }
    }

    /// The configured spec.
    #[must_use]
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Routes `cluster.link.drop` hits through `plane`.
    pub fn install_fault_plane(&self, plane: std::sync::Arc<simkit::FaultPlane>) {
        self.inject.install(plane);
    }

    /// Virtual wire time for `bytes`: latency + serialization at the
    /// configured bandwidth, pure integer math.
    #[must_use]
    pub fn transfer_cost(&self, bytes: u64) -> VirtualNanos {
        let gbps = self.spec.gbits_per_sec.max(1);
        // bits / gbits-per-sec = nanoseconds exactly.
        VirtualNanos::from_nanos(self.spec.latency_ns + bytes.saturating_mul(8) / gbps)
    }

    /// Ships `bytes` over the link and returns the virtual transfer time.
    ///
    /// # Errors
    ///
    /// [`VpimError::Injected`] when the armed `cluster.link.drop` schedule
    /// fires (the payload is considered lost; the caller rolls back).
    pub fn ship(&self, bytes: u64) -> Result<VirtualNanos, VpimError> {
        let _ord = ordered(LockLevel::Link, 0);
        let _busy = self.busy.lock();
        if self.inject.hit(LINK_DROP_POINT) {
            self.drops.inc();
            return Err(VpimError::Injected { point: LINK_DROP_POINT });
        }
        let cost = self.transfer_cost(bytes);
        self.bytes.add(bytes);
        self.transfers.inc();
        self.vt.add(cost);
        Ok(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{FaultPlan, FaultPlane};
    use std::sync::Arc;

    #[test]
    fn cost_is_pure_integer_latency_plus_serialization() {
        let reg = MetricsRegistry::new();
        let link = Link::with_registry(LinkSpec { latency_ns: 1_000, gbits_per_sec: 8 }, &reg);
        // 8 Gbit/s = 1 byte/ns: 4096 B serializes in 4096 ns.
        assert_eq!(link.transfer_cost(4096).as_nanos(), 1_000 + 4096);
        assert_eq!(link.transfer_cost(0).as_nanos(), 1_000);
    }

    #[test]
    fn ship_publishes_telemetry() {
        let reg = MetricsRegistry::new();
        let link = Link::with_registry(LinkSpec { latency_ns: 100, gbits_per_sec: 8 }, &reg);
        let a = link.ship(1024).unwrap();
        let b = link.ship(1024).unwrap();
        assert_eq!(a, b, "same bytes, same virtual cost");
        let snap = reg.snapshot();
        assert_eq!(snap.count("cluster.link.bytes"), 2048);
        assert_eq!(snap.count("cluster.link.transfers"), 2);
        assert_eq!(snap.count("cluster.link.drops"), 0);
        assert_eq!(snap.time("cluster.link.vt"), a + b);
    }

    #[test]
    fn armed_drop_severs_the_wire() {
        let reg = MetricsRegistry::new();
        let link = Link::with_registry(LinkSpec::default(), &reg);
        let plane = Arc::new(FaultPlane::with_registry(7, &reg));
        plane.arm(LINK_DROP_POINT, FaultPlan::Nth(1));
        link.install_fault_plane(plane);
        assert!(matches!(
            link.ship(64),
            Err(VpimError::Injected { point }) if point == LINK_DROP_POINT
        ));
        // Schedule exhausted: the retry succeeds.
        assert!(link.ship(64).is_ok());
        assert_eq!(reg.snapshot().count("cluster.link.drops"), 1);
    }
}
