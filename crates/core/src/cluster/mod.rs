//! `vpim::cluster` — the multi-host fleet plane (ROADMAP item 1).
//!
//! Everything below this module virtualizes *one* host. A [`Fleet`] owns
//! N independent [`VpimSystem`] hosts — each with its own simulated
//! machine, driver, manager, scheduler, and registry — and adds the three
//! things a fleet needs:
//!
//! * a **placement/admission plane** ([`placement`]): every
//!   [`TenantSpec`] launch routes through [`Fleet::launch`], which picks
//!   a host under a [`PlacementPolicy`] (first-fit, least-loaded,
//!   weighted spread) against per-host rank capacity;
//! * a **modeled inter-host network** ([`link`]): snapshot bytes ship
//!   over a serialized [`Link`] whose transfer time is pure integer
//!   virtual time, so fleet-level reports stay bit-identical across
//!   dispatch modes and thread counts;
//! * **live migration** ([`migrate`]): quiesce a tenant's ranks at their
//!   slot-lock safe points, snapshot bit-exactly
//!   ([`Rank::snapshot_quiescent`]), ship over the link (stop-and-copy,
//!   or pre-copy with a dirty re-send round), restore on the destination
//!   and atomically re-home the tenant — with rollback to the source on
//!   any failure, including injected `cluster.link.drop` /
//!   `cluster.migrate.stall` faults.
//!
//! Fleet-wide telemetry (`cluster.*`, `migrate.*`) lives in the fleet's
//! own [`MetricsRegistry`]; per-host metrics stay in each host's
//! registry, reachable via [`FleetHost::system`].
//!
//! The fleet-level load harness ([`Fleet::load_run`]) reuses the
//! single-host session engine: host assignment is precomputed as a pure
//! function of the spec (weighted round-robin, ties to the lowest host),
//! phase A executes sessions against their assigned hosts, and phase B
//! replays each host's queue independently — so a [`FleetLoadReport`] is
//! bit-identical for a given seed, which is what lets
//! `ci/cluster-gate.sh` publish the consolidation curve (tenants
//! sustained at a p99 bound on 1 vs 2 vs 4 hosts) as `BENCH_cluster.json`.
//!
//! [`Rank::snapshot_quiescent`]: upmem_sim::Rank::snapshot_quiescent

pub mod host;
pub mod link;
pub mod migrate;
pub mod placement;

pub use host::FleetHost;
pub use link::{Link, LinkSpec, LINK_DROP_POINT};
pub use migrate::{MigrateMode, MigrateOpts, MigrationReport, MIGRATE_STALL_POINT};
pub use placement::PlacementPolicy;

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;
use simkit::lockorder::{ordered, LockLevel};
use simkit::telemetry::{Counter, Gauge, MetricsRegistry, TimeCounter, VtHistogram};
use simkit::{CostModel, FaultPlane, InjectCell, VirtualNanos, WorkerPool};
use upmem_sim::PimConfig;

use crate::config::VpimConfig;
use crate::error::VpimError;
use crate::load::session::{run_session, Admission, SessionRun, FAILED_OP};
use crate::load::{rate_milli_per_sec, LatencySummary, LoadSpec, TenantMix};
use crate::sched::SnapshotStore;
use crate::system::{StartOpts, TenantSpec, VpimVm};
use placement::PlacementTable;

/// How to build a [`Fleet`]: host count and geometry, per-host system
/// options, the placement policy, the link model, and migration budgets.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    hosts: usize,
    pim: PimConfig,
    vcfg: VpimConfig,
    opts: StartOpts,
    policy: PlacementPolicy,
    link: LinkSpec,
    weights: Vec<u64>,
    oversub_factor: usize,
    inflight_budget_mib: u64,
}

impl FleetSpec {
    /// `hosts` homogeneous hosts, each a [`PimConfig::small`] machine
    /// running [`VpimConfig::full`] with default [`StartOpts`],
    /// least-loaded placement, the default datacenter link, equal spread
    /// weights, no logical oversubscription, and an unlimited in-flight
    /// snapshot budget.
    #[must_use]
    pub fn new(hosts: usize) -> Self {
        let hosts = hosts.max(1);
        FleetSpec {
            hosts,
            pim: PimConfig::small(),
            vcfg: VpimConfig::full(),
            opts: StartOpts::default(),
            policy: PlacementPolicy::default(),
            link: LinkSpec::default(),
            weights: vec![1; hosts],
            oversub_factor: 1,
            inflight_budget_mib: 0,
        }
    }

    /// The machine geometry every host boots with (homogeneous fleet).
    #[must_use]
    pub fn pim(mut self, pim: PimConfig) -> Self {
        self.pim = pim;
        self
    }

    /// The optimization/injection configuration every host inherits. The
    /// `inject` section also arms the *fleet's* plane: `cluster.link.drop`
    /// and `cluster.migrate.stall` fire from the same seeded schedule
    /// space as the per-host sites.
    #[must_use]
    pub fn config(mut self, vcfg: VpimConfig) -> Self {
        self.vcfg = vcfg;
        self
    }

    /// Per-host start options (cost model, manager tuning, shards).
    #[must_use]
    pub fn start_opts(mut self, opts: StartOpts) -> Self {
        self.opts = opts;
        self
    }

    /// The placement policy.
    #[must_use]
    pub fn policy(mut self, p: PlacementPolicy) -> Self {
        self.policy = p;
        self
    }

    /// The inter-host link model.
    #[must_use]
    pub fn link(mut self, l: LinkSpec) -> Self {
        self.link = l;
        self
    }

    /// Spread weight for `host` (default 1 everywhere; used by
    /// [`PlacementPolicy::WeightedSpread`] and the load harness's session
    /// assignment).
    ///
    /// # Panics
    ///
    /// Panics when `host` is out of range.
    #[must_use]
    pub fn host_weight(mut self, host: usize, w: u64) -> Self {
        self.weights[host] = w;
        self
    }

    /// Logical rank-capacity multiplier per host (≥ 1). With the
    /// single-host scheduler's oversubscription enabled, a host can admit
    /// more tenant ranks than physical ranks; the placement table's
    /// capacity is `physical × factor`.
    #[must_use]
    pub fn oversub_factor(mut self, f: usize) -> Self {
        self.oversub_factor = f.max(1);
        self
    }

    /// Byte budget for snapshots in flight over the link (MiB, 0 =
    /// unlimited). A migration that would exceed it aborts cleanly.
    #[must_use]
    pub fn inflight_budget_mib(mut self, mib: u64) -> Self {
        self.inflight_budget_mib = mib;
        self
    }
}

/// Fleet-wide telemetry cells (all in the fleet registry).
#[derive(Debug)]
pub(crate) struct FleetMetrics {
    /// `cluster.tenants.launched`.
    pub launched: Counter,
    /// `cluster.tenants.live`.
    pub live: Gauge,
    /// `cluster.place.rejected` — launches refused for capacity.
    pub rejected: Counter,
    /// `migrate.attempts`.
    pub attempts: Counter,
    /// `migrate.completed`.
    pub completed: Counter,
    /// `migrate.aborted`.
    pub aborted: Counter,
    /// `migrate.bytes` — total bytes shipped by completed migrations.
    pub bytes: Counter,
    /// `migrate.dirty.bytes` — pre-copy round-2 dirty bytes re-sent.
    pub dirty_bytes: Counter,
    /// `migrate.downtime` — stop-and-copy window per completed migration.
    pub downtime: VtHistogram,
    /// `migrate.vt` — total virtual migration time.
    pub vt: TimeCounter,
}

impl FleetMetrics {
    fn from_registry(r: &MetricsRegistry) -> Self {
        FleetMetrics {
            launched: r.counter("cluster.tenants.launched"),
            live: r.gauge("cluster.tenants.live"),
            rejected: r.counter("cluster.place.rejected"),
            attempts: r.counter("migrate.attempts"),
            completed: r.counter("migrate.completed"),
            aborted: r.counter("migrate.aborted"),
            bytes: r.counter("migrate.bytes"),
            dirty_bytes: r.counter("migrate.dirty.bytes"),
            downtime: r.histogram("migrate.downtime"),
            vt: r.time("migrate.vt"),
        }
    }
}

/// A tenant's mutable fleet-side state, behind its entry lock
/// (`LockLevel::Fleet`, index 1).
#[derive(Debug)]
pub(crate) struct TenantState {
    pub vm: VpimVm,
    pub spec: TenantSpec,
    pub host: usize,
}

/// One tenant's slot in the fleet map. `None` state means released.
#[derive(Debug)]
pub(crate) struct TenantEntry {
    pub state: Mutex<Option<TenantState>>,
}

/// N vPIM hosts behind one placement plane, with live migration.
///
/// ```
/// use vpim::cluster::{Fleet, FleetSpec, MigrateOpts, PlacementPolicy};
/// use vpim::prelude::*;
///
/// let fleet = Fleet::start(FleetSpec::new(2).policy(PlacementPolicy::FirstFit));
/// let home = fleet.launch(TenantSpec::new("tenant-a").mem_mib(16)).unwrap();
/// assert_eq!(home, 0);
/// fleet
///     .with_vm("tenant-a", |vm| {
///         vm.frontend(0).write_rank(&[(0, 0, &[7u8; 64])]).map(|_| ())
///     })
///     .unwrap();
/// let report = fleet.migrate("tenant-a", 1, MigrateOpts::default()).unwrap();
/// assert_eq!(report.to, 1);
/// assert_eq!(fleet.host_of("tenant-a"), Some(1));
/// fleet.release("tenant-a").unwrap();
/// ```
#[derive(Debug)]
pub struct Fleet {
    hosts: Vec<FleetHost>,
    policy: PlacementPolicy,
    /// Tenant map (`LockLevel::Fleet`, index 0).
    tenants: Mutex<HashMap<String, Arc<TenantEntry>>>,
    /// Placement/admission table (`LockLevel::Placement`).
    placement: Mutex<PlacementTable>,
    link: Link,
    /// Snapshots in flight between hosts during a migration
    /// (`migrate.inflight.bytes` gauge).
    pub(crate) inflight: SnapshotStore,
    registry: MetricsRegistry,
    /// Fleet-level fault plane (`Some` iff `vcfg.inject` enabled).
    plane: Option<Arc<FaultPlane>>,
    /// `cluster.migrate.stall` consults this cell.
    pub(crate) inject: InjectCell,
    pub(crate) metrics: FleetMetrics,
    /// Cost model migrations charge snapshot/restore against (the hosts
    /// are homogeneous, so one model serves the fleet).
    pub(crate) cm: CostModel,
}

// The fleet is shared across session workers and migration drivers.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Fleet>();
};

impl Fleet {
    /// Boots `spec.hosts` independent hosts and the fleet plane around
    /// them.
    #[must_use]
    pub fn start(spec: FleetSpec) -> Self {
        let registry = MetricsRegistry::new();
        let hosts: Vec<FleetHost> = (0..spec.hosts)
            .map(|id| FleetHost::boot(id, &spec.pim, spec.vcfg, spec.opts.clone()))
            .collect();
        let capacity: Vec<usize> =
            hosts.iter().map(|h| h.rank_count() * spec.oversub_factor).collect();
        let placement = Mutex::new(PlacementTable::new(capacity, spec.weights.clone()));
        let link = Link::with_registry(spec.link, &registry);
        let inflight = SnapshotStore::with_registry(
            spec.inflight_budget_mib.saturating_mul(1 << 20),
            &registry,
            "migrate.inflight.bytes",
        );
        let inject = InjectCell::new();
        let plane = if spec.vcfg.inject.enabled {
            let plane = Arc::new(FaultPlane::with_registry(spec.vcfg.inject.seed, &registry));
            for fault in spec.vcfg.inject.armed() {
                plane.arm(fault.site.name(), fault.plan);
            }
            link.install_fault_plane(plane.clone());
            inject.install(plane.clone());
            Some(plane)
        } else {
            None
        };
        registry.gauge("cluster.hosts").set(spec.hosts as i64);
        let cm = hosts[0].system().cost_model().clone();
        Fleet {
            hosts,
            policy: spec.policy,
            tenants: Mutex::new(HashMap::new()),
            placement,
            link,
            inflight,
            metrics: FleetMetrics::from_registry(&registry),
            registry,
            plane,
            inject,
            cm,
        }
    }

    /// The fleet's hosts, in index order.
    #[must_use]
    pub fn hosts(&self) -> &[FleetHost] {
        &self.hosts
    }

    /// Host `i`.
    #[must_use]
    pub fn host(&self, i: usize) -> &FleetHost {
        &self.hosts[i]
    }

    /// The fleet-wide registry (`cluster.*`, `migrate.*`).
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The inter-host link.
    #[must_use]
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// The placement policy in force.
    #[must_use]
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// The fleet's fault plane, when `vcfg.inject` enabled one.
    #[must_use]
    pub fn fault_plane(&self) -> Option<&Arc<FaultPlane>> {
        self.plane.as_ref()
    }

    /// Routes `spec` to a host under the placement policy, launches its
    /// microVM there, and homes the tenant. Returns the chosen host.
    ///
    /// # Errors
    ///
    /// [`VpimError::NoRankAvailable`] when no host has capacity,
    /// [`VpimError::BadRequest`] for a duplicate tag, or any launch
    /// failure from the chosen host (the reservation is rolled back).
    pub fn launch(&self, spec: TenantSpec) -> Result<usize, VpimError> {
        let tenant = spec.tag().to_string();
        let need = spec.n_devices();
        let host = {
            let _ord = ordered(LockLevel::Placement, 0);
            let mut table = self.placement.lock();
            match table.place(self.policy, &tenant, need) {
                Ok(h) => h,
                Err(e) => {
                    if matches!(e, VpimError::NoRankAvailable) {
                        self.metrics.rejected.inc();
                    }
                    return Err(e);
                }
            }
        };
        let vm = match self.hosts[host].launch_with_retry(&spec) {
            Ok(vm) => vm,
            Err(e) => {
                let _ord = ordered(LockLevel::Placement, 0);
                self.placement.lock().release(&tenant, host, need);
                return Err(e);
            }
        };
        let entry = Arc::new(TenantEntry {
            state: Mutex::new(Some(TenantState { vm, spec, host })),
        });
        {
            let _ord = ordered(LockLevel::Fleet, 0);
            self.tenants.lock().insert(tenant, entry);
        }
        self.metrics.launched.inc();
        self.metrics.live.add(1);
        Ok(host)
    }

    /// Looks up a tenant's entry handle.
    pub(crate) fn entry(&self, tenant: &str) -> Result<Arc<TenantEntry>, VpimError> {
        let _ord = ordered(LockLevel::Fleet, 0);
        self.tenants
            .lock()
            .get(tenant)
            .cloned()
            .ok_or_else(|| VpimError::BadRequest(format!("unknown tenant {tenant}")))
    }

    /// Runs `f` against the tenant's live VM, wherever it currently
    /// lives. The entry lock pins the tenant for the duration, so ops
    /// never observe a VM mid-migration.
    ///
    /// # Errors
    ///
    /// [`VpimError::BadRequest`] for an unknown or released tenant, or
    /// whatever `f` returns.
    pub fn with_vm<T>(
        &self,
        tenant: &str,
        f: impl FnOnce(&VpimVm) -> Result<T, VpimError>,
    ) -> Result<T, VpimError> {
        let entry = self.entry(tenant)?;
        let _ord = ordered(LockLevel::Fleet, 1);
        let state = entry.state.lock();
        let Some(state) = state.as_ref() else {
            return Err(VpimError::BadRequest(format!("tenant {tenant} released")));
        };
        f(&state.vm)
    }

    /// Releases a tenant: frees its ranks on its home host, expedites the
    /// manager sweep there, and drops its placement.
    ///
    /// # Errors
    ///
    /// [`VpimError::BadRequest`] for an unknown tenant.
    pub fn release(&self, tenant: &str) -> Result<(), VpimError> {
        let entry = {
            let _ord = ordered(LockLevel::Fleet, 0);
            self.tenants.lock().remove(tenant)
        }
        .ok_or_else(|| VpimError::BadRequest(format!("unknown tenant {tenant}")))?;
        let taken = {
            let _ord = ordered(LockLevel::Fleet, 1);
            entry.state.lock().take()
        };
        let Some(state) = taken else { return Ok(()) };
        let TenantState { vm, spec, host } = state;
        let _ = vm.release_all();
        drop(vm);
        self.hosts[host].system().sync_ranks();
        {
            let _ord = ordered(LockLevel::Placement, 0);
            self.placement.lock().release(tenant, host, spec.n_devices());
        }
        self.metrics.live.sub(1);
        Ok(())
    }

    /// The tenant's current home, if placed.
    #[must_use]
    pub fn host_of(&self, tenant: &str) -> Option<usize> {
        let _ord = ordered(LockLevel::Placement, 0);
        self.placement.lock().home_of(tenant)
    }

    /// Committed live ranks on `host` (reservations included).
    #[must_use]
    pub fn live_ranks(&self, host: usize) -> usize {
        let _ord = ordered(LockLevel::Placement, 0);
        self.placement.lock().live_ranks(host)
    }

    /// Placement capacity of `host`.
    #[must_use]
    pub fn capacity(&self, host: usize) -> usize {
        let _ord = ordered(LockLevel::Placement, 0);
        self.placement.lock().capacity(host)
    }

    /// Every (tenant, home) pair, sorted by tenant.
    #[must_use]
    pub fn placements(&self) -> Vec<(String, usize)> {
        let _ord = ordered(LockLevel::Placement, 0);
        self.placement.lock().placements()
    }

    /// Number of placed tenants.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        let _ord = ordered(LockLevel::Placement, 0);
        self.placement.lock().len()
    }

    /// Releases every tenant and consumes the fleet (the hosts' manager
    /// daemons stop when their systems drop).
    pub fn shutdown(self) {
        let tenants: Vec<String> = {
            let _ord = ordered(LockLevel::Fleet, 0);
            self.tenants.lock().keys().cloned().collect()
        };
        for t in tenants {
            let _ = self.release(&t);
        }
    }

    // ------------------------------------------------------------------
    // Fleet-level load harness.
    // ------------------------------------------------------------------

    /// The pure per-session host assignment the load harness uses:
    /// weighted least-assigned, ties to the lowest host index (equal
    /// weights degrade to round-robin). A function of `(n, weights)`
    /// only — never of runtime load — so fleet reports are seed-stable.
    #[must_use]
    pub fn session_assignment(&self, n: usize) -> Vec<usize> {
        let m = self.hosts.len();
        let weights: Vec<u64> = {
            let _ord = ordered(LockLevel::Placement, 0);
            let table = self.placement.lock();
            (0..m).map(|h| table.weight(h).max(1)).collect()
        };
        let mut counts = vec![0u64; m];
        (0..n)
            .map(|_| {
                let h = (0..m)
                    .min_by(|&a, &b| {
                        let la = u128::from(counts[a]) * u128::from(weights[b]);
                        let lb = u128::from(counts[b]) * u128::from(weights[a]);
                        la.cmp(&lb).then(a.cmp(&b))
                    })
                    .expect("fleet has at least one host");
                counts[h] += 1;
                h
            })
            .collect()
    }

    /// Runs `spec` × `mix` across the fleet and reports. Sessions are
    /// assigned to hosts by [`session_assignment`](Self::session_assignment),
    /// executed through each host's real launch path (phase A), and
    /// replayed through per-host virtual queues (phase B) — same two-phase
    /// scheme as the single-host [`LoadHarness`](crate::load::LoadHarness),
    /// same invariant: **same seed ⇒ bit-identical [`FleetLoadReport`]**
    /// across execution modes, dispatch modes, and thread counts.
    #[must_use]
    pub fn load_run(&self, spec: &LoadSpec, mix: &TenantMix) -> FleetLoadReport {
        use crate::load::Execution;

        let n = spec.n_sessions();
        let m = self.hosts.len();
        let assignment = self.session_assignment(n);
        let arrivals: Vec<u64> =
            spec.arrival_process().times(spec.seed(), n).iter().map(|t| t.as_nanos()).collect();

        // Phase A: run every session against its assigned host.
        let runs: Vec<SessionRun> = match spec.execution_mode() {
            Execution::Sequential => (0..n)
                .map(|i| run_session(self.hosts[assignment[i]].system(), mix, spec.seed(), i))
                .collect(),
            Execution::Pooled => {
                let servers = self.hosts.iter().map(FleetHost::rank_count).sum::<usize>();
                let workers = if spec.worker_threads() == 0 {
                    servers.min(8).max(1)
                } else {
                    spec.worker_threads()
                };
                let pool = WorkerPool::new(workers);
                let mix = Arc::new(mix.clone());
                let jobs = (0..n)
                    .map(|i| {
                        let sys = self.hosts[assignment[i]].system().clone();
                        let mix = mix.clone();
                        let seed = spec.seed();
                        move || run_session(&sys, &mix, seed, i)
                    })
                    .collect::<Vec<_>>();
                pool.run_all(jobs)
            }
        };

        // Phase B: an independent virtual queue per host.
        let session_hist = VtHistogram::new();
        let mut completed = 0u64;
        let mut giveups = 0u64;
        let mut launch_failures = 0u64;
        let mut ops_run = 0u64;
        let mut op_failures = 0u64;
        let mut checksum = 0u64;
        let mut makespan = 0u64;
        // (time, Δin_system) events for the fleet-wide concurrency peak;
        // same-instant departures sort before arrivals.
        let mut events: Vec<(u64, i64)> = Vec::with_capacity(n * 2);
        let mut per_host = Vec::with_capacity(m);
        for h in 0..m {
            let idx: Vec<usize> = (0..n).filter(|&i| assignment[i] == h).collect();
            let h_arrivals: Vec<u64> = idx.iter().map(|&i| arrivals[i]).collect();
            let h_runs: Vec<SessionRun> = idx.iter().map(|&i| runs[i].clone()).collect();
            let servers = if spec.server_count() == 0 {
                self.hosts[h].rank_count()
            } else {
                spec.server_count()
            }
            .max(1);
            let q = crate::load::session::simulate_queue(
                &h_arrivals,
                &h_runs,
                servers,
                spec.patience_limit().map(|p| p.as_nanos()),
            );
            let host_hist = VtHistogram::new();
            let mut h_completed = 0u64;
            let mut h_giveups = 0u64;
            let mut h_failures = 0u64;
            let mut h_checksum = 0u64;
            for (k, run) in h_runs.iter().enumerate() {
                match q.admissions[k] {
                    Admission::Failed => {
                        launch_failures += 1;
                        h_failures += 1;
                    }
                    Admission::GaveUp(left) => {
                        giveups += 1;
                        h_giveups += 1;
                        events.push((h_arrivals[k], 1));
                        events.push((left, -1));
                    }
                    Admission::Served(_, depart) => {
                        completed += 1;
                        h_completed += 1;
                        checksum = checksum.wrapping_add(run.checksum);
                        h_checksum = h_checksum.wrapping_add(run.checksum);
                        let sojourn = VirtualNanos::from_nanos(depart - h_arrivals[k]);
                        session_hist.record(sojourn);
                        host_hist.record(sojourn);
                        events.push((h_arrivals[k], 1));
                        events.push((depart, -1));
                        for &cost in &run.op_costs {
                            ops_run += 1;
                            op_failures += u64::from(cost == FAILED_OP);
                        }
                    }
                }
            }
            makespan = makespan.max(q.makespan_ns);
            per_host.push(HostLoad {
                host: h as u64,
                sessions: idx.len() as u64,
                completed: h_completed,
                giveups: h_giveups,
                launch_failures: h_failures,
                checksum: h_checksum,
                makespan: VirtualNanos::from_nanos(q.makespan_ns),
                session_latency: LatencySummary::of(&host_hist),
            });
        }
        events.sort_unstable();
        let (mut in_sys, mut peak) = (0i64, 0i64);
        for (_, d) in events {
            in_sys += d;
            peak = peak.max(in_sys);
        }

        let horizon = arrivals.last().copied().unwrap_or(0);
        let report = FleetLoadReport {
            seed: spec.seed(),
            hosts: m as u64,
            sessions: n as u64,
            completed,
            giveups,
            launch_failures,
            ops_run,
            op_failures,
            checksum,
            peak_concurrent: peak.max(0) as u64,
            horizon: VirtualNanos::from_nanos(horizon),
            makespan: VirtualNanos::from_nanos(makespan),
            offered_mps: rate_milli_per_sec(n as u64, horizon),
            sustained_mps: rate_milli_per_sec(completed, makespan),
            consolidation_milli: completed.saturating_mul(1000) / m as u64,
            session_latency: LatencySummary::of(&session_hist),
            per_host,
        };

        // Fleet-registry mirror (observability only; the report is the
        // determinism oracle).
        self.registry.histogram("cluster.load.session.latency").merge_from(&session_hist);
        self.registry.counter("cluster.load.sessions.offered").add(report.sessions);
        self.registry.counter("cluster.load.sessions.completed").add(report.completed);
        report
    }
}

/// One host's slice of a [`FleetLoadReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostLoad {
    /// The host index.
    pub host: u64,
    /// Sessions assigned here.
    pub sessions: u64,
    /// Sessions served to completion here.
    pub completed: u64,
    /// Sessions that gave up waiting here.
    pub giveups: u64,
    /// Sessions whose VM never launched here.
    pub launch_failures: u64,
    /// Commutative fold of this host's served checksums.
    pub checksum: u64,
    /// Virtual time of this host's last departure.
    pub makespan: VirtualNanos,
    /// Sojourn latency of this host's served sessions.
    pub session_latency: LatencySummary,
}

/// What a fleet load run measured: the global service-level outcome plus
/// per-host slices and the **consolidation ratio** — served tenants per
/// host (×1000, integer), the figure `BENCH_cluster.json` charts for
/// M = 1, 2, 4 hosts at a p99 bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetLoadReport {
    /// The base seed.
    pub seed: u64,
    /// Hosts in the fleet.
    pub hosts: u64,
    /// Sessions offered.
    pub sessions: u64,
    /// Sessions served to completion fleet-wide.
    pub completed: u64,
    /// Sessions that gave up waiting.
    pub giveups: u64,
    /// Sessions whose VM never launched.
    pub launch_failures: u64,
    /// Ops executed by served sessions.
    pub ops_run: u64,
    /// Ops that returned an error.
    pub op_failures: u64,
    /// Commutative fold of served sessions' checksums.
    pub checksum: u64,
    /// Peak sessions simultaneously in the fleet (virtual time).
    pub peak_concurrent: u64,
    /// Virtual time of the last arrival.
    pub horizon: VirtualNanos,
    /// Virtual time of the last departure on any host.
    pub makespan: VirtualNanos,
    /// Offered load, milli-sessions per virtual second.
    pub offered_mps: u64,
    /// Sustained fleet throughput over the makespan.
    pub sustained_mps: u64,
    /// Served tenants per host, ×1000 (integer consolidation ratio).
    pub consolidation_milli: u64,
    /// Fleet-wide sojourn latency.
    pub session_latency: LatencySummary,
    /// Per-host slices, in host order.
    pub per_host: Vec<HostLoad>,
}

impl FleetLoadReport {
    /// Canonical JSON: fixed key order, integer-only values, no
    /// whitespace — equal reports serialize to identical bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(768);
        let _ = write!(
            out,
            "{{\"seed\":{},\"hosts\":{},\"sessions\":{},\"completed\":{},\"giveups\":{},\
             \"launch_failures\":{},\"ops_run\":{},\"op_failures\":{},\"checksum\":{},\
             \"peak_concurrent\":{},\"horizon_ns\":{},\"makespan_ns\":{},\"offered_mps\":{},\
             \"sustained_mps\":{},\"consolidation_milli\":{}",
            self.seed,
            self.hosts,
            self.sessions,
            self.completed,
            self.giveups,
            self.launch_failures,
            self.ops_run,
            self.op_failures,
            self.checksum,
            self.peak_concurrent,
            self.horizon.as_nanos(),
            self.makespan.as_nanos(),
            self.offered_mps,
            self.sustained_mps,
            self.consolidation_milli
        );
        out.push_str(",\"session_latency\":");
        self.session_latency.json(&mut out);
        out.push_str(",\"per_host\":[");
        for (i, h) in self.per_host.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"host\":{},\"sessions\":{},\"completed\":{},\"giveups\":{},\
                 \"launch_failures\":{},\"checksum\":{},\"makespan_ns\":{},\"session_latency\":",
                h.host,
                h.sessions,
                h.completed,
                h.giveups,
                h.launch_failures,
                h.checksum,
                h.makespan.as_nanos()
            );
            h.session_latency.json(&mut out);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet(hosts: usize) -> Fleet {
        Fleet::start(FleetSpec::new(hosts).policy(PlacementPolicy::FirstFit))
    }

    #[test]
    fn launch_places_and_release_frees() {
        let fleet = small_fleet(2);
        // PimConfig::small has 2 ranks per host.
        assert_eq!(fleet.capacity(0), 2);
        assert_eq!(fleet.launch(TenantSpec::new("a").mem_mib(16)).unwrap(), 0);
        assert_eq!(fleet.launch(TenantSpec::new("b").mem_mib(16)).unwrap(), 0);
        assert_eq!(fleet.launch(TenantSpec::new("c").mem_mib(16)).unwrap(), 1);
        assert_eq!(fleet.live_ranks(0), 2);
        assert_eq!(fleet.tenant_count(), 3);
        // Duplicate tags are refused before touching any host.
        assert!(matches!(
            fleet.launch(TenantSpec::new("a")),
            Err(VpimError::BadRequest(_))
        ));
        fleet.release("a").unwrap();
        assert_eq!(fleet.live_ranks(0), 1);
        assert!(fleet.host_of("a").is_none());
        assert!(matches!(fleet.release("a"), Err(VpimError::BadRequest(_))));
        fleet.shutdown();
    }

    #[test]
    fn full_fleet_rejects_with_telemetry() {
        let fleet = small_fleet(1);
        fleet.launch(TenantSpec::new("a").devices(2).mem_mib(16)).unwrap();
        assert!(matches!(
            fleet.launch(TenantSpec::new("b").mem_mib(16)),
            Err(VpimError::NoRankAvailable)
        ));
        assert_eq!(fleet.registry().snapshot().count("cluster.place.rejected"), 1);
        fleet.shutdown();
    }

    #[test]
    fn with_vm_reaches_the_home_host() {
        let fleet = small_fleet(2);
        fleet.launch(TenantSpec::new("a").mem_mib(16)).unwrap();
        let out = fleet
            .with_vm("a", |vm| {
                vm.frontend(0).write_rank(&[(0, 0, &[9u8; 128])])?;
                let (data, _) = vm.frontend(0).read_rank(&[(0, 0, 128)])?;
                Ok(data[0][0])
            })
            .unwrap();
        assert_eq!(out, 9);
        assert!(matches!(
            fleet.with_vm("nobody", |_| Ok(())),
            Err(VpimError::BadRequest(_))
        ));
        fleet.shutdown();
    }

    #[test]
    fn session_assignment_is_weighted_round_robin() {
        let fleet = small_fleet(3);
        assert_eq!(fleet.session_assignment(6), vec![0, 1, 2, 0, 1, 2]);
        let weighted = Fleet::start(FleetSpec::new(2).host_weight(1, 3));
        let a = weighted.session_assignment(8);
        assert_eq!(a.iter().filter(|&&h| h == 1).count(), 6);
        // Pure: same n, same assignment.
        assert_eq!(a, weighted.session_assignment(8));
        weighted.shutdown();
    }
}
