//! One fleet member: an independent [`VpimSystem`] with its own machine,
//! driver, manager, scheduler, and metrics registry.

use std::sync::Arc;
use std::time::{Duration, Instant};

use upmem_driver::UpmemDriver;
use upmem_sim::{PimConfig, PimMachine};

use crate::error::VpimError;
use crate::system::{StartOpts, TenantSpec, VpimSystem, VpimVm};

/// A host in the fleet. Owns its [`VpimSystem`] (and through it the
/// simulated machine); the fleet addresses it by index.
#[derive(Debug)]
pub struct FleetHost {
    id: usize,
    sys: Arc<VpimSystem>,
}

impl FleetHost {
    /// Boots host `id` on a fresh machine built from `pim`.
    pub(crate) fn boot(id: usize, pim: &PimConfig, vcfg: crate::config::VpimConfig, opts: StartOpts) -> Self {
        let machine = PimMachine::new(pim.clone());
        let driver = Arc::new(UpmemDriver::new(machine));
        let sys = Arc::new(VpimSystem::start(driver, vcfg, opts));
        FleetHost { id, sys }
    }

    /// The host's fleet index.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The host's system (registry, scheduler, manager all hang off it).
    #[must_use]
    pub fn system(&self) -> &Arc<VpimSystem> {
        &self.sys
    }

    /// Physical ranks on this host.
    #[must_use]
    pub fn rank_count(&self) -> usize {
        self.sys.driver().rank_count()
    }

    /// Launches `spec` on this host, absorbing the transient
    /// `NoRankAvailable`/`NotLinked` window while recently released ranks
    /// finish their reset sweep (the placement table has already
    /// guaranteed capacity — only recycle lag can stand in the way).
    pub(crate) fn launch_with_retry(&self, spec: &TenantSpec) -> Result<VpimVm, VpimError> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match self.sys.launch(spec.clone()) {
                Ok(vm) => return Ok(vm),
                Err(e @ (VpimError::NoRankAvailable | VpimError::NotLinked)) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    self.sys.sync_ranks();
                    std::thread::yield_now();
                }
                Err(e) => return Err(e),
            }
        }
    }
}
