//! The fleet's placement/admission table: which host every tenant lives
//! on and how many ranks each host has committed.
//!
//! The table is the single source of truth for tenant → host homes. All
//! mutations happen under one mutex ordered at
//! [`LockLevel::Placement`](simkit::lockorder::LockLevel::Placement), and
//! every path that changes capacity goes through explicit
//! reserve/commit/release steps so the invariants the proptest suite
//! checks hold at every instant:
//!
//! * a tenant is homed on **at most one host**;
//! * a host's committed ranks **never exceed its capacity**;
//! * migration **conserves** total committed ranks (the destination is
//!   reserved before the source is released, so the transient sum is
//!   *higher*, never lower — capacity is pessimistic during a move).

use std::collections::HashMap;

use crate::error::VpimError;

/// How the fleet picks a host for a new tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// The lowest-indexed host with room (packs the fleet left — the
    /// consolidation-friendly default for migration tests).
    FirstFit,
    /// The host with the fewest committed live ranks; ties go to the
    /// lowest index.
    #[default]
    LeastLoaded,
    /// The host with the lowest committed-ranks-to-weight ratio (compared
    /// by integer cross-multiplication, no floats); ties go to the lowest
    /// index. Weight 0 never receives placements.
    WeightedSpread,
}

/// Tenant homes plus per-host committed-rank accounting.
#[derive(Debug)]
pub(crate) struct PlacementTable {
    /// Rank capacity per host (physical ranks × the fleet's logical
    /// oversubscription factor).
    capacity: Vec<usize>,
    /// Spread weight per host (used by [`PlacementPolicy::WeightedSpread`]).
    weights: Vec<u64>,
    /// Ranks committed per host (reservations included).
    live: Vec<usize>,
    /// Tenant → home host.
    homes: HashMap<String, usize>,
}

impl PlacementTable {
    pub(crate) fn new(capacity: Vec<usize>, weights: Vec<u64>) -> Self {
        debug_assert_eq!(capacity.len(), weights.len());
        let live = vec![0; capacity.len()];
        PlacementTable { capacity, weights, live, homes: HashMap::new() }
    }

    /// Picks a host for `tenant` under `policy`, commits `need` ranks on
    /// it, and records the home. Fails with [`VpimError::NoRankAvailable`]
    /// when no host has room and [`VpimError::BadRequest`] when the
    /// tenant is already homed.
    pub(crate) fn place(
        &mut self,
        policy: PlacementPolicy,
        tenant: &str,
        need: usize,
    ) -> Result<usize, VpimError> {
        if self.homes.contains_key(tenant) {
            return Err(VpimError::BadRequest(format!("tenant {tenant} already placed")));
        }
        let n = self.capacity.len();
        let fits = |h: usize| self.live[h] + need <= self.capacity[h];
        let host = match policy {
            PlacementPolicy::FirstFit => (0..n).find(|&h| fits(h)),
            PlacementPolicy::LeastLoaded => {
                (0..n).filter(|&h| fits(h)).min_by_key(|&h| (self.live[h], h))
            }
            PlacementPolicy::WeightedSpread => (0..n)
                .filter(|&h| fits(h) && self.weights[h] > 0)
                .min_by(|&a, &b| {
                    // live[a]/w[a] <?> live[b]/w[b], cross-multiplied.
                    let la = self.live[a] as u128 * u128::from(self.weights[b]);
                    let lb = self.live[b] as u128 * u128::from(self.weights[a]);
                    la.cmp(&lb).then(a.cmp(&b))
                }),
        };
        let host = host.ok_or(VpimError::NoRankAvailable)?;
        self.live[host] += need;
        self.homes.insert(tenant.to_string(), host);
        Ok(host)
    }

    /// Reserves `need` ranks on `host` without homing anyone there — the
    /// destination half of a migration, taken *before* the source is
    /// touched so a failed move never leaves the fleet overcommitted.
    pub(crate) fn reserve(&mut self, host: usize, need: usize) -> Result<(), VpimError> {
        if self.live[host] + need > self.capacity[host] {
            return Err(VpimError::NoRankAvailable);
        }
        self.live[host] += need;
        Ok(())
    }

    /// Drops a reservation made by [`reserve`](Self::reserve) (migration
    /// aborted before cutover).
    pub(crate) fn unreserve(&mut self, host: usize, need: usize) {
        debug_assert!(self.live[host] >= need, "unreserve below zero");
        self.live[host] -= need;
    }

    /// Commits a migration cutover: re-homes `tenant` from `from` to `to`
    /// and releases the source's committed ranks (the destination's were
    /// already counted by [`reserve`](Self::reserve)).
    pub(crate) fn rehome(&mut self, tenant: &str, from: usize, to: usize, need: usize) {
        debug_assert_eq!(self.homes.get(tenant), Some(&from), "rehome of a foreign tenant");
        debug_assert!(self.live[from] >= need);
        self.homes.insert(tenant.to_string(), to);
        self.live[from] -= need;
    }

    /// Releases a tenant entirely (shutdown path).
    pub(crate) fn release(&mut self, tenant: &str, host: usize, need: usize) {
        debug_assert!(self.live[host] >= need, "release below zero");
        self.homes.remove(tenant);
        self.live[host] -= need;
    }

    /// The home of `tenant`, if placed.
    pub(crate) fn home_of(&self, tenant: &str) -> Option<usize> {
        self.homes.get(tenant).copied()
    }

    /// Committed live ranks on `host`.
    pub(crate) fn live_ranks(&self, host: usize) -> usize {
        self.live[host]
    }

    /// Rank capacity of `host`.
    pub(crate) fn capacity(&self, host: usize) -> usize {
        self.capacity[host]
    }

    /// Spread weight of `host`.
    pub(crate) fn weight(&self, host: usize) -> u64 {
        self.weights[host]
    }

    /// Every (tenant, home) pair, sorted by tenant for determinism.
    pub(crate) fn placements(&self) -> Vec<(String, usize)> {
        let mut out: Vec<_> = self.homes.iter().map(|(t, &h)| (t.clone(), h)).collect();
        out.sort();
        out
    }

    /// Number of placed tenants.
    pub(crate) fn len(&self) -> usize {
        self.homes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PlacementTable {
        PlacementTable::new(vec![4, 4, 4], vec![1, 1, 1])
    }

    #[test]
    fn first_fit_packs_left() {
        let mut t = table();
        assert_eq!(t.place(PlacementPolicy::FirstFit, "a", 2).unwrap(), 0);
        assert_eq!(t.place(PlacementPolicy::FirstFit, "b", 2).unwrap(), 0);
        assert_eq!(t.place(PlacementPolicy::FirstFit, "c", 1).unwrap(), 1);
        assert_eq!(t.live_ranks(0), 4);
        assert_eq!(t.live_ranks(1), 1);
    }

    #[test]
    fn least_loaded_spreads() {
        let mut t = table();
        assert_eq!(t.place(PlacementPolicy::LeastLoaded, "a", 2).unwrap(), 0);
        assert_eq!(t.place(PlacementPolicy::LeastLoaded, "b", 1).unwrap(), 1);
        assert_eq!(t.place(PlacementPolicy::LeastLoaded, "c", 1).unwrap(), 2);
        // 0 has 2 live, 1 and 2 have 1 — tie goes to the lower index.
        assert_eq!(t.place(PlacementPolicy::LeastLoaded, "d", 1).unwrap(), 1);
    }

    #[test]
    fn weighted_spread_respects_weights() {
        let mut t = PlacementTable::new(vec![8, 8], vec![1, 3]);
        // Host 1 has 3× the weight: it should absorb ~3 of every 4 ranks.
        let mut on1 = 0;
        for i in 0..8 {
            let h = t.place(PlacementPolicy::WeightedSpread, &format!("t{i}"), 1).unwrap();
            on1 += usize::from(h == 1);
        }
        assert_eq!(on1, 6, "weight-3 host takes 3/4 of placements");
        // A zero-weight host is never chosen.
        let mut z = PlacementTable::new(vec![8, 8], vec![0, 1]);
        for i in 0..4 {
            assert_eq!(z.place(PlacementPolicy::WeightedSpread, &format!("t{i}"), 1).unwrap(), 1);
        }
    }

    #[test]
    fn duplicate_and_full_are_refused() {
        let mut t = PlacementTable::new(vec![1], vec![1]);
        t.place(PlacementPolicy::FirstFit, "a", 1).unwrap();
        assert!(matches!(
            t.place(PlacementPolicy::FirstFit, "a", 1),
            Err(VpimError::BadRequest(_))
        ));
        assert!(matches!(
            t.place(PlacementPolicy::FirstFit, "b", 1),
            Err(VpimError::NoRankAvailable)
        ));
    }

    #[test]
    fn migration_accounting_reserve_then_rehome() {
        let mut t = table();
        t.place(PlacementPolicy::FirstFit, "a", 2).unwrap();
        t.reserve(1, 2).unwrap();
        // Transiently both sides are committed.
        assert_eq!(t.live_ranks(0) + t.live_ranks(1), 4);
        t.rehome("a", 0, 1, 2);
        assert_eq!(t.home_of("a"), Some(1));
        assert_eq!(t.live_ranks(0), 0);
        assert_eq!(t.live_ranks(1), 2);
        t.release("a", 1, 2);
        assert_eq!(t.len(), 0);
        assert_eq!(t.live_ranks(1), 0);
    }

    #[test]
    fn reserve_respects_capacity() {
        let mut t = PlacementTable::new(vec![2], vec![1]);
        t.reserve(0, 2).unwrap();
        assert!(matches!(t.reserve(0, 1), Err(VpimError::NoRankAvailable)));
        t.unreserve(0, 2);
        t.reserve(0, 1).unwrap();
    }
}
