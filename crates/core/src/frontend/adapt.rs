//! The adaptive frontend controller (DESIGN.md §16).
//!
//! `AdaptState` closes the loop between the telemetry the frontend already
//! produces (hits, misses, fetch utilization, inter-op virtual gaps) and
//! the two data-path policies that were static in the paper: the prefetch
//! window and the batch flush threshold. It lives inside the frontend's
//! state mutex and is driven synchronously by the operation stream, so —
//! like the [`policy`](super::policy) machines it wraps — every decision
//! is a pure function of the per-frontend program order and virtual-time
//! costs: Sequential and Parallel dispatch observe the same stream and
//! make the same moves.
//!
//! Three mechanisms (§16 "actuation points"):
//!
//! * **window resizing** — cacheable misses fetch `window_bytes()` instead
//!   of the static cache capacity; retired fetches feed their utilization
//!   back, so one wasted 64 KiB fetch (the RED / HST-S single-pass
//!   pattern) shrinks every later DPU's fetch to the observed need, and
//!   streaming hit runs grow the window back;
//! * **write-then-read-back suppression** — per-DPU dirty extents are
//!   recorded on every write; a miss inside a DPU's dirty extent flips
//!   prefetch off for that DPU (reads go exact-length, nothing is
//!   installed) until a clean miss or a launch clears the pattern;
//! * **batch threshold adaptation** — the virtual gap between consecutive
//!   batched appends moves the flush threshold: idle gaps flush the parked
//!   writes and halve it, burst runs double it toward the allocated
//!   maximum.

use simkit::{Counter, Gauge, MetricsRegistry};

use crate::config::AdaptSection;

use super::policy::{BatchAction, BatchPolicy, WindowMove, WindowPolicy, PAGE};

/// Registry-owned cells the controller publishes into (`frontend.adapt.*`).
/// Window/threshold levels are gauges (set at decision points, which are
/// serialized under the frontend state lock); everything else counts.
#[derive(Debug, Clone)]
pub struct AdaptMetrics {
    window_pages: Gauge,
    batch_pages: Gauge,
    grows: Counter,
    shrinks: Counter,
    flips: Counter,
    early_flushes: Counter,
    saved_bytes: Counter,
    extra_bytes: Counter,
}

impl AdaptMetrics {
    /// Creates the cells in `registry`, with per-device gauge names.
    #[must_use]
    pub fn from_registry(registry: &MetricsRegistry, device_idx: usize) -> Self {
        AdaptMetrics {
            window_pages: registry.gauge(&format!("frontend.adapt.window.pages.rank{device_idx}")),
            batch_pages: registry.gauge(&format!("frontend.adapt.batch.pages.rank{device_idx}")),
            grows: registry.counter("frontend.adapt.window.grows"),
            shrinks: registry.counter("frontend.adapt.window.shrinks"),
            flips: registry.counter("frontend.adapt.prefetch.flips"),
            early_flushes: registry.counter("frontend.adapt.batch.early_flushes"),
            saved_bytes: registry.counter("frontend.adapt.bytes.saved"),
            extra_bytes: registry.counter("frontend.adapt.bytes.extra"),
        }
    }
}

/// One DPU's controller-visible state.
#[derive(Debug, Clone, Default)]
struct DpuAdapt {
    /// `[lo, hi)` extent dirtied by writes since the last launch/release.
    dirty: Option<(u64, u64)>,
    /// Prefetch suppressed for this DPU (write-then-read-back detected).
    prefetch_off: bool,
    /// The DPU's resident fetch, if its utilization is still unassessed.
    fetch: Option<FetchStats>,
}

#[derive(Debug, Clone)]
struct FetchStats {
    fetched: u64,
    served: u64,
}

/// What the read path should do about a cacheable miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MissPlan {
    /// Bytes to fetch starting at the missed offset (before the caller
    /// clamps to MRAM bounds). Equal to the request length when `install`
    /// is false.
    pub fetch_bytes: u64,
    /// Whether to install the fetched segment in the cache.
    pub install: bool,
}

/// The per-frontend feedback controller. Created by
/// [`Frontend::initialize`](super::Frontend::initialize) when
/// `VpimConfig.adapt.enabled`; absent otherwise, leaving the static
/// policies byte-identical to the pre-controller system.
#[derive(Debug)]
pub struct AdaptState {
    window: WindowPolicy,
    batch: BatchPolicy,
    dpus: Vec<DpuAdapt>,
    /// DPU of the most recent install (assessed on the next miss, so a
    /// wasted fetch on DPU *k* shrinks DPU *k+1*'s fetch — cross-DPU
    /// learning for single-pass result walks).
    last_fetch: Option<u32>,
    /// Virtual time accumulated from completed op reports.
    vt_now_ns: u64,
    /// `vt_now_ns` at the previous batched append, once one happened.
    last_append_vt_ns: Option<u64>,
    metrics: AdaptMetrics,
}

impl AdaptState {
    /// Builds the controller from the config section, starting from the
    /// static policies' sizes.
    #[must_use]
    pub fn new(
        s: &AdaptSection,
        initial_window_pages: u32,
        initial_batch_pages: u32,
        nr_dpus: usize,
        metrics: AdaptMetrics,
    ) -> Self {
        let window = WindowPolicy::new(initial_window_pages, s);
        let batch = BatchPolicy::new(initial_batch_pages, s);
        metrics.window_pages.set(i64::from(window.window_pages()));
        metrics.batch_pages.set(i64::from(batch.threshold_pages()));
        AdaptState {
            window,
            batch,
            dpus: vec![DpuAdapt::default(); nr_dpus],
            last_fetch: None,
            vt_now_ns: 0,
            last_append_vt_ns: None,
            metrics,
        }
    }

    /// Current prefetch window in pages (for tests and debugging).
    #[must_use]
    pub fn window_pages(&self) -> u32 {
        self.window.window_pages()
    }

    /// Current batch flush threshold in bytes.
    #[must_use]
    pub fn batch_threshold_bytes(&self) -> u64 {
        self.batch.threshold_bytes()
    }

    /// Advances the controller's virtual clock by a completed op's
    /// duration (the "operation boundary" sample point).
    pub(crate) fn tick(&mut self, d: simkit::VirtualNanos) {
        self.vt_now_ns = self.vt_now_ns.saturating_add(d.as_nanos());
    }

    /// Observes a batched append about to happen; returns `true` when the
    /// parked batch should flush first (the tenant was idle).
    pub(crate) fn observe_append_gap(&mut self, has_pending: bool) -> bool {
        let gap = match self.last_append_vt_ns {
            Some(prev) => self.vt_now_ns.saturating_sub(prev),
            // The first append ever has no gap to learn from.
            None => 0,
        };
        self.last_append_vt_ns = Some(self.vt_now_ns);
        let action = self.batch.on_append_gap(gap, has_pending);
        self.metrics.batch_pages.set(i64::from(self.batch.threshold_pages()));
        match action {
            BatchAction::FlushFirst => {
                self.metrics.early_flushes.inc();
                true
            }
            BatchAction::Keep => false,
        }
    }

    /// Records a write (batched or direct) to `dpu`'s `[offset,
    /// offset+len)`, widening its dirty extent.
    pub(crate) fn note_write(&mut self, dpu: u32, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        if let Some(d) = self.dpus.get_mut(dpu as usize) {
            let hi = offset.saturating_add(len);
            d.dirty = Some(match d.dirty {
                Some((lo0, hi0)) => (lo0.min(offset), hi0.max(hi)),
                None => (offset, hi),
            });
        }
    }

    /// A cache hit on `dpu`: feeds the window's hit run and the resident
    /// fetch's utilization.
    pub(crate) fn on_hit(&mut self, dpu: u32, len: u64) {
        self.window.on_hit(dpu);
        if let Some(f) = self.dpus.get_mut(dpu as usize).and_then(|d| d.fetch.as_mut()) {
            f.served = f.served.saturating_add(len);
        }
    }

    /// A cacheable miss on `dpu` at `offset`/`len`; `span` is the DPU's
    /// resident segment (for overrun detection). Decides what to fetch.
    pub(crate) fn on_miss(
        &mut self,
        dpu: u32,
        offset: u64,
        len: u64,
        span: Option<(u64, u64)>,
    ) -> MissPlan {
        // 1. Assess the most recent fetch: a mostly-wasted one shrinks the
        //    window before we size this miss's fetch.
        if let Some(prev) = self.last_fetch.take() {
            self.assess_fetch(prev as usize);
        }

        // 2. Write-then-read-back: a miss inside this DPU's dirty extent
        //    means we would refetch data the guest just wrote. Suppress
        //    prefetch for the DPU until the pattern clears.
        let in_dirty = self
            .dpus
            .get(dpu as usize)
            .and_then(|d| d.dirty)
            .is_some_and(|(lo, hi)| offset < hi && offset.saturating_add(len) > lo);
        let d = match self.dpus.get_mut(dpu as usize) {
            Some(d) => d,
            None => return MissPlan { fetch_bytes: len, install: false },
        };
        if in_dirty {
            if !d.prefetch_off {
                d.prefetch_off = true;
                self.metrics.flips.inc();
            }
            self.window.on_plain_miss();
            return MissPlan { fetch_bytes: len, install: false };
        }
        if d.prefetch_off {
            // A clean miss: the read-back pattern has moved on.
            d.prefetch_off = false;
            self.metrics.flips.inc();
        }

        // 3. Streaming detection: a miss landing exactly at the end of the
        //    resident segment after a hit run doubles the window.
        let overrun = span.and_then(|(b, l)| b.checked_add(l)).is_some_and(|end| offset == end);
        let mv = if overrun {
            self.window.on_overrun_miss(dpu)
        } else {
            self.window.on_plain_miss();
            WindowMove::Hold
        };
        self.note_move(mv);

        MissPlan { fetch_bytes: self.window.window_bytes().max(len), install: true }
    }

    /// Records the segment actually installed for `dpu` after a miss:
    /// `fetched` bytes, of which the missing read itself consumed
    /// `first_served`.
    pub(crate) fn note_install(&mut self, dpu: u32, fetched: u64, first_served: u64) {
        if let Some(d) = self.dpus.get_mut(dpu as usize) {
            d.fetch = Some(FetchStats { fetched, served: first_served });
            self.last_fetch = Some(dpu);
        }
    }

    /// Accounts an adaptive fetch decision against what the static policy
    /// would have transferred.
    pub(crate) fn note_fetch_delta(&mut self, static_bytes: u64, actual_bytes: u64) {
        if actual_bytes < static_bytes {
            self.metrics.saved_bytes.add(static_bytes - actual_bytes);
        } else {
            self.metrics.extra_bytes.add(actual_bytes - static_bytes);
        }
    }

    /// Whether prefetch is currently suppressed for `dpu`.
    #[must_use]
    pub fn prefetch_suppressed(&self, dpu: u32) -> bool {
        self.dpus.get(dpu as usize).is_some_and(|d| d.prefetch_off)
    }

    /// A launch/release barrier: DPU programs rewrite MRAM, so dirty
    /// extents and read-back suppression reset, and every resident fetch
    /// retires (feeding the window its utilization). Learned levels — the
    /// window and the batch threshold — persist across barriers; that
    /// persistence is what pays on the second and later queries.
    pub(crate) fn on_barrier(&mut self) {
        self.last_fetch = None;
        for i in 0..self.dpus.len() {
            self.assess_fetch(i);
            let d = &mut self.dpus[i];
            d.dirty = None;
            d.prefetch_off = false;
            d.fetch = None;
        }
    }

    fn assess_fetch(&mut self, dpu: usize) {
        let Some(stats) = self.dpus.get_mut(dpu).and_then(|d| d.fetch.take()) else {
            return;
        };
        // A fetch no larger than one window page can't shrink anything.
        if stats.fetched > PAGE {
            let mv = self.window.on_fetch_retired(stats.fetched, stats.served);
            self.note_move(mv);
        }
    }

    fn note_move(&mut self, mv: WindowMove) {
        match mv {
            WindowMove::Hold => {}
            WindowMove::Grew(p) => {
                self.metrics.grows.inc();
                self.metrics.window_pages.set(i64::from(p));
            }
            WindowMove::Shrank(p) => {
                self.metrics.shrinks.inc();
                self.metrics.window_pages.set(i64::from(p));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(nr_dpus: usize) -> AdaptState {
        let s = AdaptSection { enabled: true, ..AdaptSection::default() };
        let reg = MetricsRegistry::new();
        AdaptState::new(&s, 16, 64, nr_dpus, AdaptMetrics::from_registry(&reg, 0))
    }

    #[test]
    fn cross_dpu_waste_shrinks_the_next_fetch() {
        let mut a = state(4);
        // DPU 0 misses: full 16-page window.
        let p = a.on_miss(0, 0, 256, None);
        assert_eq!(p, MissPlan { fetch_bytes: 16 * PAGE, install: true });
        a.note_install(0, 16 * PAGE, 256);
        // DPU 1 misses: DPU 0's fetch is assessed (256 / 64 KiB served),
        // the window jumps to the observed need.
        let p = a.on_miss(1, 0, 256, None);
        assert_eq!(p, MissPlan { fetch_bytes: PAGE, install: true });
        a.note_install(1, PAGE, 256);
        // DPU 2: DPU 1's one-page fetch can't shrink further; stable.
        let p = a.on_miss(2, 0, 256, None);
        assert_eq!(p, MissPlan { fetch_bytes: PAGE, install: true });
        assert_eq!(a.window_pages(), 1);
    }

    #[test]
    fn dirty_read_back_suppresses_prefetch_until_clean_miss() {
        let mut a = state(2);
        a.note_write(0, 1000, 500);
        let p = a.on_miss(0, 1200, 64, None);
        assert_eq!(p, MissPlan { fetch_bytes: 64, install: false });
        assert!(a.prefetch_suppressed(0));
        // The other DPU is unaffected.
        assert!(!a.prefetch_suppressed(1));
        // A clean miss on DPU 0 clears the pattern and fetches windowed.
        let p = a.on_miss(0, 1_000_000, 64, None);
        assert!(p.install);
        assert!(!a.prefetch_suppressed(0));
    }

    #[test]
    fn barrier_clears_dirty_state_but_keeps_the_window() {
        let mut a = state(2);
        let _ = a.on_miss(0, 0, 256, None);
        a.note_install(0, 16 * PAGE, 256);
        let _ = a.on_miss(1, 0, 256, None); // assessed: window shrinks
        assert_eq!(a.window_pages(), 1);
        a.note_write(0, 0, 128);
        a.on_barrier();
        assert!(!a.prefetch_suppressed(0));
        // Dirty extent gone: a read over the old extent is a normal miss.
        let p = a.on_miss(0, 0, 256, None);
        assert!(p.install);
        // The learned window survived the barrier.
        assert_eq!(a.window_pages(), 1);
    }

    #[test]
    fn barrier_assesses_unretired_fetches() {
        let mut a = state(2);
        let _ = a.on_miss(0, 0, 256, None);
        a.note_install(0, 16 * PAGE, 256);
        assert_eq!(a.window_pages(), 16);
        a.on_barrier(); // retires DPU 0's wasted fetch
        assert_eq!(a.window_pages(), 1);
    }

    #[test]
    fn append_gaps_move_the_batch_threshold() {
        let mut a = state(1);
        assert_eq!(a.batch_threshold_bytes(), 64 * PAGE);
        assert!(!a.observe_append_gap(true)); // first append: no gap yet
        a.tick(simkit::VirtualNanos::from_micros(500));
        assert!(a.observe_append_gap(true)); // idle gap: flush first
        assert_eq!(a.batch_threshold_bytes(), 32 * PAGE);
        // A long burst doubles it back.
        for _ in 0..32 {
            a.tick(simkit::VirtualNanos::from_nanos(100));
            assert!(!a.observe_append_gap(true));
        }
        assert_eq!(a.batch_threshold_bytes(), 64 * PAGE);
    }
}
