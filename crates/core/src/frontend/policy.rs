//! Pure policy state machines for the adaptive frontend controller.
//!
//! These types hold *no* clocks, locks, or randomness: every transition is
//! a pure function of the event stream the frontend feeds them (hits,
//! misses, retired fetches, inter-append virtual gaps). That purity is the
//! determinism argument of DESIGN.md §16 — the per-frontend event stream
//! is fixed by the workload's program order and virtual-time costs, so the
//! policies reach identical decisions under Sequential and Parallel
//! dispatch and under any worker-thread count. It also makes the machines
//! directly drivable by property tests, with no system around them.

use crate::config::AdaptSection;

/// Bytes per MRAM page (the policy granule throughout the frontend).
pub const PAGE: u64 = 4096;

/// Pages needed to hold `bytes` (at least one).
#[must_use]
pub fn pages_for(bytes: u64) -> u32 {
    bytes.div_ceil(PAGE).clamp(1, u32::MAX as u64) as u32
}

/// The prefetch-window resizer.
///
/// The window is the number of pages a cacheable miss fetches per DPU.
/// Two signals move it, and they cannot fire on the same event:
///
/// * **shrink** — a retired fetch served less than `shrink_waste_pct`% of
///   its bytes; the window jumps down to the observed need (the RED /
///   HST-S pathology: 256 B read once out of a 64 KiB fetch);
/// * **grow** — a miss lands exactly at the end of a DPU's resident
///   segment after a run of `grow_hit_run` hits on that DPU (a stream has
///   outrun the window); the window doubles.
///
/// The window never leaves `[min_pages, max_pages]`, and on a steady
/// trace (constant served size, or pure streaming) it converges and stays
/// put — see the property tests in `tests/adapt_determinism.rs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowPolicy {
    min_pages: u32,
    max_pages: u32,
    window_pages: u32,
    grow_hit_run: u32,
    shrink_waste_pct: u32,
    /// Consecutive hits on `run_dpu` since its last miss.
    hit_run: u32,
    run_dpu: Option<u32>,
}

/// What a [`WindowPolicy`] event did to the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowMove {
    /// The window did not change.
    Hold,
    /// The window grew to the contained number of pages.
    Grew(u32),
    /// The window shrank to the contained number of pages.
    Shrank(u32),
}

impl WindowPolicy {
    /// Creates the resizer at `initial_pages` (clamped into the section's
    /// bounds).
    #[must_use]
    pub fn new(initial_pages: u32, s: &AdaptSection) -> Self {
        let min = s.min_window_pages.max(1);
        let max = s.max_window_pages.max(min);
        WindowPolicy {
            min_pages: min,
            max_pages: max,
            window_pages: initial_pages.clamp(min, max),
            grow_hit_run: s.grow_hit_run.max(1),
            shrink_waste_pct: s.shrink_waste_pct.min(100),
            hit_run: 0,
            run_dpu: None,
        }
    }

    /// Current window in pages.
    #[must_use]
    pub fn window_pages(&self) -> u32 {
        self.window_pages
    }

    /// Current window in bytes (the miss fetch granule).
    #[must_use]
    pub fn window_bytes(&self) -> u64 {
        self.window_pages as u64 * PAGE
    }

    /// A cache hit on `dpu`: extends that DPU's hit run.
    pub fn on_hit(&mut self, dpu: u32) {
        if self.run_dpu == Some(dpu) {
            self.hit_run = self.hit_run.saturating_add(1);
        } else {
            self.run_dpu = Some(dpu);
            self.hit_run = 1;
        }
    }

    /// A miss on `dpu` landing exactly at the end of its resident segment.
    /// After a long enough hit run on that DPU this is a stream outrunning
    /// the window: double it.
    pub fn on_overrun_miss(&mut self, dpu: u32) -> WindowMove {
        let streaming = self.run_dpu == Some(dpu) && self.hit_run >= self.grow_hit_run;
        self.run_dpu = None;
        self.hit_run = 0;
        if streaming && self.window_pages < self.max_pages {
            self.window_pages = (self.window_pages.saturating_mul(2)).min(self.max_pages);
            WindowMove::Grew(self.window_pages)
        } else {
            WindowMove::Hold
        }
    }

    /// A miss anywhere else: breaks the hit run.
    pub fn on_plain_miss(&mut self) {
        self.run_dpu = None;
        self.hit_run = 0;
    }

    /// A fetch retired having served `served` of its `fetched` bytes.
    /// Mostly-wasted fetches jump the window down to the observed need.
    pub fn on_fetch_retired(&mut self, fetched: u64, served: u64) -> WindowMove {
        if fetched == 0 {
            return WindowMove::Hold;
        }
        let wasted = served.saturating_mul(100) < fetched.saturating_mul(self.shrink_waste_pct as u64);
        let need = pages_for(served.max(1)).max(self.min_pages);
        if wasted && need < self.window_pages {
            self.window_pages = need;
            WindowMove::Shrank(self.window_pages)
        } else {
            WindowMove::Hold
        }
    }
}

/// The batch-flush-threshold adapter.
///
/// The frontend reports the virtual gap between consecutive batched
/// writes. A gap of `idle_gap` or more means the tenant went idle with
/// writes parked in the buffer — flush them now and halve the threshold
/// so the next idle period parks less. A run of `burst_grow_run` gaps at
/// or under `burst_gap` means the tenant is bursting — double the
/// threshold (up to `max_pages`, the allocated capacity) so more writes
/// ride one interrupt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPolicy {
    min_pages: u32,
    max_pages: u32,
    threshold_pages: u32,
    burst_grow_run: u32,
    idle_gap_ns: u64,
    burst_gap_ns: u64,
    burst_run: u32,
}

/// What a [`BatchPolicy`] gap observation asks the frontend to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchAction {
    /// Keep buffering.
    Keep,
    /// Flush the pending batch before appending (the tenant was idle).
    FlushFirst,
}

impl BatchPolicy {
    /// Creates the adapter at `initial_pages` (clamped into the section's
    /// bounds).
    #[must_use]
    pub fn new(initial_pages: u32, s: &AdaptSection) -> Self {
        let min = s.min_batch_pages.max(1);
        let max = s.max_batch_pages.max(min);
        BatchPolicy {
            min_pages: min,
            max_pages: max,
            threshold_pages: initial_pages.clamp(min, max),
            burst_grow_run: s.burst_grow_run.max(1),
            idle_gap_ns: s.idle_gap_us.saturating_mul(1_000),
            burst_gap_ns: s.burst_gap_us.saturating_mul(1_000),
            burst_run: 0,
        }
    }

    /// Current flush threshold in pages.
    #[must_use]
    pub fn threshold_pages(&self) -> u32 {
        self.threshold_pages
    }

    /// Current flush threshold in bytes.
    #[must_use]
    pub fn threshold_bytes(&self) -> u64 {
        self.threshold_pages as u64 * PAGE
    }

    /// Observes the virtual gap (nanoseconds) since the previous batched
    /// write; `has_pending` is whether writes are parked in the buffer.
    pub fn on_append_gap(&mut self, gap_ns: u64, has_pending: bool) -> BatchAction {
        if gap_ns >= self.idle_gap_ns {
            self.burst_run = 0;
            if self.threshold_pages > self.min_pages {
                self.threshold_pages = (self.threshold_pages / 2).max(self.min_pages);
            }
            if has_pending {
                return BatchAction::FlushFirst;
            }
        } else if gap_ns <= self.burst_gap_ns {
            self.burst_run += 1;
            if self.burst_run >= self.burst_grow_run {
                self.burst_run = 0;
                self.threshold_pages = self.threshold_pages.saturating_mul(2).min(self.max_pages);
            }
        } else {
            self.burst_run = 0;
        }
        BatchAction::Keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn section() -> AdaptSection {
        AdaptSection { enabled: true, ..AdaptSection::default() }
    }

    #[test]
    fn wasted_fetch_jumps_window_to_need() {
        let mut w = WindowPolicy::new(16, &section());
        // RED shape: 64 KiB fetched, 256 B served once.
        assert_eq!(w.on_fetch_retired(16 * PAGE, 256), WindowMove::Shrank(1));
        assert_eq!(w.window_pages(), 1);
        // Same trace again: already at need, holds (no oscillation).
        assert_eq!(w.on_fetch_retired(PAGE, 256), WindowMove::Hold);
    }

    #[test]
    fn well_used_fetch_holds_the_window() {
        let mut w = WindowPolicy::new(16, &section());
        assert_eq!(w.on_fetch_retired(16 * PAGE, 8 * PAGE), WindowMove::Hold);
        assert_eq!(w.window_pages(), 16);
    }

    #[test]
    fn streaming_overrun_doubles_until_max() {
        let mut w = WindowPolicy::new(16, &section());
        for round in 0..4 {
            for _ in 0..8 {
                w.on_hit(3);
            }
            let mv = w.on_overrun_miss(3);
            if round < 2 {
                assert!(matches!(mv, WindowMove::Grew(_)), "round {round}: {mv:?}");
            }
        }
        assert_eq!(w.window_pages(), 64); // 16 → 32 → 64, then capped
    }

    #[test]
    fn overrun_without_a_hit_run_is_not_a_stream() {
        let mut w = WindowPolicy::new(16, &section());
        w.on_hit(0);
        assert_eq!(w.on_overrun_miss(0), WindowMove::Hold);
        // A run on a different DPU does not qualify either.
        for _ in 0..20 {
            w.on_hit(1);
        }
        assert_eq!(w.on_overrun_miss(2), WindowMove::Hold);
        assert_eq!(w.window_pages(), 16);
    }

    #[test]
    fn plain_miss_breaks_the_run() {
        let mut w = WindowPolicy::new(16, &section());
        for _ in 0..8 {
            w.on_hit(0);
        }
        w.on_plain_miss();
        assert_eq!(w.on_overrun_miss(0), WindowMove::Hold);
    }

    #[test]
    fn idle_gap_flushes_and_halves() {
        let mut b = BatchPolicy::new(64, &section());
        assert_eq!(b.on_append_gap(200_000, true), BatchAction::FlushFirst);
        assert_eq!(b.threshold_pages(), 32);
        // Nothing pending: threshold still adapts, no flush requested.
        assert_eq!(b.on_append_gap(200_000, false), BatchAction::Keep);
        assert_eq!(b.threshold_pages(), 16);
        // Floor.
        for _ in 0..10 {
            b.on_append_gap(1_000_000, false);
        }
        assert_eq!(b.threshold_pages(), 16);
    }

    #[test]
    fn burst_runs_widen_the_threshold() {
        let mut b = BatchPolicy::new(64, &section());
        for _ in 0..32 {
            assert_eq!(b.on_append_gap(1_000, true), BatchAction::Keep);
        }
        assert_eq!(b.threshold_pages(), 128);
        // A mid-range gap resets the run without moving the threshold.
        for _ in 0..31 {
            b.on_append_gap(1_000, true);
        }
        b.on_append_gap(50_000, true);
        assert_eq!(b.threshold_pages(), 128);
        for _ in 0..64 {
            b.on_append_gap(0, true);
        }
        assert_eq!(b.threshold_pages(), 256); // capped at max
        for _ in 0..64 {
            b.on_append_gap(0, true);
        }
        assert_eq!(b.threshold_pages(), 256);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 1);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE), 1);
        assert_eq!(pages_for(PAGE + 1), 2);
        assert_eq!(pages_for(256), 1);
    }
}
