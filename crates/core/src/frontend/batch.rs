//! The frontend request-batching buffer (§4.1).
//!
//! Data written to MRAM is not consumed until a program launches or a read
//! occurs, so small `write-to-rank` requests can be accumulated in a batch
//! buffer (64 pages per DPU) and flushed collectively — one interrupt for
//! many writes. Batching does not reduce total data-writing time; it
//! reduces the number of guest↔VMM transitions (NW: 10 000 → 402 context
//! switches in the paper).

use std::collections::HashSet;

use simkit::Counter;

/// A buffered small write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingWrite {
    /// Target DPU.
    pub dpu: u32,
    /// MRAM offset.
    pub offset: u64,
    /// Data to write.
    pub data: Vec<u8>,
}

/// The per-device batch buffer.
#[derive(Debug)]
pub struct BatchBuffer {
    capacity_per_dpu: u64,
    /// Effective per-DPU fill level that triggers a flush. Equal to
    /// `capacity_per_dpu` under the static policy; the adaptive controller
    /// (DESIGN.md §16) moves it within `[4096, capacity_per_dpu]`.
    flush_threshold: u64,
    used_per_dpu: Vec<u64>,
    entries: Vec<PendingWrite>,
    /// `(dpu, page)` pairs already touched since the last flush — an append
    /// landing entirely on dirty pages is a *merge* (it rides along for
    /// free, page-wise, when the batch flushes).
    dirty_pages: HashSet<(u32, u64)>,
    appended: Counter,
    merges: Counter,
    flushes: Counter,
}

impl BatchBuffer {
    /// Creates a buffer for `nr_dpus` DPUs with `pages_per_dpu` pages each.
    #[must_use]
    pub fn new(nr_dpus: usize, pages_per_dpu: usize) -> Self {
        BatchBuffer {
            capacity_per_dpu: pages_per_dpu as u64 * 4096,
            flush_threshold: pages_per_dpu as u64 * 4096,
            used_per_dpu: vec![0; nr_dpus],
            entries: Vec::new(),
            dirty_pages: HashSet::new(),
            appended: Counter::new(),
            merges: Counter::new(),
            flushes: Counter::new(),
        }
    }

    /// Replaces the append/merge/flush cells with registry-owned counters
    /// (e.g. `frontend.batch.appends` / `frontend.batch.merges` /
    /// `frontend.batch.flushes`). Counts survive buffer re-creation because
    /// the cells do.
    #[must_use]
    pub fn with_counters(mut self, appends: Counter, merges: Counter, flushes: Counter) -> Self {
        self.appended = appends;
        self.merges = merges;
        self.flushes = flushes;
        self
    }

    /// Per-DPU capacity in bytes.
    #[must_use]
    pub fn capacity_per_dpu(&self) -> u64 {
        self.capacity_per_dpu
    }

    /// The per-DPU fill level that currently triggers a flush.
    #[must_use]
    pub fn flush_threshold(&self) -> u64 {
        self.flush_threshold
    }

    /// Moves the flush threshold, clamped to `[4096, capacity_per_dpu]`.
    /// Lowering it below a DPU's current fill does not flush by itself;
    /// the next append to that DPU reports overflow and the caller flushes
    /// as usual.
    pub fn set_flush_threshold(&mut self, bytes: u64) {
        self.flush_threshold = bytes.clamp(4096, self.capacity_per_dpu);
    }

    /// Whether the buffer holds no writes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Buffered bytes in total.
    #[must_use]
    pub fn pending_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.data.len() as u64).sum()
    }

    /// Buffered write count.
    #[must_use]
    pub fn pending_writes(&self) -> usize {
        self.entries.len()
    }

    /// True when `dpu`'s buffer cannot take `len` more bytes.
    #[must_use]
    pub fn would_overflow(&self, dpu: u32, len: u64) -> bool {
        match self.used_per_dpu.get(dpu as usize) {
            Some(used) => used + len > self.flush_threshold,
            None => true,
        }
    }

    /// Appends a small write. Returns `false` (without buffering) when the
    /// DPU's buffer would overflow — the caller must flush first.
    pub fn append(&mut self, dpu: u32, offset: u64, data: &[u8]) -> bool {
        if self.would_overflow(dpu, data.len() as u64) {
            return false;
        }
        self.used_per_dpu[dpu as usize] += data.len() as u64;
        let first = offset / 4096;
        let last = offset.saturating_add(data.len().saturating_sub(1) as u64) / 4096;
        let mut all_dirty = true;
        for page in first..=last {
            if self.dirty_pages.insert((dpu, page)) {
                all_dirty = false;
            }
        }
        if all_dirty {
            self.merges.inc();
        }
        self.entries.push(PendingWrite { dpu, offset, data: data.to_vec() });
        self.appended.inc();
        true
    }

    /// Drains every buffered write, in arrival order (FIFO preserves
    /// overlapping-write semantics).
    pub fn drain(&mut self) -> Vec<PendingWrite> {
        if !self.entries.is_empty() {
            self.flushes.inc();
        }
        for u in &mut self.used_per_dpu {
            *u = 0;
        }
        self.dirty_pages.clear();
        std::mem::take(&mut self.entries)
    }

    /// `(appends, flushes)` counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.appended.get(), self.flushes.get())
    }

    /// Appends whose target pages were all already dirty (write-combining
    /// opportunities within one batch window).
    #[must_use]
    pub fn merges(&self) -> u64 {
        self.merges.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_until_capacity() {
        let mut b = BatchBuffer::new(2, 1); // 4096 B per DPU
        assert!(b.append(0, 0, &[1u8; 4000]));
        assert!(!b.append(0, 4000, &[1u8; 100]));
        assert!(b.append(1, 0, &[2u8; 4096]));
        assert_eq!(b.pending_writes(), 2);
        assert_eq!(b.pending_bytes(), 8096);
    }

    #[test]
    fn drain_resets_and_preserves_order() {
        let mut b = BatchBuffer::new(1, 1);
        b.append(0, 0, &[1]);
        b.append(0, 1, &[2]);
        let drained = b.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].offset, 0);
        assert_eq!(drained[1].offset, 1);
        assert!(b.is_empty());
        // Capacity restored.
        assert!(b.append(0, 0, &[0u8; 4096]));
        assert_eq!(b.stats(), (3, 1));
    }

    #[test]
    fn unknown_dpu_overflows() {
        let b = BatchBuffer::new(1, 1);
        assert!(b.would_overflow(5, 1));
    }

    #[test]
    fn writes_landing_on_dirty_pages_count_as_merges() {
        let mut b = BatchBuffer::new(1, 4);
        assert!(b.append(0, 0, &[1u8; 64])); // page 0: fresh
        assert!(b.append(0, 64, &[2u8; 64])); // page 0 again: merge
        assert!(b.append(0, 4096, &[3u8; 64])); // page 1: fresh
        assert!(b.append(0, 4000, &[4u8; 200])); // spans pages 0–1, both dirty: merge
        assert_eq!(b.merges(), 2);
        b.drain();
        // The dirty set clears with the batch window.
        assert!(b.append(0, 0, &[5u8; 64]));
        assert_eq!(b.merges(), 2);
    }

    #[test]
    fn flush_threshold_clamps_and_gates_appends() {
        let mut b = BatchBuffer::new(1, 4); // 16 KiB capacity
        assert_eq!(b.flush_threshold(), 4 * 4096);
        b.set_flush_threshold(8192);
        assert!(b.append(0, 0, &[1u8; 8192]));
        assert!(!b.append(0, 8192, &[1u8; 1])); // over the lowered threshold
        b.set_flush_threshold(u64::MAX); // clamped to capacity
        assert_eq!(b.flush_threshold(), 4 * 4096);
        assert!(b.append(0, 8192, &[1u8; 8192]));
        b.set_flush_threshold(0); // clamped to one page
        assert_eq!(b.flush_threshold(), 4096);
        b.drain();
        assert!(b.append(0, 0, &[1u8; 4096]));
        assert!(!b.append(0, 4096, &[1u8; 1]));
    }

    #[test]
    fn empty_drain_is_not_a_flush() {
        let mut b = BatchBuffer::new(1, 1);
        assert!(b.drain().is_empty());
        assert_eq!(b.stats(), (0, 0));
    }
}
