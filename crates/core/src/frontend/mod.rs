//! The vUPMEM frontend driver (§3.1, §4.1): the guest-kernel half of vPIM.
//!
//! The frontend exposes the virtual UPMEM device to guest userspace (safe
//! mode: applications reach the device through this driver, never
//! directly), builds and serializes transfer matrices, and implements the
//! two anti-small-transfer optimizations: the [`PrefetchCache`] for reads
//! and the [`BatchBuffer`] for writes. Every operation returns an
//! [`OpReport`] carrying its virtual-time cost, message count and Fig. 13
//! step breakdown.

pub mod adapt;
mod batch;
pub mod policy;
mod prefetch;

pub use adapt::AdaptState;
pub use batch::{BatchBuffer, PendingWrite};
pub use prefetch::PrefetchCache;

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use pim_virtio::mmio::{reg, status as mmio_status};
use pim_virtio::queue::{DriverQueue, QueueLayout};
use pim_virtio::{Gpa, GuestMemory};
use pim_vmm::{EventManager, KickHandle, VirtioDevice};
use simkit::{
    BytePool, CostModel, Counter, Gauge, MetricsRegistry, RetryMetrics, RetryPolicy,
    TimeoutClass, VirtualNanos, WriteStep,
};
use upmem_sim::ci::CiStatus;

use crate::config::VpimConfig;
use crate::device::VupmemDevice;
use crate::error::VpimError;
use crate::matrix::{PageLease, TransferMatrix, MAX_DPUS};
use crate::report::OpReport;
use crate::spec::{self, PimDeviceConfig, Request, Response};

/// Writes at or below this size are candidates for batching (one page —
/// the paper batches "small-size data transfer" of a few hundred bytes).
pub const SMALL_WRITE_MAX: u64 = 4096;

#[derive(Debug)]
struct FrontState {
    nr_dpus: u32,
    mram_size: u64,
    prefetch: PrefetchCache,
    batch: BatchBuffer,
    /// The feedback controller (DESIGN.md §16); `None` unless
    /// `VpimConfig.adapt.enabled`, in which case every policy below runs
    /// exactly as the paper's static configuration.
    adapt: Option<AdaptState>,
}

/// Registry-owned cells this frontend records into. The prefetch/batch
/// cells are shared with the (re-creatable) cache structures so counts
/// survive [`Frontend::initialize`]; the queue-depth gauge tracks in-flight
/// `transferq` chains for this device.
#[derive(Debug, Clone)]
struct FrontMetrics {
    prefetch_hits: Counter,
    prefetch_misses: Counter,
    prefetch_inval_scoped: Counter,
    prefetch_inval_global: Counter,
    batch_appends: Counter,
    batch_merges: Counter,
    batch_flushes: Counter,
    queue_depth: Gauge,
    /// Present only when `VpimConfig.adapt.enabled`: the adaptive metric
    /// names must not appear in the registry of a statically configured VM
    /// (the default registry dump is part of the compatibility surface).
    adapt: Option<adapt::AdaptMetrics>,
}

impl FrontMetrics {
    fn from_registry(registry: &MetricsRegistry, device_idx: usize, adapt_on: bool) -> Self {
        FrontMetrics {
            prefetch_hits: registry.counter("frontend.prefetch.hits"),
            prefetch_misses: registry.counter("frontend.prefetch.misses"),
            prefetch_inval_scoped: registry.counter("frontend.prefetch.invalidations.scoped"),
            prefetch_inval_global: registry.counter("frontend.prefetch.invalidations.global"),
            batch_appends: registry.counter("frontend.batch.appends"),
            batch_merges: registry.counter("frontend.batch.merges"),
            batch_flushes: registry.counter("frontend.batch.flushes"),
            queue_depth: registry.gauge(&format!("virtio.queue.depth.rank{device_idx}")),
            adapt: adapt_on.then(|| adapt::AdaptMetrics::from_registry(registry, device_idx)),
        }
    }

    fn prefetch_cache(&self, nr_dpus: usize, pages_per_dpu: usize) -> PrefetchCache {
        PrefetchCache::new(nr_dpus, pages_per_dpu)
            .with_counters(self.prefetch_hits.clone(), self.prefetch_misses.clone())
            .with_invalidation_counters(
                self.prefetch_inval_scoped.clone(),
                self.prefetch_inval_global.clone(),
            )
    }

    fn batch_buffer(&self, nr_dpus: usize, pages_per_dpu: usize) -> BatchBuffer {
        BatchBuffer::new(nr_dpus, pages_per_dpu).with_counters(
            self.batch_appends.clone(),
            self.batch_merges.clone(),
            self.batch_flushes.clone(),
        )
    }
}

/// One submitted `transferq` chain whose completion has not been
/// collected yet.
#[derive(Debug)]
struct PendingOp {
    pages: Vec<Gpa>,
    status_page: Gpa,
    head: u16,
    /// 0-based count of prior submissions that used this head. The used
    /// ring only reports heads, and a head is recycled as soon as its
    /// chain drains, so concurrent waiters need `(head, gen)` to know
    /// *which* completion is theirs (see [`Frontend::wait_used`]).
    gen: u64,
    kick: KickHandle,
}

/// Per-descriptor-head monotonic clocks pairing submissions with used-ring
/// drains. Ops on one head are strictly serialized (a head is only handed
/// out again after `poll_used` recycles the previous chain), so the op
/// submitted as generation `g` of head `h` is complete exactly when
/// `drained[h] > g`. Cumulative counters make the check race-free: a later
/// op can never mistake an earlier op's completion for its own, and
/// nothing is removed so no entry can be overwritten or lost.
#[derive(Debug, Default)]
struct HeadClocks {
    /// Ops submitted per head so far (a submit takes the current value as
    /// its 0-based generation).
    submitted: HashMap<u16, u64>,
    /// Used-ring entries drained per head so far.
    drained: HashMap<u16, u64>,
}

/// An in-flight `write-to-rank` started with
/// [`Frontend::begin_write_rank`]; finish it with
/// [`Frontend::finish_write_rank`]. Dropping it abandons the completion
/// (guest pages are still reclaimed by their leases).
#[derive(Debug)]
pub struct InFlightWrite {
    report: OpReport,
    /// Oldest chunk at the front: backpressure during begin completes
    /// chunks in submission order, keeping report composition identical to
    /// the serial path.
    chunks: VecDeque<WriteChunk>,
    /// Whether the adaptive controller's clock already advanced for this
    /// op (begin delegated to the serial path, which ticks itself).
    ticked: bool,
}

#[derive(Debug)]
struct WriteChunk {
    op: PendingOp,
    partial: OpReport,
    _data_lease: PageLease,
    _meta_lease: PageLease,
}

/// An in-flight `read-from-rank` started with
/// [`Frontend::begin_read_rank`]; finish it with
/// [`Frontend::finish_read_rank`].
#[derive(Debug)]
pub struct InFlightRead {
    report: OpReport,
    /// Outputs gathered so far, in request order: the prefetch-cache path
    /// fills this entirely during begin, and backpressure may force early
    /// completion of older chunks during begin as well.
    outputs: Vec<Vec<u8>>,
    chunks: VecDeque<ReadChunk>,
    /// Whether the adaptive controller's clock already advanced for this
    /// op (begin delegated to the cache path, which ticks itself).
    ticked: bool,
}

#[derive(Debug)]
struct ReadChunk {
    op: PendingOp,
    matrix: TransferMatrix,
    partial: OpReport,
    _lease: PageLease,
    _meta_lease: PageLease,
}

/// Options for [`Frontend::probe`]: everything the guest driver needs
/// beyond the device itself. The required parts (device index, event
/// manager, guest memory) are constructor arguments; cost model,
/// configuration, metrics registry, and serializer scratch pool default to
/// fresh instances unless shared ones are supplied — the system wiring
/// hands every frontend the host's registry and pool.
#[derive(Debug, Clone)]
pub struct ProbeOpts {
    device_idx: usize,
    em: EventManager,
    mem: GuestMemory,
    cm: CostModel,
    vcfg: VpimConfig,
    registry: MetricsRegistry,
    scratch: Option<BytePool>,
}

impl ProbeOpts {
    /// Options for device `device_idx` of a VM with event manager `em` and
    /// guest memory `mem`, with the default cost model, the full
    /// optimization configuration, and a private metrics registry.
    #[must_use]
    pub fn new(device_idx: usize, em: EventManager, mem: GuestMemory) -> Self {
        ProbeOpts {
            device_idx,
            em,
            mem,
            cm: CostModel::default(),
            vcfg: VpimConfig::full(),
            registry: MetricsRegistry::new(),
            scratch: None,
        }
    }

    /// Uses `cm` as the cost model.
    #[must_use]
    pub fn cost_model(mut self, cm: CostModel) -> Self {
        self.cm = cm;
        self
    }

    /// Uses `vcfg` as the optimization configuration.
    #[must_use]
    pub fn config(mut self, vcfg: VpimConfig) -> Self {
        self.vcfg = vcfg;
        self
    }

    /// Publishes prefetch/batch/queue-depth metrics into `registry`
    /// (`frontend.prefetch.*`, `frontend.batch.*`,
    /// `virtio.queue.depth.rank{device_idx}`).
    #[must_use]
    pub fn registry(mut self, registry: &MetricsRegistry) -> Self {
        self.registry = registry.clone();
        self
    }

    /// Shares an existing serializer scratch [`BytePool`] instead of
    /// creating one from the registry.
    #[must_use]
    pub fn scratch(mut self, pool: BytePool) -> Self {
        self.scratch = Some(pool);
        self
    }
}

/// Lock-order indices for the frontend's three mutexes, all at
/// [`simkit::LockLevel::Frontend`] (the top of the cross-layer hierarchy —
/// see `simkit::lockorder`). A thread holding one of these may only take a
/// same-level lock of equal-or-higher index, or drop into lower layers
/// (device queue → rank slot → sched → manager → sysfs → notify):
///
/// * `STATE` (0) — batching/prefetch state; a leaf in practice: never held
///   across the transport path or another frontend lock.
/// * `QUEUE` (1) — the driver-side virtqueue.
/// * `CLOCKS` (2) — submission/drain clocks; taken after `QUEUE` in the
///   drain path, never before it.
mod front_lock {
    pub const STATE: usize = 0;
    pub const QUEUE: usize = 1;
    pub const CLOCKS: usize = 2;
}

/// The guest-side driver for one vUPMEM device.
#[derive(Debug)]
pub struct Frontend {
    device: Arc<VupmemDevice>,
    device_idx: usize,
    em: EventManager,
    mem: GuestMemory,
    queue: Mutex<DriverQueue>,
    cm: CostModel,
    vcfg: VpimConfig,
    metrics: FrontMetrics,
    /// Shared `retry.*` instruments; bumped by the transport-level
    /// [`RetryPolicy`] in [`complete`](Self::complete).
    retry: RetryMetrics,
    /// Scratch-buffer pool for matrix serialization (shared with the
    /// backend data path in the system wiring).
    scratch: BytePool,
    state: Mutex<FrontState>,
    /// Submission/drain clocks letting several threads share one frontend:
    /// whoever consumes the interrupt drains the whole used ring and
    /// advances the drain clocks; every waiter then checks its own
    /// `(head, gen)` against them (see [`Frontend::wait_used`]).
    clocks: Mutex<HeadClocks>,
}

impl Frontend {
    /// Probes the device during guest boot: performs the virtio status
    /// handshake and configures `transferq` and `controlq` in guest memory.
    /// Call **before** `Vm::boot` (the device reads the queue layout when
    /// it activates); call [`initialize`](Self::initialize) after boot.
    ///
    /// # Errors
    ///
    /// Guest memory exhaustion or MMIO errors.
    pub fn probe(device: Arc<VupmemDevice>, opts: ProbeOpts) -> Result<Frontend, VpimError> {
        let ProbeOpts { device_idx, em, mem, cm, vcfg, registry, scratch } = opts;
        let scratch =
            scratch.unwrap_or_else(|| BytePool::with_registry(&registry, "datapath.pool"));
        let m = device.mmio();
        m.write(reg::STATUS, mmio_status::ACKNOWLEDGE)?;
        m.write(reg::STATUS, mmio_status::ACKNOWLEDGE | mmio_status::DRIVER)?;
        m.write(reg::DRIVER_FEATURES, 0)?;

        let layout = QueueLayout::alloc(&mem, spec::TRANSFERQ_SIZE)?;
        let set = |sel: u32, l: &QueueLayout| -> Result<(), VpimError> {
            m.write(reg::QUEUE_SEL, sel)?;
            m.write(reg::QUEUE_NUM, u32::from(l.size))?;
            m.write(reg::QUEUE_DESC_LOW, (l.desc.0 & 0xffff_ffff) as u32)?;
            m.write(reg::QUEUE_DESC_HIGH, (l.desc.0 >> 32) as u32)?;
            m.write(reg::QUEUE_DRIVER_LOW, (l.avail.0 & 0xffff_ffff) as u32)?;
            m.write(reg::QUEUE_DRIVER_HIGH, (l.avail.0 >> 32) as u32)?;
            m.write(reg::QUEUE_DEVICE_LOW, (l.used.0 & 0xffff_ffff) as u32)?;
            m.write(reg::QUEUE_DEVICE_HIGH, (l.used.0 >> 32) as u32)?;
            m.write(reg::QUEUE_READY, 1)?;
            Ok(())
        };
        set(spec::TRANSFERQ, &layout)?;
        let ctrl = QueueLayout::alloc(&mem, spec::CONTROLQ_SIZE)?;
        set(spec::CONTROLQ, &ctrl)?;
        m.write(
            reg::STATUS,
            mmio_status::ACKNOWLEDGE
                | mmio_status::DRIVER
                | mmio_status::FEATURES_OK
                | mmio_status::DRIVER_OK,
        )?;

        let metrics = FrontMetrics::from_registry(&registry, device_idx, vcfg.adapt.enabled);
        let retry = RetryMetrics::from_registry(&registry);
        Ok(Frontend {
            device,
            device_idx,
            em,
            queue: Mutex::new(DriverQueue::new(mem.clone(), layout)),
            mem,
            cm,
            vcfg,
            state: Mutex::new(FrontState {
                nr_dpus: 0,
                mram_size: 0,
                prefetch: metrics.prefetch_cache(0, 0),
                batch: metrics.batch_buffer(0, 0),
                adapt: None,
            }),
            metrics,
            retry,
            scratch,
            clocks: Mutex::new(HeadClocks::default()),
        })
    }

    /// Old spelling of [`probe`](Self::probe) with an explicit registry.
    ///
    /// # Errors
    ///
    /// Guest memory exhaustion or MMIO errors.
    #[deprecated(note = "use `Frontend::probe(device, ProbeOpts)`")]
    pub fn probe_with_registry(
        device: Arc<VupmemDevice>,
        device_idx: usize,
        em: EventManager,
        mem: GuestMemory,
        cm: CostModel,
        vcfg: VpimConfig,
        registry: &MetricsRegistry,
    ) -> Result<Frontend, VpimError> {
        let opts =
            ProbeOpts::new(device_idx, em, mem).cost_model(cm).config(vcfg).registry(registry);
        Self::probe(device, opts)
    }

    /// Old spelling of [`probe`](Self::probe) with an explicit registry
    /// and shared scratch pool.
    ///
    /// # Errors
    ///
    /// Guest memory exhaustion or MMIO errors.
    #[deprecated(note = "use `Frontend::probe(device, ProbeOpts)`")]
    #[allow(clippy::too_many_arguments)]
    pub fn probe_with_pool(
        device: Arc<VupmemDevice>,
        device_idx: usize,
        em: EventManager,
        mem: GuestMemory,
        cm: CostModel,
        vcfg: VpimConfig,
        registry: &MetricsRegistry,
        scratch: BytePool,
    ) -> Result<Frontend, VpimError> {
        let opts = ProbeOpts::new(device_idx, em, mem)
            .cost_model(cm)
            .config(vcfg)
            .registry(registry)
            .scratch(scratch);
        Self::probe(device, opts)
    }

    /// Completes initialization after boot: requests the device
    /// configuration (frequency, DPU count — §3.2) and sizes the prefetch
    /// cache and batch buffer.
    ///
    /// # Errors
    ///
    /// Transport failures or a backend that cannot link a rank.
    pub fn initialize(&self) -> Result<OpReport, VpimError> {
        let (resp, report) = self.roundtrip(&Request::Configure, &[])?;
        let mut padded = resp.payload.clone();
        padded.resize(PimDeviceConfig::ENCODED_LEN, 0);
        let cfg = PimDeviceConfig::decode(&padded)?;
        let mut st = self.state.lock();
        st.nr_dpus = cfg.nr_dpus;
        st.mram_size = cfg.mram_size;
        st.prefetch = self
            .metrics
            .prefetch_cache(cfg.nr_dpus as usize, self.vcfg.prefetch_pages_per_dpu);
        if self.vcfg.adapt.enabled {
            let a = &self.vcfg.adapt;
            // Allocate the buffer at the controller's ceiling; the static
            // capacity becomes the starting flush threshold.
            let alloc_pages =
                (a.max_batch_pages as usize).max(self.vcfg.batch_pages_per_dpu);
            st.batch = self.metrics.batch_buffer(cfg.nr_dpus as usize, alloc_pages);
            let adapt = AdaptState::new(
                a,
                self.vcfg.prefetch_pages_per_dpu as u32,
                self.vcfg.batch_pages_per_dpu as u32,
                cfg.nr_dpus as usize,
                self.metrics.adapt.clone().expect("adapt metrics registered when adapt.enabled"),
            );
            st.batch.set_flush_threshold(adapt.batch_threshold_bytes());
            st.adapt = Some(adapt);
        } else {
            st.batch =
                self.metrics.batch_buffer(cfg.nr_dpus as usize, self.vcfg.batch_pages_per_dpu);
        }
        Ok(report)
    }

    /// Advances the adaptive controller's virtual clock by a completed
    /// op's duration — the "operation boundary" sample point of DESIGN.md
    /// §16. A no-op (one branch, no lock) when the controller is off.
    fn adapt_tick(&self, report: &OpReport) {
        if self.vcfg.adapt.enabled {
            if let Some(a) = self.state.lock().adapt.as_mut() {
                a.tick(report.duration());
            }
        }
    }

    /// Number of DPUs behind this device (0 before `initialize`).
    #[must_use]
    pub fn nr_dpus(&self) -> u32 {
        self.state.lock().nr_dpus
    }

    /// MRAM bytes per DPU.
    #[must_use]
    pub fn mram_size(&self) -> u64 {
        self.state.lock().mram_size
    }

    /// The device this frontend drives.
    #[must_use]
    pub fn device(&self) -> &Arc<VupmemDevice> {
        &self.device
    }

    /// The optimization configuration this frontend runs with.
    #[must_use]
    pub fn config(&self) -> &VpimConfig {
        &self.vcfg
    }

    /// The cost model in effect.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.cm
    }

    /// Prefetch cache counters `(hits, misses)`.
    #[must_use]
    pub fn prefetch_stats(&self) -> (u64, u64) {
        self.state.lock().prefetch.stats()
    }

    /// Batch buffer counters `(appends, flushes)`.
    #[must_use]
    pub fn batch_stats(&self) -> (u64, u64) {
        self.state.lock().batch.stats()
    }

    /// Batch-buffer merges: appends whose target pages were all already
    /// dirty in the current batch window.
    #[must_use]
    pub fn batch_merges(&self) -> u64 {
        self.metrics.batch_merges.get()
    }

    /// The adaptive controller's current prefetch window in pages
    /// (`None` when `VpimConfig.adapt` is off).
    #[must_use]
    pub fn adapt_window_pages(&self) -> Option<u32> {
        self.state.lock().adapt.as_ref().map(AdaptState::window_pages)
    }

    // ------------------------------------------------------------ transport

    fn response_error(resp: &Response) -> VpimError {
        match resp.status {
            crate::backend::STATUS_FAULT => VpimError::Sim(upmem_sim::SimError::Fault(
                upmem_sim::DpuFault::new(resp.error.clone()),
            )),
            crate::backend::STATUS_NOT_LINKED => VpimError::NotLinked,
            crate::backend::STATUS_BAD => VpimError::BadRequest(resp.error.clone()),
            _ => match simkit::ErrorKind::from_code(resp.kind) {
                Some(kind) => VpimError::Remote { kind, message: resp.error.clone() },
                None => VpimError::Vmm(resp.error.clone()),
            },
        }
    }

    /// Submits one request chain and kicks the device, without waiting for
    /// completion. In sequential dispatch the handler runs inline during
    /// the kick; in parallel dispatch it runs on the VMM's worker pool and
    /// the returned op is genuinely in flight.
    fn submit(&self, req: &Request, extra: &[(Gpa, u32, bool)]) -> Result<PendingOp, VpimError> {
        let pages = self.mem.alloc_pages(2)?;
        let (req_page, status_page) = (pages[0], pages[1]);
        let enc = req.encode();
        if let Err(e) = self.mem.write(req_page, &enc) {
            // Nothing was chained yet: give the pages back so a transient
            // (injected EIO) failure leaves the allocator balanced.
            let _ = self.mem.free_pages_back(&pages);
            return Err(e.into());
        }

        let mut bufs: Vec<(Gpa, u32, bool)> = Vec::with_capacity(extra.len() + 2);
        bufs.push((req_page, enc.len() as u32, false));
        bufs.extend_from_slice(extra);
        bufs.push((status_page, 4096, true));
        let added = {
            let _order = simkit::ordered(simkit::LockLevel::Frontend, front_lock::QUEUE);
            self.queue.lock().add_chain(&bufs)
        };
        let head = match added {
            Ok(h) => h,
            Err(e) => {
                // Give the pages back so a backpressure retry starts clean.
                self.mem.free_pages_back(&pages)?;
                return Err(e.into());
            }
        };
        // Safe outside the queue lock: this head cannot be handed to
        // another submitter until our chain drains, and its previous
        // user's drain was clocked before `add_chain` could recycle it.
        let gen = {
            let _order = simkit::ordered(simkit::LockLevel::Frontend, front_lock::CLOCKS);
            let mut clk = self.clocks.lock();
            let c = clk.submitted.entry(head).or_insert(0);
            let g = *c;
            *c += 1;
            g
        };
        self.metrics.queue_depth.add(1);

        // The guest kick: an MMIO write that traps to the VMM.
        self.device.mmio().write(reg::QUEUE_NOTIFY, spec::TRANSFERQ)?;
        let kick = self
            .em
            .kick_async(self.device_idx, spec::TRANSFERQ)
            .map_err(VpimError::from)?;
        Ok(PendingOp { pages, status_page, head, gen, kick })
    }

    /// Blocks until generation `gen` of chain `head` has appeared in the
    /// used ring. Several threads may wait on the same frontend
    /// concurrently: whichever waiter consumes the interrupt drains the
    /// whole ring, advances the drain clocks, and nudges the line so the
    /// drained entries' owners re-check — one IRQ count can complete
    /// several waiters, so a waiter must never treat "no interrupt" as "no
    /// progress" (its entry may have been drained on its behalf while it
    /// slept). The short wait slice bounds the window of a nudge racing
    /// past a waiter that has checked the clocks but not yet blocked.
    fn wait_used(&self, head: u16, gen: u64) -> Result<(), VpimError> {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let drained = {
                let _order =
                    simkit::ordered(simkit::LockLevel::Frontend, front_lock::CLOCKS);
                self.clocks.lock().drained.get(&head).copied().unwrap_or(0)
            };
            if drained > gen {
                self.metrics.queue_depth.sub(1);
                return Ok(());
            }
            if !self.device.irq().wait(Duration::from_millis(50)) {
                if std::time::Instant::now() >= deadline {
                    return Err(VpimError::Vmm(
                        "timeout waiting for completion irq".to_string(),
                    ));
                }
                continue;
            }
            self.device.mmio().write(reg::INTERRUPT_ACK, 1)?;
            let found = {
                let _order =
                    simkit::ordered(simkit::LockLevel::Frontend, front_lock::QUEUE);
                let mut q = self.queue.lock();
                let mut found = Vec::new();
                while let Some((h, len)) = q.poll_used()? {
                    found.push((h, len));
                }
                found
            };
            if !found.is_empty() {
                {
                    let _order =
                        simkit::ordered(simkit::LockLevel::Frontend, front_lock::CLOCKS);
                    let mut clk = self.clocks.lock();
                    for (h, _len) in found {
                        *clk.drained.entry(h).or_insert(0) += 1;
                    }
                }
                self.device.irq().nudge();
            }
        }
    }

    /// Waits for a submitted op, decodes its response, and frees its pages.
    ///
    /// Transient failures are retried under the
    /// [`TimeoutClass::VirtioRoundTrip`] policy (bounded attempts,
    /// virtual-time exponential backoff with deterministic jitter seeded
    /// from `VpimConfig.inject.seed`): a dropped kick never dispatched the
    /// chain — it is still pending in the avail ring — so the guest
    /// re-notifies and re-kicks; an injected EIO on the status page simply
    /// re-reads it. All backoff is virtual time charged to the op's report;
    /// no thread sleeps for it, so Sequential and Parallel dispatch agree.
    fn complete(&self, op: PendingOp) -> Result<(Response, OpReport), VpimError> {
        let policy = RetryPolicy::for_class(&self.cm, TimeoutClass::VirtioRoundTrip);
        let seed = self.vcfg.inject.seed;
        let mut backoff = VirtualNanos::ZERO;
        let mut n = 0u32;

        let mut kick_result = op.kick.wait().map_err(VpimError::from);
        while let Err(e) = &kick_result {
            if !e.is_transient() || n + 1 >= policy.max_attempts {
                if e.is_transient() {
                    self.retry.giveups.inc();
                }
                // Giving up on an undispatched chain abandons its queue
                // slot and pages: the device may still process the chain
                // if a later op kicks, so they must not be recycled.
                break;
            }
            let b = policy.backoff(seed, n);
            backoff += b;
            self.retry.attempts.inc();
            self.retry.backoff_vt.add(b);
            n += 1;
            self.device.mmio().write(reg::QUEUE_NOTIFY, spec::TRANSFERQ)?;
            kick_result = self
                .em
                .kick_async(self.device_idx, spec::TRANSFERQ)
                .map_err(VpimError::from)
                .and_then(|k| k.wait().map_err(VpimError::from));
        }
        kick_result?;
        self.wait_used(op.head, op.gen)?;

        let raw = loop {
            match self.mem.with_slice(op.status_page, 4096, <[u8]>::to_vec) {
                Ok(raw) => break raw,
                Err(e) => {
                    let e = VpimError::from(e);
                    if !e.is_transient() || n + 1 >= policy.max_attempts {
                        if e.is_transient() {
                            self.retry.giveups.inc();
                        }
                        // The chain has drained, so the device is done
                        // with the pages: reclaim them even though the
                        // status read failed.
                        let _ = self.mem.free_pages_back(&op.pages);
                        return Err(e);
                    }
                    let b = policy.backoff(seed, n);
                    backoff += b;
                    self.retry.attempts.inc();
                    self.retry.backoff_vt.add(b);
                    n += 1;
                }
            }
        };
        let resp = Response::decode(&raw)?;
        self.mem.free_pages_back(&op.pages)?;

        let mut report = OpReport::default();
        report.add_messages(1);
        report.step(WriteStep::Interrupt, self.cm.virtio_round_trip());
        report.add_duration(backoff);
        if resp.is_ok() {
            Ok((resp, report))
        } else {
            Err(Self::response_error(&resp))
        }
    }

    /// One full request/response exchange over `transferq`.
    fn roundtrip(
        &self,
        req: &Request,
        extra: &[(Gpa, u32, bool)],
    ) -> Result<(Response, OpReport), VpimError> {
        let op = self.submit(req, extra)?;
        self.complete(op)
    }

    // ------------------------------------------------------------ rank ops

    /// `write-to-rank`: writes per-DPU buffers into MRAM. Small writes are
    /// absorbed by the batch buffer when batching is enabled.
    ///
    /// # Errors
    ///
    /// Transport or hardware failures.
    pub fn write_rank(&self, entries: &[(u32, u64, &[u8])]) -> Result<OpReport, VpimError> {
        let mut report = OpReport::default();
        if self.vcfg.request_batching
            && entries.iter().all(|(_, _, d)| d.len() as u64 <= SMALL_WRITE_MAX)
        {
            let need_flush = {
                let mut st = self.state.lock();
                // One gap observation per op: the controller may ask for an
                // early flush (idle tenant) and retune the threshold the
                // overflow check below uses.
                let mut early = false;
                if st.adapt.is_some() {
                    let pending = !st.batch.is_empty();
                    let a = st.adapt.as_mut().expect("checked above");
                    early = a.observe_append_gap(pending);
                    let thr = a.batch_threshold_bytes();
                    st.batch.set_flush_threshold(thr);
                }
                early
                    || entries
                        .iter()
                        .any(|(dpu, _, d)| st.batch.would_overflow(*dpu, d.len() as u64))
            };
            if need_flush {
                report.absorb(&self.flush_batch()?);
            }
            let mut st = self.state.lock();
            for (dpu, off, d) in entries {
                if st.batch.append(*dpu, *off, d) {
                    if let Some(a) = st.adapt.as_mut() {
                        a.note_write(*dpu, *off, d.len() as u64);
                    }
                    report.add_duration(self.cm.batch_append(d.len() as u64));
                } else {
                    // Same-DPU entries overran the buffer mid-loop: flush
                    // and retry once.
                    drop(st);
                    report.absorb(&self.flush_batch()?);
                    st = self.state.lock();
                    if st.batch.append(*dpu, *off, d) {
                        if let Some(a) = st.adapt.as_mut() {
                            a.note_write(*dpu, *off, d.len() as u64);
                        }
                        report.add_duration(self.cm.batch_append(d.len() as u64));
                    } else {
                        drop(st);
                        report.absorb(&self.write_direct(&[(*dpu, *off, *d)])?);
                        st = self.state.lock();
                    }
                }
            }
            drop(st);
            self.adapt_tick(&report);
            return Ok(report);
        }
        if self.vcfg.request_batching {
            report.absorb(&self.flush_batch()?);
        }
        report.absorb(&self.write_direct(entries)?);
        self.adapt_tick(&report);
        Ok(report)
    }

    /// Sends buffered writes to the backend (also triggered automatically
    /// by any non-write request — §4.1).
    ///
    /// # Errors
    ///
    /// Transport or hardware failures.
    pub fn flush_batch(&self) -> Result<OpReport, VpimError> {
        // The state lock is dropped before the transport descent below —
        // the ordered token documents (and in debug builds checks) that
        // `STATE` stays a leaf relative to the lower layers.
        let drained = {
            let _order = simkit::ordered(simkit::LockLevel::Frontend, front_lock::STATE);
            self.state.lock().batch.drain()
        };
        if drained.is_empty() {
            return Ok(OpReport::default());
        }
        let mut report = OpReport::default();
        for chunk in drained.chunks(MAX_DPUS) {
            let views: Vec<(u32, u64, &[u8])> =
                chunk.iter().map(|w| (w.dpu, w.offset, w.data.as_slice())).collect();
            report.absorb(&self.write_direct(&views)?);
        }
        Ok(report)
    }

    /// Durability barrier for persistent-heap commits ([`crate::pheap`]):
    /// drains the write-combining batch so every buffered write reaches
    /// the rank, then invalidates the prefetch cache so subsequent reads
    /// observe rank MRAM rather than stale prefetched pages. A no-op
    /// (zero-cost report) when nothing is buffered and the cache is cold.
    ///
    /// # Errors
    ///
    /// Transport or hardware failures from the flush.
    pub fn persist_barrier(&self) -> Result<OpReport, VpimError> {
        let report = self.flush_batch()?;
        {
            let _order = simkit::ordered(simkit::LockLevel::Frontend, front_lock::STATE);
            let mut st = self.state.lock();
            st.prefetch.invalidate();
            if let Some(a) = st.adapt.as_mut() {
                a.on_barrier();
            }
        }
        Ok(report)
    }

    fn write_direct(&self, entries: &[(u32, u64, &[u8])]) -> Result<OpReport, VpimError> {
        {
            // A write can only stale the segments of the DPUs it touches;
            // launch/release keep the global invalidation path.
            let mut st = self.state.lock();
            st.prefetch.invalidate_dpus(entries.iter().map(|(d, _, _)| *d as usize));
            if let Some(a) = st.adapt.as_mut() {
                for (d, off, data) in entries {
                    a.note_write(*d, *off, data.len() as u64);
                }
            }
        }
        let mut report = OpReport::default();
        for chunk in entries.chunks(MAX_DPUS) {
            let (matrix, data_lease) = TransferMatrix::from_user_buffers(&self.mem, chunk)?;
            let pages = matrix.total_pages();
            let mut r = OpReport::default();
            r.step(WriteStep::PageMgmt, self.cm.page_mgmt(pages));
            let (bufs, meta_lease) = matrix.serialize_pooled(&self.mem, &self.scratch)?;
            r.step(WriteStep::Serialize, self.cm.serialize_matrix(pages));
            let (resp, rt) =
                self.roundtrip(&Request::WriteRank { nr_dpus: chunk.len() as u32 }, &bufs)?;
            r.absorb(&rt);
            r.step(
                WriteStep::Deserialize,
                VirtualNanos::from_nanos(resp.deser_ns + resp.translate_ns),
            );
            r.step(WriteStep::TransferData, VirtualNanos::from_nanos(resp.transfer_ns));
            r.add_ddr(VirtualNanos::from_nanos(resp.ddr_ns));
            r.add_rank_ops(1);
            meta_lease.release();
            data_lease.release();
            report.absorb(&r);
        }
        Ok(report)
    }

    /// `read-from-rank`: reads `(dpu, offset, len)` ranges, serving small
    /// reads from the prefetch cache when enabled. Returns one buffer per
    /// request plus the cost report.
    ///
    /// # Errors
    ///
    /// Transport or hardware failures.
    pub fn read_rank(
        &self,
        reqs: &[(u32, u64, u64)],
    ) -> Result<(Vec<Vec<u8>>, OpReport), VpimError> {
        let mut report = OpReport::default();
        if self.vcfg.request_batching {
            report.absorb(&self.flush_batch()?);
        }
        // The cache serves the "host processes DPU data block by block in a
        // loop" pattern (§4.1): small reads targeting one DPU at a time.
        // Large parallel matrix reads bypass it.
        let cacheable = {
            let st = self.state.lock();
            self.vcfg.prefetch_cache
                && reqs.len() == 1
                && reqs.iter().all(|(_, _, len)| st.prefetch.cacheable(*len))
        };
        if !cacheable {
            let (out, r) = self.read_direct(reqs)?;
            report.absorb(&r);
            self.adapt_tick(&report);
            return Ok((out, report));
        }

        let mut outputs: Vec<Option<Vec<u8>>> = vec![None; reqs.len()];
        for (i, (dpu, offset, len)) in reqs.iter().enumerate() {
            // Try the cache, serving straight into the output buffer (the
            // hit path allocates exactly the escaping result, nothing else).
            let hit = {
                let mut st = self.state.lock();
                let mut out = Vec::with_capacity(*len as usize);
                if st.prefetch.lookup_into(*dpu as usize, *offset, *len, &mut out) {
                    if let Some(a) = st.adapt.as_mut() {
                        a.on_hit(*dpu, *len);
                    }
                    Some(out)
                } else {
                    None
                }
            };
            if let Some(data) = hit {
                report.add_duration(self.cm.prefetch_hit(*len));
                outputs[i] = Some(data);
                continue;
            }
            // Miss: fetch a segment starting at the request address and
            // repopulate (§4.1 step 3). The static policy fetches the cache
            // capacity; the adaptive controller sizes the fetch from the
            // window it has learned — or exact-length with no install when
            // the miss is a write-then-read-back (DESIGN.md §16).
            let (seg_base, seg_len, install) = {
                let mut st = self.state.lock();
                let cap = st.prefetch.capacity_bytes();
                let max = st.mram_size.saturating_sub(*offset);
                let static_len = cap.min(max).max(*len);
                match st.adapt.as_mut() {
                    Some(_) => {
                        let span = st.prefetch.segment_span(*dpu as usize);
                        let a = st.adapt.as_mut().expect("checked above");
                        let plan = a.on_miss(*dpu, *offset, *len, span);
                        let seg_len = if plan.install {
                            plan.fetch_bytes.min(max).max(*len)
                        } else {
                            *len
                        };
                        a.note_fetch_delta(static_len, seg_len);
                        (*offset, seg_len, plan.install)
                    }
                    None => (*offset, static_len, true),
                }
            };
            let (mut seg, r) = self.read_direct(&[(*dpu, seg_base, seg_len)])?;
            report.absorb(&r);
            let data = seg.pop().expect("one segment");
            if !install {
                // Suppressed prefetch: the exact-length direct read *is*
                // the answer; nothing is cached.
                outputs[i] = Some(data);
                continue;
            }
            let mut st = self.state.lock();
            st.prefetch.install(*dpu as usize, seg_base, data);
            let mut served = Vec::with_capacity(*len as usize);
            assert!(
                st.prefetch.lookup_into(*dpu as usize, *offset, *len, &mut served),
                "freshly installed segment must serve the miss"
            );
            if let Some(a) = st.adapt.as_mut() {
                a.note_install(*dpu, seg_len, *len);
            }
            drop(st);
            report.add_duration(self.cm.prefetch_hit(*len));
            outputs[i] = Some(served);
        }
        self.adapt_tick(&report);
        Ok((
            outputs.into_iter().map(|o| o.expect("all served")).collect(),
            report,
        ))
    }

    fn read_direct(
        &self,
        reqs: &[(u32, u64, u64)],
    ) -> Result<(Vec<Vec<u8>>, OpReport), VpimError> {
        let mut report = OpReport::default();
        let mut outputs = Vec::with_capacity(reqs.len());
        for chunk in reqs.chunks(MAX_DPUS) {
            let (matrix, lease) = TransferMatrix::alloc_read_buffers(&self.mem, chunk)?;
            let pages = matrix.total_pages();
            let mut r = OpReport::default();
            r.step(WriteStep::PageMgmt, self.cm.page_mgmt(pages));
            let (bufs, meta_lease) = matrix.serialize_pooled(&self.mem, &self.scratch)?;
            r.step(WriteStep::Serialize, self.cm.serialize_matrix(pages));
            let (resp, rt) =
                self.roundtrip(&Request::ReadRank { nr_dpus: chunk.len() as u32 }, &bufs)?;
            r.absorb(&rt);
            r.step(
                WriteStep::Deserialize,
                VirtualNanos::from_nanos(resp.deser_ns + resp.translate_ns),
            );
            r.step(WriteStep::TransferData, VirtualNanos::from_nanos(resp.transfer_ns));
            r.add_ddr(VirtualNanos::from_nanos(resp.ddr_ns));
            r.add_rank_ops(1);
            for entry in &matrix.entries {
                let data = TransferMatrix::gather(&self.mem, entry)?;
                r.add_duration(self.cm.memcpy(entry.len));
                outputs.push(data);
            }
            meta_lease.release();
            lease.release();
            report.absorb(&r);
        }
        Ok((outputs, report))
    }

    // ------------------------------------------- split-phase rank ops

    fn submit_write_chunk(&self, chunk: &[(u32, u64, &[u8])]) -> Result<WriteChunk, VpimError> {
        let (matrix, data_lease) = TransferMatrix::from_user_buffers(&self.mem, chunk)?;
        let pages = matrix.total_pages();
        let mut partial = OpReport::default();
        partial.step(WriteStep::PageMgmt, self.cm.page_mgmt(pages));
        let (bufs, meta_lease) = matrix.serialize_pooled(&self.mem, &self.scratch)?;
        partial.step(WriteStep::Serialize, self.cm.serialize_matrix(pages));
        let op = self.submit(&Request::WriteRank { nr_dpus: chunk.len() as u32 }, &bufs)?;
        Ok(WriteChunk { op, partial, _data_lease: data_lease, _meta_lease: meta_lease })
    }

    fn submit_read_chunk(&self, chunk: &[(u32, u64, u64)]) -> Result<ReadChunk, VpimError> {
        let (matrix, lease) = TransferMatrix::alloc_read_buffers(&self.mem, chunk)?;
        let pages = matrix.total_pages();
        let mut partial = OpReport::default();
        partial.step(WriteStep::PageMgmt, self.cm.page_mgmt(pages));
        let (bufs, meta_lease) = matrix.serialize_pooled(&self.mem, &self.scratch)?;
        partial.step(WriteStep::Serialize, self.cm.serialize_matrix(pages));
        let op = self.submit(&Request::ReadRank { nr_dpus: chunk.len() as u32 }, &bufs)?;
        Ok(ReadChunk { op, matrix, partial, _lease: lease, _meta_lease: meta_lease })
    }

    /// Completes one write chunk and folds its cost into `report`. The
    /// virtual-time values come from the response (matrix-derived), so the
    /// result is the same whether this runs during begin (backpressure) or
    /// during finish.
    fn absorb_write_chunk(&self, c: WriteChunk, report: &mut OpReport) -> Result<(), VpimError> {
        let (resp, rt) = self.complete(c.op)?;
        let mut partial = c.partial;
        partial.absorb(&rt);
        partial.step(
            WriteStep::Deserialize,
            VirtualNanos::from_nanos(resp.deser_ns + resp.translate_ns),
        );
        partial.step(WriteStep::TransferData, VirtualNanos::from_nanos(resp.transfer_ns));
        partial.add_ddr(VirtualNanos::from_nanos(resp.ddr_ns));
        partial.add_rank_ops(1);
        report.absorb(&partial);
        // Page leases drop here: only after the device is done with the
        // chunk's guest pages.
        Ok(())
    }

    /// Completes one read chunk, appending its per-entry outputs and
    /// folding its cost into `report`.
    fn absorb_read_chunk(
        &self,
        c: ReadChunk,
        outputs: &mut Vec<Vec<u8>>,
        report: &mut OpReport,
    ) -> Result<(), VpimError> {
        let (resp, rt) = self.complete(c.op)?;
        let mut partial = c.partial;
        partial.absorb(&rt);
        partial.step(
            WriteStep::Deserialize,
            VirtualNanos::from_nanos(resp.deser_ns + resp.translate_ns),
        );
        partial.step(WriteStep::TransferData, VirtualNanos::from_nanos(resp.transfer_ns));
        partial.add_ddr(VirtualNanos::from_nanos(resp.ddr_ns));
        partial.add_rank_ops(1);
        for entry in &c.matrix.entries {
            let data = TransferMatrix::gather(&self.mem, entry)?;
            partial.add_duration(self.cm.memcpy(entry.len));
            outputs.push(data);
        }
        report.absorb(&partial);
        Ok(())
    }

    /// Completes abandoned chunks on an error path so queue slots, gauges
    /// and guest pages are reclaimed; results are discarded.
    fn drain_write_chunks(&self, chunks: VecDeque<WriteChunk>) {
        for c in chunks {
            let _ = self.complete(c.op);
        }
    }

    fn drain_read_chunks(&self, chunks: VecDeque<ReadChunk>) {
        for c in chunks {
            let _ = self.complete(c.op);
        }
    }

    /// Builds, serializes and submits a `write-to-rank` without waiting for
    /// the device. Use with [`finish_write_rank`](Self::finish_write_rank)
    /// to overlap transfers across several ranks: begin on every channel
    /// first, then finish them all. Small batched writes are absorbed
    /// inline exactly as [`write_rank`](Self::write_rank) would, returning
    /// an already-finished op; in `DispatchMode::Sequential` the device
    /// handler runs inline during begin, so begin+finish is byte- and
    /// report-identical to `write_rank`.
    ///
    /// Bounce pages and virtqueue slots are bounded: when submitting a
    /// chunk hits that limit, the oldest in-flight chunk is completed (its
    /// report composes in submission order either way) and the chunk is
    /// retried, so a transfer larger than guest memory degrades to partial
    /// overlap instead of failing.
    ///
    /// # Errors
    ///
    /// Transport or hardware failures.
    pub fn begin_write_rank(
        &self,
        entries: &[(u32, u64, &[u8])],
    ) -> Result<InFlightWrite, VpimError> {
        if self.vcfg.request_batching
            && entries.iter().all(|(_, _, d)| d.len() as u64 <= SMALL_WRITE_MAX)
        {
            let report = self.write_rank(entries)?;
            return Ok(InFlightWrite { report, chunks: VecDeque::new(), ticked: true });
        }
        let mut report = OpReport::default();
        if self.vcfg.request_batching {
            report.absorb(&self.flush_batch()?);
        }
        {
            let mut st = self.state.lock();
            st.prefetch.invalidate_dpus(entries.iter().map(|(d, _, _)| *d as usize));
            if let Some(a) = st.adapt.as_mut() {
                for (d, off, data) in entries {
                    a.note_write(*d, *off, data.len() as u64);
                }
            }
        }
        let mut chunks: VecDeque<WriteChunk> = VecDeque::new();
        for chunk in entries.chunks(MAX_DPUS) {
            loop {
                match self.submit_write_chunk(chunk) {
                    Ok(wc) => {
                        chunks.push_back(wc);
                        break;
                    }
                    Err(e) if e.is_backpressure() && !chunks.is_empty() => {
                        let oldest = chunks.pop_front().expect("chunks is non-empty");
                        if let Err(err) = self.absorb_write_chunk(oldest, &mut report) {
                            self.drain_write_chunks(chunks);
                            return Err(err);
                        }
                    }
                    Err(e) => {
                        self.drain_write_chunks(chunks);
                        return Err(e);
                    }
                }
            }
        }
        Ok(InFlightWrite { report, chunks, ticked: false })
    }

    /// Collects an in-flight write started by
    /// [`begin_write_rank`](Self::begin_write_rank). Every submitted chunk
    /// is completed even after a failure (so queue-depth accounting and
    /// guest pages are reclaimed); the first error in submission order is
    /// returned.
    ///
    /// # Errors
    ///
    /// Transport or hardware failures.
    pub fn finish_write_rank(&self, inflight: InFlightWrite) -> Result<OpReport, VpimError> {
        let InFlightWrite { mut report, chunks, ticked } = inflight;
        let mut first_err: Option<VpimError> = None;
        for c in chunks {
            if first_err.is_some() {
                let _ = self.complete(c.op);
                continue;
            }
            if let Err(e) = self.absorb_write_chunk(c, &mut report) {
                first_err = Some(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => {
                if !ticked {
                    self.adapt_tick(&report);
                }
                Ok(report)
            }
        }
    }

    /// Submits a `read-from-rank` without waiting for the device; pair with
    /// [`finish_read_rank`](Self::finish_read_rank). A single cacheable
    /// request is served through the prefetch cache inline (identical to
    /// [`read_rank`](Self::read_rank)) and returns an already-finished op.
    /// Backpressure is handled as in
    /// [`begin_write_rank`](Self::begin_write_rank): the oldest in-flight
    /// chunk is completed early (its outputs keep request order) and the
    /// submission retried.
    ///
    /// # Errors
    ///
    /// Transport or hardware failures.
    pub fn begin_read_rank(
        &self,
        reqs: &[(u32, u64, u64)],
    ) -> Result<InFlightRead, VpimError> {
        let cacheable = {
            let st = self.state.lock();
            self.vcfg.prefetch_cache
                && reqs.len() == 1
                && reqs.iter().all(|(_, _, len)| st.prefetch.cacheable(*len))
        };
        if cacheable {
            let (out, report) = self.read_rank(reqs)?;
            return Ok(InFlightRead {
                report,
                outputs: out,
                chunks: VecDeque::new(),
                ticked: true,
            });
        }
        let mut report = OpReport::default();
        if self.vcfg.request_batching {
            report.absorb(&self.flush_batch()?);
        }
        let mut outputs = Vec::new();
        let mut chunks: VecDeque<ReadChunk> = VecDeque::new();
        for chunk in reqs.chunks(MAX_DPUS) {
            loop {
                match self.submit_read_chunk(chunk) {
                    Ok(rc) => {
                        chunks.push_back(rc);
                        break;
                    }
                    Err(e) if e.is_backpressure() && !chunks.is_empty() => {
                        let oldest = chunks.pop_front().expect("chunks is non-empty");
                        if let Err(err) =
                            self.absorb_read_chunk(oldest, &mut outputs, &mut report)
                        {
                            self.drain_read_chunks(chunks);
                            return Err(err);
                        }
                    }
                    Err(e) => {
                        self.drain_read_chunks(chunks);
                        return Err(e);
                    }
                }
            }
        }
        Ok(InFlightRead { report, outputs, chunks, ticked: false })
    }

    /// Collects an in-flight read started by
    /// [`begin_read_rank`](Self::begin_read_rank), gathering one output
    /// buffer per original request. Every submitted chunk is completed even
    /// after a failure; the first error in submission order is returned.
    ///
    /// # Errors
    ///
    /// Transport or hardware failures.
    pub fn finish_read_rank(
        &self,
        inflight: InFlightRead,
    ) -> Result<(Vec<Vec<u8>>, OpReport), VpimError> {
        let InFlightRead { mut report, mut outputs, chunks, ticked } = inflight;
        let mut first_err: Option<VpimError> = None;
        for c in chunks {
            if first_err.is_some() {
                let _ = self.complete(c.op);
                continue;
            }
            if let Err(e) = self.absorb_read_chunk(c, &mut outputs, &mut report) {
                first_err = Some(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => {
                if !ticked {
                    self.adapt_tick(&report);
                }
                Ok((outputs, report))
            }
        }
    }

    // ------------------------------------------------------------- CI ops

    /// Loads a program image by name (CI operation).
    ///
    /// # Errors
    ///
    /// Unknown kernel, IRAM overflow, or transport failures.
    pub fn load_program(&self, name: &str, dpus: &[u32]) -> Result<OpReport, VpimError> {
        let mut report = self.flush_batch()?;
        let (_, rt) = self.roundtrip(
            &Request::LoadProgram { name: name.to_string(), dpus: dpus.to_vec() },
            &[],
        )?;
        report.absorb(&rt);
        self.adapt_tick(&report);
        Ok(report)
    }

    /// Boots the loaded program and returns the slowest DPU's cycle count
    /// in the report. Invalidates the prefetch cache (§4.1).
    ///
    /// # Errors
    ///
    /// DPU faults surface as [`VpimError::Sim`].
    pub fn launch(&self, dpus: &[u32], nr_tasklets: u32) -> Result<OpReport, VpimError> {
        let mut report = self.flush_batch()?;
        {
            let mut st = self.state.lock();
            st.prefetch.invalidate();
            if let Some(a) = st.adapt.as_mut() {
                a.on_barrier();
            }
        }
        let (resp, rt) =
            self.roundtrip(&Request::Launch { dpus: dpus.to_vec(), nr_tasklets }, &[])?;
        report.absorb(&rt);
        report.set_launch_cycles(resp.launch_cycles);
        self.adapt_tick(&report);
        Ok(report)
    }

    /// Polls one DPU's status (CI operation).
    ///
    /// # Errors
    ///
    /// Transport failures or an invalid DPU.
    pub fn poll_status(&self, dpu: u32) -> Result<(CiStatus, OpReport), VpimError> {
        let (resp, report) = self.roundtrip(&Request::PollStatus { dpu }, &[])?;
        self.adapt_tick(&report);
        let code = resp.payload.first().copied().unwrap_or(0);
        let status = match code {
            1 => CiStatus::Running,
            2 => CiStatus::Done,
            3 => CiStatus::Fault,
            _ => CiStatus::Idle,
        };
        Ok((status, report))
    }

    /// Writes a host symbol on one DPU.
    ///
    /// # Errors
    ///
    /// Unknown symbol, size mismatch, or transport failures.
    pub fn write_symbol(
        &self,
        dpu: u32,
        name: &str,
        bytes: &[u8],
    ) -> Result<OpReport, VpimError> {
        if bytes.len() > 4096 {
            return Err(VpimError::BadRequest(format!(
                "symbol payload of {} bytes exceeds one page",
                bytes.len()
            )));
        }
        let mut report = self.flush_batch()?;
        let pages = self.mem.alloc_pages(1)?;
        self.mem.write(pages[0], bytes)?;
        let (_, rt) = self.roundtrip(
            &Request::WriteSymbol { dpu, name: name.to_string(), len: bytes.len() as u32 },
            &[(pages[0], bytes.len() as u32, false)],
        )?;
        self.mem.free_pages_back(&pages)?;
        report.absorb(&rt);
        self.adapt_tick(&report);
        Ok(report)
    }

    /// Writes one `u32` symbol on many DPUs with a single request (the
    /// SDK's parallel argument push — one transition per rank instead of
    /// one per DPU).
    ///
    /// # Errors
    ///
    /// Unknown symbol or transport failures.
    pub fn scatter_symbol(
        &self,
        name: &str,
        entries: &[(u32, u32)],
    ) -> Result<OpReport, VpimError> {
        let mut report = self.flush_batch()?;
        for chunk in entries.chunks(MAX_DPUS) {
            let (_, rt) = self.roundtrip(
                &Request::ScatterSymbol { name: name.to_string(), entries: chunk.to_vec() },
                &[],
            )?;
            report.absorb(&rt);
        }
        self.adapt_tick(&report);
        Ok(report)
    }

    /// Reads a host symbol from one DPU.
    ///
    /// # Errors
    ///
    /// Unknown symbol, size mismatch, or transport failures.
    pub fn read_symbol(
        &self,
        dpu: u32,
        name: &str,
        len: usize,
    ) -> Result<(Vec<u8>, OpReport), VpimError> {
        let mut report = self.flush_batch()?;
        let (resp, rt) = self.roundtrip(
            &Request::ReadSymbol { dpu, name: name.to_string(), len: len as u32 },
            &[],
        )?;
        report.absorb(&rt);
        self.adapt_tick(&report);
        Ok((resp.payload, report))
    }

    /// Detaches the device from its physical rank; the manager's observer
    /// will reset and recycle it.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn release_rank(&self) -> Result<OpReport, VpimError> {
        let mut report = self.flush_batch()?;
        {
            let mut st = self.state.lock();
            st.prefetch.invalidate();
            if let Some(a) = st.adapt.as_mut() {
                a.on_barrier();
            }
        }
        let (_, rt) = self.roundtrip(&Request::ReleaseRank, &[])?;
        report.absorb(&rt);
        self.adapt_tick(&report);
        Ok(report)
    }

    /// Charges the analytic cost of the SDK's status-poll loop during a
    /// synchronous launch of `exec_time`: each poll is a CI read through
    /// the device (a full guest↔VMM round trip). One real poll was already
    /// issued by the caller; this accounts for the remaining `n-1`.
    #[must_use]
    pub fn sync_poll_cost(&self, exec_time: VirtualNanos) -> (u64, VirtualNanos) {
        let polls = self.cm.launch_polls(exec_time);
        let extra = polls.saturating_sub(1);
        (extra, self.cm.virtio_round_trip().saturating_mul(extra))
    }
}
