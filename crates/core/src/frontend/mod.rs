//! The vUPMEM frontend driver (§3.1, §4.1): the guest-kernel half of vPIM.
//!
//! The frontend exposes the virtual UPMEM device to guest userspace (safe
//! mode: applications reach the device through this driver, never
//! directly), builds and serializes transfer matrices, and implements the
//! two anti-small-transfer optimizations: the [`PrefetchCache`] for reads
//! and the [`BatchBuffer`] for writes. Every operation returns an
//! [`OpReport`] carrying its virtual-time cost, message count and Fig. 13
//! step breakdown.

mod batch;
mod prefetch;

pub use batch::{BatchBuffer, PendingWrite};
pub use prefetch::PrefetchCache;

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use pim_virtio::mmio::{reg, status as mmio_status};
use pim_virtio::queue::{DriverQueue, QueueLayout};
use pim_virtio::{Gpa, GuestMemory};
use pim_vmm::{EventManager, VirtioDevice};
use simkit::{CostModel, Counter, Gauge, MetricsRegistry, VirtualNanos, WriteStep};
use upmem_sim::ci::CiStatus;

use crate::config::VpimConfig;
use crate::device::VupmemDevice;
use crate::error::VpimError;
use crate::matrix::{TransferMatrix, MAX_DPUS};
use crate::report::OpReport;
use crate::spec::{self, PimDeviceConfig, Request, Response};

/// Writes at or below this size are candidates for batching (one page —
/// the paper batches "small-size data transfer" of a few hundred bytes).
pub const SMALL_WRITE_MAX: u64 = 4096;

#[derive(Debug)]
struct FrontState {
    nr_dpus: u32,
    mram_size: u64,
    prefetch: PrefetchCache,
    batch: BatchBuffer,
}

/// Registry-owned cells this frontend records into. The prefetch/batch
/// cells are shared with the (re-creatable) cache structures so counts
/// survive [`Frontend::initialize`]; the queue-depth gauge tracks in-flight
/// `transferq` chains for this device.
#[derive(Debug, Clone)]
struct FrontMetrics {
    prefetch_hits: Counter,
    prefetch_misses: Counter,
    batch_appends: Counter,
    batch_merges: Counter,
    batch_flushes: Counter,
    queue_depth: Gauge,
}

impl FrontMetrics {
    fn from_registry(registry: &MetricsRegistry, device_idx: usize) -> Self {
        FrontMetrics {
            prefetch_hits: registry.counter("frontend.prefetch.hits"),
            prefetch_misses: registry.counter("frontend.prefetch.misses"),
            batch_appends: registry.counter("frontend.batch.appends"),
            batch_merges: registry.counter("frontend.batch.merges"),
            batch_flushes: registry.counter("frontend.batch.flushes"),
            queue_depth: registry.gauge(&format!("virtio.queue.depth.rank{device_idx}")),
        }
    }

    fn prefetch_cache(&self, nr_dpus: usize, pages_per_dpu: usize) -> PrefetchCache {
        PrefetchCache::new(nr_dpus, pages_per_dpu)
            .with_counters(self.prefetch_hits.clone(), self.prefetch_misses.clone())
    }

    fn batch_buffer(&self, nr_dpus: usize, pages_per_dpu: usize) -> BatchBuffer {
        BatchBuffer::new(nr_dpus, pages_per_dpu).with_counters(
            self.batch_appends.clone(),
            self.batch_merges.clone(),
            self.batch_flushes.clone(),
        )
    }
}

/// The guest-side driver for one vUPMEM device.
#[derive(Debug)]
pub struct Frontend {
    device: Arc<VupmemDevice>,
    device_idx: usize,
    em: EventManager,
    mem: GuestMemory,
    queue: Mutex<DriverQueue>,
    cm: CostModel,
    vcfg: VpimConfig,
    metrics: FrontMetrics,
    state: Mutex<FrontState>,
}

impl Frontend {
    /// Probes the device during guest boot: performs the virtio status
    /// handshake and configures `transferq` and `controlq` in guest memory.
    /// Call **before** `Vm::boot` (the device reads the queue layout when
    /// it activates); call [`initialize`](Self::initialize) after boot.
    ///
    /// # Errors
    ///
    /// Guest memory exhaustion or MMIO errors.
    pub fn probe(
        device: Arc<VupmemDevice>,
        device_idx: usize,
        em: EventManager,
        mem: GuestMemory,
        cm: CostModel,
        vcfg: VpimConfig,
    ) -> Result<Frontend, VpimError> {
        Self::probe_with_registry(device, device_idx, em, mem, cm, vcfg, &MetricsRegistry::new())
    }

    /// [`probe`](Self::probe), with prefetch/batch/queue-depth metrics
    /// published into `registry` (`frontend.prefetch.*`, `frontend.batch.*`,
    /// `virtio.queue.depth.rank{device_idx}`).
    ///
    /// # Errors
    ///
    /// Guest memory exhaustion or MMIO errors.
    pub fn probe_with_registry(
        device: Arc<VupmemDevice>,
        device_idx: usize,
        em: EventManager,
        mem: GuestMemory,
        cm: CostModel,
        vcfg: VpimConfig,
        registry: &MetricsRegistry,
    ) -> Result<Frontend, VpimError> {
        let m = device.mmio();
        m.write(reg::STATUS, mmio_status::ACKNOWLEDGE)?;
        m.write(reg::STATUS, mmio_status::ACKNOWLEDGE | mmio_status::DRIVER)?;
        m.write(reg::DRIVER_FEATURES, 0)?;

        let layout = QueueLayout::alloc(&mem, spec::TRANSFERQ_SIZE)?;
        let set = |sel: u32, l: &QueueLayout| -> Result<(), VpimError> {
            m.write(reg::QUEUE_SEL, sel)?;
            m.write(reg::QUEUE_NUM, u32::from(l.size))?;
            m.write(reg::QUEUE_DESC_LOW, (l.desc.0 & 0xffff_ffff) as u32)?;
            m.write(reg::QUEUE_DESC_HIGH, (l.desc.0 >> 32) as u32)?;
            m.write(reg::QUEUE_DRIVER_LOW, (l.avail.0 & 0xffff_ffff) as u32)?;
            m.write(reg::QUEUE_DRIVER_HIGH, (l.avail.0 >> 32) as u32)?;
            m.write(reg::QUEUE_DEVICE_LOW, (l.used.0 & 0xffff_ffff) as u32)?;
            m.write(reg::QUEUE_DEVICE_HIGH, (l.used.0 >> 32) as u32)?;
            m.write(reg::QUEUE_READY, 1)?;
            Ok(())
        };
        set(spec::TRANSFERQ, &layout)?;
        let ctrl = QueueLayout::alloc(&mem, spec::CONTROLQ_SIZE)?;
        set(spec::CONTROLQ, &ctrl)?;
        m.write(
            reg::STATUS,
            mmio_status::ACKNOWLEDGE
                | mmio_status::DRIVER
                | mmio_status::FEATURES_OK
                | mmio_status::DRIVER_OK,
        )?;

        let metrics = FrontMetrics::from_registry(registry, device_idx);
        Ok(Frontend {
            device,
            device_idx,
            em,
            queue: Mutex::new(DriverQueue::new(mem.clone(), layout)),
            mem,
            cm,
            vcfg,
            state: Mutex::new(FrontState {
                nr_dpus: 0,
                mram_size: 0,
                prefetch: metrics.prefetch_cache(0, 0),
                batch: metrics.batch_buffer(0, 0),
            }),
            metrics,
        })
    }

    /// Completes initialization after boot: requests the device
    /// configuration (frequency, DPU count — §3.2) and sizes the prefetch
    /// cache and batch buffer.
    ///
    /// # Errors
    ///
    /// Transport failures or a backend that cannot link a rank.
    pub fn initialize(&self) -> Result<OpReport, VpimError> {
        let (resp, report) = self.roundtrip(&Request::Configure, &[])?;
        let mut padded = resp.payload.clone();
        padded.resize(PimDeviceConfig::ENCODED_LEN, 0);
        let cfg = PimDeviceConfig::decode(&padded)?;
        let mut st = self.state.lock();
        st.nr_dpus = cfg.nr_dpus;
        st.mram_size = cfg.mram_size;
        st.prefetch = self
            .metrics
            .prefetch_cache(cfg.nr_dpus as usize, self.vcfg.prefetch_pages_per_dpu);
        st.batch =
            self.metrics.batch_buffer(cfg.nr_dpus as usize, self.vcfg.batch_pages_per_dpu);
        Ok(report)
    }

    /// Number of DPUs behind this device (0 before `initialize`).
    #[must_use]
    pub fn nr_dpus(&self) -> u32 {
        self.state.lock().nr_dpus
    }

    /// MRAM bytes per DPU.
    #[must_use]
    pub fn mram_size(&self) -> u64 {
        self.state.lock().mram_size
    }

    /// The device this frontend drives.
    #[must_use]
    pub fn device(&self) -> &Arc<VupmemDevice> {
        &self.device
    }

    /// The optimization configuration this frontend runs with.
    #[must_use]
    pub fn config(&self) -> &VpimConfig {
        &self.vcfg
    }

    /// The cost model in effect.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.cm
    }

    /// Prefetch cache counters `(hits, misses)`.
    #[must_use]
    pub fn prefetch_stats(&self) -> (u64, u64) {
        self.state.lock().prefetch.stats()
    }

    /// Batch buffer counters `(appends, flushes)`.
    #[must_use]
    pub fn batch_stats(&self) -> (u64, u64) {
        self.state.lock().batch.stats()
    }

    /// Batch-buffer merges: appends whose target pages were all already
    /// dirty in the current batch window.
    #[must_use]
    pub fn batch_merges(&self) -> u64 {
        self.metrics.batch_merges.get()
    }

    // ------------------------------------------------------------ transport

    fn response_error(resp: &Response) -> VpimError {
        match resp.status {
            crate::backend::STATUS_FAULT => VpimError::Sim(upmem_sim::SimError::Fault(
                upmem_sim::DpuFault::new(resp.error.clone()),
            )),
            crate::backend::STATUS_NOT_LINKED => VpimError::NotLinked,
            crate::backend::STATUS_BAD => VpimError::BadRequest(resp.error.clone()),
            _ => match simkit::ErrorKind::from_code(resp.kind) {
                Some(kind) => VpimError::Remote { kind, message: resp.error.clone() },
                None => VpimError::Vmm(resp.error.clone()),
            },
        }
    }

    /// One full request/response exchange over `transferq`.
    fn roundtrip(
        &self,
        req: &Request,
        extra: &[(Gpa, u32, bool)],
    ) -> Result<(Response, OpReport), VpimError> {
        let pages = self.mem.alloc_pages(2)?;
        let (req_page, status_page) = (pages[0], pages[1]);
        let enc = req.encode();
        self.mem.write(req_page, &enc)?;

        let mut bufs: Vec<(Gpa, u32, bool)> = Vec::with_capacity(extra.len() + 2);
        bufs.push((req_page, enc.len() as u32, false));
        bufs.extend_from_slice(extra);
        bufs.push((status_page, 4096, true));
        self.queue.lock().add_chain(&bufs)?;
        self.metrics.queue_depth.add(1);

        // The guest kick: an MMIO write that traps to the VMM.
        self.device.mmio().write(reg::QUEUE_NOTIFY, spec::TRANSFERQ)?;
        self.em.kick(self.device_idx, spec::TRANSFERQ).map_err(VpimError::from)?;

        // Completion IRQ (already pending: the event manager processed the
        // request synchronously on this call path).
        if !self.device.irq().wait(Duration::from_secs(30)) {
            return Err(VpimError::Vmm("timeout waiting for completion irq".to_string()));
        }
        self.device.mmio().write(reg::INTERRUPT_ACK, 1)?;
        let (_head, _len) = self
            .queue
            .lock()
            .poll_used()?
            .ok_or_else(|| VpimError::Vmm("irq without used entry".to_string()))?;
        self.metrics.queue_depth.sub(1);

        let raw = self.mem.with_slice(status_page, 4096, <[u8]>::to_vec)?;
        let resp = Response::decode(&raw)?;
        self.mem.free_pages_back(&pages)?;

        let mut report = OpReport::default();
        report.add_messages(1);
        report.step(WriteStep::Interrupt, self.cm.virtio_round_trip());
        if resp.is_ok() {
            Ok((resp, report))
        } else {
            Err(Self::response_error(&resp))
        }
    }

    // ------------------------------------------------------------ rank ops

    /// `write-to-rank`: writes per-DPU buffers into MRAM. Small writes are
    /// absorbed by the batch buffer when batching is enabled.
    ///
    /// # Errors
    ///
    /// Transport or hardware failures.
    pub fn write_rank(&self, entries: &[(u32, u64, &[u8])]) -> Result<OpReport, VpimError> {
        let mut report = OpReport::default();
        if self.vcfg.request_batching
            && entries.iter().all(|(_, _, d)| d.len() as u64 <= SMALL_WRITE_MAX)
        {
            let need_flush = {
                let st = self.state.lock();
                entries
                    .iter()
                    .any(|(dpu, _, d)| st.batch.would_overflow(*dpu, d.len() as u64))
            };
            if need_flush {
                report.absorb(&self.flush_batch()?);
            }
            let mut st = self.state.lock();
            for (dpu, off, d) in entries {
                if st.batch.append(*dpu, *off, d) {
                    report.add_duration(self.cm.batch_append(d.len() as u64));
                } else {
                    // Same-DPU entries overran the buffer mid-loop: flush
                    // and retry once.
                    drop(st);
                    report.absorb(&self.flush_batch()?);
                    st = self.state.lock();
                    if st.batch.append(*dpu, *off, d) {
                        report.add_duration(self.cm.batch_append(d.len() as u64));
                    } else {
                        drop(st);
                        report.absorb(&self.write_direct(&[(*dpu, *off, *d)])?);
                        st = self.state.lock();
                    }
                }
            }
            return Ok(report);
        }
        if self.vcfg.request_batching {
            report.absorb(&self.flush_batch()?);
        }
        report.absorb(&self.write_direct(entries)?);
        Ok(report)
    }

    /// Sends buffered writes to the backend (also triggered automatically
    /// by any non-write request — §4.1).
    ///
    /// # Errors
    ///
    /// Transport or hardware failures.
    pub fn flush_batch(&self) -> Result<OpReport, VpimError> {
        let drained = self.state.lock().batch.drain();
        if drained.is_empty() {
            return Ok(OpReport::default());
        }
        let mut report = OpReport::default();
        for chunk in drained.chunks(MAX_DPUS) {
            let views: Vec<(u32, u64, &[u8])> =
                chunk.iter().map(|w| (w.dpu, w.offset, w.data.as_slice())).collect();
            report.absorb(&self.write_direct(&views)?);
        }
        Ok(report)
    }

    fn write_direct(&self, entries: &[(u32, u64, &[u8])]) -> Result<OpReport, VpimError> {
        self.state.lock().prefetch.invalidate();
        let mut report = OpReport::default();
        for chunk in entries.chunks(MAX_DPUS) {
            let (matrix, data_lease) = TransferMatrix::from_user_buffers(&self.mem, chunk)?;
            let pages = matrix.total_pages();
            let mut r = OpReport::default();
            r.step(WriteStep::PageMgmt, self.cm.page_mgmt(pages));
            let (bufs, meta_lease) = matrix.serialize(&self.mem)?;
            r.step(WriteStep::Serialize, self.cm.serialize_matrix(pages));
            let (resp, rt) =
                self.roundtrip(&Request::WriteRank { nr_dpus: chunk.len() as u32 }, &bufs)?;
            r.absorb(&rt);
            r.step(
                WriteStep::Deserialize,
                VirtualNanos::from_nanos(resp.deser_ns + resp.translate_ns),
            );
            r.step(WriteStep::TransferData, VirtualNanos::from_nanos(resp.transfer_ns));
            r.add_ddr(VirtualNanos::from_nanos(resp.ddr_ns));
            r.add_rank_ops(1);
            meta_lease.release();
            data_lease.release();
            report.absorb(&r);
        }
        Ok(report)
    }

    /// `read-from-rank`: reads `(dpu, offset, len)` ranges, serving small
    /// reads from the prefetch cache when enabled. Returns one buffer per
    /// request plus the cost report.
    ///
    /// # Errors
    ///
    /// Transport or hardware failures.
    pub fn read_rank(
        &self,
        reqs: &[(u32, u64, u64)],
    ) -> Result<(Vec<Vec<u8>>, OpReport), VpimError> {
        let mut report = OpReport::default();
        if self.vcfg.request_batching {
            report.absorb(&self.flush_batch()?);
        }
        // The cache serves the "host processes DPU data block by block in a
        // loop" pattern (§4.1): small reads targeting one DPU at a time.
        // Large parallel matrix reads bypass it.
        let cacheable = {
            let st = self.state.lock();
            self.vcfg.prefetch_cache
                && reqs.len() == 1
                && reqs.iter().all(|(_, _, len)| st.prefetch.cacheable(*len))
        };
        if !cacheable {
            let (out, r) = self.read_direct(reqs)?;
            report.absorb(&r);
            return Ok((out, report));
        }

        let mut outputs: Vec<Option<Vec<u8>>> = vec![None; reqs.len()];
        for (i, (dpu, offset, len)) in reqs.iter().enumerate() {
            // Try the cache.
            let hit = self.state.lock().prefetch.lookup(*dpu as usize, *offset, *len);
            if let Some(data) = hit {
                report.add_duration(self.cm.prefetch_hit(*len));
                outputs[i] = Some(data);
                continue;
            }
            // Miss: fetch a cache-sized segment starting at the request
            // address and repopulate (§4.1 step 3).
            let (seg_base, seg_len) = {
                let st = self.state.lock();
                let cap = st.prefetch.capacity_bytes();
                let max = st.mram_size.saturating_sub(*offset);
                (*offset, cap.min(max).max(*len))
            };
            let (mut seg, r) = self.read_direct(&[(*dpu, seg_base, seg_len)])?;
            report.absorb(&r);
            let data = seg.pop().expect("one segment");
            let mut st = self.state.lock();
            st.prefetch.install(*dpu as usize, seg_base, data);
            let served = st
                .prefetch
                .lookup(*dpu as usize, *offset, *len)
                .expect("freshly installed segment must serve the miss");
            drop(st);
            report.add_duration(self.cm.prefetch_hit(*len));
            outputs[i] = Some(served);
        }
        Ok((
            outputs.into_iter().map(|o| o.expect("all served")).collect(),
            report,
        ))
    }

    fn read_direct(
        &self,
        reqs: &[(u32, u64, u64)],
    ) -> Result<(Vec<Vec<u8>>, OpReport), VpimError> {
        let mut report = OpReport::default();
        let mut outputs = Vec::with_capacity(reqs.len());
        for chunk in reqs.chunks(MAX_DPUS) {
            let (matrix, lease) = TransferMatrix::alloc_read_buffers(&self.mem, chunk)?;
            let pages = matrix.total_pages();
            let mut r = OpReport::default();
            r.step(WriteStep::PageMgmt, self.cm.page_mgmt(pages));
            let (bufs, meta_lease) = matrix.serialize(&self.mem)?;
            r.step(WriteStep::Serialize, self.cm.serialize_matrix(pages));
            let (resp, rt) =
                self.roundtrip(&Request::ReadRank { nr_dpus: chunk.len() as u32 }, &bufs)?;
            r.absorb(&rt);
            r.step(
                WriteStep::Deserialize,
                VirtualNanos::from_nanos(resp.deser_ns + resp.translate_ns),
            );
            r.step(WriteStep::TransferData, VirtualNanos::from_nanos(resp.transfer_ns));
            r.add_ddr(VirtualNanos::from_nanos(resp.ddr_ns));
            r.add_rank_ops(1);
            for entry in &matrix.entries {
                let data = TransferMatrix::gather(&self.mem, entry)?;
                r.add_duration(self.cm.memcpy(entry.len));
                outputs.push(data);
            }
            meta_lease.release();
            lease.release();
            report.absorb(&r);
        }
        Ok((outputs, report))
    }

    // ------------------------------------------------------------- CI ops

    /// Loads a program image by name (CI operation).
    ///
    /// # Errors
    ///
    /// Unknown kernel, IRAM overflow, or transport failures.
    pub fn load_program(&self, name: &str, dpus: &[u32]) -> Result<OpReport, VpimError> {
        let mut report = self.flush_batch()?;
        let (_, rt) = self.roundtrip(
            &Request::LoadProgram { name: name.to_string(), dpus: dpus.to_vec() },
            &[],
        )?;
        report.absorb(&rt);
        Ok(report)
    }

    /// Boots the loaded program and returns the slowest DPU's cycle count
    /// in the report. Invalidates the prefetch cache (§4.1).
    ///
    /// # Errors
    ///
    /// DPU faults surface as [`VpimError::Sim`].
    pub fn launch(&self, dpus: &[u32], nr_tasklets: u32) -> Result<OpReport, VpimError> {
        let mut report = self.flush_batch()?;
        self.state.lock().prefetch.invalidate();
        let (resp, rt) =
            self.roundtrip(&Request::Launch { dpus: dpus.to_vec(), nr_tasklets }, &[])?;
        report.absorb(&rt);
        report.set_launch_cycles(resp.launch_cycles);
        Ok(report)
    }

    /// Polls one DPU's status (CI operation).
    ///
    /// # Errors
    ///
    /// Transport failures or an invalid DPU.
    pub fn poll_status(&self, dpu: u32) -> Result<(CiStatus, OpReport), VpimError> {
        let (resp, report) = self.roundtrip(&Request::PollStatus { dpu }, &[])?;
        let code = resp.payload.first().copied().unwrap_or(0);
        let status = match code {
            1 => CiStatus::Running,
            2 => CiStatus::Done,
            3 => CiStatus::Fault,
            _ => CiStatus::Idle,
        };
        Ok((status, report))
    }

    /// Writes a host symbol on one DPU.
    ///
    /// # Errors
    ///
    /// Unknown symbol, size mismatch, or transport failures.
    pub fn write_symbol(
        &self,
        dpu: u32,
        name: &str,
        bytes: &[u8],
    ) -> Result<OpReport, VpimError> {
        if bytes.len() > 4096 {
            return Err(VpimError::BadRequest(format!(
                "symbol payload of {} bytes exceeds one page",
                bytes.len()
            )));
        }
        let mut report = self.flush_batch()?;
        let pages = self.mem.alloc_pages(1)?;
        self.mem.write(pages[0], bytes)?;
        let (_, rt) = self.roundtrip(
            &Request::WriteSymbol { dpu, name: name.to_string(), len: bytes.len() as u32 },
            &[(pages[0], bytes.len() as u32, false)],
        )?;
        self.mem.free_pages_back(&pages)?;
        report.absorb(&rt);
        Ok(report)
    }

    /// Writes one `u32` symbol on many DPUs with a single request (the
    /// SDK's parallel argument push — one transition per rank instead of
    /// one per DPU).
    ///
    /// # Errors
    ///
    /// Unknown symbol or transport failures.
    pub fn scatter_symbol(
        &self,
        name: &str,
        entries: &[(u32, u32)],
    ) -> Result<OpReport, VpimError> {
        let mut report = self.flush_batch()?;
        for chunk in entries.chunks(MAX_DPUS) {
            let (_, rt) = self.roundtrip(
                &Request::ScatterSymbol { name: name.to_string(), entries: chunk.to_vec() },
                &[],
            )?;
            report.absorb(&rt);
        }
        Ok(report)
    }

    /// Reads a host symbol from one DPU.
    ///
    /// # Errors
    ///
    /// Unknown symbol, size mismatch, or transport failures.
    pub fn read_symbol(
        &self,
        dpu: u32,
        name: &str,
        len: usize,
    ) -> Result<(Vec<u8>, OpReport), VpimError> {
        let mut report = self.flush_batch()?;
        let (resp, rt) = self.roundtrip(
            &Request::ReadSymbol { dpu, name: name.to_string(), len: len as u32 },
            &[],
        )?;
        report.absorb(&rt);
        Ok((resp.payload, report))
    }

    /// Detaches the device from its physical rank; the manager's observer
    /// will reset and recycle it.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn release_rank(&self) -> Result<OpReport, VpimError> {
        let mut report = self.flush_batch()?;
        self.state.lock().prefetch.invalidate();
        let (_, rt) = self.roundtrip(&Request::ReleaseRank, &[])?;
        report.absorb(&rt);
        Ok(report)
    }

    /// Charges the analytic cost of the SDK's status-poll loop during a
    /// synchronous launch of `exec_time`: each poll is a CI read through
    /// the device (a full guest↔VMM round trip). One real poll was already
    /// issued by the caller; this accounts for the remaining `n-1`.
    #[must_use]
    pub fn sync_poll_cost(&self, exec_time: VirtualNanos) -> (u64, VirtualNanos) {
        let polls = self.cm.launch_polls(exec_time);
        let extra = polls.saturating_sub(1);
        (extra, self.cm.virtio_round_trip().saturating_mul(extra))
    }
}
