//! The frontend prefetch cache (§4.1).
//!
//! Frequent small reads (the host application walking DPU results block by
//! block) each cost a full guest↔VMM round trip, up to 53× overhead. The
//! frontend therefore keeps a per-DPU cache of 16 pages: a small read that
//! hits is served locally; a miss fetches a cache-sized segment starting at
//! the requested address. The cache is invalidated by `write-to-rank`,
//! program launches, and rank release — writes invalidate only the written
//! DPUs' segments, launch/release clear everything.

use simkit::Counter;

/// One DPU's cached MRAM segment.
#[derive(Debug, Clone)]
struct Segment {
    base: u64,
    data: Vec<u8>,
}

/// The per-device prefetch cache.
#[derive(Debug)]
pub struct PrefetchCache {
    capacity_bytes: u64,
    segments: Vec<Option<Segment>>,
    hits: Counter,
    misses: Counter,
    scoped_invalidations: Counter,
    global_invalidations: Counter,
}

impl PrefetchCache {
    /// Creates a cache for `nr_dpus` DPUs with `pages_per_dpu` pages each.
    #[must_use]
    pub fn new(nr_dpus: usize, pages_per_dpu: usize) -> Self {
        PrefetchCache {
            capacity_bytes: pages_per_dpu as u64 * 4096,
            segments: vec![None; nr_dpus],
            hits: Counter::new(),
            misses: Counter::new(),
            scoped_invalidations: Counter::new(),
            global_invalidations: Counter::new(),
        }
    }

    /// Replaces the hit/miss cells with registry-owned counters (e.g.
    /// `frontend.prefetch.hits` / `frontend.prefetch.misses`). Counts
    /// survive cache re-creation because the cells do.
    #[must_use]
    pub fn with_counters(mut self, hits: Counter, misses: Counter) -> Self {
        self.hits = hits;
        self.misses = misses;
        self
    }

    /// Replaces the invalidation cells with registry-owned counters
    /// (`frontend.prefetch.invalidations.scoped` / `.global`).
    #[must_use]
    pub fn with_invalidation_counters(mut self, scoped: Counter, global: Counter) -> Self {
        self.scoped_invalidations = scoped;
        self.global_invalidations = global;
        self
    }

    /// Cache segment size in bytes (the fetch granule).
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Whether a read of `len` bytes is small enough to be cacheable.
    #[must_use]
    pub fn cacheable(&self, len: u64) -> bool {
        len <= self.capacity_bytes
    }

    /// Attempts to serve a read from the cache into `out` (appended), so
    /// the hot hit path never allocates: callers reuse one buffer — or a
    /// [`BytePool`](simkit::BytePool) guard — across lookups. Returns
    /// `true` on a hit.
    pub fn lookup_into(&mut self, dpu: usize, offset: u64, len: u64, out: &mut Vec<u8>) -> bool {
        let served = self.segments.get(dpu).and_then(Option::as_ref).and_then(|seg| {
            let end = offset.checked_add(len)?;
            // A segment installed near the top of the address space must
            // not wrap: an overflowing span is a miss, not a panic.
            let seg_end = seg.base.checked_add(seg.data.len() as u64)?;
            if offset >= seg.base && end <= seg_end {
                let lo = (offset - seg.base) as usize;
                Some(&seg.data[lo..lo + len as usize])
            } else {
                None
            }
        });
        match served {
            Some(data) => {
                out.extend_from_slice(data);
                self.hits.inc();
                true
            }
            None => {
                self.misses.inc();
                false
            }
        }
    }

    /// Attempts to serve a read from the cache, allocating the result.
    /// Convenience wrapper over [`lookup_into`](Self::lookup_into) for
    /// paths where the output buffer escapes anyway.
    pub fn lookup(&mut self, dpu: usize, offset: u64, len: u64) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(len as usize);
        self.lookup_into(dpu, offset, len, &mut out).then_some(out)
    }

    /// Installs a freshly fetched segment for `dpu`.
    pub fn install(&mut self, dpu: usize, base: u64, data: Vec<u8>) {
        if let Some(slot) = self.segments.get_mut(dpu) {
            *slot = Some(Segment { base, data });
        }
    }

    /// The `(base, len)` span of `dpu`'s resident segment, if any. The
    /// adaptive controller uses this to detect contiguous overrun misses.
    #[must_use]
    pub fn segment_span(&self, dpu: usize) -> Option<(u64, u64)> {
        let seg = self.segments.get(dpu).and_then(Option::as_ref)?;
        Some((seg.base, seg.data.len() as u64))
    }

    /// Invalidates every segment (launch or release).
    pub fn invalidate(&mut self) {
        for s in &mut self.segments {
            *s = None;
        }
        self.global_invalidations.inc();
    }

    /// Invalidates only the given DPUs' segments (write-to-rank: a write
    /// can only stale the data of the DPUs it touched).
    pub fn invalidate_dpus(&mut self, dpus: impl IntoIterator<Item = usize>) {
        for dpu in dpus {
            if let Some(slot) = self.segments.get_mut(dpu) {
                *slot = None;
            }
        }
        self.scoped_invalidations.inc();
    }

    /// `(hits, misses)` counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_after_install() {
        let mut c = PrefetchCache::new(4, 16);
        assert_eq!(c.lookup(1, 100, 8), None);
        c.install(1, 64, (0..255u8).collect());
        let got = c.lookup(1, 100, 8).unwrap();
        assert_eq!(got, ((100 - 64) as u8..(108 - 64) as u8).collect::<Vec<_>>());
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lookup_into_reuses_the_caller_buffer() {
        let mut c = PrefetchCache::new(1, 1);
        c.install(0, 0, (0..64u8).collect());
        let mut buf = Vec::with_capacity(64);
        for i in 0..8u64 {
            buf.clear();
            assert!(c.lookup_into(0, i * 8, 8, &mut buf));
            assert_eq!(buf[0], (i * 8) as u8);
            assert_eq!(buf.capacity(), 64, "the hot hit path must not reallocate");
        }
        assert_eq!(c.stats(), (8, 0));
    }

    #[test]
    fn partial_overlap_is_a_miss() {
        let mut c = PrefetchCache::new(1, 1);
        c.install(0, 0, vec![0u8; 4096]);
        assert!(c.lookup(0, 4090, 10).is_none());
        assert!(c.lookup(0, 0, 4096).is_some());
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut c = PrefetchCache::new(2, 1);
        c.install(0, 0, vec![1; 16]);
        c.install(1, 0, vec![2; 16]);
        c.invalidate();
        assert!(c.lookup(0, 0, 1).is_none());
        assert!(c.lookup(1, 0, 1).is_none());
    }

    #[test]
    fn scoped_invalidation_spares_untouched_dpus() {
        let mut c = PrefetchCache::new(3, 1);
        for d in 0..3 {
            c.install(d, 0, vec![d as u8; 16]);
        }
        c.invalidate_dpus([0, 2]);
        assert!(c.lookup(0, 0, 1).is_none());
        assert_eq!(c.lookup(1, 0, 1), Some(vec![1]));
        assert!(c.lookup(2, 0, 1).is_none());
    }

    #[test]
    fn invalidation_counters_split_scoped_from_global() {
        let scoped = Counter::new();
        let global = Counter::new();
        let mut c = PrefetchCache::new(2, 1)
            .with_invalidation_counters(scoped.clone(), global.clone());
        c.invalidate_dpus([0]);
        c.invalidate_dpus([1]);
        c.invalidate();
        assert_eq!(scoped.get(), 2);
        assert_eq!(global.get(), 1);
    }

    #[test]
    fn cacheable_respects_capacity() {
        let c = PrefetchCache::new(1, 16);
        assert!(c.cacheable(16 * 4096));
        assert!(!c.cacheable(16 * 4096 + 1));
    }

    #[test]
    fn out_of_range_dpu_is_harmless() {
        let mut c = PrefetchCache::new(1, 1);
        assert!(c.lookup(9, 0, 1).is_none());
        c.install(9, 0, vec![1]); // silently ignored
        c.invalidate_dpus([9]); // likewise
    }

    #[test]
    fn overflowing_offsets_are_misses_not_panics() {
        let mut c = PrefetchCache::new(1, 1);
        c.install(0, 0, vec![0; 8]);
        assert!(c.lookup(0, u64::MAX, 2).is_none());
    }

    #[test]
    fn segment_installed_near_u64_max_is_a_miss_not_an_overflow() {
        // Regression: the hit test computed `seg.base + seg.data.len()`
        // unchecked, so a segment installed near the top of the address
        // space overflowed (panic in debug, bogus wrap-around hit in
        // release). The span must saturate into a miss instead.
        let mut c = PrefetchCache::new(1, 1);
        c.install(0, u64::MAX - 4, vec![0xAB; 8]); // base + len wraps
        assert!(c.lookup(0, u64::MAX - 4, 2).is_none());
        assert!(c.lookup(0, u64::MAX - 1, 1).is_none());
        // A non-wrapping segment that ends exactly at u64::MAX still hits.
        let mut c = PrefetchCache::new(1, 1);
        c.install(0, u64::MAX - 8, vec![0xCD; 8]);
        assert_eq!(c.lookup(0, u64::MAX - 8, 2), Some(vec![0xCD; 2]));
        assert_eq!(c.segment_span(0), Some((u64::MAX - 8, 8)));
    }
}
