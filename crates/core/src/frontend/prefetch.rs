//! The frontend prefetch cache (§4.1).
//!
//! Frequent small reads (the host application walking DPU results block by
//! block) each cost a full guest↔VMM round trip, up to 53× overhead. The
//! frontend therefore keeps a per-DPU cache of 16 pages: a small read that
//! hits is served locally; a miss fetches a cache-sized segment starting at
//! the requested address. The cache is invalidated by `write-to-rank`,
//! program launches, and rank release.

use simkit::Counter;

/// One DPU's cached MRAM segment.
#[derive(Debug, Clone)]
struct Segment {
    base: u64,
    data: Vec<u8>,
}

/// The per-device prefetch cache.
#[derive(Debug)]
pub struct PrefetchCache {
    capacity_bytes: u64,
    segments: Vec<Option<Segment>>,
    hits: Counter,
    misses: Counter,
}

impl PrefetchCache {
    /// Creates a cache for `nr_dpus` DPUs with `pages_per_dpu` pages each.
    #[must_use]
    pub fn new(nr_dpus: usize, pages_per_dpu: usize) -> Self {
        PrefetchCache {
            capacity_bytes: pages_per_dpu as u64 * 4096,
            segments: vec![None; nr_dpus],
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    /// Replaces the hit/miss cells with registry-owned counters (e.g.
    /// `frontend.prefetch.hits` / `frontend.prefetch.misses`). Counts
    /// survive cache re-creation because the cells do.
    #[must_use]
    pub fn with_counters(mut self, hits: Counter, misses: Counter) -> Self {
        self.hits = hits;
        self.misses = misses;
        self
    }

    /// Cache segment size in bytes (the fetch granule).
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Whether a read of `len` bytes is small enough to be cacheable.
    #[must_use]
    pub fn cacheable(&self, len: u64) -> bool {
        len <= self.capacity_bytes
    }

    /// Attempts to serve a read from the cache.
    pub fn lookup(&mut self, dpu: usize, offset: u64, len: u64) -> Option<Vec<u8>> {
        let served = self.segments.get(dpu).and_then(Option::as_ref).and_then(|seg| {
            let end = offset.checked_add(len)?;
            if offset >= seg.base && end <= seg.base + seg.data.len() as u64 {
                let lo = (offset - seg.base) as usize;
                Some(seg.data[lo..lo + len as usize].to_vec())
            } else {
                None
            }
        });
        match served {
            Some(data) => {
                self.hits.inc();
                Some(data)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Installs a freshly fetched segment for `dpu`.
    pub fn install(&mut self, dpu: usize, base: u64, data: Vec<u8>) {
        if let Some(slot) = self.segments.get_mut(dpu) {
            *slot = Some(Segment { base, data });
        }
    }

    /// Invalidates every segment (write-to-rank, launch, or release).
    pub fn invalidate(&mut self) {
        for s in &mut self.segments {
            *s = None;
        }
    }

    /// `(hits, misses)` counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_after_install() {
        let mut c = PrefetchCache::new(4, 16);
        assert_eq!(c.lookup(1, 100, 8), None);
        c.install(1, 64, (0..255u8).collect());
        let got = c.lookup(1, 100, 8).unwrap();
        assert_eq!(got, ((100 - 64) as u8..(108 - 64) as u8).collect::<Vec<_>>());
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn partial_overlap_is_a_miss() {
        let mut c = PrefetchCache::new(1, 1);
        c.install(0, 0, vec![0u8; 4096]);
        assert!(c.lookup(0, 4090, 10).is_none());
        assert!(c.lookup(0, 0, 4096).is_some());
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut c = PrefetchCache::new(2, 1);
        c.install(0, 0, vec![1; 16]);
        c.install(1, 0, vec![2; 16]);
        c.invalidate();
        assert!(c.lookup(0, 0, 1).is_none());
        assert!(c.lookup(1, 0, 1).is_none());
    }

    #[test]
    fn cacheable_respects_capacity() {
        let c = PrefetchCache::new(1, 16);
        assert!(c.cacheable(16 * 4096));
        assert!(!c.cacheable(16 * 4096 + 1));
    }

    #[test]
    fn out_of_range_dpu_is_harmless() {
        let mut c = PrefetchCache::new(1, 1);
        assert!(c.lookup(9, 0, 1).is_none());
        c.install(9, 0, vec![1]); // silently ignored
    }

    #[test]
    fn overflowing_offsets_are_misses_not_panics() {
        let mut c = PrefetchCache::new(1, 1);
        c.install(0, 0, vec![0; 8]);
        assert!(c.lookup(0, u64::MAX, 2).is_none());
    }
}
