//! The vPIM error type.

use core::fmt;

use pim_virtio::VirtioError;
use pim_vmm::VmmError;
use simkit::{ErrorKind, HasErrorKind};
use upmem_driver::DriverError;
use upmem_sim::SimError;

/// Errors raised by the vPIM stack.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VpimError {
    /// The virtio transport failed.
    Virtio(VirtioError),
    /// The VMM rejected an operation.
    Vmm(String),
    /// The host driver rejected an operation.
    Driver(DriverError),
    /// The simulated hardware rejected an operation.
    Sim(SimError),
    /// The manager could not satisfy a rank allocation (all retries
    /// exhausted — §3.5 "the request is abandoned").
    NoRankAvailable,
    /// The manager has shut down.
    ManagerDown,
    /// A queued rank request waited out the scheduler's admission timeout
    /// without a grant (oversubscribed hosts only; carries the tenant).
    AdmissionTimeout(String),
    /// The vUPMEM device is not linked to a physical rank (Appendix A.1:
    /// requests must not be sent while unlinked).
    NotLinked,
    /// A request decoded to something malformed.
    BadRequest(String),
    /// A transfer exceeded a protocol bound (e.g. > 64 DPUs in a matrix).
    ProtocolViolation(String),
    /// An error reported by the backend across the virtio transport. The
    /// structured cause cannot cross the ring, but its [`ErrorKind`] does
    /// (carried in the status page), so classification survives.
    Remote {
        /// The backend-side error class.
        kind: ErrorKind,
        /// The backend's rendered error message.
        message: String,
    },
    /// A transient failure raised by the deterministic fault-injection
    /// plane at a frontend-visible site (e.g. a dropped guest kick).
    /// Retrying is always safe; see [`VpimError::is_transient`].
    Injected {
        /// The fault point that fired (e.g. `vmm.kick.drop`).
        point: &'static str,
    },
}

impl VpimError {
    /// True when the failure is transport backpressure: a bounded resource
    /// (guest bounce pages, virtqueue slots) is exhausted by in-flight
    /// operations. Completing one of them and retrying is the correct
    /// response; any other error is a hard failure.
    #[must_use]
    pub fn is_backpressure(&self) -> bool {
        matches!(
            self,
            VpimError::Virtio(VirtioError::OutOfPages { .. } | VirtioError::QueueFull)
        )
    }

    /// True when the failure came from the fault-injection plane (at any
    /// layer) and retrying the operation is therefore always safe. This is
    /// deliberately narrower than "retryable-looking": e.g. `NotLinked` and
    /// `ManagerDown` are [`ErrorKind::Unavailable`] states that a retry
    /// cannot fix and must fail fast.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        self.kind() == ErrorKind::Injected
    }
}

impl fmt::Display for VpimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VpimError::Virtio(e) => write!(f, "virtio: {e}"),
            VpimError::Vmm(msg) => write!(f, "vmm: {msg}"),
            VpimError::Driver(e) => write!(f, "driver: {e}"),
            VpimError::Sim(e) => write!(f, "hardware: {e}"),
            VpimError::NoRankAvailable => write!(f, "no rank available after all retries"),
            VpimError::ManagerDown => write!(f, "the vpim manager has shut down"),
            VpimError::AdmissionTimeout(tenant) => {
                write!(f, "admission queue timed out before `{tenant}` was granted a rank")
            }
            VpimError::NotLinked => write!(f, "vupmem device is not linked to a physical rank"),
            VpimError::BadRequest(msg) => write!(f, "malformed request: {msg}"),
            VpimError::ProtocolViolation(msg) => write!(f, "protocol violation: {msg}"),
            VpimError::Remote { message, .. } => write!(f, "backend: {message}"),
            VpimError::Injected { point } => {
                write!(f, "transient failure (injected at {point})")
            }
        }
    }
}

impl std::error::Error for VpimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VpimError::Virtio(e) => Some(e),
            VpimError::Driver(e) => Some(e),
            VpimError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VirtioError> for VpimError {
    fn from(e: VirtioError) -> Self {
        VpimError::Virtio(e)
    }
}

impl From<DriverError> for VpimError {
    fn from(e: DriverError) -> Self {
        VpimError::Driver(e)
    }
}

impl From<SimError> for VpimError {
    fn from(e: SimError) -> Self {
        VpimError::Sim(e)
    }
}

impl From<VmmError> for VpimError {
    fn from(e: VmmError) -> Self {
        match e {
            // Keep the injected classification: a dropped kick must stay
            // distinguishable (and transient) after crossing into vpim.
            VmmError::KickDropped => VpimError::Injected { point: pim_vmm::KICK_DROP_POINT },
            VmmError::Virtio(v) => VpimError::Virtio(v),
            other => VpimError::Vmm(other.to_string()),
        }
    }
}

impl HasErrorKind for VpimError {
    fn kind(&self) -> ErrorKind {
        match self {
            VpimError::Virtio(e) => e.kind(),
            VpimError::Driver(e) => e.kind(),
            VpimError::Sim(e) => e.kind(),
            // The VMM arm carries only a rendered message (transport replies
            // cross the virtio ring as strings), so classify conservatively.
            VpimError::Vmm(_) => ErrorKind::Protocol,
            VpimError::NoRankAvailable | VpimError::AdmissionTimeout(_) => {
                ErrorKind::ResourceExhausted
            }
            VpimError::ManagerDown | VpimError::NotLinked => ErrorKind::Unavailable,
            VpimError::BadRequest(_) => ErrorKind::InvalidInput,
            VpimError::ProtocolViolation(_) => ErrorKind::Protocol,
            VpimError::Remote { kind, .. } => *kind,
            VpimError::Injected { .. } => ErrorKind::Injected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        use std::error::Error;
        let e: VpimError = VirtioError::QueueFull.into();
        assert!(e.source().is_some());
        let e: VpimError = SimError::InvalidRank(1).into();
        assert!(e.to_string().contains("hardware"));
        assert!(VpimError::NoRankAvailable.source().is_none());
    }

    #[test]
    fn kind_survives_layer_conversions() {
        let e: VpimError = SimError::MramOutOfBounds { offset: 1, len: 2, capacity: 1 }.into();
        assert_eq!(e.kind(), ErrorKind::OutOfBounds);
        let e: VpimError = VirtioError::QueueFull.into();
        assert_eq!(e.kind(), ErrorKind::ResourceExhausted);
        let e: VpimError = DriverError::RankInUse { rank: 0, owner: "x".into() }.into();
        assert_eq!(e.kind(), ErrorKind::Busy);
        assert_eq!(VpimError::NoRankAvailable.kind(), ErrorKind::ResourceExhausted);
        assert_eq!(VpimError::ManagerDown.kind(), ErrorKind::Unavailable);
    }

    #[test]
    fn is_send_sync() {
        fn f<T: Send + Sync>() {}
        f::<VpimError>();
    }
}
