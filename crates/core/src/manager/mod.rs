//! The vPIM manager (§3.5).
//!
//! One manager runs per host. It owns the rank-sharing policy:
//!
//! * a **rank table** tracking every rank's state — `ALLO` (allocated),
//!   `NAAV` (not allocated, available) or `NANA` (not allocated, not
//!   available: awaiting content reset) — Fig. 5;
//! * an **allocation strategy**: prefer a `NANA` rank previously used by
//!   the same requester (skips the reset), else a `NAAV` rank by
//!   round-robin, else wait for a `NANA` reset to finish, else retry with a
//!   configurable timeout up to a configurable attempt count, then abandon;
//!   requests are served FIFO by a thread pool (8 threads in the paper);
//! * an **observer thread** that watches the driver's sysfs rank-status
//!   files: VMs do *not* tell the manager when they release a rank — the
//!   observer detects the release, moves the rank to `NANA` and triggers
//!   the content-reset worker (~597 ms per 4 GiB rank), after which the
//!   rank becomes `NAAV`;
//! * seamless coexistence with **native host applications**: a rank claimed
//!   directly through the driver shows up in sysfs and is marked `ALLO` by
//!   the observer, so the manager never double-allocates it.

pub mod reference;
pub mod table;

pub use table::{AllocOutcome, ManagerStats, RankState, RANK_SHARDS};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use simkit::{CostModel, FaultPlane, InjectCell, VirtualNanos};
use upmem_driver::UpmemDriver;

use crate::error::VpimError;
use table::TableState;

/// Fault point for manager RPCs ([`ManagerClient::alloc`],
/// [`ManagerClient::sync`], [`ManagerClient::mark_ckpt`]): firing makes
/// the call fail typed (or, for the fire-and-wait `sync`, skip the sweep)
/// before reaching the manager — the simulated analogue of a dropped
/// domain-socket message. Counter-based across all RPC kinds.
pub const MANAGER_RPC_POINT: &str = "manager.rpc";

/// Tuning knobs of the manager (§3.5 defaults).
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Worker threads serving allocation requests (paper: 8).
    pub pool_threads: usize,
    /// How long one allocation attempt waits before retrying.
    pub retry_timeout: Duration,
    /// Attempts before a request is abandoned.
    pub max_attempts: usize,
    /// Rank groups the rank table is split into (clamped to the rank
    /// count). `1` degenerates to the pre-sharding single-lock layout —
    /// the configuration the load harness byte-compares against.
    pub rank_shards: usize,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            pool_threads: 8,
            retry_timeout: Duration::from_millis(200),
            max_attempts: 5,
            rank_shards: RANK_SHARDS,
        }
    }
}

enum Msg {
    Alloc { owner: String, reply: Sender<Result<AllocOutcome, VpimError>> },
    /// One synchronous observe-and-reset sweep (scheduler: expedite rank
    /// recycling after a preemption instead of waiting for the observer).
    Sync { reply: Sender<()> },
    /// Flip an `ALLO` rank to `CKPT` (scheduler checkpointed its owner).
    MarkCkpt { rank: usize, reply: Sender<bool> },
    Stop,
}

/// A cheap handle for sending requests to the manager (the "UNIX domain
/// socket" client side).
#[derive(Debug, Clone)]
pub struct ManagerClient {
    tx: Sender<Msg>,
    /// Shared across clones (`Arc`), so installing a plane on the manager
    /// covers every client handed out before or after.
    inject: Arc<InjectCell>,
}

impl ManagerClient {
    /// Requests a rank for `owner`, blocking until the manager decides.
    ///
    /// # Errors
    ///
    /// [`VpimError::NoRankAvailable`] after all attempts,
    /// [`VpimError::ManagerDown`] if the manager stopped, or a typed
    /// [`VpimError::Injected`] when [`MANAGER_RPC_POINT`] fires.
    pub fn alloc(&self, owner: &str) -> Result<AllocOutcome, VpimError> {
        if self.inject.hit(MANAGER_RPC_POINT) {
            return Err(VpimError::Injected { point: MANAGER_RPC_POINT });
        }
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send(Msg::Alloc { owner: owner.to_string(), reply: reply_tx })
            .map_err(|_| VpimError::ManagerDown)?;
        reply_rx.recv().map_err(|_| VpimError::ManagerDown)?
    }

    /// Runs one synchronous observe-and-reset sweep in the manager and
    /// waits for it: released ranks become `NANA`, then reset to `NAAV`,
    /// before this returns. A no-op result if the manager stopped, or if
    /// [`MANAGER_RPC_POINT`] fires (the sweep is skipped — callers already
    /// tolerate the observer being late, so this degrades gracefully).
    pub fn sync(&self) {
        if self.inject.hit(MANAGER_RPC_POINT) {
            return;
        }
        let (reply_tx, reply_rx) = unbounded();
        if self.tx.send(Msg::Sync { reply: reply_tx }).is_ok() {
            let _ = reply_rx.recv();
        }
    }

    /// Marks `rank` as checkpointed (`ALLO → CKPT`); returns whether the
    /// transition happened.
    ///
    /// # Errors
    ///
    /// [`VpimError::ManagerDown`] if the manager stopped, or a typed
    /// [`VpimError::Injected`] when [`MANAGER_RPC_POINT`] fires.
    pub fn mark_ckpt(&self, rank: usize) -> Result<bool, VpimError> {
        if self.inject.hit(MANAGER_RPC_POINT) {
            return Err(VpimError::Injected { point: MANAGER_RPC_POINT });
        }
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send(Msg::MarkCkpt { rank, reply: reply_tx })
            .map_err(|_| VpimError::ManagerDown)?;
        reply_rx.recv().map_err(|_| VpimError::ManagerDown)
    }
}

/// The running manager daemon.
pub struct Manager {
    client: ManagerClient,
    state: Arc<TableState>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    tx: Sender<Msg>,
    cfg: ManagerConfig,
}

impl std::fmt::Debug for Manager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Manager")
            .field("threads", &self.threads.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Manager {
    /// Starts the manager on a host: spawns the worker pool, the sysfs
    /// observer and the reset worker. Telemetry goes into a private
    /// registry; use [`Self::start_with_registry`] to publish it.
    #[must_use]
    pub fn start(driver: Arc<UpmemDriver>, cm: CostModel, cfg: ManagerConfig) -> Self {
        Self::start_with_registry(driver, cm, cfg, &simkit::MetricsRegistry::new())
    }

    /// [`start`](Self::start), with the rank state machine's transition
    /// count published into `registry` as `manager.rank_state.transitions`.
    #[must_use]
    pub fn start_with_registry(
        driver: Arc<UpmemDriver>,
        cm: CostModel,
        cfg: ManagerConfig,
        registry: &simkit::MetricsRegistry,
    ) -> Self {
        let state = Arc::new(
            TableState::new_with_shards(driver.clone(), cm, cfg.rank_shards)
                .with_transition_counter(registry.counter("manager.rank_state.transitions")),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<Msg>, Receiver<Msg>) = unbounded();
        let (reset_tx, reset_rx) = unbounded::<usize>();

        let mut threads = Vec::new();
        // Worker pool (FIFO service of allocation requests).
        for _ in 0..cfg.pool_threads.max(1) {
            let rx = rx.clone();
            let state = Arc::clone(&state);
            let cfg = cfg.clone();
            threads.push(std::thread::spawn(move || loop {
                match rx.recv() {
                    Ok(Msg::Alloc { owner, reply }) => {
                        let result = state.alloc(&owner, cfg.retry_timeout, cfg.max_attempts);
                        let _ = reply.send(result);
                    }
                    Ok(Msg::Sync { reply }) => {
                        state.sync_now();
                        let _ = reply.send(());
                    }
                    Ok(Msg::MarkCkpt { rank, reply }) => {
                        let _ = reply.send(state.mark_ckpt(rank));
                    }
                    Ok(Msg::Stop) | Err(_) => break,
                }
            }));
        }
        // Observer thread: detect releases via sysfs and external claims.
        // The sweep is sharded — each board rank group is snapshotted and
        // reconciled independently, so a sweep never holds more than one
        // board shard and one table shard at a time.
        {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let reset_tx = reset_tx.clone();
            let driver = driver.clone();
            threads.push(std::thread::spawn(move || {
                let mut seen = driver.sysfs().generation();
                while !stop.load(Ordering::Relaxed) {
                    seen = driver
                        .sysfs()
                        .wait_for_change(seen, Duration::from_millis(50));
                    let board = driver.sysfs();
                    for group in 0..board.shard_count() {
                        let Some((base, entries)) = board.snapshot_group(group) else {
                            continue;
                        };
                        for rank in state.sync_group_sweep(base, &entries) {
                            let _ = reset_tx.send(rank);
                        }
                    }
                }
            }));
        }
        // Reset worker: erase released ranks (NANA → NAAV).
        {
            let state = Arc::clone(&state);
            threads.push(std::thread::spawn(move || {
                while let Ok(rank) = reset_rx.recv() {
                    if rank == usize::MAX {
                        break; // shutdown sentinel
                    }
                    state.reset_rank(rank);
                }
            }));
        }
        let client = ManagerClient { tx: tx.clone(), inject: Arc::new(InjectCell::new()) };
        // Keep a sender for the reset channel alive in state for shutdown.
        state.set_reset_sender(reset_tx);
        Manager { client, state, stop, threads, tx, cfg }
    }

    /// A client handle for issuing requests.
    #[must_use]
    pub fn client(&self) -> ManagerClient {
        self.client.clone()
    }

    /// Installs the fault-injection plane consulted by every client's RPCs
    /// ([`MANAGER_RPC_POINT`]). The cell is shared through `Arc`, so
    /// clients cloned *before* this call are covered too.
    pub fn install_fault_plane(&self, plane: Arc<FaultPlane>) {
        self.client.inject.install(plane);
    }

    /// Current state of every rank (diagnostics / figures).
    #[must_use]
    pub fn rank_states(&self) -> Vec<RankState> {
        self.state.states()
    }

    /// Aggregate statistics (allocations, resets, virtual reset time).
    #[must_use]
    pub fn stats(&self) -> ManagerStats {
        self.state.stats()
    }

    /// Rank state-machine edges walked (NAAV↔ALLO↔NANA, Fig. 5).
    #[must_use]
    pub fn state_transitions(&self) -> u64 {
        self.state.transitions()
    }

    /// The modeled duration of one allocation round trip when a NAAV rank
    /// is immediately available (§4.2: ~36 ms).
    #[must_use]
    pub fn alloc_cost(&self) -> VirtualNanos {
        self.state.alloc_cost()
    }

    /// Stops every manager thread and waits for them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for _ in 0..self.cfg.pool_threads.max(1) {
            let _ = self.tx.send(Msg::Stop);
        }
        self.state.shutdown();
        // Wake the observer (a claim/release bump would also do it; the
        // wait has a 50 ms timeout so it exits promptly).
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Synchronizes the table with sysfs immediately (test hook; the
    /// observer thread does this continuously).
    pub fn sync_now(&self) {
        self.state.sync_now();
    }

    /// Blocks until `rank` reaches `want` (up to `timeout`); returns
    /// whether it did. Condvar-backed: every table transition wakes the
    /// waiter, so this replaces sleep-poll loops in tests and tooling.
    #[must_use]
    pub fn wait_for_state(&self, rank: usize, want: RankState, timeout: Duration) -> bool {
        self.state.wait_for_state(rank, want, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upmem_sim::{PimConfig, PimMachine};

    fn host() -> (Arc<UpmemDriver>, Manager) {
        let driver = Arc::new(UpmemDriver::new(PimMachine::new(PimConfig::small())));
        let mgr = Manager::start(driver.clone(), CostModel::default(), ManagerConfig::default());
        (driver, mgr)
    }

    #[test]
    fn allocates_distinct_ranks() {
        let (driver, mgr) = host();
        let c = mgr.client();
        let a = c.alloc("vm-a").unwrap();
        let b = c.alloc("vm-b").unwrap();
        assert_ne!(a.rank, b.rank);
        // Both claimed through the driver now succeed.
        let _ha = driver.open_perf(a.rank, "vm-a").unwrap();
        let _hb = driver.open_perf(b.rank, "vm-b").unwrap();
        mgr.shutdown();
    }

    #[test]
    fn exhaustion_abandons_request() {
        let (_driver, mgr) = {
            let driver = Arc::new(UpmemDriver::new(PimMachine::new(PimConfig::small())));
            let cfg = ManagerConfig {
                retry_timeout: Duration::from_millis(5),
                max_attempts: 2,
                ..ManagerConfig::default()
            };
            let mgr = Manager::start(driver.clone(), CostModel::default(), cfg);
            (driver, mgr)
        };
        let c = mgr.client();
        let _a = c.alloc("a").unwrap();
        let _b = c.alloc("b").unwrap();
        // Only 2 ranks exist; the third request must be abandoned.
        assert!(matches!(c.alloc("c"), Err(VpimError::NoRankAvailable)));
        mgr.shutdown();
    }

    #[test]
    fn release_is_detected_and_rank_is_reset_then_reusable() {
        let (driver, mgr) = host();
        let c = mgr.client();
        let a = c.alloc("vm-a").unwrap();
        // VM uses the rank: claim it, dirty it, release it.
        {
            let h = driver.open_perf(a.rank, "vm-a").unwrap();
            h.write_dpu(0, 0, &[0xAB; 64]).unwrap();
            drop(h); // release: sysfs flips, observer must notice
        }
        // Wait until the reset pipeline brings the rank back to NAAV.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let st = mgr.rank_states();
            if st[a.rank] == RankState::Naav {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "rank never reset: {st:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
        // Content was erased.
        let rank = driver.machine().rank(a.rank).unwrap();
        let mut buf = [1u8; 64];
        rank.read_dpu(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
        assert!(mgr.stats().resets >= 1);
        // And it can be allocated again.
        let b = c.alloc("vm-b").unwrap();
        let _ = b;
        mgr.shutdown();
    }

    #[test]
    fn nana_rank_reuses_without_reset_for_previous_owner() {
        let (driver, mgr) = host();
        let c = mgr.client();
        let a = c.alloc("vm-a").unwrap();
        assert!(!a.reused);
        {
            let h = driver.open_perf(a.rank, "vm-a").unwrap();
            h.write_dpu(0, 0, &[7; 8]).unwrap();
            drop(h);
        }
        // Re-request quickly from the same owner; if the rank is still in
        // NANA the manager hands it back without resetting. (Timing-
        // dependent: the reset worker may win the race, in which case the
        // allocation is a normal NAAV one — both are valid outcomes.)
        let again = c.alloc("vm-a").unwrap();
        if again.rank == a.rank && again.reused {
            // Reuse path: content must still be there (no reset happened).
            let h = driver.open_perf(again.rank, "vm-a").unwrap();
            let mut buf = [0u8; 8];
            h.read_dpu(0, 0, &mut buf).unwrap();
            assert_eq!(buf, [7; 8]);
        }
        mgr.shutdown();
    }

    #[test]
    fn native_app_claims_are_respected() {
        let (driver, mgr) = host();
        // A native host application claims rank 0 directly.
        let _native = driver.open_perf(0, "native:checksum").unwrap();
        // Deterministically propagate sysfs -> table (the observer thread
        // does this continuously; the hook avoids timing sensitivity).
        mgr.sync_now();
        let c = mgr.client();
        // Both VM allocations must avoid rank 0.
        let a = c.alloc("vm-a").unwrap();
        assert_ne!(a.rank, 0);
        mgr.shutdown();
    }

    #[test]
    fn stats_track_allocations() {
        let (_driver, mgr) = host();
        let c = mgr.client();
        let _ = c.alloc("x").unwrap();
        assert_eq!(mgr.stats().allocations, 1);
        assert_eq!(mgr.alloc_cost().as_millis(), 36);
        mgr.shutdown();
    }
}
