//! The rank table and its state machine (Fig. 5).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::Sender;
use parking_lot::{Condvar, Mutex};
use simkit::{CostModel, Counter, VirtualNanos};
use upmem_driver::{RankStatus, UpmemDriver};

use crate::error::VpimError;

/// Public view of a rank's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankState {
    /// Not allocated, available (ready for any requester).
    Naav,
    /// Allocated (to a VM's backend or a native host application).
    Allo,
    /// Allocated, checkpoint in flight: the scheduler snapshotted the
    /// owner's rank at a safe point and is about to drop the claim. The
    /// release that follows recycles the rank for the next tenant
    /// (CKPT → NANA → reset → NAAV).
    Ckpt,
    /// Not allocated, not available: released, awaiting content reset.
    Nana,
}

/// Outcome of a successful allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocOutcome {
    /// The granted rank.
    pub rank: usize,
    /// True when a NANA rank was handed back to its previous owner without
    /// a reset (§3.5's CPU-cycle-saving path).
    pub reused: bool,
}

/// Aggregate manager statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ManagerStats {
    /// Successful allocations served.
    pub allocations: u64,
    /// Allocations that reused a NANA rank without reset.
    pub reuses: u64,
    /// Content resets performed.
    pub resets: u64,
    /// Abandoned allocation requests.
    pub abandoned: u64,
    /// Total virtual time spent in resets.
    pub reset_virtual: VirtualNanos,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    Naav,
    Allo { owner: String },
    Ckpt { owner: String },
    Nana,
}

#[derive(Debug)]
struct Entry {
    state: State,
    last_owner: Option<String>,
    /// The sysfs claim counter at allocation time. A Free sysfs entry only
    /// means "released" once the counter moved past this value — guarding
    /// the alloc-decision → device-open window and catching claim/release
    /// cycles that happen entirely between two observer sweeps.
    claims_at_alloc: u64,
    /// A reset worker currently owns this rank.
    resetting: bool,
}

#[derive(Debug)]
struct Table {
    entries: Vec<Entry>,
    rr_cursor: usize,
}

#[derive(Debug, Default)]
struct Stats {
    allocations: AtomicU64,
    reuses: AtomicU64,
    resets: AtomicU64,
    abandoned: AtomicU64,
    reset_virtual_ns: AtomicU64,
}

/// Shared manager state: the rank table plus reset/statistics plumbing.
#[derive(Debug)]
pub(crate) struct TableState {
    driver: Arc<UpmemDriver>,
    cm: CostModel,
    table: Mutex<Table>,
    changed: Condvar,
    stats: Stats,
    /// NAAV↔ALLO↔NANA edges walked (Fig. 5), one tick per rank per edge.
    transitions: Counter,
    reset_tx: Mutex<Option<Sender<usize>>>,
}

impl TableState {
    pub(crate) fn new(driver: Arc<UpmemDriver>, cm: CostModel) -> Self {
        let n = driver.rank_count();
        TableState {
            driver,
            cm,
            table: Mutex::new(Table {
                entries: (0..n)
                    .map(|_| Entry {
                        state: State::Naav,
                        last_owner: None,
                        claims_at_alloc: 0,
                        resetting: false,
                    })
                    .collect(),
                rr_cursor: 0,
            }),
            changed: Condvar::new(),
            stats: Stats::default(),
            transitions: Counter::new(),
            reset_tx: Mutex::new(None),
        }
    }

    /// Replaces the transition cell with a registry-owned counter (e.g.
    /// `manager.rank_state.transitions`).
    #[must_use]
    pub(crate) fn with_transition_counter(mut self, transitions: Counter) -> Self {
        self.transitions = transitions;
        self
    }

    /// State-machine edges walked so far.
    pub(crate) fn transitions(&self) -> u64 {
        self.transitions.get()
    }

    pub(crate) fn set_reset_sender(&self, tx: Sender<usize>) {
        *self.reset_tx.lock() = Some(tx);
    }

    pub(crate) fn shutdown(&self) {
        if let Some(tx) = self.reset_tx.lock().take() {
            let _ = tx.send(usize::MAX);
        }
        self.changed.notify_all();
    }

    pub(crate) fn alloc_cost(&self) -> VirtualNanos {
        self.cm.manager_alloc()
    }

    /// The allocation strategy of §3.5, executed FIFO by pool workers.
    pub(crate) fn alloc(
        &self,
        owner: &str,
        retry_timeout: Duration,
        max_attempts: usize,
    ) -> Result<AllocOutcome, VpimError> {
        for _attempt in 0..max_attempts.max(1) {
            let mut t = self.table.lock();
            // 1. A NANA rank previously used by this owner: no reset needed.
            if let Some(i) = t.entries.iter().position(|e| {
                e.state == State::Nana
                    && !e.resetting
                    && e.last_owner.as_deref() == Some(owner)
            }) {
                t.entries[i].state = State::Allo { owner: owner.to_string() };
                t.entries[i].claims_at_alloc = self.driver.sysfs().claim_count(i);
                t.entries[i].last_owner = Some(owner.to_string());
                self.transitions.inc(); // NANA -> ALLO
                self.stats.allocations.fetch_add(1, Ordering::Relaxed);
                self.stats.reuses.fetch_add(1, Ordering::Relaxed);
                drop(t);
                self.changed.notify_all();
                return Ok(AllocOutcome { rank: i, reused: true });
            }
            // 2. A NAAV rank by round-robin.
            let n = t.entries.len();
            for k in 0..n {
                let i = (t.rr_cursor + k) % n;
                if t.entries[i].state == State::Naav && !t.entries[i].resetting {
                    t.rr_cursor = (i + 1) % n;
                    t.entries[i].state = State::Allo { owner: owner.to_string() };
                    t.entries[i].claims_at_alloc = self.driver.sysfs().claim_count(i);
                    t.entries[i].last_owner = Some(owner.to_string());
                    self.transitions.inc(); // NAAV -> ALLO
                    self.stats.allocations.fetch_add(1, Ordering::Relaxed);
                    drop(t);
                    self.changed.notify_all();
                    return Ok(AllocOutcome { rank: i, reused: false });
                }
            }
            // 3. Wait: either for a NANA reset to complete or for any
            //    release, then retry.
            let _ = self.changed.wait_for(&mut t, retry_timeout);
        }
        self.stats.abandoned.fetch_add(1, Ordering::Relaxed);
        Err(VpimError::NoRankAvailable)
    }

    /// Reconciles the table with a sysfs snapshot (status + claim counter
    /// per rank); returns ranks that were just released and need a content
    /// reset.
    pub(crate) fn sync_with_sysfs(&self, snapshot: &[(RankStatus, u64)]) -> Vec<usize> {
        let mut to_reset = Vec::new();
        let mut changed_any = false;
        let mut t = self.table.lock();
        for (i, (status, claims)) in snapshot.iter().enumerate() {
            let Some(e) = t.entries.get_mut(i) else { continue };
            match (status, &e.state) {
                (RankStatus::InUse { owner }, State::Naav) => {
                    // A native host application claimed the rank directly
                    // through the driver (R3: coexistence without app
                    // changes). Manager reset claims never hit this arm
                    // because resets only run on NANA ranks.
                    e.state = State::Allo { owner: owner.clone() };
                    e.last_owner = Some(owner.clone());
                    e.claims_at_alloc = claims.saturating_sub(1);
                    self.transitions.inc(); // NAAV -> ALLO (external claim)
                    changed_any = true;
                }
                (RankStatus::Free, State::Allo { .. } | State::Ckpt { .. })
                    if *claims > e.claims_at_alloc =>
                {
                    e.state = State::Nana;
                    self.transitions.inc(); // ALLO/CKPT -> NANA (release observed)
                    to_reset.push(i);
                    changed_any = true;
                }
                _ => {}
            }
        }
        drop(t);
        if changed_any {
            self.changed.notify_all();
        }
        to_reset
    }

    /// Flips an `ALLO` rank to `CKPT` (the scheduler checkpointed its
    /// owner at a safe point and will drop the claim next); returns
    /// whether the transition happened.
    pub(crate) fn mark_ckpt(&self, rank: usize) -> bool {
        let mut t = self.table.lock();
        let Some(e) = t.entries.get_mut(rank) else { return false };
        let State::Allo { owner } = &e.state else { return false };
        e.state = State::Ckpt { owner: owner.clone() };
        self.transitions.inc(); // ALLO -> CKPT (preemption)
        drop(t);
        self.changed.notify_all();
        true
    }

    /// One synchronous observe-and-reset sweep: reconcile the table with
    /// sysfs and reset every just-released rank inline. The observer and
    /// reset threads do this continuously; the scheduler calls it to
    /// expedite recycling after a preemption instead of waiting out the
    /// observer's 50 ms poll.
    pub(crate) fn sync_now(&self) {
        let snapshot = self.driver.sysfs().snapshot_with_claims();
        for rank in self.sync_with_sysfs(&snapshot) {
            self.reset_rank(rank);
        }
    }

    /// Blocks until `rank` is in state `want` (or already is), up to
    /// `timeout`; returns whether the state was reached. Replaces
    /// sleep-poll loops: every table transition notifies the condvar.
    pub(crate) fn wait_for_state(&self, rank: usize, want: RankState, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut t = self.table.lock();
        loop {
            let current = t.entries.get(rank).map(|e| match e.state {
                State::Naav => RankState::Naav,
                State::Allo { .. } => RankState::Allo,
                State::Ckpt { .. } => RankState::Ckpt,
                State::Nana => RankState::Nana,
            });
            match current {
                Some(s) if s == want => return true,
                None => return false,
                _ => {}
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let _ = self.changed.wait_for(&mut t, deadline - now);
        }
    }

    /// Erases a NANA rank's content and promotes it to NAAV (the reset
    /// worker's job). Skips ranks that were re-allocated meanwhile.
    pub(crate) fn reset_rank(&self, rank: usize) {
        {
            let mut t = self.table.lock();
            let Some(e) = t.entries.get_mut(rank) else { return };
            if e.state != State::Nana || e.resetting {
                return; // re-allocated to its previous owner, or already queued
            }
            e.resetting = true;
        }
        // Claim the rank so natives/backends cannot grab it mid-erase.
        let claim = self.driver.open_perf(rank, "manager-reset");
        match claim {
            Ok(handle) => {
                if let Ok(r) = self.driver.machine().rank(rank) {
                    r.reset_content();
                }
                drop(handle);
                let reset_ns = self
                    .cm
                    .rank_reset(self.driver.machine().config().rank_mapped_bytes());
                self.stats.resets.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .reset_virtual_ns
                    .fetch_add(reset_ns.as_nanos(), Ordering::Relaxed);
                let mut t = self.table.lock();
                if let Some(e) = t.entries.get_mut(rank) {
                    e.resetting = false;
                    if e.state == State::Nana {
                        e.state = State::Naav;
                        self.transitions.inc(); // NANA -> NAAV (reset done)
                    }
                }
            }
            Err(_) => {
                // Someone (a native app) grabbed the rank between release
                // and reset; give up — the observer will re-detect the next
                // release and re-queue the reset.
                let mut t = self.table.lock();
                if let Some(e) = t.entries.get_mut(rank) {
                    e.resetting = false;
                }
            }
        }
        self.changed.notify_all();
    }

    pub(crate) fn states(&self) -> Vec<RankState> {
        self.table
            .lock()
            .entries
            .iter()
            .map(|e| match e.state {
                State::Naav => RankState::Naav,
                State::Allo { .. } => RankState::Allo,
                State::Ckpt { .. } => RankState::Ckpt,
                State::Nana => RankState::Nana,
            })
            .collect()
    }

    pub(crate) fn stats(&self) -> ManagerStats {
        ManagerStats {
            allocations: self.stats.allocations.load(Ordering::Relaxed),
            reuses: self.stats.reuses.load(Ordering::Relaxed),
            resets: self.stats.resets.load(Ordering::Relaxed),
            abandoned: self.stats.abandoned.load(Ordering::Relaxed),
            reset_virtual: VirtualNanos::from_nanos(
                self.stats.reset_virtual_ns.load(Ordering::Relaxed),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upmem_sim::{PimConfig, PimMachine};

    fn state() -> TableState {
        let driver = Arc::new(UpmemDriver::new(PimMachine::new(PimConfig::small())));
        TableState::new(driver, CostModel::default())
    }

    fn quick() -> Duration {
        Duration::from_millis(2)
    }

    fn in_use(owner: &str, claims: u64) -> (RankStatus, u64) {
        (RankStatus::InUse { owner: owner.into() }, claims)
    }

    fn free(claims: u64) -> (RankStatus, u64) {
        (RankStatus::Free, claims)
    }

    #[test]
    fn round_robin_rotates() {
        let s = state();
        let a = s.alloc("x", quick(), 1).unwrap();
        let b = s.alloc("y", quick(), 1).unwrap();
        assert_eq!(a.rank, 0);
        assert_eq!(b.rank, 1);
        assert!(s.alloc("z", quick(), 1).is_err());
        assert_eq!(s.stats().abandoned, 1);
    }

    #[test]
    fn release_cycle_via_sysfs_snapshots() {
        let s = state();
        let a = s.alloc("vm", quick(), 1).unwrap();
        // Backend claims the rank (claim counter moves to 1).
        let to_reset = s.sync_with_sysfs(&[in_use("vm", 1), free(0)]);
        assert!(to_reset.is_empty());
        // Release: the observer reports it for reset.
        let to_reset = s.sync_with_sysfs(&[free(1), free(0)]);
        assert_eq!(to_reset, vec![a.rank]);
        assert_eq!(s.states()[a.rank], RankState::Nana);
        // Reset worker runs.
        s.reset_rank(a.rank);
        assert_eq!(s.states()[a.rank], RankState::Naav);
        assert_eq!(s.stats().resets, 1);
        assert!(s.stats().reset_virtual > VirtualNanos::ZERO);
    }

    #[test]
    fn missed_claim_release_cycle_is_still_detected() {
        // The VM claimed AND released entirely between two observer
        // sweeps: the status is Free in both, but the claim counter moved.
        let s = state();
        let a = s.alloc("vm", quick(), 1).unwrap();
        let to_reset = s.sync_with_sysfs(&[free(1), free(0)]);
        assert_eq!(to_reset, vec![a.rank]);
        assert_eq!(s.states()[a.rank], RankState::Nana);
    }

    #[test]
    fn unseen_free_is_not_a_release() {
        // Between the manager's decision and the backend's device open,
        // sysfs still says Free with an unmoved claim counter — that must
        // not be treated as a release.
        let s = state();
        let a = s.alloc("vm", quick(), 1).unwrap();
        let to_reset = s.sync_with_sysfs(&[free(0), free(0)]);
        assert!(to_reset.is_empty());
        assert_eq!(s.states()[a.rank], RankState::Allo);
    }

    #[test]
    fn nana_reuse_skips_reset() {
        let s = state();
        let a = s.alloc("vm", quick(), 1).unwrap();
        s.sync_with_sysfs(&[in_use("vm", 1), free(0)]);
        s.sync_with_sysfs(&[free(1), free(0)]);
        assert_eq!(s.states()[a.rank], RankState::Nana);
        let again = s.alloc("vm", quick(), 1).unwrap();
        assert_eq!(again.rank, a.rank);
        assert!(again.reused);
        assert_eq!(s.stats().reuses, 1);
        // A reset arriving late must be skipped (rank is ALLO again).
        s.reset_rank(a.rank);
        assert_eq!(s.stats().resets, 0);
        assert_eq!(s.states()[a.rank], RankState::Allo);
    }

    #[test]
    fn nana_not_given_to_other_owner_while_dirty() {
        let s = state();
        let a = s.alloc("vm-a", quick(), 1).unwrap();
        let _b = s.alloc("vm-b", quick(), 1).unwrap();
        s.sync_with_sysfs(&[in_use("vm-a", 1), in_use("vm-b", 1)]);
        s.sync_with_sysfs(&[free(1), in_use("vm-b", 1)]);
        assert_eq!(s.states()[a.rank], RankState::Nana);
        // vm-c cannot take the dirty rank; with a tiny timeout the request
        // is abandoned rather than leaking vm-a's data.
        assert!(s.alloc("vm-c", quick(), 2).is_err());
    }

    #[test]
    fn external_claim_marks_allo() {
        let s = state();
        s.sync_with_sysfs(&[in_use("native:idx", 1), free(0)]);
        assert_eq!(s.states()[0], RankState::Allo);
        // Allocation skips it.
        let a = s.alloc("vm", quick(), 1).unwrap();
        assert_eq!(a.rank, 1);
        // And its eventual release is detected.
        let to_reset = s.sync_with_sysfs(&[free(1), free(0)]);
        assert_eq!(to_reset, vec![0]);
    }
}
