//! The rank table and its state machine (Fig. 5), sharded by rank group.
//!
//! PR 7 (ROADMAP item 3) split the previously single-mutex table into
//! [`RANK_SHARDS`] contiguous, independently-locked rank groups with a
//! **lock-free published-state fast path**:
//!
//! * every rank's `(state, resetting)` pair is mirrored into a per-rank
//!   atomic cell the moment it changes (inside the owning shard's
//!   critical section), so state lookups ([`TableState::state_of`]) and
//!   scan pre-filters never take a lock;
//! * a global seqlock epoch brackets each publish, so
//!   [`TableState::states`] can assemble a *consistent* cross-shard
//!   snapshot from the atomic cells and only falls back to locking all
//!   shards (in ascending order, per `simkit::lockorder`) under
//!   pathological churn;
//! * writes — allocation claims, sysfs reconciliation, checkpoint marks,
//!   resets — lock only the owning shard, so churn on different rank
//!   groups never contends;
//! * the allocation scan walks rank indices in exactly the pre-sharding
//!   order (NANA-reuse by lowest index, then NAAV round-robin from a
//!   global cursor), filtering on the published cells and confirming
//!   under the owning shard's lock, so sequential behavior is identical
//!   to the retained single-lock oracle
//!   ([`crate::manager::reference::ReferenceTable`]) — the property
//!   `tests/control_plane_equivalence.rs` proves over generated op
//!   interleavings.
//!
//! Waiters (allocation retries, [`TableState::wait_for_state`]) park on a
//! dedicated notify mutex + condvar pair (never held while touching
//! entries); every completed transition bumps the epoch and wakes them.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::Sender;
use parking_lot::{Condvar, Mutex, MutexGuard};
use simkit::lockorder::{ordered, LockLevel};
use simkit::{CostModel, Counter, VirtualNanos};
use upmem_driver::{RankStatus, UpmemDriver};

use crate::error::VpimError;

/// Number of contiguous rank groups the table is split into (matches the
/// manager's 8 pool threads — one group per steady-state worker).
pub const RANK_SHARDS: usize = 8;

/// Public view of a rank's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankState {
    /// Not allocated, available (ready for any requester).
    Naav,
    /// Allocated (to a VM's backend or a native host application).
    Allo,
    /// Allocated, checkpoint in flight: the scheduler snapshotted the
    /// owner's rank at a safe point and is about to drop the claim. The
    /// release that follows recycles the rank for the next tenant
    /// (CKPT → NANA → reset → NAAV).
    Ckpt,
    /// Not allocated, not available: released, awaiting content reset.
    Nana,
}

/// Outcome of a successful allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocOutcome {
    /// The granted rank.
    pub rank: usize,
    /// True when a NANA rank was handed back to its previous owner without
    /// a reset (§3.5's CPU-cycle-saving path).
    pub reused: bool,
}

/// Aggregate manager statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ManagerStats {
    /// Successful allocations served.
    pub allocations: u64,
    /// Allocations that reused a NANA rank without reset.
    pub reuses: u64,
    /// Content resets performed.
    pub resets: u64,
    /// Abandoned allocation requests.
    pub abandoned: u64,
    /// Total virtual time spent in resets.
    pub reset_virtual: VirtualNanos,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    Naav,
    Allo { owner: String },
    Ckpt { owner: String },
    Nana,
}

impl State {
    fn public(&self) -> RankState {
        match self {
            State::Naav => RankState::Naav,
            State::Allo { .. } => RankState::Allo,
            State::Ckpt { .. } => RankState::Ckpt,
            State::Nana => RankState::Nana,
        }
    }
}

/// Encoding of the published per-rank cell: low 2 bits are the state
/// discriminant, bit 2 is the `resetting` flag.
const PUB_STATE_MASK: u8 = 0b011;
const PUB_RESETTING: u8 = 0b100;

fn encode(state: RankState, resetting: bool) -> u8 {
    let s = match state {
        RankState::Naav => 0,
        RankState::Allo => 1,
        RankState::Ckpt => 2,
        RankState::Nana => 3,
    };
    s | if resetting { PUB_RESETTING } else { 0 }
}

fn decode_state(cell: u8) -> RankState {
    match cell & PUB_STATE_MASK {
        0 => RankState::Naav,
        1 => RankState::Allo,
        2 => RankState::Ckpt,
        _ => RankState::Nana,
    }
}

#[derive(Debug)]
struct Entry {
    state: State,
    last_owner: Option<String>,
    /// The sysfs claim counter at allocation time. A Free sysfs entry only
    /// means "released" once the counter moved past this value — guarding
    /// the alloc-decision → device-open window and catching claim/release
    /// cycles that happen entirely between two observer sweeps.
    claims_at_alloc: u64,
    /// A reset worker currently owns this rank.
    resetting: bool,
}

/// One contiguous rank group; entry `i` describes rank `base + i`.
#[derive(Debug)]
struct Shard {
    entries: Vec<Entry>,
}

#[derive(Debug, Default)]
struct Stats {
    allocations: AtomicU64,
    reuses: AtomicU64,
    resets: AtomicU64,
    abandoned: AtomicU64,
    reset_virtual_ns: AtomicU64,
}

/// Shared manager state: the sharded rank table plus reset/statistics
/// plumbing. Public so the differential suites and the `control_plane`
/// bench can drive the table directly against the single-lock oracle.
#[derive(Debug)]
pub struct TableState {
    driver: Arc<UpmemDriver>,
    cm: CostModel,
    /// Contiguous rank groups, each behind its own mutex
    /// (`LockLevel::ManagerTable`, ordered by shard index).
    shards: Vec<Mutex<Shard>>,
    /// Ranks per shard (the last shard may be short).
    span: usize,
    ranks: usize,
    /// Lock-free mirror of each rank's `(state, resetting)` pair,
    /// republished inside the owning shard's critical section.
    published: Vec<AtomicU8>,
    /// Seqlock epoch bracketing every publish: odd while a publish is in
    /// flight, even and advanced once it lands.
    epoch: AtomicU64,
    /// Global round-robin cursor for the NAAV scan (atomic so concurrent
    /// allocs keep rotating; under sequential ops it advances exactly as
    /// the single-lock cursor did).
    rr_cursor: AtomicUsize,
    /// Pairing mutex for `changed` — held only around waits and wakeups.
    notify: Mutex<()>,
    changed: Condvar,
    stats: Stats,
    /// NAAV↔ALLO↔NANA edges walked (Fig. 5), one tick per rank per edge.
    transitions: Counter,
    reset_tx: Mutex<Option<Sender<usize>>>,
}

impl TableState {
    /// A table over `driver`'s ranks split into [`RANK_SHARDS`] groups.
    #[must_use]
    pub fn new(driver: Arc<UpmemDriver>, cm: CostModel) -> Self {
        Self::new_with_shards(driver, cm, RANK_SHARDS)
    }

    /// A table split into `shard_count` groups (clamped to `1..=ranks`).
    /// `shard_count == 1` degenerates to the pre-sharding single-lock
    /// layout — the configuration the load harness byte-compares against.
    #[must_use]
    pub fn new_with_shards(driver: Arc<UpmemDriver>, cm: CostModel, shard_count: usize) -> Self {
        let n = driver.rank_count();
        let span = n.div_ceil(shard_count.max(1)).max(1);
        let shards = n.div_ceil(span).max(1);
        TableState {
            driver,
            cm,
            shards: (0..shards)
                .map(|g| {
                    let len = span.min(n.saturating_sub(g * span));
                    Mutex::new(Shard {
                        entries: (0..len)
                            .map(|_| Entry {
                                state: State::Naav,
                                last_owner: None,
                                claims_at_alloc: 0,
                                resetting: false,
                            })
                            .collect(),
                    })
                })
                .collect(),
            span,
            ranks: n,
            published: (0..n).map(|_| AtomicU8::new(encode(RankState::Naav, false))).collect(),
            epoch: AtomicU64::new(0),
            rr_cursor: AtomicUsize::new(0),
            notify: Mutex::new(()),
            changed: Condvar::new(),
            stats: Stats::default(),
            transitions: Counter::new(),
            reset_tx: Mutex::new(None),
        }
    }

    /// Replaces the transition cell with a registry-owned counter (e.g.
    /// `manager.rank_state.transitions`).
    #[must_use]
    pub fn with_transition_counter(mut self, transitions: Counter) -> Self {
        self.transitions = transitions;
        self
    }

    /// Number of rank groups the table is split into.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `rank` (caller guarantees `rank < ranks`).
    fn shard_of(&self, rank: usize) -> usize {
        rank / self.span
    }

    /// Locks the shard owning `rank`, with lock-order tracking.
    fn lock_shard(&self, group: usize) -> (simkit::LockToken, MutexGuard<'_, Shard>) {
        let tok = ordered(LockLevel::ManagerTable, group);
        (tok, self.shards[group].lock())
    }

    /// Republishes `rank`'s cell from its entry. Must be called inside
    /// the owning shard's critical section; brackets the store with
    /// seqlock epoch bumps so concurrent snapshot readers retry.
    fn publish(&self, rank: usize, e: &Entry) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.published[rank].store(encode(e.state.public(), e.resetting), Ordering::Release);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Wakes blocked waiters (alloc retries, `wait_for_state`). Briefly
    /// takes the notify mutex so a waiter between its check and its wait
    /// cannot miss the wakeup.
    fn wake(&self) {
        let _ord = ordered(LockLevel::Notify, 0);
        drop(self.notify.lock());
        self.changed.notify_all();
    }

    /// State-machine edges walked so far.
    pub fn transitions(&self) -> u64 {
        self.transitions.get()
    }

    pub(crate) fn set_reset_sender(&self, tx: Sender<usize>) {
        *self.reset_tx.lock() = Some(tx);
    }

    pub(crate) fn shutdown(&self) {
        if let Some(tx) = self.reset_tx.lock().take() {
            let _ = tx.send(usize::MAX);
        }
        self.wake();
    }

    /// The modeled duration of one allocation round trip.
    #[must_use]
    pub fn alloc_cost(&self) -> VirtualNanos {
        self.cm.manager_alloc()
    }

    /// Lock-free state lookup — the published-cell fast path.
    #[must_use]
    pub fn state_of(&self, rank: usize) -> Option<RankState> {
        self.published.get(rank).map(|c| decode_state(c.load(Ordering::Acquire)))
    }

    /// Tries to claim rank `rank` (which the published pre-filter said is
    /// a NANA rank last owned by `owner`) under its shard lock. Returns
    /// whether the claim stuck.
    fn try_claim_nana(&self, rank: usize, owner: &str) -> bool {
        let g = self.shard_of(rank);
        let (_tok, mut shard) = self.lock_shard(g);
        let e = &mut shard.entries[rank - g * self.span];
        if e.state != State::Nana || e.resetting || e.last_owner.as_deref() != Some(owner) {
            return false;
        }
        e.state = State::Allo { owner: owner.to_string() };
        e.claims_at_alloc = self.driver.sysfs().claim_count(rank);
        e.last_owner = Some(owner.to_string());
        self.transitions.inc(); // NANA -> ALLO
        self.stats.allocations.fetch_add(1, Ordering::Relaxed);
        self.stats.reuses.fetch_add(1, Ordering::Relaxed);
        let e = &shard.entries[rank - g * self.span];
        self.publish(rank, e);
        true
    }

    /// Tries to claim a published-NAAV rank under its shard lock.
    fn try_claim_naav(&self, rank: usize, owner: &str) -> bool {
        let g = self.shard_of(rank);
        let (_tok, mut shard) = self.lock_shard(g);
        let e = &mut shard.entries[rank - g * self.span];
        if e.state != State::Naav || e.resetting {
            return false;
        }
        self.rr_cursor.store((rank + 1) % self.ranks.max(1), Ordering::Relaxed);
        e.state = State::Allo { owner: owner.to_string() };
        e.claims_at_alloc = self.driver.sysfs().claim_count(rank);
        e.last_owner = Some(owner.to_string());
        self.transitions.inc(); // NAAV -> ALLO
        self.stats.allocations.fetch_add(1, Ordering::Relaxed);
        let e = &shard.entries[rank - g * self.span];
        self.publish(rank, e);
        true
    }

    /// The allocation strategy of §3.5, executed FIFO by pool workers.
    /// Scan order is identical to the single-lock oracle: NANA-reuse by
    /// lowest rank index, then NAAV round-robin from the global cursor —
    /// the published cells only pre-filter which shards are worth locking.
    ///
    /// # Errors
    ///
    /// [`VpimError::NoRankAvailable`] once `max_attempts` scans (with a
    /// `retry_timeout` wait between them) found nothing claimable.
    pub fn alloc(
        &self,
        owner: &str,
        retry_timeout: Duration,
        max_attempts: usize,
    ) -> Result<AllocOutcome, VpimError> {
        for _attempt in 0..max_attempts.max(1) {
            let epoch_before = self.epoch.load(Ordering::Acquire);
            // 1. A NANA rank previously used by this owner: no reset needed.
            for rank in 0..self.ranks {
                let cell = self.published[rank].load(Ordering::Acquire);
                if cell == encode(RankState::Nana, false) && self.try_claim_nana(rank, owner) {
                    self.wake();
                    return Ok(AllocOutcome { rank, reused: true });
                }
            }
            // 2. A NAAV rank by round-robin from the global cursor.
            let cursor = self.rr_cursor.load(Ordering::Relaxed);
            for k in 0..self.ranks {
                let rank = (cursor + k) % self.ranks.max(1);
                let cell = self.published[rank].load(Ordering::Acquire);
                if decode_state(cell) == RankState::Naav
                    && cell & PUB_RESETTING == 0
                    && self.try_claim_naav(rank, owner)
                {
                    self.wake();
                    return Ok(AllocOutcome { rank, reused: false });
                }
            }
            // 3. Wait: either for a NANA reset to complete or for any
            //    release, then retry. If the table already moved during
            //    the scan, retry immediately.
            let _ord = ordered(LockLevel::Notify, 0);
            let mut guard = self.notify.lock();
            if self.epoch.load(Ordering::Acquire) == epoch_before {
                let _ = self.changed.wait_for(&mut guard, retry_timeout);
            }
        }
        self.stats.abandoned.fetch_add(1, Ordering::Relaxed);
        Err(VpimError::NoRankAvailable)
    }

    /// Reconciles one rank group with its slice of a sysfs sweep.
    /// `base` is the first rank the slice describes; the slice must not
    /// cross a group boundary. Returns ranks that were just released and
    /// need a content reset.
    pub fn sync_group(&self, base: usize, slice: &[(RankStatus, u64)]) -> Vec<usize> {
        let mut to_reset = Vec::new();
        if base >= self.ranks || slice.is_empty() {
            return to_reset;
        }
        let g = self.shard_of(base);
        let mut changed_any = false;
        {
            let (_tok, mut shard) = self.lock_shard(g);
            for (off, (status, claims)) in slice.iter().enumerate() {
                let rank = base + off;
                let Some(e) = shard.entries.get_mut(rank - g * self.span) else { continue };
                match (status, &e.state) {
                    (RankStatus::InUse { owner }, State::Naav) => {
                        // A native host application claimed the rank directly
                        // through the driver (R3: coexistence without app
                        // changes). Manager reset claims never hit this arm
                        // because resets only run on NANA ranks.
                        e.state = State::Allo { owner: owner.clone() };
                        e.last_owner = Some(owner.clone());
                        e.claims_at_alloc = claims.saturating_sub(1);
                        self.transitions.inc(); // NAAV -> ALLO (external claim)
                        let e = &shard.entries[rank - g * self.span];
                        self.publish(rank, e);
                        changed_any = true;
                    }
                    (RankStatus::Free, State::Allo { .. } | State::Ckpt { .. })
                        if *claims > e.claims_at_alloc =>
                    {
                        e.state = State::Nana;
                        self.transitions.inc(); // ALLO/CKPT -> NANA (release observed)
                        to_reset.push(rank);
                        let e = &shard.entries[rank - g * self.span];
                        self.publish(rank, e);
                        changed_any = true;
                    }
                    _ => {}
                }
            }
        }
        if changed_any {
            self.wake();
        }
        to_reset
    }

    /// Reconciles the whole table with a full sysfs snapshot (status +
    /// claim counter per rank), group by group; returns ranks that were
    /// just released and need a content reset.
    pub fn sync_with_sysfs(&self, snapshot: &[(RankStatus, u64)]) -> Vec<usize> {
        let mut to_reset = Vec::new();
        let limit = snapshot.len().min(self.ranks);
        let mut base = 0;
        while base < limit {
            let end = (base + self.span - base % self.span).min(limit);
            to_reset.extend(self.sync_group(base, &snapshot[base..end]));
            base = end;
        }
        to_reset
    }

    /// Flips an `ALLO` rank to `CKPT` (the scheduler checkpointed its
    /// owner at a safe point and will drop the claim next); returns
    /// whether the transition happened.
    pub fn mark_ckpt(&self, rank: usize) -> bool {
        if rank >= self.ranks {
            return false;
        }
        let g = self.shard_of(rank);
        {
            let (_tok, mut shard) = self.lock_shard(g);
            let e = &mut shard.entries[rank - g * self.span];
            let State::Allo { owner } = &e.state else { return false };
            e.state = State::Ckpt { owner: owner.clone() };
            self.transitions.inc(); // ALLO -> CKPT (preemption)
            let e = &shard.entries[rank - g * self.span];
            self.publish(rank, e);
        }
        self.wake();
        true
    }

    /// One synchronous observe-and-reset sweep: reconcile the table with
    /// sysfs group by group and reset every just-released rank inline.
    /// The observer and reset threads do this continuously; the scheduler
    /// calls it to expedite recycling after a preemption instead of
    /// waiting out the observer's 50 ms poll.
    pub fn sync_now(&self) {
        let board = self.driver.sysfs();
        for group in 0..board.shard_count() {
            let Some((base, entries)) = board.snapshot_group(group) else { continue };
            for rank in self.sync_group_sweep(base, &entries) {
                self.reset_rank(rank);
            }
        }
    }

    /// [`Self::sync_with_sysfs`] for a slice starting at `base` — the
    /// observer's per-group sweep unit (the board's group span need not
    /// match the table's; the slice is re-chunked on table boundaries).
    /// Returns ranks that were just released and need a content reset.
    pub fn sync_group_sweep(&self, base: usize, slice: &[(RankStatus, u64)]) -> Vec<usize> {
        let mut to_reset = Vec::new();
        let limit = (base + slice.len()).min(self.ranks);
        let mut at = base;
        while at < limit {
            let end = (at + self.span - at % self.span).min(limit);
            to_reset.extend(self.sync_group(at, &slice[at - base..end - base]));
            at = end;
        }
        to_reset
    }

    /// Blocks until `rank` is in state `want` (or already is), up to
    /// `timeout`; returns whether the state was reached. The check is a
    /// lock-free published-cell read; every table transition wakes the
    /// waiter.
    #[must_use]
    pub fn wait_for_state(&self, rank: usize, want: RankState, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match self.state_of(rank) {
                Some(s) if s == want => return true,
                None => return false,
                _ => {}
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let _ord = ordered(LockLevel::Notify, 0);
            let mut guard = self.notify.lock();
            // Re-check under the notify mutex: a transition between the
            // check above and this lock would otherwise be missed.
            match self.state_of(rank) {
                Some(s) if s == want => return true,
                None => return false,
                _ => {}
            }
            let _ = self.changed.wait_for(&mut guard, deadline - now);
        }
    }

    /// Erases a NANA rank's content and promotes it to NAAV (the reset
    /// worker's job). Skips ranks that were re-allocated meanwhile.
    pub fn reset_rank(&self, rank: usize) {
        if rank >= self.ranks {
            return;
        }
        let g = self.shard_of(rank);
        let slot = rank - g * self.span;
        {
            let (_tok, mut shard) = self.lock_shard(g);
            let e = &mut shard.entries[slot];
            if e.state != State::Nana || e.resetting {
                return; // re-allocated to its previous owner, or already queued
            }
            e.resetting = true;
            let e = &shard.entries[slot];
            self.publish(rank, e);
        }
        // Claim the rank so natives/backends cannot grab it mid-erase
        // (board lock sits above the table shard in the hierarchy, and no
        // table lock is held here anyway).
        let claim = self.driver.open_perf(rank, "manager-reset");
        match claim {
            Ok(handle) => {
                if let Ok(r) = self.driver.machine().rank(rank) {
                    r.reset_content();
                }
                drop(handle);
                let reset_ns = self
                    .cm
                    .rank_reset(self.driver.machine().config().rank_mapped_bytes());
                self.stats.resets.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .reset_virtual_ns
                    .fetch_add(reset_ns.as_nanos(), Ordering::Relaxed);
                let (_tok, mut shard) = self.lock_shard(g);
                let e = &mut shard.entries[slot];
                e.resetting = false;
                if e.state == State::Nana {
                    e.state = State::Naav;
                    self.transitions.inc(); // NANA -> NAAV (reset done)
                }
                let e = &shard.entries[slot];
                self.publish(rank, e);
            }
            Err(_) => {
                // Someone (a native app) grabbed the rank between release
                // and reset; give up — the observer will re-detect the next
                // release and re-queue the reset.
                let (_tok, mut shard) = self.lock_shard(g);
                let e = &mut shard.entries[slot];
                e.resetting = false;
                let e = &shard.entries[slot];
                self.publish(rank, e);
            }
        }
        self.wake();
    }

    /// Directly returns an `ALLO`/`CKPT` rank to `NAAV`, bypassing the
    /// sysfs release → observe → reset pipeline. A churn hook for the
    /// `control_plane` bench and the shard stress suite — alloc/free
    /// cycles without device round-trips; production recycling always
    /// goes through the observer. Returns whether the rank changed state.
    pub fn recycle(&self, rank: usize) -> bool {
        if rank >= self.ranks {
            return false;
        }
        let g = self.shard_of(rank);
        let changed = {
            let (_tok, mut shard) = self.lock_shard(g);
            let e = &mut shard.entries[rank - g * self.span];
            match e.state {
                State::Allo { .. } | State::Ckpt { .. } => {
                    e.state = State::Naav;
                    self.transitions.inc(); // ALLO/CKPT -> NAAV (direct recycle)
                    let e = &shard.entries[rank - g * self.span];
                    self.publish(rank, e);
                    true
                }
                _ => false,
            }
        };
        if changed {
            self.wake();
        }
        changed
    }

    /// A consistent snapshot of every rank's state, read lock-free from
    /// the published cells under the seqlock epoch; falls back to locking
    /// every shard (ascending) if publishes keep racing the scan.
    #[must_use]
    pub fn states(&self) -> Vec<RankState> {
        for _ in 0..8 {
            let e1 = self.epoch.load(Ordering::Acquire);
            if e1 % 2 != 0 {
                std::hint::spin_loop();
                continue;
            }
            let snap: Vec<RankState> = self
                .published
                .iter()
                .map(|c| decode_state(c.load(Ordering::Acquire)))
                .collect();
            if self.epoch.load(Ordering::Acquire) == e1 {
                return snap;
            }
        }
        // Locked fallback: ascending shard order per the lock hierarchy.
        let mut out = Vec::with_capacity(self.ranks);
        let guards: Vec<_> = (0..self.shards.len()).map(|g| self.lock_shard(g)).collect();
        for (_, shard) in &guards {
            out.extend(shard.entries.iter().map(|e| e.state.public()));
        }
        out
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> ManagerStats {
        ManagerStats {
            allocations: self.stats.allocations.load(Ordering::Relaxed),
            reuses: self.stats.reuses.load(Ordering::Relaxed),
            resets: self.stats.resets.load(Ordering::Relaxed),
            abandoned: self.stats.abandoned.load(Ordering::Relaxed),
            reset_virtual: VirtualNanos::from_nanos(
                self.stats.reset_virtual_ns.load(Ordering::Relaxed),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upmem_sim::{PimConfig, PimMachine};

    fn state() -> TableState {
        let driver = Arc::new(UpmemDriver::new(PimMachine::new(PimConfig::small())));
        TableState::new(driver, CostModel::default())
    }

    fn quick() -> Duration {
        Duration::from_millis(2)
    }

    fn in_use(owner: &str, claims: u64) -> (RankStatus, u64) {
        (RankStatus::InUse { owner: owner.into() }, claims)
    }

    fn free(claims: u64) -> (RankStatus, u64) {
        (RankStatus::Free, claims)
    }

    #[test]
    fn round_robin_rotates() {
        let s = state();
        let a = s.alloc("x", quick(), 1).unwrap();
        let b = s.alloc("y", quick(), 1).unwrap();
        assert_eq!(a.rank, 0);
        assert_eq!(b.rank, 1);
        assert!(s.alloc("z", quick(), 1).is_err());
        assert_eq!(s.stats().abandoned, 1);
    }

    #[test]
    fn release_cycle_via_sysfs_snapshots() {
        let s = state();
        let a = s.alloc("vm", quick(), 1).unwrap();
        // Backend claims the rank (claim counter moves to 1).
        let to_reset = s.sync_with_sysfs(&[in_use("vm", 1), free(0)]);
        assert!(to_reset.is_empty());
        // Release: the observer reports it for reset.
        let to_reset = s.sync_with_sysfs(&[free(1), free(0)]);
        assert_eq!(to_reset, vec![a.rank]);
        assert_eq!(s.states()[a.rank], RankState::Nana);
        // Reset worker runs.
        s.reset_rank(a.rank);
        assert_eq!(s.states()[a.rank], RankState::Naav);
        assert_eq!(s.stats().resets, 1);
        assert!(s.stats().reset_virtual > VirtualNanos::ZERO);
    }

    #[test]
    fn missed_claim_release_cycle_is_still_detected() {
        // The VM claimed AND released entirely between two observer
        // sweeps: the status is Free in both, but the claim counter moved.
        let s = state();
        let a = s.alloc("vm", quick(), 1).unwrap();
        let to_reset = s.sync_with_sysfs(&[free(1), free(0)]);
        assert_eq!(to_reset, vec![a.rank]);
        assert_eq!(s.states()[a.rank], RankState::Nana);
    }

    #[test]
    fn unseen_free_is_not_a_release() {
        // Between the manager's decision and the backend's device open,
        // sysfs still says Free with an unmoved claim counter — that must
        // not be treated as a release.
        let s = state();
        let a = s.alloc("vm", quick(), 1).unwrap();
        let to_reset = s.sync_with_sysfs(&[free(0), free(0)]);
        assert!(to_reset.is_empty());
        assert_eq!(s.states()[a.rank], RankState::Allo);
    }

    #[test]
    fn nana_reuse_skips_reset() {
        let s = state();
        let a = s.alloc("vm", quick(), 1).unwrap();
        s.sync_with_sysfs(&[in_use("vm", 1), free(0)]);
        s.sync_with_sysfs(&[free(1), free(0)]);
        assert_eq!(s.states()[a.rank], RankState::Nana);
        let again = s.alloc("vm", quick(), 1).unwrap();
        assert_eq!(again.rank, a.rank);
        assert!(again.reused);
        assert_eq!(s.stats().reuses, 1);
        // A reset arriving late must be skipped (rank is ALLO again).
        s.reset_rank(a.rank);
        assert_eq!(s.stats().resets, 0);
        assert_eq!(s.states()[a.rank], RankState::Allo);
    }

    #[test]
    fn nana_not_given_to_other_owner_while_dirty() {
        let s = state();
        let a = s.alloc("vm-a", quick(), 1).unwrap();
        let _b = s.alloc("vm-b", quick(), 1).unwrap();
        s.sync_with_sysfs(&[in_use("vm-a", 1), in_use("vm-b", 1)]);
        s.sync_with_sysfs(&[free(1), in_use("vm-b", 1)]);
        assert_eq!(s.states()[a.rank], RankState::Nana);
        // vm-c cannot take the dirty rank; with a tiny timeout the request
        // is abandoned rather than leaking vm-a's data.
        assert!(s.alloc("vm-c", quick(), 2).is_err());
    }

    #[test]
    fn external_claim_marks_allo() {
        let s = state();
        s.sync_with_sysfs(&[in_use("native:idx", 1), free(0)]);
        assert_eq!(s.states()[0], RankState::Allo);
        // Allocation skips it.
        let a = s.alloc("vm", quick(), 1).unwrap();
        assert_eq!(a.rank, 1);
        // And its eventual release is detected.
        let to_reset = s.sync_with_sysfs(&[free(1), free(0)]);
        assert_eq!(to_reset, vec![0]);
    }

    #[test]
    fn state_of_is_lock_free_and_current() {
        let s = state();
        assert_eq!(s.state_of(0), Some(RankState::Naav));
        let a = s.alloc("vm", quick(), 1).unwrap();
        assert_eq!(s.state_of(a.rank), Some(RankState::Allo));
        assert!(s.mark_ckpt(a.rank));
        assert_eq!(s.state_of(a.rank), Some(RankState::Ckpt));
        assert_eq!(s.state_of(999), None);
    }

    #[test]
    fn shard_count_clamps_to_rank_count() {
        let driver = Arc::new(UpmemDriver::new(PimMachine::new(PimConfig::small())));
        let wide = TableState::new_with_shards(driver.clone(), CostModel::default(), 64);
        assert!(wide.shard_count() <= driver.rank_count().max(1));
        let single = TableState::new_with_shards(driver, CostModel::default(), 1);
        assert_eq!(single.shard_count(), 1);
        let a = single.alloc("x", quick(), 1).unwrap();
        assert_eq!(a.rank, 0);
    }
}
