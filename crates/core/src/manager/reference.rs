//! The retained single-lock rank table — the differential-testing oracle.
//!
//! This is the pre-sharding `TableState` implementation, kept verbatim
//! (one mutex around the whole table, a condvar for waiters) as the
//! behavioral reference for the sharded table in [`super::table`].
//! `tests/control_plane_equivalence.rs` drives both implementations with
//! identical op sequences over identically-configured drivers and asserts
//! identical grant orders, rank states and statistics; the
//! `control_plane` criterion bench uses it as the contended baseline the
//! sharded table must beat.
//!
//! Do not "improve" this type: its value is that it stays exactly what
//! the seed shipped.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use simkit::{CostModel, Counter, VirtualNanos};
use upmem_driver::{RankStatus, UpmemDriver};

use super::table::{AllocOutcome, ManagerStats, RankState};
use crate::error::VpimError;

#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    Naav,
    Allo { owner: String },
    Ckpt { owner: String },
    Nana,
}

#[derive(Debug)]
struct Entry {
    state: State,
    last_owner: Option<String>,
    claims_at_alloc: u64,
    resetting: bool,
}

#[derive(Debug)]
struct Table {
    entries: Vec<Entry>,
    rr_cursor: usize,
}

#[derive(Debug, Default)]
struct Stats {
    allocations: AtomicU64,
    reuses: AtomicU64,
    resets: AtomicU64,
    abandoned: AtomicU64,
    reset_virtual_ns: AtomicU64,
}

/// The single-lock rank table the seed shipped, preserved as an oracle.
#[derive(Debug)]
pub struct ReferenceTable {
    driver: Arc<UpmemDriver>,
    cm: CostModel,
    table: Mutex<Table>,
    changed: Condvar,
    stats: Stats,
    transitions: Counter,
}

impl ReferenceTable {
    /// A fresh single-lock table over `driver`'s ranks.
    #[must_use]
    pub fn new(driver: Arc<UpmemDriver>, cm: CostModel) -> Self {
        let n = driver.rank_count();
        ReferenceTable {
            driver,
            cm,
            table: Mutex::new(Table {
                entries: (0..n)
                    .map(|_| Entry {
                        state: State::Naav,
                        last_owner: None,
                        claims_at_alloc: 0,
                        resetting: false,
                    })
                    .collect(),
                rr_cursor: 0,
            }),
            changed: Condvar::new(),
            stats: Stats::default(),
            transitions: Counter::new(),
        }
    }

    /// State-machine edges walked so far.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions.get()
    }

    /// The allocation strategy of §3.5 under one table-wide lock.
    ///
    /// # Errors
    ///
    /// [`VpimError::NoRankAvailable`] once `max_attempts` scans found
    /// nothing claimable.
    pub fn alloc(
        &self,
        owner: &str,
        retry_timeout: Duration,
        max_attempts: usize,
    ) -> Result<AllocOutcome, VpimError> {
        for _attempt in 0..max_attempts.max(1) {
            let mut t = self.table.lock();
            // 1. A NANA rank previously used by this owner: no reset needed.
            if let Some(i) = t.entries.iter().position(|e| {
                e.state == State::Nana
                    && !e.resetting
                    && e.last_owner.as_deref() == Some(owner)
            }) {
                t.entries[i].state = State::Allo { owner: owner.to_string() };
                t.entries[i].claims_at_alloc = self.driver.sysfs().claim_count(i);
                t.entries[i].last_owner = Some(owner.to_string());
                self.transitions.inc(); // NANA -> ALLO
                self.stats.allocations.fetch_add(1, Ordering::Relaxed);
                self.stats.reuses.fetch_add(1, Ordering::Relaxed);
                drop(t);
                self.changed.notify_all();
                return Ok(AllocOutcome { rank: i, reused: true });
            }
            // 2. A NAAV rank by round-robin.
            let n = t.entries.len();
            for k in 0..n {
                let i = (t.rr_cursor + k) % n;
                if t.entries[i].state == State::Naav && !t.entries[i].resetting {
                    t.rr_cursor = (i + 1) % n;
                    t.entries[i].state = State::Allo { owner: owner.to_string() };
                    t.entries[i].claims_at_alloc = self.driver.sysfs().claim_count(i);
                    t.entries[i].last_owner = Some(owner.to_string());
                    self.transitions.inc(); // NAAV -> ALLO
                    self.stats.allocations.fetch_add(1, Ordering::Relaxed);
                    drop(t);
                    self.changed.notify_all();
                    return Ok(AllocOutcome { rank: i, reused: false });
                }
            }
            // 3. Wait, then retry.
            let _ = self.changed.wait_for(&mut t, retry_timeout);
        }
        self.stats.abandoned.fetch_add(1, Ordering::Relaxed);
        Err(VpimError::NoRankAvailable)
    }

    /// Reconciles the table with a sysfs snapshot; returns ranks that
    /// were just released and need a content reset.
    pub fn sync_with_sysfs(&self, snapshot: &[(RankStatus, u64)]) -> Vec<usize> {
        let mut to_reset = Vec::new();
        let mut changed_any = false;
        let mut t = self.table.lock();
        for (i, (status, claims)) in snapshot.iter().enumerate() {
            let Some(e) = t.entries.get_mut(i) else { continue };
            match (status, &e.state) {
                (RankStatus::InUse { owner }, State::Naav) => {
                    e.state = State::Allo { owner: owner.clone() };
                    e.last_owner = Some(owner.clone());
                    e.claims_at_alloc = claims.saturating_sub(1);
                    self.transitions.inc(); // NAAV -> ALLO (external claim)
                    changed_any = true;
                }
                (RankStatus::Free, State::Allo { .. } | State::Ckpt { .. })
                    if *claims > e.claims_at_alloc =>
                {
                    e.state = State::Nana;
                    self.transitions.inc(); // ALLO/CKPT -> NANA (release observed)
                    to_reset.push(i);
                    changed_any = true;
                }
                _ => {}
            }
        }
        drop(t);
        if changed_any {
            self.changed.notify_all();
        }
        to_reset
    }

    /// Flips an `ALLO` rank to `CKPT`; returns whether the transition
    /// happened.
    pub fn mark_ckpt(&self, rank: usize) -> bool {
        let mut t = self.table.lock();
        let Some(e) = t.entries.get_mut(rank) else { return false };
        let State::Allo { owner } = &e.state else { return false };
        e.state = State::Ckpt { owner: owner.clone() };
        self.transitions.inc(); // ALLO -> CKPT (preemption)
        drop(t);
        self.changed.notify_all();
        true
    }

    /// Erases a NANA rank's content and promotes it to NAAV. Skips ranks
    /// that were re-allocated meanwhile.
    pub fn reset_rank(&self, rank: usize) {
        {
            let mut t = self.table.lock();
            let Some(e) = t.entries.get_mut(rank) else { return };
            if e.state != State::Nana || e.resetting {
                return;
            }
            e.resetting = true;
        }
        let claim = self.driver.open_perf(rank, "manager-reset");
        match claim {
            Ok(handle) => {
                if let Ok(r) = self.driver.machine().rank(rank) {
                    r.reset_content();
                }
                drop(handle);
                let reset_ns = self
                    .cm
                    .rank_reset(self.driver.machine().config().rank_mapped_bytes());
                self.stats.resets.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .reset_virtual_ns
                    .fetch_add(reset_ns.as_nanos(), Ordering::Relaxed);
                let mut t = self.table.lock();
                if let Some(e) = t.entries.get_mut(rank) {
                    e.resetting = false;
                    if e.state == State::Nana {
                        e.state = State::Naav;
                        self.transitions.inc(); // NANA -> NAAV (reset done)
                    }
                }
            }
            Err(_) => {
                let mut t = self.table.lock();
                if let Some(e) = t.entries.get_mut(rank) {
                    e.resetting = false;
                }
            }
        }
        self.changed.notify_all();
    }

    /// Directly returns an `ALLO`/`CKPT` rank to `NAAV` — the oracle's
    /// counterpart of the sharded table's churn hook, with identical
    /// transition accounting. Returns whether the rank changed state.
    pub fn recycle(&self, rank: usize) -> bool {
        let changed = {
            let mut t = self.table.lock();
            let Some(e) = t.entries.get_mut(rank) else { return false };
            match e.state {
                State::Allo { .. } | State::Ckpt { .. } => {
                    e.state = State::Naav;
                    self.transitions.inc(); // ALLO/CKPT -> NAAV (direct recycle)
                    true
                }
                _ => false,
            }
        };
        if changed {
            self.changed.notify_all();
        }
        changed
    }

    /// One rank's state (takes the table-wide lock — the contrast to the
    /// sharded table's lock-free `state_of`).
    #[must_use]
    pub fn state_of(&self, rank: usize) -> Option<RankState> {
        self.table.lock().entries.get(rank).map(|e| match e.state {
            State::Naav => RankState::Naav,
            State::Allo { .. } => RankState::Allo,
            State::Ckpt { .. } => RankState::Ckpt,
            State::Nana => RankState::Nana,
        })
    }

    /// Current state of every rank.
    #[must_use]
    pub fn states(&self) -> Vec<RankState> {
        self.table
            .lock()
            .entries
            .iter()
            .map(|e| match e.state {
                State::Naav => RankState::Naav,
                State::Allo { .. } => RankState::Allo,
                State::Ckpt { .. } => RankState::Ckpt,
                State::Nana => RankState::Nana,
            })
            .collect()
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> ManagerStats {
        ManagerStats {
            allocations: self.stats.allocations.load(Ordering::Relaxed),
            reuses: self.stats.reuses.load(Ordering::Relaxed),
            resets: self.stats.resets.load(Ordering::Relaxed),
            abandoned: self.stats.abandoned.load(Ordering::Relaxed),
            reset_virtual: VirtualNanos::from_nanos(
                self.stats.reset_virtual_ns.load(Ordering::Relaxed),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upmem_sim::{PimConfig, PimMachine};

    #[test]
    fn oracle_matches_seed_semantics() {
        let driver = Arc::new(UpmemDriver::new(PimMachine::new(PimConfig::small())));
        let s = ReferenceTable::new(driver, CostModel::default());
        let q = Duration::from_millis(2);
        let a = s.alloc("x", q, 1).unwrap();
        let b = s.alloc("y", q, 1).unwrap();
        assert_eq!((a.rank, b.rank), (0, 1));
        assert!(s.alloc("z", q, 1).is_err());
        assert_eq!(s.stats().abandoned, 1);
        let to_reset = s.sync_with_sysfs(&[(RankStatus::Free, 1), (RankStatus::Free, 0)]);
        assert_eq!(to_reset, vec![0]);
        assert_eq!(s.states()[0], RankState::Nana);
        assert_eq!(s.state_of(1), Some(RankState::Allo));
    }
}
