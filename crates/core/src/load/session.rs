//! Session execution (phase A) and the virtual-time queueing model
//! (phase B) behind [`LoadHarness`](crate::load::LoadHarness).
//!
//! Phase A really executes every session body — launch a tenant VM
//! through the admission path, run the scripted ops, release — and
//! measures each op's *virtual* cost. All randomness comes from
//! [`SimRng::stream`] keyed by the session index, so the measurements are
//! a pure function of `(seed, index)` and identical whether the bodies run
//! sequentially or on a worker pool.
//!
//! Phase B replays the measured service times through a c-server FCFS
//! queue fed by the open-loop arrival trace — pure integer math, so the
//! service-level outcome (waits, sojourns, giveups, peak concurrency) is
//! bit-identical everywhere.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use simkit::SimRng;

use crate::load::tenant::TenantMix;
use crate::system::VpimSystem;

/// How long phase A keeps retrying a launch that races the asynchronous
/// rank-recycling observer before declaring the session failed.
const LAUNCH_DEADLINE: std::time::Duration = std::time::Duration::from_secs(10);

/// What phase A measured for one session. Everything here is a pure
/// function of `(base seed, session index, mix)`.
#[derive(Debug, Clone)]
pub(crate) struct SessionRun {
    /// Index of the chosen profile in the mix.
    pub profile: usize,
    /// Total service time in virtual nanoseconds (op costs + think gaps).
    pub service_ns: u64,
    /// Virtual cost of each scripted op, in script order (`u64::MAX`
    /// marks a failed op).
    pub op_costs: Vec<u64>,
    /// Commutative fold of the ops' checksums.
    pub checksum: u64,
    /// True when the VM never launched (the session is dropped from the
    /// queueing model entirely).
    pub launch_failed: bool,
}

/// Sentinel cost marking a failed op inside [`SessionRun::op_costs`].
pub(crate) const FAILED_OP: u64 = u64::MAX;

/// Executes session `idx`: profile draw, VM launch, scripted ops with
/// closed-loop think gaps, release. Never panics on workload errors —
/// failures are recorded in the result so the report stays total.
pub(crate) fn run_session(
    sys: &VpimSystem,
    mix: &TenantMix,
    seed: u64,
    idx: usize,
) -> SessionRun {
    let mut rng = SimRng::stream(seed, idx as u64);
    let pi = mix.pick(&mut rng);
    let profile = &mix.profiles()[pi];
    // Per-op seeds are drawn *before* any execution so a retried launch
    // cannot shift the stream.
    let op_seeds: Vec<u64> =
        profile.ops().iter().map(|_| u64::from(rng.u32()) << 32 | u64::from(rng.u32())).collect();
    let think: Vec<u64> = profile
        .ops()
        .iter()
        .map(|_| if profile.think_mean() == 0 { 0 } else { rng.exp_gap_ns(profile.think_mean()) })
        .collect();

    let spec = profile
        .template()
        .clone()
        .retag(format!("{}-s{idx}", profile.name()));
    let deadline = std::time::Instant::now() + LAUNCH_DEADLINE;
    let vm = loop {
        match sys.launch(spec.clone()) {
            Ok(vm) => break Some(vm),
            // Released ranks come back through an asynchronous observer;
            // admission can transiently find none available.
            Err(crate::error::VpimError::NoRankAvailable | crate::error::VpimError::NotLinked)
                if std::time::Instant::now() < deadline =>
            {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            Err(_) => break None,
        }
    };
    let Some(vm) = vm else {
        return SessionRun {
            profile: pi,
            service_ns: 0,
            op_costs: Vec::new(),
            checksum: 0,
            launch_failed: true,
        };
    };

    let mut service_ns = 0u64;
    let mut checksum = 0u64;
    let mut op_costs = Vec::with_capacity(profile.ops().len());
    for (j, op) in profile.ops().iter().enumerate() {
        match op.run(&vm, op_seeds[j]) {
            Ok(out) => {
                service_ns = service_ns.saturating_add(out.cost.as_nanos());
                checksum = checksum.wrapping_add(out.checksum);
                op_costs.push(out.cost.as_nanos());
            }
            Err(_) => op_costs.push(FAILED_OP),
        }
        service_ns = service_ns.saturating_add(think[j]);
    }
    let _ = vm.release_all();
    drop(vm);
    SessionRun { profile: pi, service_ns, op_costs, checksum, launch_failed: false }
}

/// The queueing model's verdict on one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Started at `.0`, departed at `.1` (virtual nanoseconds).
    Served(u64, u64),
    /// Waited past its patience and left at `arrival + patience`.
    GaveUp(u64),
    /// Never launched in phase A; absent from the queue entirely.
    Failed,
}

/// Everything phase B derives from the arrival trace and service times.
#[derive(Debug, Clone)]
pub(crate) struct QueueOutcome {
    pub admissions: Vec<Admission>,
    pub giveups: u64,
    /// Peak sessions in the system (arrived, not yet departed/given up).
    pub peak_in_system: u64,
    /// Peak sessions waiting for a server.
    pub peak_queue_depth: u64,
    /// Virtual time of the last departure (or giveup).
    pub makespan_ns: u64,
}

/// Replays the sessions through `servers` FCFS virtual servers.
/// `arrivals[i]` and `runs[i].service_ns` describe session `i`; sessions
/// with `launch_failed` are skipped. Pure integer math.
pub(crate) fn simulate_queue(
    arrivals: &[u64],
    runs: &[SessionRun],
    servers: usize,
    patience_ns: Option<u64>,
) -> QueueOutcome {
    assert_eq!(arrivals.len(), runs.len());
    let servers = servers.max(1);
    // Earliest-free-first server pool.
    let mut free: BinaryHeap<Reverse<u64>> = (0..servers).map(|_| Reverse(0u64)).collect();
    let mut admissions = Vec::with_capacity(runs.len());
    let mut giveups = 0u64;
    let mut makespan_ns = 0u64;
    // (time, Δin_system, Δqueue); sorted so same-instant departures
    // (negative deltas) precede arrivals — a fixed, conservative tie
    // break that keeps the peaks deterministic.
    let mut events: Vec<(u64, i64, i64)> = Vec::with_capacity(runs.len() * 3);
    for (i, run) in runs.iter().enumerate() {
        if run.launch_failed {
            admissions.push(Admission::Failed);
            continue;
        }
        let a = arrivals[i];
        let Reverse(f) = free.pop().expect("server pool is non-empty");
        let start = a.max(f);
        if let Some(p) = patience_ns {
            if start - a > p {
                free.push(Reverse(f));
                let left = a + p;
                admissions.push(Admission::GaveUp(left));
                giveups += 1;
                makespan_ns = makespan_ns.max(left);
                events.push((a, 1, 1));
                events.push((left, -1, -1));
                continue;
            }
        }
        let depart = start + run.service_ns;
        free.push(Reverse(depart));
        admissions.push(Admission::Served(start, depart));
        makespan_ns = makespan_ns.max(depart);
        events.push((a, 1, 1));
        events.push((start, 0, -1));
        events.push((depart, -1, 0));
    }
    events.sort_unstable();
    let (mut in_sys, mut queued) = (0i64, 0i64);
    let (mut peak_in_system, mut peak_queue_depth) = (0i64, 0i64);
    for (_, ds, dq) in events {
        in_sys += ds;
        queued += dq;
        peak_in_system = peak_in_system.max(in_sys);
        peak_queue_depth = peak_queue_depth.max(queued);
    }
    QueueOutcome {
        admissions,
        giveups,
        peak_in_system: peak_in_system.max(0) as u64,
        peak_queue_depth: peak_queue_depth.max(0) as u64,
        makespan_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(service_ns: u64) -> SessionRun {
        SessionRun {
            profile: 0,
            service_ns,
            op_costs: vec![service_ns],
            checksum: 0,
            launch_failed: false,
        }
    }

    #[test]
    fn single_server_serializes() {
        let arrivals = vec![0, 10, 20];
        let runs = vec![run(100), run(100), run(100)];
        let q = simulate_queue(&arrivals, &runs, 1, None);
        assert_eq!(
            q.admissions,
            vec![
                Admission::Served(0, 100),
                Admission::Served(100, 200),
                Admission::Served(200, 300)
            ]
        );
        assert_eq!(q.peak_in_system, 3);
        assert_eq!(q.peak_queue_depth, 2);
        assert_eq!(q.makespan_ns, 300);
    }

    #[test]
    fn two_servers_overlap() {
        let arrivals = vec![0, 10, 20];
        let runs = vec![run(100), run(100), run(100)];
        let q = simulate_queue(&arrivals, &runs, 2, None);
        assert_eq!(
            q.admissions,
            vec![
                Admission::Served(0, 100),
                Admission::Served(10, 110),
                Admission::Served(100, 200)
            ]
        );
        assert_eq!(q.peak_queue_depth, 1);
    }

    #[test]
    fn patience_sheds_the_tail() {
        let arrivals = vec![0, 1, 2];
        let runs = vec![run(1000), run(1000), run(1000)];
        let q = simulate_queue(&arrivals, &runs, 1, Some(500));
        assert_eq!(q.giveups, 2);
        assert_eq!(q.admissions[1], Admission::GaveUp(501));
        assert_eq!(q.admissions[2], Admission::GaveUp(502));
        // Only the served session holds a server.
        assert_eq!(q.makespan_ns, 1000);
    }

    #[test]
    fn failed_sessions_never_occupy_servers() {
        let mut failed = run(9999);
        failed.launch_failed = true;
        let arrivals = vec![0, 5];
        let runs = vec![failed, run(10)];
        let q = simulate_queue(&arrivals, &runs, 1, None);
        assert_eq!(q.admissions[0], Admission::Failed);
        assert_eq!(q.admissions[1], Admission::Served(5, 15));
    }
}
