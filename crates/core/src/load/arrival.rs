//! Open-loop arrival processes for the load harness.
//!
//! An [`Arrival`] turns `(seed, n)` into `n` nondecreasing virtual arrival
//! times. The generation is a pure function of the seed (one dedicated
//! [`SimRng`] stream), so the offered trace is identical no matter how the
//! sessions later execute.

use simkit::{SimRng, VirtualNanos};

/// The RNG stream index reserved for arrival generation (session streams
/// use the session index, so arrivals get a far-away constant).
const ARRIVAL_STREAM: u64 = 0xA11A_55AA_0000_0001;

/// An open-loop arrival process in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Poisson arrivals: i.i.d. exponential gaps with the given mean.
    Poisson {
        /// Mean inter-arrival gap in virtual nanoseconds.
        mean_gap_ns: u64,
    },
    /// Bursty ON-OFF arrivals: bursts of `burst` sessions with
    /// exponential(`mean_gap_ns`) gaps inside the burst, separated by
    /// exponential(`off_gap_ns`) silences.
    OnOff {
        /// Mean intra-burst gap in virtual nanoseconds.
        mean_gap_ns: u64,
        /// Sessions per burst (at least 1).
        burst: u32,
        /// Mean inter-burst silence in virtual nanoseconds.
        off_gap_ns: u64,
    },
    /// Deterministic arrivals every `gap_ns` nanoseconds.
    Uniform {
        /// The fixed inter-arrival gap in virtual nanoseconds.
        gap_ns: u64,
    },
}

impl Arrival {
    /// The `n` arrival times for base seed `seed`, nondecreasing, starting
    /// at the first gap after virtual time zero.
    #[must_use]
    pub fn times(&self, seed: u64, n: usize) -> Vec<VirtualNanos> {
        let mut rng = SimRng::stream(seed, ARRIVAL_STREAM);
        let mut t = 0u64;
        let mut out = Vec::with_capacity(n);
        match *self {
            Arrival::Poisson { mean_gap_ns } => {
                for _ in 0..n {
                    t += rng.exp_gap_ns(mean_gap_ns);
                    out.push(VirtualNanos::from_nanos(t));
                }
            }
            Arrival::OnOff { mean_gap_ns, burst, off_gap_ns } => {
                let burst = burst.max(1) as usize;
                let mut in_burst = 0usize;
                for _ in 0..n {
                    if in_burst == burst {
                        t += rng.exp_gap_ns(off_gap_ns);
                        in_burst = 0;
                    }
                    t += rng.exp_gap_ns(mean_gap_ns);
                    in_burst += 1;
                    out.push(VirtualNanos::from_nanos(t));
                }
            }
            Arrival::Uniform { gap_ns } => {
                for _ in 0..n {
                    t += gap_ns.max(1);
                    out.push(VirtualNanos::from_nanos(t));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_pure_and_nondecreasing() {
        for arr in [
            Arrival::Poisson { mean_gap_ns: 500 },
            Arrival::OnOff { mean_gap_ns: 100, burst: 8, off_gap_ns: 10_000 },
            Arrival::Uniform { gap_ns: 250 },
        ] {
            let a = arr.times(7, 200);
            let b = arr.times(7, 200);
            assert_eq!(a, b);
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{arr:?} not sorted");
            // Uniform is seed-free by design; the stochastic processes
            // must react to the seed.
            if !matches!(arr, Arrival::Uniform { .. }) {
                assert_ne!(a, arr.times(8, 200), "{arr:?} ignores the seed");
            }
        }
    }

    #[test]
    fn uniform_is_exact() {
        let a = Arrival::Uniform { gap_ns: 100 }.times(1, 3);
        let ns: Vec<u64> = a.iter().map(|t| t.as_nanos()).collect();
        assert_eq!(ns, vec![100, 200, 300]);
    }

    #[test]
    fn onoff_inserts_silences() {
        // Long off gaps dominate: the mean gap over a burst boundary must
        // far exceed the intra-burst mean.
        let a = Arrival::OnOff { mean_gap_ns: 10, burst: 4, off_gap_ns: 100_000 }.times(3, 64);
        let gaps: Vec<u64> =
            a.windows(2).map(|w| w[1].as_nanos() - w[0].as_nanos()).collect();
        let big = gaps.iter().filter(|g| **g > 10_000).count();
        assert!(big >= 8, "expected off-period gaps, got {big} of {}", gaps.len());
    }
}
